//! `wormhole-lint` — static analysis over every bundled input: the six
//! Fig. 2 testbed configurations, the two TE variants, the ten paper
//! personas, and a generated Internet at a selectable scale (including
//! the `D5xx` dense-plane verifier over its flat control-plane tables).
//! Exits non-zero when any input reaches the deny level; CI runs this
//! as the lint gate.
//!
//! ```text
//! wormhole-lint [--scale quick|paper|tenfold|thousandfold]
//!               [--format text|json]
//!               [--deny error|warn|info]
//!               [--severity CODE=LEVEL]...   # repeatable reclassification
//! wormhole-lint --explain CODE               # one rule, explained
//! wormhole-lint --rules                      # the full rule table
//! ```

use std::process::ExitCode;
use wormhole::lint::{self, LintConfig};
use wormhole::net::PoppingMode;
use wormhole::topo::{
    generate, gns3_fig2, gns3_fig2_te, paper_personas, Fig2Config, InternetConfig, Scenario,
};

const USAGE: &str = "usage: wormhole-lint [--scale quick|paper|tenfold|thousandfold] \
                     [--format text|json] [--deny LEVEL] [--severity CODE=LEVEL]... \
                     | --explain CODE | --rules";

enum Format {
    Text,
    Json,
}

/// Prints one input's findings (text mode).
fn report(name: &str, diags: &[lint::Diagnostic]) {
    let (e, w, i) = lint::count(diags);
    if diags.is_empty() {
        println!("{name:<28} clean");
    } else {
        println!("{name:<28} {e} error(s), {w} warning(s), {i} info");
        for d in diags {
            for line in d.to_string().lines() {
                println!("    {line}");
            }
        }
    }
}

fn explain(code: &str) -> ExitCode {
    let Some(r) = lint::rule(code) else {
        eprintln!("unknown rule code '{code}' (see wormhole-lint --rules)");
        return ExitCode::FAILURE;
    };
    println!("{} ({}, default {})", r.code, r.family, r.severity);
    println!("  {}", r.summary);
    println!();
    println!("{}", r.explanation);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = LintConfig::default();
    let mut scale = "quick".to_string();
    let mut format = Format::Text;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rules" => {
                print!("{}", lint::markdown_table());
                return ExitCode::SUCCESS;
            }
            "--explain" => {
                let Some(code) = it.next() else {
                    eprintln!("--explain needs a rule code");
                    return ExitCode::FAILURE;
                };
                return explain(code);
            }
            "--scale" => match it.next().map(String::as_str) {
                Some(s @ ("quick" | "paper" | "tenfold" | "thousandfold")) => {
                    scale = s.to_string();
                }
                other => {
                    eprintln!("bad --scale {other:?}\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!("bad --format {other:?}\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--deny" => match it.next().map(String::as_str).and_then(lint::parse_severity) {
                Some(level) => cfg.deny = level,
                None => {
                    eprintln!("bad --deny level\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--severity" => {
                let Some(spec) = it.next() else {
                    eprintln!("--severity needs CODE=LEVEL");
                    return ExitCode::FAILURE;
                };
                if let Err(e) = cfg.add_override(spec) {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            other => {
                eprintln!("unknown argument '{other}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let scenarios: Vec<(String, Scenario)> = Fig2Config::ALL
        .into_iter()
        .map(|c| (format!("fig2/{}", c.name()), gns3_fig2(c)))
        .chain([
            (
                "fig2-te/php".to_string(),
                gns3_fig2_te(PoppingMode::Php, false),
            ),
            (
                "fig2-te/uhp".to_string(),
                gns3_fig2_te(PoppingMode::Uhp, false),
            ),
        ])
        .collect();

    let net_cfg = match scale.as_str() {
        "quick" => InternetConfig::small(8),
        "paper" => InternetConfig {
            seed: 8,
            ..InternetConfig::default()
        },
        "tenfold" => InternetConfig::tenfold(8),
        _ => InternetConfig::thousandfold(8),
    };

    // (input name, findings with overrides applied)
    let mut runs: Vec<(String, Vec<lint::Diagnostic>)> = Vec::new();
    for (name, s) in &scenarios {
        runs.push((name.clone(), lint::check_scenario(s)));
    }
    for p in paper_personas() {
        runs.push((format!("persona/{}", p.name), lint::check_persona(&p)));
    }
    let internet = generate(&net_cfg);
    runs.push((format!("internet/{scale}"), lint::check_internet(&internet)));

    let mut failed = false;
    for (_, diags) in &mut runs {
        cfg.apply(diags);
        failed |= cfg.fails(diags);
    }

    match format {
        Format::Text => {
            for (name, diags) in &runs {
                report(name, diags);
            }
            if failed {
                eprintln!("lint failed: diagnostics at or above the deny level");
            } else {
                println!("all inputs lint clean at the deny level");
            }
        }
        Format::Json => {
            // One aggregated, normalized document across every input —
            // the artifact CI archives.
            let mut all: Vec<lint::Diagnostic> = runs.into_iter().flat_map(|(_, d)| d).collect();
            lint::normalize(&mut all);
            println!("{}", lint::to_json(&all));
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
