//! `wormhole-lint` — static analysis over every bundled input: the six
//! Fig. 2 testbed configurations, the ten paper personas, and a
//! quick-scale generated Internet. Exits non-zero when any input
//! carries `Error`-level diagnostics; CI runs this as the lint gate.

use std::process::ExitCode;
use wormhole::lint;
use wormhole::net::PoppingMode;
use wormhole::topo::{
    generate, gns3_fig2, gns3_fig2_te, paper_personas, Fig2Config, InternetConfig, Scenario,
};

/// Prints one input's findings; returns whether it carried errors.
fn report(name: &str, diags: &[lint::Diagnostic]) -> bool {
    let (e, w, i) = lint::count(diags);
    if diags.is_empty() {
        println!("{name:<28} clean");
    } else {
        println!("{name:<28} {e} error(s), {w} warning(s), {i} info");
        for d in diags {
            for line in d.to_string().lines() {
                println!("    {line}");
            }
        }
    }
    e > 0
}

fn main() -> ExitCode {
    let mut failed = false;

    let scenarios: Vec<(String, Scenario)> = Fig2Config::ALL
        .into_iter()
        .map(|c| (format!("fig2/{}", c.name()), gns3_fig2(c)))
        .chain([
            (
                "fig2-te/php".to_string(),
                gns3_fig2_te(PoppingMode::Php, false),
            ),
            (
                "fig2-te/uhp".to_string(),
                gns3_fig2_te(PoppingMode::Uhp, false),
            ),
        ])
        .collect();
    for (name, s) in &scenarios {
        failed |= report(name, &lint::check_scenario(s));
    }

    for p in paper_personas() {
        failed |= report(&format!("persona/{}", p.name), &lint::check_persona(&p));
    }

    let internet = generate(&InternetConfig::small(8));
    failed |= report("internet/quick", &lint::check_internet(&internet));

    if failed {
        eprintln!("lint failed: error-level diagnostics found");
        ExitCode::FAILURE
    } else {
        println!("all inputs lint clean");
        ExitCode::SUCCESS
    }
}
