//! `wormhole-cli` — drive the simulator from the command line.
//!
//! ```text
//! wormhole-cli trace <config> [target]   traceroute on the Fig. 2 testbed
//! wormhole-cli smart <config>            tunnel-aware traceroute (§8)
//! wormhole-cli reveal <config>           run the DPR/BRPR recursion
//! wormhole-cli lint <config>             static analysis of a testbed config
//! wormhole-cli campaign [quick|paper|tenfold|thousandfold]
//!                       [--jobs N] [--faults <scenario>] [--stealing]
//!                       [--distributed N] [--cache-dir DIR]
//!                       [--emit summary|jsonl|report]
//!                                        full §4 campaign; scenarios:
//!                                        clean, lossy_core, rate_limited_edge, hostile,
//!                                        deceptive_ttl, artifact_lb, paranoid
//!                                        (`--faults list` prints them).
//!                                        --emit jsonl streams one line per merged
//!                                        trace (the same path wormhole-serve uses);
//!                                        --emit report prints the canonical
//!                                        byte-stable report.
//!                                        --distributed N partitions each stealing
//!                                        phase across N worker processes; the report
//!                                        stays byte-identical to the in-process run.
//!                                        --cache-dir DIR caches the built control
//!                                        plane on disk, shared with the workers
//! wormhole-cli campaign-worker --shard-spec <file>
//!                                        internal: execute one distributed shard
//!                                        spec and write the shard file back
//! wormhole-cli list-configs              available testbed configurations
//! ```

use std::process::ExitCode;
use wormhole::core::{reveal_between, smart_traceroute, RevealOpts, SmartOpts, Trigger};
use wormhole::net::PoppingMode;
use wormhole::probe::{Session, TracerouteOpts};
use wormhole::topo::{gns3_fig2, gns3_fig2_te, Fig2Config, Scenario};

const CONFIGS: &[(&str, &str)] = &[
    (
        "default",
        "PHP, ttl-propagate, LDP all prefixes (explicit LSP)",
    ),
    (
        "backward",
        "no-ttl-propagate, LDP all prefixes (BRPR reveals)",
    ),
    (
        "explicit",
        "no-ttl-propagate, LDP host routes (DPR reveals)",
    ),
    ("invisible", "no-ttl-propagate + UHP (totally invisible)"),
    ("te-php", "RSVP-TE only, PHP, no-ttl-propagate"),
    (
        "te-uhp",
        "RSVP-TE only, UHP, no-ttl-propagate (truly invisible)",
    ),
];

fn scenario(name: &str) -> Option<Scenario> {
    Some(match name {
        "default" => gns3_fig2(Fig2Config::Default),
        "backward" => gns3_fig2(Fig2Config::BackwardRecursive),
        "explicit" => gns3_fig2(Fig2Config::ExplicitRoute),
        "invisible" => gns3_fig2(Fig2Config::TotallyInvisible),
        "te-php" => gns3_fig2_te(PoppingMode::Php, false),
        "te-uhp" => gns3_fig2_te(PoppingMode::Uhp, false),
        _ => return None,
    })
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: wormhole-cli <trace|smart|reveal|lint> <config> \
         | campaign [quick|paper|tenfold|thousandfold] [--jobs N] [--faults <scenario>] \
         [--stealing] [--distributed N] [--cache-dir DIR] [--emit summary|jsonl|report] \
         | campaign-worker --shard-spec <file> | list-configs\n\
         configs: {}\n\
         fault scenarios: clean, lossy_core, rate_limited_edge, hostile, deceptive_ttl, \
         artifact_lb, paranoid (--faults list prints them)",
        CONFIGS
            .iter()
            .map(|&(n, _)| n)
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::FAILURE
}

fn name_of(s: &Scenario, addr: wormhole::net::Addr) -> String {
    s.net
        .owner(addr)
        .map(|r| s.net.router(r).name.clone())
        .unwrap_or_else(|| "?".into())
}

fn cmd_trace(s: &Scenario, target: Option<&str>) -> ExitCode {
    let dst = match target {
        Some(t) => match t.parse() {
            Ok(a) => a,
            Err(_) => match s.net.router_by_name(t) {
                Some(r) => r.loopback,
                None => {
                    eprintln!("unknown target {t} (use an address or a router name)");
                    return ExitCode::FAILURE;
                }
            },
        },
        None => s.target,
    };
    let mut sess = Session::new(&s.net, &s.cp, s.vp);
    sess.set_opts(TracerouteOpts::default());
    let trace = sess.traceroute(dst);
    for line in trace.to_string().lines() {
        println!("{line}");
    }
    println!("({} probes)", sess.stats.probes);
    ExitCode::SUCCESS
}

fn cmd_smart(s: &Scenario) -> ExitCode {
    let mut sess = Session::new(&s.net, &s.cp, s.vp);
    sess.set_opts(TracerouteOpts::default());
    let net = &s.net;
    let t = smart_traceroute(
        &mut sess,
        s.target,
        |a| net.owner_asn(a),
        &SmartOpts::default(),
    );
    println!(
        "smart traceroute to {} ({} extra probes):",
        t.dst, t.extra_probes
    );
    for (i, hop) in t.hops.iter().enumerate() {
        let tag = match hop.revealed_by {
            Some(Trigger::FrplaShift(n)) => format!("  [revealed: FRPLA shift {n}]"),
            Some(Trigger::RtlaGap(n)) => format!("  [revealed: RTLA gap {n}]"),
            None => String::new(),
        };
        println!(
            "{:>2}  {:<14} {}{tag}",
            i + 1,
            hop.addr.to_string(),
            name_of(s, hop.addr)
        );
    }
    for (addr, trig) in &t.unrevealed_triggers {
        println!("  ! {addr} triggered ({trig:?}) but revealed nothing — UHP suspect");
    }
    ExitCode::SUCCESS
}

fn cmd_reveal(s: &Scenario) -> ExitCode {
    let mut sess = Session::new(&s.net, &s.cp, s.vp);
    sess.set_opts(TracerouteOpts::default());
    let trace = sess.traceroute(s.target);
    let resp: Vec<_> = trace.hops.iter().filter_map(|h| h.addr).collect();
    if resp.len() < 3 {
        eprintln!("trace too short to pick a candidate pair");
        return ExitCode::FAILURE;
    }
    let (x, y) = (resp[resp.len() - 3], resp[resp.len() - 2]);
    println!(
        "candidate pair: {x} ({}) → {y} ({})",
        name_of(s, x),
        name_of(s, y)
    );
    match reveal_between(&mut sess, x, y, s.target, &RevealOpts::default()).tunnel() {
        Some(t) => {
            println!("revealed {} hops via {:?}:", t.len(), t.method());
            for hop in t.hops() {
                println!("  {hop}  {}", name_of(s, hop));
            }
        }
        None => println!("nothing revealed (no invisible LDP tunnel between the pair)"),
    }
    ExitCode::SUCCESS
}

fn cmd_lint(name: &str, s: &Scenario) -> ExitCode {
    let diags = wormhole::lint::check_scenario(s);
    if diags.is_empty() {
        println!("{name}: clean (no findings)");
        return ExitCode::SUCCESS;
    }
    print!("{}", wormhole::lint::render(&diags));
    if wormhole::lint::has_errors(&diags) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// What `campaign` writes to stdout.
#[derive(Copy, Clone, PartialEq, Eq)]
enum Emit {
    /// Human summary plus the Table 4 rendering (the default).
    Summary,
    /// Streaming JSONL: one line per merged trace as the campaign
    /// produces them, then engine stats — the same emission path
    /// `wormhole-serve` streams over its socket.
    Jsonl,
    /// The canonical [`CampaignReport`] text, byte-stable across
    /// `--jobs`/scheduling and identical to a serve session's final
    /// frame.
    Report,
}

/// The substrate seed the CLI pins for every campaign run; workers
/// re-derive the identical Internet from `<scale>:<seed>` tokens.
const SUBSTRATE_SEED: u64 = 8;

fn cmd_campaign(args: &[String]) -> ExitCode {
    use wormhole::experiments::Scale;
    use wormhole::net::FaultScenario;
    let mut scale = Scale::Paper;
    let mut jobs = wormhole::experiments::jobs_from_env();
    let mut faults = wormhole::experiments::faults_from_env();
    let mut scheduling = wormhole::experiments::scheduling_from_env();
    let mut emit = Emit::Summary;
    let mut distributed: Option<usize> = None;
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut chaos_abort_worker: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "quick" => scale = Scale::Quick,
            "paper" => scale = Scale::Paper,
            "tenfold" => scale = Scale::Tenfold,
            "thousandfold" => scale = Scale::ThousandFold,
            "--stealing" => scheduling = wormhole::core::Scheduling::Stealing,
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => jobs = n,
                None => {
                    eprintln!("--jobs needs a worker count (0 = all cores)");
                    return ExitCode::FAILURE;
                }
            },
            "--distributed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => distributed = Some(n),
                _ => {
                    eprintln!("--distributed needs a worker-process count (>= 1)");
                    return ExitCode::FAILURE;
                }
            },
            "--cache-dir" => match it.next() {
                Some(d) => cache_dir = Some(std::path::PathBuf::from(d)),
                None => {
                    eprintln!("--cache-dir needs a directory for the substrate cache");
                    return ExitCode::FAILURE;
                }
            },
            // Test/CI hook: tell the given distributed worker index to
            // abort during the probe phase (exercises the missing-shard
            // degradation path).
            "--chaos-abort-worker" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => chaos_abort_worker = Some(n),
                None => {
                    eprintln!("--chaos-abort-worker needs a worker index");
                    return ExitCode::FAILURE;
                }
            },
            "--faults" => match it.next().map(String::as_str) {
                // Escape hatch: `--faults list` prints the scenario
                // names (one per line, script-friendly) and exits.
                Some("list") => {
                    for sc in FaultScenario::ALL {
                        println!("{}", sc.name());
                    }
                    return ExitCode::SUCCESS;
                }
                Some(v) if FaultScenario::parse(v).is_some() => {
                    faults = FaultScenario::parse(v).expect("just checked");
                }
                _ => {
                    eprintln!(
                        "--faults needs a scenario (or 'list'): {}",
                        FaultScenario::ALL.map(FaultScenario::name).join(", ")
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--emit" => match it.next().map(String::as_str) {
                Some("summary") => emit = Emit::Summary,
                Some("jsonl") => emit = Emit::Jsonl,
                Some("report") => emit = Emit::Report,
                _ => {
                    eprintln!("--emit needs a mode: summary, jsonl, report");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown campaign argument {other}");
                return usage();
            }
        }
    }
    if let Some(workers) = distributed {
        return cmd_campaign_distributed(
            scale,
            jobs,
            faults,
            emit,
            workers,
            cache_dir,
            chaos_abort_worker,
        );
    }
    if chaos_abort_worker.is_some() {
        eprintln!("--chaos-abort-worker only applies to --distributed runs");
        return ExitCode::FAILURE;
    }
    if cache_dir.is_some() && emit == Emit::Summary {
        eprintln!("--cache-dir needs --distributed or --emit jsonl|report");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "running the §4 campaign at {scale:?} scale with jobs={jobs} ({scheduling:?} scheduling) \
         under the '{}' scenario…",
        faults.name()
    );
    match emit {
        Emit::Summary => {
            let t0 = std::time::Instant::now();
            let ctx = wormhole::experiments::PaperContext::generate_full(
                scale, 8, jobs, faults, scheduling,
            );
            let elapsed = t0.elapsed().as_secs_f64();
            println!(
                "snapshot: {} nodes, {} HDNs; {} targets; {} candidate pairs; {} tunnels revealed; {} probes",
                ctx.result.snapshot.num_nodes(),
                ctx.result.hdns.len(),
                ctx.result.targets.len(),
                ctx.result.unique_pairs().len(),
                ctx.result.tunnels().count(),
                ctx.result.probes
            );
            if !ctx.result.degraded_shards.is_empty() {
                for d in &ctx.result.degraded_shards {
                    println!("degraded shard: vp {} lost in the {} phase", d.vp, d.phase);
                }
            }
            println!(
                "wall: {elapsed:.2}s  ({:.0} probes/sec simulated; probe {:.2}s, merge {:.2}s, \
                 analysis {:.3}s)",
                ctx.result.probes as f64 / elapsed,
                ctx.result.timings.probe_seconds,
                ctx.result.timings.merge_seconds,
                ctx.result.timings.analysis_seconds
            );
            println!("{}", wormhole::experiments::table4::run(&ctx));
        }
        Emit::Jsonl | Emit::Report => {
            // The exact path `wormhole-serve` runs: build the substrate,
            // then stream one campaign over it.
            let (internet, _cache) = match substrate_for(scale, cache_dir.as_deref()) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let cfg = wormhole::experiments::campaign_config_for(scale, jobs, faults, scheduling);
            if emit == Emit::Jsonl {
                let stdout = std::io::stdout();
                let mut sink = wormhole::probe::JsonlSink::new(stdout.lock()).with_stats();
                let result = wormhole::experiments::campaign_over(&internet, &cfg, &mut sink);
                drop(sink);
                println!(
                    "{{\"type\":\"done\",\"traces\":{},\"probes\":{},\"snapshot_checksum\":{}}}",
                    result.traces.len(),
                    result.probes,
                    result.snapshot_checksum
                );
            } else {
                let mut sink = wormhole::probe::NullSink;
                let result = wormhole::experiments::campaign_over(&internet, &cfg, &mut sink);
                print!("{}", result.report());
            }
        }
    }
    ExitCode::SUCCESS
}

/// Builds the campaign substrate, through the on-disk control-plane
/// cache when a directory was given. Returns the Internet plus the
/// cache file and config checksum distributed workers must agree on.
fn substrate_for(
    scale: wormhole::experiments::Scale,
    cache_dir: Option<&std::path::Path>,
) -> Result<(wormhole::topo::Internet, Option<(std::path::PathBuf, u64)>), String> {
    let Some(dir) = cache_dir else {
        return Ok((
            wormhole::experiments::internet_for(scale, SUBSTRATE_SEED),
            None,
        ));
    };
    let net_cfg = wormhole::experiments::internet_config_for(scale, SUBSTRATE_SEED);
    let (internet, status) = wormhole::topo::generate_cached(&net_cfg, dir)
        .map_err(|e| format!("substrate cache under {}: {e}", dir.display()))?;
    let path = wormhole::topo::cache_file(dir, &net_cfg);
    eprintln!(
        "substrate cache: {} ({})",
        path.display(),
        match status {
            wormhole::topo::CacheStatus::Cold => "cold build, saved",
            wormhole::topo::CacheStatus::Warm => "warm restore",
        }
    );
    // The same lint-before-simulate gate `internet_for` applies.
    let diags = wormhole::lint::check_internet(&internet);
    wormhole::lint::deny_errors("campaign substrate", &diags);
    let checksum = wormhole::topo::config_checksum(&net_cfg);
    Ok((internet, Some((path, checksum))))
}

/// `campaign --distributed N`: partition each stealing phase across N
/// worker processes (this same binary, `campaign-worker` subcommand)
/// and merge their shard files. The report stays byte-identical to the
/// in-process `--stealing` run.
#[allow(clippy::too_many_arguments)]
fn cmd_campaign_distributed(
    scale: wormhole::experiments::Scale,
    jobs: usize,
    faults: wormhole::net::FaultScenario,
    emit: Emit,
    workers: usize,
    cache_dir: Option<std::path::PathBuf>,
    chaos_abort_worker: Option<usize>,
) -> ExitCode {
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot locate the worker binary: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (internet, cache) = match substrate_for(scale, cache_dir.as_deref()) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = wormhole::experiments::campaign_config_for(
        scale,
        jobs,
        faults,
        wormhole::core::Scheduling::Stealing,
    );
    let work_dir = std::env::temp_dir().join(format!("wormhole-dist-{}", std::process::id()));
    let opts = wormhole::core::DistributedOpts {
        workers,
        worker_cmd: vec![exe.to_string_lossy().into_owned()],
        substrate_token: format!("{}:{SUBSTRATE_SEED}", scale.name()),
        work_dir: work_dir.clone(),
        cache,
        keep_files: false,
        chaos_abort_worker,
    };
    eprintln!(
        "running the §4 campaign at {scale:?} scale across {workers} worker processes \
         under the '{}' scenario…",
        faults.name()
    );
    let campaign =
        wormhole::core::Campaign::new(&internet.net, &internet.cp, internet.vps.clone(), cfg);
    let result = match emit {
        Emit::Jsonl => {
            let stdout = std::io::stdout();
            let mut sink = wormhole::probe::JsonlSink::new(stdout.lock()).with_stats();
            let result = campaign.run_distributed(&mut sink, &opts);
            drop(sink);
            if let Ok(r) = &result {
                println!(
                    "{{\"type\":\"done\",\"traces\":{},\"probes\":{},\"snapshot_checksum\":{}}}",
                    r.traces.len(),
                    r.probes,
                    r.snapshot_checksum
                );
            }
            result
        }
        Emit::Summary | Emit::Report => {
            let mut sink = wormhole::probe::NullSink;
            campaign.run_distributed(&mut sink, &opts)
        }
    };
    let _ = std::fs::remove_dir(&work_dir);
    let result = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("distributed campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The shard-ledger accounting goes to stderr so `--emit report`
    // stdout stays canonical (byte-identical to the in-process run).
    if let Some(dist) = &result.dist {
        for p in &dist.phases {
            eprintln!(
                "phase {:<12} dispatched {} / received {} / missing {:?} ({} shard probes)",
                p.phase, p.dispatched, p.received, p.missing, p.shard_probes
            );
        }
        if let Some(c) = dist.master_cache_checksum {
            eprintln!(
                "substrate cache checksum {c:#018x}; workers reported {:?}",
                dist.worker_cache_checksums
            );
        }
    }
    for d in &result.degraded_shards {
        eprintln!("degraded shard: vp {} lost in the {} phase", d.vp, d.phase);
    }
    match emit {
        Emit::Summary => {
            println!(
                "snapshot: {} nodes, {} HDNs; {} targets; {} candidate pairs; \
                 {} tunnels revealed; {} probes",
                result.snapshot.num_nodes(),
                result.hdns.len(),
                result.targets.len(),
                result.unique_pairs().len(),
                result.tunnels().count(),
                result.probes
            );
        }
        Emit::Report => print!("{}", result.report()),
        Emit::Jsonl => {}
    }
    ExitCode::SUCCESS
}

/// `campaign-worker --shard-spec <file>`: the worker half of
/// `campaign --distributed`. Decodes the spec, re-derives the identical
/// substrate from its `<scale>:<seed>` token (or the shared cache
/// file), executes its task subset, and writes the shard file back.
fn cmd_campaign_worker(args: &[String]) -> ExitCode {
    let spec = match args {
        [flag, path] if flag == "--shard-spec" => std::path::Path::new(path),
        _ => {
            eprintln!("usage: wormhole-cli campaign-worker --shard-spec <file>");
            return ExitCode::FAILURE;
        }
    };
    match wormhole::core::worker_main(spec, &wormhole::experiments::resolve_worker_substrate) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("campaign-worker: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list-configs") => {
            for &(name, desc) in CONFIGS {
                println!("{name:<10} {desc}");
            }
            ExitCode::SUCCESS
        }
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("campaign-worker") => cmd_campaign_worker(&args[1..]),
        Some(cmd @ ("trace" | "smart" | "reveal" | "lint")) => {
            let Some(config) = args.get(1) else {
                return usage();
            };
            let Some(s) = scenario(config) else {
                eprintln!("unknown config {config}");
                return usage();
            };
            match cmd {
                "trace" => cmd_trace(&s, args.get(2).map(String::as_str)),
                "smart" => cmd_smart(&s),
                "reveal" => cmd_reveal(&s),
                "lint" => cmd_lint(config, &s),
                _ => unreachable!(),
            }
        }
        _ => usage(),
    }
}
