//! `wormhole-serve` — a resident campaign service over warm substrates.
//!
//! ```text
//! wormhole-serve [--socket PATH] [--history N] [--seed N]
//! ```
//!
//! Listens on a local Unix socket and serves campaign / trace / lint
//! requests as length-prefixed JSON frames. The first request at a
//! scale builds that Internet; every later request reuses it warm — no
//! rebuild between requests, which is the entire point of staying
//! resident. Campaign responses stream one frame per merged trace
//! (identical lines to `wormhole-cli campaign --emit jsonl`) and end
//! with the canonical byte-stable report.
//!
//! Request examples (each a single frame):
//!
//! ```text
//! {"cmd":"campaign","scale":"tenfold","jobs":4}
//! {"cmd":"campaign","scale":"quick","faults":"hostile","scheduling":"stealing"}
//! {"cmd":"trace","scale":"quick","dst":"10.1.0.0"}
//! {"cmd":"lint","scale":"paper"}
//! {"cmd":"history"}
//! {"cmd":"ping"}
//! {"cmd":"shutdown"}
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use wormhole::serve::{ServeConfig, Server};

fn main() -> ExitCode {
    let mut cfg = ServeConfig::at("wormhole-serve.sock");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => match it.next() {
                Some(p) => cfg.socket = p.into(),
                None => return usage("--socket needs a path"),
            },
            "--history" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.history = n,
                None => return usage("--history needs a count"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.seed = n,
                None => return usage("--seed needs a number"),
            },
            other => return usage(&format!("unknown argument {other}")),
        }
    }
    eprintln!(
        "wormhole-serve: listening on {} (history {}, seed {})",
        cfg.socket.display(),
        cfg.history,
        cfg.seed
    );
    match Arc::new(Server::new(cfg)).run() {
        Ok(()) => {
            eprintln!("wormhole-serve: shutdown");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("wormhole-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("{err}\nusage: wormhole-serve [--socket PATH] [--history N] [--seed N]");
    ExitCode::FAILURE
}
