//! `wormhole` — a full reproduction of *"Through the Wormhole: Tracking
//! Invisible MPLS Tunnels"* (Vanaubel, Mérindol, Pansiot, Donnet — ACM
//! IMC 2017).
//!
//! MPLS networks configured with `no-ttl-propagate` hide their interior
//! from traceroute: the whole Label Switched Path looks like a single
//! IP hop, ingress LERs appear adjacent to every egress, and measured
//! Internet graphs inherit fake high-degree meshes. This workspace
//! implements the paper's four counter-techniques — **FRPLA**, **RTLA**,
//! **DPR**, and **BRPR** — together with everything needed to evaluate
//! them end to end:
//!
//! * [`net`] — a packet-level simulator with vendor-accurate MPLS data
//!   planes (RFC 3032/3443/4950 TTL semantics, validated hop-for-hop
//!   against the paper's GNS3 outputs);
//! * [`topo`] — the Fig. 2 testbed, per-AS deployment personas, and a
//!   seeded synthetic-Internet generator;
//! * [`probe`] — Paris traceroute and ping (the scamper stand-in);
//! * [`core`] — the revelation techniques and the §4 campaign;
//! * [`analysis`] — statistics and the §7 Internet-model update;
//! * [`experiments`] — one module/binary per paper table and figure;
//! * [`lint`] — static invariant analysis over topologies, MPLS
//!   configurations and campaign outputs, with a lint-before-simulate
//!   contract (sessions and campaigns refuse networks carrying
//!   `Error`-level diagnostics under `debug_assertions`);
//! * [`serve`] — a resident campaign service holding one warm built
//!   Internet per scale behind a length-prefixed JSON socket protocol.
//!
//! # Quickstart
//!
//! ```
//! use wormhole::topo::{gns3_fig2, Fig2Config};
//! use wormhole::probe::Session;
//! use wormhole::core::{reveal_between, RevealOpts};
//!
//! // The paper's testbed with invisible tunnels (Fig. 4b).
//! let s = gns3_fig2(Fig2Config::BackwardRecursive);
//! let mut sess = Session::new(&s.net, &s.cp, s.vp);
//! let trace = sess.traceroute(s.target);
//! // Campaign sessions start at TTL 2: PE1, PE2, CE2 — P1..P3 hidden.
//! assert_eq!(trace.responsive_count(), 3);
//!
//! // Reveal the hidden LSRs.
//! let out = reveal_between(
//!     &mut sess,
//!     s.left_addr("PE1"),
//!     s.left_addr("PE2"),
//!     s.target,
//!     &RevealOpts::default(),
//! );
//! assert_eq!(out.tunnel().unwrap().len(), 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use wormhole_analysis as analysis;
pub use wormhole_core as core;
pub use wormhole_experiments as experiments;
pub use wormhole_lint as lint;
pub use wormhole_net as net;
pub use wormhole_probe as probe;
pub use wormhole_serve as serve;
pub use wormhole_topo as topo;
