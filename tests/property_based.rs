//! Property-based tests over the core data structures and the TTL
//! algebra the techniques rely on.

mod common;

use common::{line, LineOpts};
use proptest::prelude::*;
use wormhole::analysis::Histogram;
use wormhole::core::{infer_initial_ttl, return_path_len};
use wormhole::net::{Addr, Prefix, PrefixTrie};
use wormhole::probe::{Session, TracerouteOpts};

proptest! {
    /// The trie agrees with a brute-force longest-prefix scan.
    #[test]
    fn trie_matches_linear_scan(
        entries in proptest::collection::vec((any::<u32>(), 0u8..=32), 1..64),
        queries in proptest::collection::vec(any::<u32>(), 32),
    ) {
        let mut trie = PrefixTrie::new();
        let mut table: Vec<(Prefix, usize)> = Vec::new();
        for (i, &(addr, len)) in entries.iter().enumerate() {
            let p = Prefix::new(Addr(addr), len);
            trie.insert(p, i);
            table.retain(|&(q, _)| q != p);
            table.push((p, i));
        }
        for q in queries {
            let q = Addr(q);
            let want = table
                .iter()
                .filter(|(p, _)| p.contains(q))
                .max_by_key(|(p, _)| p.len)
                .map(|&(p, v)| (p, v));
            let got = trie.lookup(q).map(|(p, &v)| (p, v));
            prop_assert_eq!(got, want);
        }
    }

    /// Inferred initial TTLs are the smallest standard initial ≥ the
    /// observation, and the return length stays within (0, init].
    #[test]
    fn initial_ttl_inference_is_monotone(observed in 1u8..=255) {
        let init = infer_initial_ttl(observed);
        prop_assert!(init >= observed);
        prop_assert!([32u8, 64, 128, 255].contains(&init));
        for smaller in [32u8, 64, 128, 255] {
            if smaller < init {
                prop_assert!(smaller < observed);
            }
        }
        let len = return_path_len(observed);
        prop_assert!(len >= 1);
        prop_assert_eq!(len as u16, (init - observed) as u16 + 1);
    }

    /// Histogram statistics agree with direct computation on the raw
    /// samples.
    #[test]
    fn histogram_matches_sorted_vec(samples in proptest::collection::vec(-50i64..50, 1..200)) {
        let h = Histogram::from_iter(samples.iter().copied());
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.median(), Some(sorted[(sorted.len() - 1) / 2]));
        let mean = sorted.iter().map(|&x| x as f64).sum::<f64>() / sorted.len() as f64;
        prop_assert!((h.mean().unwrap() - mean).abs() < 1e-9);
        prop_assert_eq!(h.range(), Some((sorted[0], *sorted.last().unwrap())));
        let total: f64 = h.pdf().iter().map(|&(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // Quantiles are order statistics.
        prop_assert_eq!(h.quantile(1.0), Some(*sorted.last().unwrap()));
        prop_assert_eq!(h.quantile(0.0), Some(sorted[0]));
    }

    /// TTL algebra on the wire: for any tunnel length and TTL policy,
    /// a traceroute across the line topology observes exactly the
    /// RFC 3443 arithmetic — hidden tunnels shorten the trace by their
    /// LSR count, visible ones don't, and the egress's return TTL
    /// charges the tunnel iff it is hidden.
    #[test]
    fn ttl_algebra_on_random_tunnels(
        n_lsrs in 1usize..7,
        propagate in any::<bool>(),
    ) {
        let l = line(LineOpts {
            n_lsrs,
            propagate,
            ..LineOpts::default()
        });
        let mut sess = Session::new(&l.net, &l.cp, l.vp);
        sess.set_opts(TracerouteOpts::default());
        let trace = sess.traceroute(l.target);
        prop_assert!(trace.reached);
        let full = n_lsrs + 4; // CE1 PE1 P* PE2 CE2
        if propagate {
            prop_assert_eq!(trace.responsive_count(), full);
            prop_assert!(trace.has_labels());
        } else {
            prop_assert_eq!(trace.responsive_count(), 4);
            prop_assert!(!trace.has_labels());
        }
        // Egress return TTL: the true return path is CE1+PE1+LSRs+1
        // intermediate routers long either way; the *forward* position
        // differs.
        let pe2 = l.net.router_by_name("PE2").unwrap();
        let hop = trace.hop_of(pe2.ifaces[0].addr).expect("egress visible");
        let ret_len = return_path_len(hop.reply_ip_ttl.unwrap());
        prop_assert_eq!(usize::from(ret_len), n_lsrs + 3);
        let fwd = usize::from(hop.ttl);
        if propagate {
            prop_assert_eq!(fwd, n_lsrs + 3);
        } else {
            prop_assert_eq!(fwd, 3);
        }
    }

    /// Echo replies from Juniper targets never charge the return tunnel
    /// (the 64-based side of the RTLA gap), for any tunnel length.
    #[test]
    fn juniper_echo_reply_never_counts_tunnel(n_lsrs in 1usize..7) {
        let l = line(LineOpts {
            n_lsrs,
            vendor: wormhole::net::Vendor::JuniperJunos,
            ldp: wormhole::net::LdpPolicy::LoopbackOnly,
            ..LineOpts::default()
        });
        let mut sess = Session::new(&l.net, &l.cp, l.vp);
        let pe2 = l.net.router_by_name("PE2").unwrap();
        let er = sess.ping(pe2.ifaces[0].addr).reply.expect("pingable");
        // 64 − (CE1 + PE1 decrements) = 62, independent of tunnel size.
        prop_assert_eq!(er.reply_ip_ttl, 62);
    }
}
