//! Alias-resolution ablation: the paper builds on CAIDA's
//! alias-resolved ITDK; our campaigns use ground-truth resolution.
//! This test quantifies what *imperfect* alias resolution does to the
//! graph the campaign is triggered from — splitting aliases fragments
//! routers (degree deflation and node inflation), while merging
//! distinct routers fabricates high-degree nodes. Both effects matter
//! when interpreting Fig. 1 / Table 4 style numbers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wormhole::analysis::degree_histogram;
use wormhole::net::Addr;
use wormhole::probe::Session;
use wormhole::topo::{generate, InternetConfig, ItdkSnapshot, NodeInfo};

/// Collects one bootstrap-style path set over the small Internet.
fn paths() -> (wormhole::topo::Internet, Vec<Vec<Option<Addr>>>) {
    let internet = generate(&InternetConfig::small(77));
    let mut out = Vec::new();
    for (i, &vp) in internet.vps.iter().enumerate() {
        let mut sess = Session::new(&internet.net, &internet.cp, vp);
        let loopbacks: Vec<Addr> = internet
            .net
            .routers()
            .iter()
            .filter(|r| !r.config.is_host)
            .map(|r| r.loopback)
            .collect();
        for (j, &t) in loopbacks.iter().enumerate() {
            if j % internet.vps.len() == i {
                out.push(sess.traceroute(t).addr_path());
            }
        }
    }
    (internet, out)
}

fn perfect(net: &wormhole::net::Network) -> impl Fn(Addr) -> NodeInfo + Copy + '_ {
    move |addr| match net.owner(addr) {
        Some(r) => NodeInfo {
            key: u64::from(r.0),
            asn: Some(net.router(r).asn),
        },
        None => NodeInfo {
            key: u64::MAX ^ u64::from(addr.0),
            asn: None,
        },
    }
}

#[test]
fn splitting_aliases_fragments_routers() {
    let (internet, path_set) = paths();
    let net = &internet.net;
    let clean = ItdkSnapshot::build(&path_set, perfect(net));

    // The hub under observation: the clean graph's max-degree node. It
    // is exempted from splitting below so the assertion tests the
    // stated effect (splitting *neighbors*) rather than racing it
    // against the hub itself fragmenting, which is seed-dependent.
    let hub_key = (0..clean.num_nodes())
        .max_by_key(|&n| clean.degree(n))
        .map(|n| clean.key(n))
        .unwrap();

    // Split: each non-hub address resolves to its own node with
    // probability 0.5.
    let mut rng = StdRng::seed_from_u64(1);
    let noisy = ItdkSnapshot::build(&path_set, |addr| {
        let base = perfect(net)(addr);
        if base.key != hub_key && rng.gen::<f64>() < 0.5 {
            NodeInfo {
                key: 0x5150_0000_0000_0000 | u64::from(addr.0),
                ..base
            }
        } else {
            base
        }
    });
    assert!(
        noisy.num_nodes() > clean.num_nodes(),
        "splitting must inflate the node count ({} vs {})",
        noisy.num_nodes(),
        clean.num_nodes()
    );
    // Aliases shrink: split nodes carry fewer addresses each.
    let max_aliases = |s: &ItdkSnapshot| {
        (0..s.num_nodes())
            .map(|n| s.addresses(n).len())
            .max()
            .unwrap_or(0)
    };
    assert!(max_aliases(&noisy) <= max_aliases(&clean));
    // Counter-intuitive but real: splitting a hub's *neighbors* can
    // inflate the hub's apparent degree (one physical neighbor becomes
    // several graph nodes) — imperfect alias resolution is itself an
    // HDN source, exactly the paper's intro caveat.
    let top_clean = degree_histogram(&clean).range().unwrap().1;
    let top_noisy = degree_histogram(&noisy).range().unwrap().1;
    assert!(
        top_noisy >= top_clean,
        "neighbor-splitting inflates hub degrees ({top_noisy} vs {top_clean})"
    );
}

#[test]
fn merging_routers_fabricates_hdns() {
    let (internet, path_set) = paths();
    let net = &internet.net;
    let clean = ItdkSnapshot::build(&path_set, perfect(net));

    // Merge *distant* router pairs (router ids are assigned AS by AS,
    // so id k and id k + n/2 sit in different ASes with disjoint
    // neighborhoods) — the false-alias case the paper's intro warns
    // about ("inaccurate alias resolution" as an HDN source): the two
    // victims' adjacencies sum.
    let half = (net.num_routers() as u64) / 2;
    let merged = ItdkSnapshot::build(&path_set, |addr| {
        let base = perfect(net)(addr);
        if base.key < 2 * half {
            NodeInfo {
                key: base.key % half,
                ..base
            }
        } else {
            base
        }
    });
    assert!(merged.num_nodes() < clean.num_nodes());
    // Roughly the same adjacencies over half the nodes: the whole
    // distribution shifts up and the HDN tail thickens.
    let mean_clean = degree_histogram(&clean).mean().unwrap();
    let mean_merged = degree_histogram(&merged).mean().unwrap();
    assert!(
        mean_merged > mean_clean,
        "merging must inflate mean degree ({mean_merged:.2} vs {mean_clean:.2})"
    );
    let thr = 8;
    assert!(
        merged.hdns(thr).len() >= clean.hdns(thr).len(),
        "merged graph must flag at least as many HDNs"
    );
    let top_clean = degree_histogram(&clean).range().unwrap().1;
    let top_merged = degree_histogram(&merged).range().unwrap().1;
    assert!(top_merged >= top_clean);
}
