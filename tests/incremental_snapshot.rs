//! Incremental-aggregation equivalence: the campaign's streaming
//! [`ItdkBuilder`] must converge to exactly the batch
//! [`ItdkSnapshot::build`] over the same IP paths, in any ingest
//! order, over clean, hostile, and degraded campaign corpora.
//!
//! The campaign retains its bootstrap paths
//! (`CampaignConfig::keep_bootstrap_paths`) so the full path corpus —
//! bootstrap plus merged phase-4 traces — can be replayed through
//! fresh builders in permuted orders. Byte-identity is asserted
//! through the canonical snapshot checksum (keys, ASNs, sorted
//! addresses, and links all feed it) plus every counter and the HDN
//! extraction the campaign keys on.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wormhole::core::{snapshot_oracle, Campaign, CampaignConfig, CampaignResult, Scheduling};
use wormhole::net::{Addr, FaultScenario, Network};
use wormhole::topo::{generate, Internet, InternetConfig, ItdkBuilder, ItdkSnapshot, NodeInfo};

/// The campaign's address resolver, replicated for replay: router
/// addresses collapse to the owning router, unknown addresses stay
/// distinct under a sentinel key.
fn resolver(net: &Network) -> impl Fn(Addr) -> NodeInfo + '_ {
    |addr| match net.owner(addr) {
        Some(r) => NodeInfo {
            key: u64::from(r.0),
            asn: Some(net.router(r).asn),
        },
        None => NodeInfo {
            key: 0xFFFF_0000_0000_0000 | u64::from(addr.0),
            asn: None,
        },
    }
}

/// A seeded Fisher–Yates permutation of `0..n` (the vendored `rand`
/// has no `shuffle`).
fn shuffled(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i + 1);
        idx.swap(i, j);
    }
    idx
}

/// Runs a campaign that retains its bootstrap paths and returns the
/// result plus the full path corpus (bootstrap + phase-4 traces).
fn corpus(
    internet: &Internet,
    hdn_threshold: usize,
    faults: FaultScenario,
    chaos_panic_vp: Option<usize>,
    scheduling: Scheduling,
) -> (CampaignResult, Vec<Vec<Option<Addr>>>) {
    let cfg = CampaignConfig {
        hdn_threshold,
        jobs: 2,
        faults: faults.plan(),
        chaos_panic_vp,
        scheduling,
        keep_bootstrap_paths: true,
        ..CampaignConfig::default()
    };
    let result = Campaign::new(&internet.net, &internet.cp, internet.vps.clone(), cfg).run();
    let mut paths = result.bootstrap_paths.clone();
    paths.extend(result.traces.iter().map(|t| t.addr_path()));
    (result, paths)
}

/// Asserts the batch build over `paths` — in the given order and in
/// several deterministic permutations — lands on the campaign's
/// incremental checksum, counters, and HDN extraction.
fn assert_order_independent(
    internet: &Internet,
    result: &CampaignResult,
    paths: &[Vec<Option<Addr>>],
    hdn_threshold: usize,
) {
    let resolve = resolver(&internet.net);
    let batch = ItdkSnapshot::build(paths, &resolve);
    assert_eq!(
        batch.checksum(),
        result.snapshot_checksum,
        "batch rebuild diverged from the incremental checksum"
    );
    let last = result.snapshot_deltas.last().expect("deltas recorded");
    assert_eq!(
        (batch.num_nodes(), batch.num_links(), batch.num_addresses()),
        (last.nodes, last.links, last.addresses),
        "batch counters diverged from the final delta row"
    );
    // The library's own oracle (what `audit_campaign` feeds A310) must
    // agree too.
    assert_eq!(
        snapshot_oracle(&internet.net, result),
        Some((
            paths.len() as u64,
            batch.num_nodes(),
            batch.num_links(),
            batch.num_addresses(),
            batch.checksum()
        ))
    );
    // Permutations: reversed, rotated, and three seeded shuffles. The
    // canonical finish must erase every trace of ingest order.
    let mut orders: Vec<Vec<usize>> = vec![
        (0..paths.len()).rev().collect(),
        (0..paths.len())
            .map(|i| (i + paths.len() / 2) % paths.len())
            .collect(),
    ];
    for seed in 0..3u64 {
        orders.push(shuffled(paths.len(), seed));
    }
    for order in orders {
        let mut b = ItdkBuilder::new();
        for &i in &order {
            b.ingest(&paths[i], &resolve);
        }
        assert_eq!(b.ingested(), paths.len() as u64);
        let snap = b.finish();
        assert_eq!(snap.checksum(), batch.checksum(), "permuted build diverged");
        assert_eq!(snap.num_nodes(), batch.num_nodes());
        assert_eq!(snap.num_links(), batch.num_links());
        assert_eq!(snap.num_addresses(), batch.num_addresses());
        assert_eq!(snap.hdns(hdn_threshold), batch.hdns(hdn_threshold));
    }
}

#[test]
fn quick_clean_campaign_is_ingest_order_independent() {
    let internet = generate(&InternetConfig::small(8));
    let (result, paths) = corpus(
        &internet,
        6,
        FaultScenario::Clean,
        None,
        Scheduling::VpBatches,
    );
    assert!(!paths.is_empty());
    assert_order_independent(&internet, &result, &paths, 6);
}

#[test]
fn quick_hostile_campaign_is_ingest_order_independent() {
    let hostile = FaultScenario::ALL
        .iter()
        .copied()
        .find(|s| s.name() == "hostile")
        .expect("hostile scenario exists");
    let internet = generate(&InternetConfig::small(8));
    let (result, paths) = corpus(&internet, 6, hostile, None, Scheduling::Stealing);
    assert_order_independent(&internet, &result, &paths, 6);
}

#[test]
fn quick_degraded_campaign_is_ingest_order_independent() {
    // A worker panic drops one shard's traces; the surviving corpus
    // must still aggregate order-independently.
    let internet = generate(&InternetConfig::small(8));
    let (result, paths) = corpus(
        &internet,
        6,
        FaultScenario::Clean,
        Some(1),
        Scheduling::VpBatches,
    );
    assert!(
        !result.degraded_shards.is_empty(),
        "chaos panic should degrade a shard"
    );
    assert_order_independent(&internet, &result, &paths, 6);
}

#[test]
#[ignore = "paper scale; run with --ignored in release CI"]
fn paper_campaign_is_ingest_order_independent() {
    let internet = generate(&InternetConfig {
        seed: 8,
        ..InternetConfig::default()
    });
    let (result, paths) = corpus(
        &internet,
        9,
        FaultScenario::Clean,
        None,
        Scheduling::VpBatches,
    );
    assert_order_independent(&internet, &result, &paths, 9);
}

#[test]
#[ignore = "tenfold scale; run with --ignored in release CI"]
fn tenfold_campaign_is_ingest_order_independent() {
    let internet = generate(&InternetConfig::tenfold(8));
    let (result, paths) = corpus(
        &internet,
        9,
        FaultScenario::Clean,
        None,
        Scheduling::Stealing,
    );
    assert_order_independent(&internet, &result, &paths, 9);
}

/// The `audit_campaign` path over a bootstrap-retaining run must stay
/// clean — the A310 oracle comparison is live (not disabled) and
/// agrees.
#[test]
fn a310_audit_is_clean_over_a_live_campaign() {
    let internet = generate(&InternetConfig::small(8));
    let (result, _) = corpus(
        &internet,
        6,
        FaultScenario::Clean,
        None,
        Scheduling::VpBatches,
    );
    let diags = wormhole::core::audit_campaign(&internet.net, &result);
    assert!(
        !diags.iter().any(|d| d.code == "A310"),
        "A310 fired on a healthy campaign: {:?}",
        diags
    );
}

/// A campaign result plus the retained path corpus it aggregated.
type Corpus = (Internet, CampaignResult, Vec<Vec<Option<Addr>>>);

/// One quick campaign corpus shared across every property case — the
/// campaign is the expensive part; each case only replays builders.
fn shared_corpus() -> &'static Corpus {
    static CORPUS: std::sync::OnceLock<Corpus> = std::sync::OnceLock::new();
    CORPUS.get_or_init(|| {
        let internet = generate(&InternetConfig::small(8));
        let (result, paths) = corpus(
            &internet,
            6,
            FaultScenario::Clean,
            None,
            Scheduling::VpBatches,
        );
        (internet, result, paths)
    })
}

proptest! {
    /// *Any* ingest permutation — and any split of the corpus into a
    /// prefix ingested before a mid-flight `snapshot()` and a suffix
    /// after — lands on the campaign's incremental checksum.
    #[test]
    fn any_ingest_order_matches_the_incremental_checksum(seed in any::<u64>()) {
        let (internet, result, paths) = shared_corpus();
        let resolve = resolver(&internet.net);
        let order = shuffled(paths.len(), seed);
        let cut = (seed % paths.len() as u64) as usize;
        let mut b = ItdkBuilder::new();
        for &i in &order[..cut] {
            b.ingest(&paths[i], &resolve);
        }
        // A mid-flight snapshot must leave the builder usable.
        let _ = b.snapshot();
        for &i in &order[cut..] {
            b.ingest(&paths[i], &resolve);
        }
        prop_assert_eq!(b.ingested(), paths.len() as u64);
        prop_assert_eq!(b.checksum(), result.snapshot_checksum);
        let snap = b.finish();
        prop_assert_eq!(snap.checksum(), result.snapshot_checksum);
    }
}
