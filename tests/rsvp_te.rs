//! RSVP-TE tunnels: the paper's §8 explanation for the ASes where no
//! technique succeeded — "they use MPLS only with UHP, for VPN and/or
//! traffic engineering, leaving tunnels truly invisible".

use wormhole::core::{reveal_between, rfa_of_hop, smart_traceroute, RevealOpts, SmartOpts};
use wormhole::net::{
    Asn, ControlPlane, LinkOpts, NetworkBuilder, Packet, PoppingMode, RouterConfig, Vendor,
};
use wormhole::probe::{Session, TracerouteOpts};
use wormhole::topo::gns3_fig2_te;

fn session(s: &wormhole::topo::Scenario) -> Session<'_> {
    let mut sess = Session::new(&s.net, &s.cp, s.vp);
    sess.set_opts(TracerouteOpts::default());
    sess
}

#[test]
fn te_php_hides_interior_but_frpla_sees_it() {
    let s = gns3_fig2_te(PoppingMode::Php, false);
    let mut sess = session(&s);
    let trace = sess.traceroute(s.target);
    // Interior hidden: CE1, PE1, PE2, CE2.
    assert_eq!(trace.responsive_count(), 4);
    assert!(!trace.has_labels());
    // FRPLA still reads the 3-LSR return tunnel (the min rule applies
    // to RSVP-TE labels just the same).
    let hop = trace.hop_of(s.left_addr("PE2")).expect("egress visible");
    assert_eq!(rfa_of_hop(hop).unwrap().rfa, 3);
}

#[test]
fn te_autoroute_resists_dpr_and_brpr() {
    // With RSVP-TE autoroute, even the egress's incoming interface is
    // reached through the tunnel: the §4 recursion finds nothing — this
    // is why the paper's revelation methods need LDP-signalled LSPs.
    let s = gns3_fig2_te(PoppingMode::Php, false);
    let mut sess = session(&s);
    let out = reveal_between(
        &mut sess,
        s.left_addr("PE1"),
        s.left_addr("PE2"),
        s.target,
        &RevealOpts::default(),
    );
    assert!(out.is_nothing_hidden());
}

#[test]
fn te_uhp_is_truly_invisible() {
    let s = gns3_fig2_te(PoppingMode::Uhp, false);
    let mut sess = session(&s);
    let trace = sess.traceroute(s.target);
    // Even the egress LER disappears (Fig. 4d shape).
    assert!(trace.hop_of(s.left_addr("PE2")).is_none());
    assert_eq!(trace.responsive_count(), 3);
    // The smart traceroute triggers nothing and reveals nothing.
    let net = &s.net;
    let smart = smart_traceroute(
        &mut sess,
        s.target,
        |a| net.owner_asn(a),
        &SmartOpts::default(),
    );
    assert_eq!(smart.revealed_count(), 0);
}

#[test]
fn te_with_propagate_shows_the_pinned_path() {
    let s = gns3_fig2_te(PoppingMode::Php, true);
    let mut sess = session(&s);
    let trace = sess.traceroute(s.target);
    // Visible TE tunnel: all 7 routers, RSVP labels quoted.
    assert_eq!(trace.responsive_count(), 7);
    assert!(trace.has_labels());
    // The quoted labels come from the TE space, not LDP's.
    let labeled = trace.hops.iter().find(|h| h.is_labeled()).unwrap();
    assert!(labeled.labels[0].label.0 >= 500_000);
}

#[test]
fn te_pins_a_detour_the_igp_would_not_take() {
    // Diamond: head - (top: t1) - tail  vs  (bottom: b1, b2) — IGP
    // prefers the 2-hop top path; the TE tunnel pins the 3-hop bottom.
    let mut b = NetworkBuilder::new();
    let cfg = RouterConfig::mpls_router(Vendor::CiscoIos)
        .ldp(wormhole::net::LdpPolicy::None)
        .no_ttl_propagate();
    let vp = b.add_router("VP", Asn(1), RouterConfig::host());
    let head = b.add_router("head", Asn(2), cfg.clone());
    let t1 = b.add_router("t1", Asn(2), cfg.clone());
    let b1 = b.add_router("b1", Asn(2), cfg.clone());
    let b2 = b.add_router("b2", Asn(2), cfg.clone());
    let tail = b.add_router("tail", Asn(2), cfg);
    let dst = b.add_router("dst", Asn(3), RouterConfig::ip_router(Vendor::CiscoIos));
    b.link(vp, head, LinkOpts::default());
    b.link(head, t1, LinkOpts::default());
    b.link(t1, tail, LinkOpts::default());
    b.link(head, b1, LinkOpts::default());
    b.link(b1, b2, LinkOpts::default());
    b.link(b2, tail, LinkOpts::default());
    b.link(tail, dst, LinkOpts::default());
    b.as_rel(Asn(2), Asn(1), wormhole::net::RelKind::ProviderCustomer);
    b.as_rel(Asn(2), Asn(3), wormhole::net::RelKind::ProviderCustomer);
    b.te_tunnel(vec![head, b1, b2, tail], PoppingMode::Php);
    let net = b.build().unwrap();
    let cp = ControlPlane::build(&net).unwrap();
    let mut eng = wormhole::net::Engine::new(&net, &cp);
    let src = net.router(vp).loopback;
    let target = net.router(dst).loopback;
    let out = eng.send(vp, Packet::echo_request(src, target, 64, 1, 1, 1));
    let reply = out.reply().expect("delivered");
    let names: Vec<&str> = reply
        .fwd_path
        .iter()
        .map(|&r| net.router(r).name.as_str())
        .collect();
    // Traffic takes the pinned bottom path, not the IGP-shortest top.
    assert_eq!(names, ["VP", "head", "b1", "b2", "tail", "dst"]);
    // Replies from beyond the tunnel come back through the IGP path
    // (no reverse tunnel configured): forward and return differ.
    let ret: Vec<&str> = reply
        .ret_path
        .iter()
        .map(|&r| net.router(r).name.as_str())
        .collect();
    assert_eq!(ret, ["dst", "tail", "t1", "head", "VP"]);
}

#[test]
fn invalid_te_paths_are_rejected_at_build() {
    let mut b = NetworkBuilder::new();
    let cfg = RouterConfig::mpls_router(Vendor::CiscoIos);
    let a = b.add_router("a", Asn(1), cfg.clone());
    let c = b.add_router("c", Asn(1), cfg.clone());
    let z = b.add_router("z", Asn(1), cfg);
    b.link(a, c, LinkOpts::default());
    b.link(c, z, LinkOpts::default());
    b.te_tunnel(vec![a, z], PoppingMode::Php); // not adjacent
    let net = b.build().unwrap();
    assert!(matches!(
        ControlPlane::build(&net),
        Err(wormhole::net::NetError::InvalidTeTunnel { .. })
    ));
}
