//! The experiment harness itself as an integration test: every table
//! and figure module must run with all its internal paper-shape
//! assertions holding (Quick scale).

use wormhole::experiments::*;

#[test]
fn scenario_artifacts_reproduce_exactly() {
    // These assert exact values from the paper (Fig. 4 TTLs, Table 1
    // signatures, Table 2 matrix, Table 6 applicability).
    table1::run();
    table2::run();
    fig4::run();
    table6::run();
}

#[test]
fn cross_validation_reproduces_table3_shape() {
    let report = table3::run(true);
    assert!(report.lines.iter().any(|l| l.contains("vast majority")));
}

#[test]
fn campaign_artifacts_reproduce_shapes() {
    let ctx = PaperContext::generate(Scale::Quick);
    fig1::run(&ctx);
    table4::run(&ctx);
    fig5::run(&ctx);
    fig6::run(&ctx);
    fig7::run(&ctx);
    fig8::run(&ctx);
    fig9::run(&ctx);
    table5::run(&ctx);
    fig10::run(&ctx);
    fig11::run(&ctx);
}

#[test]
fn reports_render_to_markdownish_text() {
    let r = table1::run();
    let s = r.to_string();
    assert!(s.starts_with("## table1"));
    assert!(s.contains("Cisco IOS"));
}
