//! Shared helpers for integration tests.

use wormhole::net::{
    Asn, ControlPlane, LdpPolicy, LinkOpts, Network, NetworkBuilder, PoppingMode, RelKind,
    RouterConfig, RouterId, Vendor,
};

/// A parametric Fig. 2-style line: VP – CE1 |AS1| PE1 – P1 … Pn – PE2
/// |AS2| – CE2 |AS3|, with `n_lsrs` interior LSRs.
pub struct Line {
    pub net: Network,
    pub cp: ControlPlane,
    pub vp: RouterId,
    pub target: wormhole::net::Addr,
    #[allow(dead_code)] // some integration tests only probe, never count
    pub n_lsrs: usize,
}

pub struct LineOpts {
    pub n_lsrs: usize,
    pub vendor: Vendor,
    pub propagate: bool,
    pub ldp: LdpPolicy,
    pub uhp: bool,
    pub min_on_exit: bool,
}

impl Default for LineOpts {
    fn default() -> LineOpts {
        LineOpts {
            n_lsrs: 3,
            vendor: Vendor::CiscoIos,
            propagate: false,
            ldp: LdpPolicy::AllPrefixes,
            uhp: false,
            min_on_exit: true,
        }
    }
}

pub fn line(opts: LineOpts) -> Line {
    let mut mpls = RouterConfig::mpls_router(opts.vendor).ldp(opts.ldp);
    mpls.ttl_propagate = opts.propagate;
    mpls.min_on_exit = opts.min_on_exit;
    if opts.uhp {
        mpls.popping = PoppingMode::Uhp;
    }
    let mut b = NetworkBuilder::new();
    let vp = b.add_router("VP", Asn(1), RouterConfig::host());
    let ce1 = b.add_router("CE1", Asn(1), RouterConfig::ip_router(Vendor::CiscoIos));
    b.link(vp, ce1, LinkOpts::symmetric(10, 0.5));
    let pe1 = b.add_router("PE1", Asn(2), mpls.clone());
    b.link(ce1, pe1, LinkOpts::symmetric(10, 1.0));
    let mut prev = pe1;
    for i in 0..opts.n_lsrs {
        let p = b.add_router(&format!("P{}", i + 1), Asn(2), mpls.clone());
        b.link(prev, p, LinkOpts::symmetric(10, 1.0));
        prev = p;
    }
    let pe2 = b.add_router("PE2", Asn(2), mpls);
    b.link(prev, pe2, LinkOpts::symmetric(10, 1.0));
    let ce2 = b.add_router("CE2", Asn(3), RouterConfig::ip_router(Vendor::CiscoIos));
    b.link(pe2, ce2, LinkOpts::symmetric(10, 1.0));
    b.as_rel(Asn(2), Asn(1), RelKind::ProviderCustomer);
    b.as_rel(Asn(2), Asn(3), RelKind::ProviderCustomer);
    let net = b.build().expect("line builds");
    let cp = ControlPlane::build(&net).expect("line control plane");
    let target = net.router_by_name("CE2").unwrap().loopback;
    let vp = net.router_by_name("VP").unwrap().id;
    Line {
        net,
        cp,
        vp,
        target,
        n_lsrs: opts.n_lsrs,
    }
}
