//! Validates FRPLA, RTLA, DPR and BRPR against ground truth over a
//! sweep of tunnel lengths, vendors, and configurations — the
//! integration-level counterpart of the paper's §3.3 emulation.

mod common;

use common::{line, LineOpts};
use wormhole::core::{
    infer_initial_ttl, return_tunnel_length, reveal_between, rfa_of_hop, RevealMethod, RevealOpts,
    Signature,
};
use wormhole::net::{LdpPolicy, Vendor};
use wormhole::probe::{Session, TracerouteOpts};

fn session(l: &common::Line) -> Session<'_> {
    let mut sess = Session::new(&l.net, &l.cp, l.vp);
    sess.set_opts(TracerouteOpts::default());
    sess
}

fn egress_addr(l: &common::Line) -> wormhole::net::Addr {
    let pe2 = l.net.router_by_name("PE2").unwrap();
    pe2.ifaces[0].addr // the interface facing the LSRs (incoming)
}

fn ingress_addr(l: &common::Line) -> wormhole::net::Addr {
    let pe1 = l.net.router_by_name("PE1").unwrap();
    pe1.ifaces[0].addr
}

#[test]
fn frpla_recovers_tunnel_length_for_all_sizes() {
    for n in 1..=8 {
        let l = line(LineOpts {
            n_lsrs: n,
            ..LineOpts::default()
        });
        let mut sess = session(&l);
        let trace = sess.traceroute(l.target);
        let hop = trace.hop_of(egress_addr(&l)).expect("egress visible");
        let rfa = rfa_of_hop(hop).expect("reply TTL");
        assert_eq!(
            rfa.rfa, n as i32,
            "FRPLA must read exactly the {n} hidden LSRs on a symmetric line"
        );
    }
}

#[test]
fn rtla_gap_equals_return_tunnel_length() {
    for n in 1..=8 {
        let l = line(LineOpts {
            n_lsrs: n,
            vendor: Vendor::JuniperJunos,
            ldp: LdpPolicy::LoopbackOnly,
            ..LineOpts::default()
        });
        let mut sess = session(&l);
        let trace = sess.traceroute(l.target);
        let egress = egress_addr(&l);
        let te = trace.hop_of(egress).and_then(|h| h.reply_ip_ttl).unwrap();
        let er = sess.ping(egress).reply.unwrap().reply_ip_ttl;
        let sig = Signature {
            te: Some(infer_initial_ttl(te)),
            er: Some(infer_initial_ttl(er)),
        };
        assert_eq!(
            return_tunnel_length(sig, te, er),
            Some(n as i32),
            "RTLA gap must equal the {n}-LSR return tunnel"
        );
    }
}

#[test]
fn brpr_reveals_every_lsr_in_order() {
    for n in 1..=6 {
        let l = line(LineOpts {
            n_lsrs: n,
            ..LineOpts::default()
        });
        let mut sess = session(&l);
        let out = reveal_between(
            &mut sess,
            ingress_addr(&l),
            egress_addr(&l),
            l.target,
            &RevealOpts::default(),
        );
        let t = out.tunnel().expect("revealed");
        assert_eq!(t.len(), n);
        // Forward order P1..Pn.
        let names: Vec<String> = t
            .hops()
            .iter()
            .map(|&a| l.net.router(l.net.owner(a).unwrap()).name.clone())
            .collect();
        let want: Vec<String> = (1..=n).map(|i| format!("P{i}")).collect();
        assert_eq!(names, want);
        if n == 1 {
            assert_eq!(t.method(), RevealMethod::Either);
        } else {
            assert_eq!(t.method(), RevealMethod::Brpr);
        }
        // Revealed hops match ground truth exactly.
        let gt = wormhole::topo::GroundTruth::new(&l.net, &l.cp);
        let pe1 = l.net.router_by_name("PE1").unwrap().id;
        let pe2 = l.net.router_by_name("PE2").unwrap().id;
        let hidden = gt.hidden_hops(l.vp, l.target, pe1, pe2, 1).unwrap();
        let revealed: Vec<_> = t.hops().iter().map(|&a| l.net.owner(a).unwrap()).collect();
        assert_eq!(revealed, hidden);
    }
}

#[test]
fn dpr_reveals_in_one_shot() {
    for n in 2..=6 {
        let l = line(LineOpts {
            n_lsrs: n,
            vendor: Vendor::JuniperJunos,
            ldp: LdpPolicy::LoopbackOnly,
            ..LineOpts::default()
        });
        let mut sess = session(&l);
        let probes_before = sess.stats.probes;
        let out = reveal_between(
            &mut sess,
            ingress_addr(&l),
            egress_addr(&l),
            l.target,
            &RevealOpts::default(),
        );
        let t = out.tunnel().expect("revealed");
        assert_eq!(t.len(), n);
        assert_eq!(t.method(), RevealMethod::Dpr);
        // DPR needs far fewer probes than BRPR would (one re-trace plus
        // the stop-trace).
        let used = sess.stats.probes - probes_before;
        assert!(used <= 2 * (n as u64 + 6), "DPR used {used} probes");
    }
}

#[test]
fn uhp_defeats_all_techniques() {
    let l = line(LineOpts {
        n_lsrs: 4,
        uhp: true,
        ..LineOpts::default()
    });
    let mut sess = session(&l);
    let trace = sess.traceroute(l.target);
    // The egress LER does not even appear.
    assert!(trace.hop_of(egress_addr(&l)).is_none());
    // Revelation towards the next-best candidate pair finds nothing.
    let out = reveal_between(
        &mut sess,
        ingress_addr(&l),
        l.target,
        l.target,
        &RevealOpts::default(),
    );
    assert!(out.is_nothing_hidden());
}

#[test]
fn min_rule_ablation_kills_the_frpla_signal() {
    // Without the RFC 3443 min rule at the return-tunnel exit, the
    // reply's IP-TTL never absorbs the LSE decrements: FRPLA sees a
    // symmetric path. This is the design-choice ablation DESIGN.md
    // calls out.
    let l = line(LineOpts {
        n_lsrs: 4,
        min_on_exit: false,
        ..LineOpts::default()
    });
    let mut sess = session(&l);
    let trace = sess.traceroute(l.target);
    let hop = trace.hop_of(egress_addr(&l)).expect("egress visible");
    let rfa = rfa_of_hop(hop).expect("reply TTL");
    assert_eq!(
        rfa.rfa, 0,
        "without the min rule the return tunnel goes uncounted"
    );
}

#[test]
fn propagate_makes_everything_visible() {
    let l = line(LineOpts {
        n_lsrs: 5,
        propagate: true,
        ..LineOpts::default()
    });
    let mut sess = session(&l);
    let trace = sess.traceroute(l.target);
    // VP sees CE1, PE1, P1..P5, PE2, CE2.
    assert_eq!(trace.responsive_count(), 9);
    assert!(trace.has_labels());
    let hop = trace.hop_of(egress_addr(&l)).expect("egress visible");
    assert_eq!(rfa_of_hop(hop).unwrap().rfa, 0);
}
