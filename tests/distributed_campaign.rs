//! Distributed campaign executor: N worker processes, one shard file
//! each, one deterministic merge. The contract under test is the hard
//! one — the merged report is **byte-identical** to the in-process
//! `--stealing --jobs 1` run, across worker counts, fault scenarios,
//! and the on-disk substrate cache — plus the failure model (a killed
//! worker degrades its shard, a corrupt cache is a typed error).

use std::path::PathBuf;
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_wormhole-cli");

fn run_cli(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("spawn wormhole-cli")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A fresh scratch directory under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wormhole-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The canonical in-process report the distributed runs must hit.
fn serial_report(scale: &str, faults: &str) -> String {
    let out = run_cli(&[
        "campaign",
        scale,
        "--stealing",
        "--jobs",
        "1",
        "--faults",
        faults,
        "--emit",
        "report",
    ]);
    assert!(out.status.success(), "serial run failed: {}", stderr(&out));
    stdout(&out)
}

fn distributed_report(scale: &str, faults: &str, workers: &str, extra: &[&str]) -> Output {
    let mut args = vec![
        "campaign",
        scale,
        "--distributed",
        workers,
        "--faults",
        faults,
        "--emit",
        "report",
    ];
    args.extend_from_slice(extra);
    run_cli(&args)
}

/// Byte-identity across 1/2/4 worker processes on the clean scenario:
/// the partitioned queues, wire round-trips, and file-level merge must
/// reconstruct exactly the report the in-process stealing run prints.
#[test]
fn distributed_quick_clean_matches_serial_at_1_2_4_workers() {
    let want = serial_report("quick", "clean");
    for workers in ["1", "2", "4"] {
        let out = distributed_report("quick", "clean", workers, &[]);
        assert!(
            out.status.success(),
            "{workers}-worker run failed: {}",
            stderr(&out)
        );
        assert_eq!(
            stdout(&out),
            want,
            "{workers}-worker distributed report diverged from the serial run"
        );
    }
}

/// Fault injection crosses the process boundary intact: the fault plan
/// rides the shard spec, so hostile and paranoid campaigns distribute
/// byte-identically too.
#[test]
fn distributed_quick_hostile_and_paranoid_match_serial() {
    for faults in ["hostile", "paranoid"] {
        let want = serial_report("quick", faults);
        let out = distributed_report("quick", faults, "2", &[]);
        assert!(
            out.status.success(),
            "{faults} distributed run failed: {}",
            stderr(&out)
        );
        assert_eq!(
            stdout(&out),
            want,
            "2-worker distributed report diverged from serial under '{faults}'"
        );
    }
}

/// The substrate cache changes where the control plane comes from,
/// never what it is: cold (build + save) and warm (restore) runs both
/// match the uncached serial report, and the workers' reported config
/// checksums agree with the master's (the A312 contract).
#[test]
fn distributed_quick_with_cache_matches_serial_cold_and_warm() {
    let dir = scratch("cache-identity");
    let want = serial_report("quick", "clean");
    let dir_s = dir.to_string_lossy().into_owned();
    for pass in ["cold", "warm"] {
        let out = distributed_report("quick", "clean", "2", &["--cache-dir", &dir_s]);
        assert!(
            out.status.success(),
            "{pass} cached run failed: {}",
            stderr(&out)
        );
        assert_eq!(
            stdout(&out),
            want,
            "{pass}-cache report diverged from serial"
        );
    }
    // Second pass restored from disk rather than rebuilding.
    let out = distributed_report("quick", "clean", "2", &["--cache-dir", &dir_s]);
    assert!(stderr(&out).contains("warm restore"), "{}", stderr(&out));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tenfold-scale byte-identity — the acceptance bar. Expensive, so
/// `#[ignore]`d out of tier 1 (CI runs it in its own job).
#[test]
#[ignore = "tenfold scale: minutes of wall clock; run explicitly or in CI"]
fn distributed_tenfold_matches_serial() {
    let want = serial_report("tenfold", "clean");
    let out = distributed_report("tenfold", "clean", "2", &[]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(
        stdout(&out),
        want,
        "2-worker tenfold distributed report diverged from serial"
    );
}

/// A worker that dies mid-phase (the chaos hook aborts it before it
/// writes a shard) must not fail the campaign: its vantage points
/// degrade with a typed record, the ledger shows the worker missing,
/// and every later phase redistributes over the survivors.
#[test]
fn killed_worker_degrades_its_shard_and_the_campaign_completes() {
    let out = run_cli(&[
        "campaign",
        "quick",
        "--distributed",
        "2",
        "--chaos-abort-worker",
        "1",
        "--emit",
        "summary",
    ]);
    assert!(
        out.status.success(),
        "chaos run should complete degraded, not fail: {}",
        stderr(&out)
    );
    let err = stderr(&out);
    assert!(
        err.contains("missing [1]"),
        "ledger should show worker 1 missing:\n{err}"
    );
    assert!(
        err.contains("degraded shard"),
        "lost shard should surface as a degradation record:\n{err}"
    );
    assert!(
        stdout(&out).contains("snapshot:"),
        "campaign should still produce its summary"
    );
}

/// A corrupt cache file is a typed error, never a silent rebuild.
#[test]
fn corrupt_substrate_cache_is_a_typed_error() {
    let dir = scratch("cache-corrupt");
    let dir_s = dir.to_string_lossy().into_owned();
    // Seed the cache with one good run.
    let out = run_cli(&[
        "campaign",
        "quick",
        "--stealing",
        "--emit",
        "report",
        "--cache-dir",
        &dir_s,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let cache_file = std::fs::read_dir(&dir)
        .expect("read cache dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "whsc"))
        .expect("a .whsc cache file");
    // Flip a byte deep in the payload: framing still parses, the
    // payload checksum does not.
    let mut bytes = std::fs::read(&cache_file).expect("read cache file");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&cache_file, &bytes).expect("write corrupt cache");
    let out = run_cli(&[
        "campaign",
        "quick",
        "--stealing",
        "--emit",
        "report",
        "--cache-dir",
        &dir_s,
    ]);
    assert!(!out.status.success(), "corrupt cache must fail the run");
    assert!(
        stderr(&out).contains("corrupt"),
        "expected the typed corrupt-payload error:\n{}",
        stderr(&out)
    );
    // A non-WHSC file under the same name is the bad-magic variant.
    std::fs::write(&cache_file, b"not a cache file at all").expect("write junk");
    let out = run_cli(&[
        "campaign",
        "quick",
        "--stealing",
        "--emit",
        "report",
        "--cache-dir",
        &dir_s,
    ]);
    assert!(!out.status.success(), "junk cache must fail the run");
    assert!(
        stderr(&out).contains("bad magic"),
        "expected the typed bad-magic error:\n{}",
        stderr(&out)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Worker CLI error paths: a malformed spec names the valid fields so
/// an operator can see what the file should have carried.
#[test]
fn worker_rejects_malformed_specs_listing_the_valid_fields() {
    let dir = scratch("bad-spec");
    let spec = dir.join("junk.spec");
    std::fs::write(&spec, b"WHSPgarbage-that-is-not-a-spec").expect("write junk spec");
    let out = run_cli(&["campaign-worker", "--shard-spec", &spec.to_string_lossy()]);
    assert!(!out.status.success(), "junk spec must fail");
    let err = stderr(&out);
    for field in ["substrate token", "phase tag", "fault plan"] {
        assert!(
            err.contains(field),
            "spec error should list the '{field}' field:\n{err}"
        );
    }
    // Missing file: still a clean CLI error, not a panic.
    let out = run_cli(&["campaign-worker", "--shard-spec", "/nonexistent/x.spec"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("campaign-worker"), "{}", stderr(&out));
    let _ = std::fs::remove_dir_all(&dir);
}
