//! End-to-end exercise of `wormhole-serve`: an in-process [`Server`]
//! must sustain concurrent campaign sessions over one warm per-scale
//! substrate — building it exactly once — and every session's report
//! must be byte-identical to a direct batch run over the same
//! `(scale, seed, jobs, faults, scheduling)`.

use std::sync::Arc;
use std::thread;

use wormhole::experiments::{campaign_config_for, campaign_over, internet_for, Scale};
use wormhole::probe::NullSink;
use wormhole::serve::proto::{bool_field, json_unescape, num_field, str_field};
use wormhole::serve::{Client, ServeConfig, Server, ServerHandle};

/// A unique socket path per test so parallel tests never collide.
fn socket_for(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("wormhole-serve-{}-{tag}.sock", std::process::id()))
}

fn spawn(tag: &str) -> ServerHandle {
    let sock = socket_for(tag);
    let _ = std::fs::remove_file(&sock);
    Server::spawn(ServeConfig::at(&sock))
}

/// Extracts `(warm, report text)` from a campaign frame sequence.
fn parse_campaign(frames: &[String]) -> (bool, String) {
    let last = frames.last().expect("at least one frame");
    assert_eq!(
        str_field(last, "type").as_deref(),
        Some("report"),
        "campaign must end in a report frame: {last}"
    );
    let warm = bool_field(last, "warm").expect("report carries warm flag");
    let report = str_field(last, "report")
        .map(|r| json_unescape(&r))
        .unwrap();
    (warm, report)
}

#[test]
fn concurrent_sessions_share_one_warm_substrate() {
    let handle = spawn("concurrent");
    let sock = handle.socket.clone();

    // The batch oracle: the exact path `wormhole-cli campaign --emit
    // report` takes, at the serve defaults (seed 8, jobs as requested).
    let internet = internet_for(Scale::Quick, 8);
    let cfg = campaign_config_for(
        Scale::Quick,
        2,
        wormhole::net::FaultScenario::Clean,
        wormhole::core::Scheduling::VpBatches,
    );
    let oracle = campaign_over(&internet, &cfg, &mut NullSink)
        .report()
        .text()
        .to_string();

    // Two concurrent sessions at the same scale: the per-scale lock
    // means exactly one build; both campaigns then run over Arc clones
    // of the same substrate.
    let req = r#"{"cmd":"campaign","scale":"quick","jobs":2,"stream":true}"#;
    let mut threads = Vec::new();
    for _ in 0..2 {
        let sock = sock.clone();
        threads.push(thread::spawn(move || {
            let mut c = Client::connect(&sock).expect("connect");
            c.request(req).expect("campaign request")
        }));
    }
    let sessions: Vec<Vec<String>> = threads
        .into_iter()
        .map(|t| t.join().expect("session thread"))
        .collect();

    let parsed: Vec<(bool, String)> = sessions.iter().map(|f| parse_campaign(f)).collect();
    // At most one session can have paid for the build.
    let cold = parsed.iter().filter(|(warm, _)| !warm).count();
    assert!(cold <= 1, "substrate was built {cold} times for one scale");
    for (_, report) in &parsed {
        assert_eq!(
            report, &oracle,
            "serve session report diverged from the batch CLI path"
        );
    }
    // Streaming sessions carry per-trace frames before the report.
    for frames in &sessions {
        let traces = frames
            .iter()
            .filter(|f| str_field(f, "type").as_deref() == Some("trace"))
            .count();
        assert!(traces > 0, "stream:true session produced no trace frames");
    }

    // A third session must find the substrate warm and agree again.
    let mut c = Client::connect(&sock).expect("connect");
    let frames = c
        .request(r#"{"cmd":"campaign","scale":"quick","jobs":2}"#)
        .expect("warm campaign");
    let (warm, report) = parse_campaign(&frames);
    assert!(warm, "third session should reuse the warm substrate");
    assert_eq!(report, oracle);

    // History recorded all three campaigns.
    let frames = c.request(r#"{"cmd":"history"}"#).expect("history");
    let end = frames.last().unwrap();
    assert_eq!(str_field(end, "type").as_deref(), Some("history-end"));
    assert_eq!(num_field(end, "served").map(|n| n as u64), Some(3));

    c.shutdown().expect("shutdown");
    handle
        .thread
        .join()
        .expect("server thread")
        .expect("server run");
    assert!(!sock.exists(), "socket file should be removed on shutdown");
}

#[test]
fn ping_trace_and_errors_round_trip() {
    let handle = spawn("proto");
    let mut c = Client::connect(&handle.socket).expect("connect");

    let frames = c.request(r#"{"cmd":"ping"}"#).expect("ping");
    assert_eq!(str_field(&frames[0], "type").as_deref(), Some("pong"));

    // A trace request streams one trace frame then a done frame.
    let frames = c
        .request(r#"{"cmd":"trace","scale":"quick","dst":"10.1.0.0","vp":0}"#)
        .expect("trace");
    assert_eq!(str_field(&frames[0], "type").as_deref(), Some("trace"));
    let done = frames.last().unwrap();
    assert_eq!(str_field(done, "type").as_deref(), Some("done"));
    assert!(num_field(done, "probes").unwrap() > 0.0);

    // Unknown commands and malformed scales answer with error frames
    // instead of dropping the connection.
    let frames = c.request(r#"{"cmd":"frobnicate"}"#).expect("unknown cmd");
    assert_eq!(str_field(&frames[0], "type").as_deref(), Some("error"));
    let frames = c
        .request(r#"{"cmd":"campaign","scale":"galactic"}"#)
        .expect("bad scale");
    assert_eq!(str_field(&frames[0], "type").as_deref(), Some("error"));

    // An unknown fault scenario answers with a typed error frame naming
    // the offender — never a silent fallback to a clean campaign.
    let frames = c
        .request(r#"{"cmd":"campaign","scale":"quick","faults":"gremlins"}"#)
        .expect("bad scenario");
    assert_eq!(str_field(&frames[0], "type").as_deref(), Some("error"));
    assert_eq!(
        str_field(&frames[0], "error").as_deref(),
        Some("unknown fault scenario gremlins")
    );

    // The connection is still usable after errors.
    let frames = c.request(r#"{"cmd":"ping"}"#).expect("ping after error");
    assert_eq!(str_field(&frames[0], "type").as_deref(), Some("pong"));

    c.shutdown().expect("shutdown");
    handle.thread.join().expect("join").expect("run");
}

#[test]
#[ignore = "tenfold scale; run with --ignored in release CI (serve-smoke)"]
fn tenfold_sessions_match_the_batch_cli_byte_for_byte() {
    let handle = spawn("tenfold");
    let sock = handle.socket.clone();

    let internet = internet_for(Scale::Tenfold, 8);
    let cfg = campaign_config_for(
        Scale::Tenfold,
        4,
        wormhole::net::FaultScenario::Clean,
        wormhole::core::Scheduling::Stealing,
    );
    let oracle = Arc::new(
        campaign_over(&internet, &cfg, &mut NullSink)
            .report()
            .text()
            .to_string(),
    );
    drop(internet);

    let req = r#"{"cmd":"campaign","scale":"tenfold","jobs":4,"scheduling":"stealing"}"#;
    let mut threads = Vec::new();
    for _ in 0..2 {
        let sock = sock.clone();
        let oracle = Arc::clone(&oracle);
        threads.push(thread::spawn(move || {
            let mut c = Client::connect(&sock).expect("connect");
            let frames = c.request(req).expect("campaign");
            let (warm, report) = parse_campaign(&frames);
            assert_eq!(&report, oracle.as_ref(), "tenfold serve report diverged");
            warm
        }));
    }
    let cold = threads
        .into_iter()
        .map(|t| t.join().expect("session"))
        .filter(|warm| !warm)
        .count();
    assert!(cold <= 1, "tenfold substrate built more than once");

    let mut c = Client::connect(&sock).expect("connect");
    c.shutdown().expect("shutdown");
    handle.thread.join().expect("join").expect("run");
}
