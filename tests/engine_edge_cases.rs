//! Engine edge cases: loop guards, silent/suppressed ICMP, label
//! handling, and TTL boundaries that no paper figure exercises but a
//! production simulator must survive.

mod common;

use common::{line, LineOpts};
use wormhole::net::{
    Asn, ControlPlane, DropReason, Engine, EngineStats, FaultPlan, LinkOpts, NetworkBuilder,
    Packet, RelKind, ReplyKind, RouterConfig, SendOutcome, Vendor,
};

fn lossy(l: &common::Line, loss: f64, icmp_loss: f64, seed: u64) -> Engine<'_> {
    Engine::with_faults(
        &l.net,
        &l.cp,
        FaultPlan {
            loss,
            icmp_loss,
            ..FaultPlan::default()
        },
        seed,
    )
}

#[test]
fn ttl_one_expires_at_first_router() {
    let l = line(LineOpts::default());
    let mut eng = Engine::new(&l.net, &l.cp);
    let src = l.net.router(l.vp).loopback;
    let out = eng.send(l.vp, Packet::echo_request(src, l.target, 1, 1, 1, 1));
    let r = out.reply().expect("TE from the gateway");
    assert_eq!(r.kind, ReplyKind::TimeExceeded);
    assert_eq!(
        l.net.owner(r.from).map(|id| l.net.router(id).name.clone()),
        Some("CE1".to_string())
    );
}

#[test]
#[should_panic(expected = "TTL of at least 1")]
fn ttl_zero_is_rejected() {
    let l = line(LineOpts::default());
    let mut eng = Engine::new(&l.net, &l.cp);
    let src = l.net.router(l.vp).loopback;
    let _ = eng.send(l.vp, Packet::echo_request(src, l.target, 0, 1, 1, 1));
}

#[test]
fn max_ttl_round_trip_still_works() {
    let l = line(LineOpts {
        n_lsrs: 8,
        propagate: true,
        ..LineOpts::default()
    });
    let mut eng = Engine::new(&l.net, &l.cp);
    let src = l.net.router(l.vp).loopback;
    let out = eng.send(l.vp, Packet::echo_request(src, l.target, 255, 1, 1, 1));
    assert_eq!(out.reply().expect("delivered").kind, ReplyKind::EchoReply);
}

#[test]
fn icmp_suppression_reports_reason() {
    let l = line(LineOpts::default());
    let mut eng = lossy(&l, 0.0, 1.0, 5);
    let src = l.net.router(l.vp).loopback;
    // Probe that must expire mid-path: with 100% ICMP suppression every
    // would-be TE is swallowed.
    let out = eng.send(l.vp, Packet::echo_request(src, l.target, 2, 1, 1, 1));
    assert!(matches!(
        out,
        SendOutcome::Lost {
            reason: DropReason::IcmpSuppressed,
            ..
        }
    ));
    // But delivery (echo reply) is not an ICMP *error* and still works.
    let out = eng.send(l.vp, Packet::echo_request(src, l.target, 64, 1, 1, 2));
    assert!(out.reply().is_some());
}

#[test]
fn engine_stats_are_consistent() {
    let l = line(LineOpts::default());
    let mut eng = lossy(&l, 0.3, 0.0, 11);
    let src = l.net.router(l.vp).loopback;
    for seq in 0..40u16 {
        let _ = eng.send(l.vp, Packet::echo_request(src, l.target, 64, 1, 1, seq));
    }
    let EngineStats {
        probes,
        crossings,
        replies,
        lost,
        heap_allocs,
    } = eng.stats().clone();
    assert_eq!(probes, 40);
    assert_eq!(replies + lost, 40);
    assert!(crossings > probes, "each probe crosses several links");
    // Path recording is on by default, so the alloc counter moves.
    assert!(heap_allocs > 0);
}

#[test]
fn two_invisible_ases_in_sequence() {
    // VP |AS1| - PE1a [AS2: 2 LSRs] PE2a - PE1b [AS3: 3 LSRs] PE2b - dst |AS4|:
    // two invisible tunnels on one path; the trace shows only the four
    // LERs; each AS's egress carries its own return-tunnel signal.
    let mut b = NetworkBuilder::new();
    let mpls = RouterConfig::mpls_router(Vendor::CiscoIos).no_ttl_propagate();
    let vp = b.add_router("VP", Asn(1), RouterConfig::host());
    let gw = b.add_router("gw", Asn(1), RouterConfig::ip_router(Vendor::CiscoIos));
    b.link(vp, gw, LinkOpts::default());
    let mut chain = vec![];
    for (asn, n_lsrs, tag) in [(Asn(2), 2usize, "a"), (Asn(3), 3usize, "b")] {
        let pe1 = b.add_router(&format!("PE1{tag}"), asn, mpls.clone());
        let mut prev = pe1;
        for i in 0..n_lsrs {
            let p = b.add_router(&format!("P{i}{tag}"), asn, mpls.clone());
            b.link(prev, p, LinkOpts::default());
            prev = p;
        }
        let pe2 = b.add_router(&format!("PE2{tag}"), asn, mpls.clone());
        b.link(prev, pe2, LinkOpts::default());
        chain.push((pe1, pe2));
    }
    let dst = b.add_router("dst", Asn(4), RouterConfig::ip_router(Vendor::CiscoIos));
    b.link(gw, chain[0].0, LinkOpts::default());
    b.link(chain[0].1, chain[1].0, LinkOpts::default());
    b.link(chain[1].1, dst, LinkOpts::default());
    b.as_rel(Asn(2), Asn(1), RelKind::ProviderCustomer);
    b.as_rel(Asn(2), Asn(3), RelKind::Peer);
    b.as_rel(Asn(3), Asn(4), RelKind::ProviderCustomer);
    let net = b.build().unwrap();
    let cp = ControlPlane::build(&net).unwrap();

    let mut sess = wormhole::probe::Session::new(&net, &cp, vp);
    sess.set_opts(wormhole::probe::TracerouteOpts::default());
    let target = net.router(dst).loopback;
    let trace = sess.traceroute(target);
    assert!(trace.reached);
    let names: Vec<String> = trace
        .hops
        .iter()
        .filter_map(|h| h.addr)
        .map(|a| net.router(net.owner(a).unwrap()).name.clone())
        .collect();
    // Both interiors hidden: gw, PE1a, PE2a, PE1b, PE2b, dst.
    assert_eq!(names, ["gw", "PE1a", "PE2a", "PE1b", "PE2b", "dst"]);
    // Work from the addresses the trace actually observed (the incoming
    // interfaces), not from construction-order interface indices.
    let addr_of = |name: &str| {
        let rid = net.router_by_name(name).unwrap().id;
        trace
            .hops
            .iter()
            .filter_map(|h| h.addr)
            .find(|&a| net.owner(a) == Some(rid))
            .expect("router on trace")
    };
    let rfa_of = |name: &str| {
        let hop = trace.hop_of(addr_of(name)).expect("hop");
        wormhole::core::rfa_of_hop(hop).expect("sample").rfa
    };
    // PE2a: forward undercounts AS2's 2 LSRs; its reply's return tunnel
    // counts them through the min rule: +2.
    assert_eq!(rfa_of("PE2a"), 2);
    // PE2b: forward undercounts 2+3 hidden LSRs, but RFA reads only +3.
    // This is faithful RFC 3443 arithmetic: each push re-initialises the
    // LSE-TTL to 255 while the IP-TTL keeps falling, so by the time the
    // reply enters the *second* return tunnel (AS2's), its IP-TTL is
    // already below the fresh LSE and the min rule keeps the IP value —
    // only the return tunnel nearest the replying router is charged.
    // FRPLA therefore *undercounts* on multi-tunnel paths, the same
    // structural underestimation §7 notes for path lengths ("our
    // current set of techniques only reveal the last one").
    assert_eq!(rfa_of("PE2b"), 3);
    // Revelation recovers each tunnel separately, from the observed
    // incoming-interface addresses.
    let out = wormhole::core::reveal_between(
        &mut sess,
        addr_of("PE1b"),
        addr_of("PE2b"),
        target,
        &wormhole::core::RevealOpts::default(),
    );
    assert_eq!(out.tunnel().expect("revealed AS3 tunnel").len(), 3);
    let out = wormhole::core::reveal_between(
        &mut sess,
        addr_of("PE1a"),
        addr_of("PE2a"),
        target,
        &wormhole::core::RevealOpts::default(),
    );
    assert_eq!(out.tunnel().expect("revealed AS2 tunnel").len(), 2);
}

#[test]
fn rfc4950_disabled_hides_labels_but_not_hops() {
    let l = {
        let mut opts = LineOpts {
            propagate: true,
            ..LineOpts::default()
        };
        opts.n_lsrs = 2;
        line(opts)
    };
    // Rebuild with rfc4950 off via the scenario knob instead.
    let s = wormhole::topo::gns3_fig2_with(wormhole::topo::Fig2Opts {
        rfc4950: false,
        ..wormhole::topo::Fig2Opts::preset(wormhole::topo::Fig2Config::Default)
    });
    let mut sess = wormhole::probe::Session::new(&s.net, &s.cp, s.vp);
    sess.set_opts(wormhole::probe::TracerouteOpts::default());
    let trace = sess.traceroute(s.target);
    // All hops visible (propagate on) but no label quotes anywhere.
    assert_eq!(trace.responsive_count(), 7);
    assert!(!trace.has_labels());
    let _ = l;
}
