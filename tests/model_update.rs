//! Validates the §7 model update: corrected traces equal the true
//! router-level paths, and the graph metrics move the way the paper
//! reports.

use std::collections::BTreeSet;
use wormhole::analysis::{
    before_after_snapshots, corrected_path, degree_histogram, density, trace_lengths,
};
use wormhole::core::{Campaign, CampaignConfig};
use wormhole::net::Addr;
use wormhole::topo::{generate, GroundTruth, InternetConfig, NodeInfo};

fn setup() -> (wormhole::topo::Internet, wormhole::core::CampaignResult) {
    let internet = generate(&InternetConfig::small(1));
    let campaign = Campaign::new(
        &internet.net,
        &internet.cp,
        internet.vps.clone(),
        CampaignConfig {
            hdn_threshold: 6,
            ..CampaignConfig::default()
        },
    );
    let result = campaign.run();
    (internet, result)
}

#[test]
fn corrected_paths_match_ground_truth_router_sequences() {
    let (internet, result) = setup();
    let gt = GroundTruth::new(&internet.net, &internet.cp);
    let mut checked = 0usize;
    let mut exact = 0usize;
    for (c, trace) in result
        .candidates
        .iter()
        .map(|c| (c, &result.traces[c.trace_index]))
    {
        if !trace.reached {
            continue;
        }
        if result
            .revelations
            .get(&(c.ingress, c.egress))
            .and_then(|o| o.tunnel())
            .is_none()
        {
            continue;
        }
        // The corrected trace, as router ids.
        let fixed: Vec<_> = corrected_path(trace, &result.revelations)
            .into_iter()
            .flatten()
            .map(|a| internet.net.owner(a).expect("known addr"))
            .collect();
        // Ground truth for the same flow.
        let Some(truth) = gt.forward_path(internet.vps[c.vp_index], trace.dst, trace.flow) else {
            continue;
        };
        // Drop the VP and any leading hops skipped by start TTL 2.
        let truth: Vec<_> = truth
            .into_iter()
            .filter(|r| !internet.net.router(*r).config.is_host)
            .collect();
        // Under ECMP the revelation may expose a sibling equal-cost
        // branch, so we check order-preserving containment and count
        // exact matches; the corrected *length* must always be
        // plausible (between the measured and the true length).
        let mut it = truth.iter();
        let in_order = fixed.iter().all(|hop| it.any(|r| r == hop));
        // The campaign starts at TTL 2, so the corrected trace misses
        // exactly the first router of the true path.
        if in_order && fixed.len() + 1 == truth.len() {
            exact += 1;
        }
        assert!(
            fixed.len() < truth.len(),
            "corrected path longer than the true path for {}",
            trace.dst
        );
        checked += 1;
    }
    assert!(checked > 0, "validated at least one corrected trace");
    assert!(
        exact * 2 >= checked,
        "at least half the corrected traces must equal ground truth exactly ({exact}/{checked})"
    );
}

#[test]
fn revelation_reduces_density_and_degree_mass() {
    let (internet, result) = setup();
    let resolve = |addr: Addr| match internet.net.owner(addr) {
        Some(r) => NodeInfo {
            key: u64::from(r.0),
            asn: Some(internet.net.router(r).asn),
        },
        None => NodeInfo {
            key: u64::MAX ^ u64::from(addr.0),
            asn: None,
        },
    };
    let (before, after) = before_after_snapshots(&result.traces, &result.revelations, resolve);
    // Revelation rewires graph *structure*, not addresses: the campaign
    // traceroutes every interface directly, so a hidden LSR's addresses
    // are already in the measured set — what the tunnels hide is the
    // LSR's adjacencies. Splicing the revealed hops back in replaces
    // each false ingress–egress shortcut edge with an
    // ingress–LSR–…–egress chain whose edges partially coincide with
    // already-measured adjacencies, so the total link count moves but
    // not in a fixed direction; the paper's §7 effect is the density
    // drop asserted below.
    assert!(after.num_addresses() >= before.num_addresses());
    assert!(after.num_nodes() >= before.num_nodes());
    assert_ne!(
        after.num_links(),
        before.num_links(),
        "revelation must rewire the adjacency structure"
    );
    // … and reduces overall density.
    assert!(density(&after) < density(&before));
    // The heavy tail shrinks: the highest degrees deflate in aggregate.
    let hb = degree_histogram(&before);
    let ha = degree_histogram(&after);
    let tail = |h: &wormhole::analysis::Histogram| {
        h.pdf()
            .iter()
            .filter(|&&(d, _)| d >= 10)
            .map(|&(_, p)| p)
            .sum::<f64>()
    };
    assert!(
        tail(&ha) <= tail(&hb) + 1e-12,
        "high-degree mass must not grow"
    );
}

#[test]
fn path_lengths_only_grow() {
    let (_, result) = setup();
    let lens = trace_lengths(&result.traces, &result.revelations);
    assert!(!lens.is_empty());
    for (b, a) in &lens {
        assert!(a >= b, "correction can only add hops");
    }
    let grew = lens.iter().filter(|(b, a)| a > b).count();
    assert!(grew > 0, "some traces must gain hops");
}

#[test]
fn density_correction_is_per_as_consistent() {
    let (internet, result) = setup();
    let resolve = |addr: Addr| match internet.net.owner(addr) {
        Some(r) => NodeInfo {
            key: u64::from(r.0),
            asn: Some(internet.net.router(r).asn),
        },
        None => NodeInfo {
            key: u64::MAX ^ u64::from(addr.0),
            asn: None,
        },
    };
    let (before, after) = before_after_snapshots(&result.traces, &result.revelations, resolve);
    for persona in &internet.personas {
        let pair_addrs: BTreeSet<Addr> = result
            .candidates
            .iter()
            .filter(|c| c.asn == persona.asn)
            .flat_map(|c| [c.ingress, c.egress])
            .collect();
        if pair_addrs.len() < 3 {
            continue;
        }
        let (db, da) = wormhole::analysis::density_before_after(&before, &after, &pair_addrs);
        assert!(
            da <= db + 1e-12,
            "{}: density grew {db} → {da}",
            persona.name
        );
    }
}
