//! Determinism regression: the sharded campaign executor must produce
//! byte-identical output at every worker count.
//!
//! Fault injection is enabled so each vantage point actually consumes
//! its `(seed, vp_index)` RNG stream — a lossless run would pass even
//! with broken per-worker seeding, because no randomness is drawn.

use wormhole::core::{Campaign, CampaignConfig, CampaignReport, Scheduling};
use wormhole::net::{FaultPlan, FaultScenario};
use wormhole::topo::{generate, Internet, InternetConfig};

fn report(internet: &Internet, jobs: usize, seed: u64) -> CampaignReport {
    report_with(internet, jobs, seed, Scheduling::VpBatches)
}

fn report_with(
    internet: &Internet,
    jobs: usize,
    seed: u64,
    scheduling: Scheduling,
) -> CampaignReport {
    let cfg = CampaignConfig {
        hdn_threshold: 9,
        faults: FaultPlan {
            loss: 0.03,
            icmp_loss: 0.02,
            jitter_ms: 0.7,
            ..FaultPlan::default()
        },
        seed,
        jobs,
        scheduling,
        ..CampaignConfig::default()
    };
    Campaign::new(&internet.net, &internet.cp, internet.vps.clone(), cfg)
        .run()
        .report()
}

#[test]
fn paper_campaign_is_identical_at_any_worker_count() {
    let internet = generate(&InternetConfig {
        seed: 8,
        ..InternetConfig::default()
    });
    let serial = report(&internet, 1, 42);
    let parallel = report(&internet, 4, 42);
    assert_eq!(
        serial, parallel,
        "jobs=4 diverged from jobs=1 on the same seed"
    );
    // `jobs=0` (auto parallelism) must land on the same bytes too.
    assert_eq!(serial, report(&internet, 0, 42), "jobs=0 diverged");
    // Same topology, different campaign seed: faults are live, so the
    // transcript must actually change — otherwise the RNG streams were
    // never consumed and this test guards nothing.
    assert_ne!(
        serial,
        report(&internet, 1, 43),
        "different seeds produced identical reports; faults were not exercised"
    );
}

#[test]
fn every_fault_scenario_is_identical_at_any_worker_count() {
    // The ISSUE's headline robustness guarantee: token buckets,
    // persistent silence, and link flaps all run on per-worker virtual
    // clocks, so even the hostile composite shards byte-identically.
    let internet = generate(&InternetConfig::small(17));
    for scenario in FaultScenario::ALL {
        let run = |jobs: usize| {
            let cfg = CampaignConfig {
                hdn_threshold: 6,
                faults: scenario.plan(),
                seed: 5,
                jobs,
                ..CampaignConfig::default()
            };
            Campaign::new(&internet.net, &internet.cp, internet.vps.clone(), cfg)
                .run()
                .report()
        };
        let serial = run(1);
        for jobs in [2, 4] {
            assert_eq!(
                serial,
                run(jobs),
                "scenario {} diverged at jobs={jobs}",
                scenario.name()
            );
        }
    }
}

#[test]
fn stealing_campaign_is_identical_at_any_worker_count() {
    // Per-trace work stealing executes tasks in whatever order idle
    // workers claim them; byte-identical reports at every job count
    // prove the per-(seed, vp, target) RNG streams really are hermetic.
    let internet = generate(&InternetConfig {
        seed: 8,
        ..InternetConfig::default()
    });
    let serial = report_with(&internet, 1, 42, Scheduling::Stealing);
    for jobs in [2, 4] {
        assert_eq!(
            serial,
            report_with(&internet, jobs, 42, Scheduling::Stealing),
            "stealing diverged at jobs={jobs}"
        );
    }
    assert_eq!(
        serial,
        report_with(&internet, 0, 42, Scheduling::Stealing),
        "stealing diverged at jobs=0"
    );
    // Different seed must change the transcript (streams are consumed).
    assert_ne!(
        serial,
        report_with(&internet, 1, 43, Scheduling::Stealing),
        "different seeds produced identical stealing reports"
    );
}

#[test]
fn stealing_survives_the_hostile_scenario_at_any_worker_count() {
    // The hostile composite (loss + rate limiting + silence + flaps)
    // exercises every per-task fault mechanism; the report must not
    // depend on how tasks are interleaved across stealing workers.
    let internet = generate(&InternetConfig::small(17));
    let hostile = FaultScenario::ALL
        .iter()
        .find(|s| s.name() == "hostile")
        .expect("hostile scenario exists");
    let run = |jobs: usize| {
        let cfg = CampaignConfig {
            hdn_threshold: 6,
            faults: hostile.plan(),
            seed: 5,
            jobs,
            scheduling: Scheduling::Stealing,
            ..CampaignConfig::default()
        };
        Campaign::new(&internet.net, &internet.cp, internet.vps.clone(), cfg)
            .run()
            .report()
    };
    let serial = run(1);
    for jobs in [2, 4] {
        assert_eq!(
            serial,
            run(jobs),
            "hostile stealing diverged at jobs={jobs}"
        );
    }
}

/// The batched-walk equivalence property (PR 7 pin): at a given
/// `(topology, scheduling, faults, seed)`, every `(batch_width, jobs)`
/// combination must produce a byte-identical [`CampaignReport`] *and*
/// identical aggregate engine counters — with `heap_allocs == 0`, since
/// campaign sessions keep path recording off and the SoA batch driver
/// holds all lane state inline. `batch_width` 0/1 is the scalar walk,
/// 64 the full-width batched walk; 8 exercises a partial batch.
fn assert_batched_matches_scalar(
    internet: &Internet,
    faults: FaultPlan,
    scheduling: Scheduling,
    hdn_threshold: usize,
) {
    let run = |batch_width: usize, jobs: usize| {
        let cfg = CampaignConfig {
            hdn_threshold,
            faults: faults.clone(),
            seed: 11,
            jobs,
            scheduling,
            batch_width,
            ..CampaignConfig::default()
        };
        Campaign::new(&internet.net, &internet.cp, internet.vps.clone(), cfg).run()
    };
    let scalar = run(0, 1);
    assert_eq!(
        scalar.engine_stats.heap_allocs, 0,
        "scalar campaign walk must stay allocation-free"
    );
    for (bw, jobs) in [(1, 2), (8, 1), (64, 1), (64, 2), (64, 4)] {
        let batched = run(bw, jobs);
        assert_eq!(
            scalar.report(),
            batched.report(),
            "batch_width={bw} jobs={jobs} report diverged from scalar"
        );
        assert_eq!(
            scalar.engine_stats, batched.engine_stats,
            "batch_width={bw} jobs={jobs} engine counters diverged from scalar"
        );
        assert_eq!(
            batched.engine_stats.heap_allocs, 0,
            "batch_width={bw} jobs={jobs} batched walk allocated"
        );
    }
}

#[test]
fn batched_walk_matches_scalar_quick_scale() {
    // Quick scale, clean faults (the batched fast path runs for real)
    // and the hostile composite (the order-sensitive plan exercises the
    // scalar fallback), under both schedulers.
    let internet = generate(&InternetConfig::small(17));
    let hostile = FaultScenario::ALL
        .iter()
        .find(|s| s.name() == "hostile")
        .expect("hostile scenario exists");
    for scheduling in [Scheduling::VpBatches, Scheduling::Stealing] {
        assert_batched_matches_scalar(&internet, FaultPlan::none(), scheduling, 6);
        assert_batched_matches_scalar(&internet, hostile.plan(), scheduling, 6);
    }
}

#[test]
fn batched_walk_matches_scalar_paper_scale() {
    let internet = generate(&InternetConfig {
        seed: 8,
        ..InternetConfig::default()
    });
    let hostile = FaultScenario::ALL
        .iter()
        .find(|s| s.name() == "hostile")
        .expect("hostile scenario exists");
    for scheduling in [Scheduling::VpBatches, Scheduling::Stealing] {
        assert_batched_matches_scalar(&internet, FaultPlan::none(), scheduling, 9);
        assert_batched_matches_scalar(&internet, hostile.plan(), scheduling, 9);
    }
}

#[test]
fn batched_walk_matches_scalar_under_deception() {
    // The deceptive scenarios are excluded from the SoA batch fast
    // path (`FaultPlan::batch_safe`), so a batched campaign config must
    // take the scalar fallback and still land on the same bytes and
    // engine counters at every (batch_width, jobs) combination.
    let internet = generate(&InternetConfig::small(17));
    for name in ["deceptive_ttl", "artifact_lb", "paranoid"] {
        let scenario = FaultScenario::ALL
            .iter()
            .find(|s| s.name() == name)
            .unwrap_or_else(|| panic!("{name} scenario exists"));
        assert!(
            !scenario.plan().batch_safe(),
            "{name} must be excluded from the batched walk"
        );
        for scheduling in [Scheduling::VpBatches, Scheduling::Stealing] {
            assert_batched_matches_scalar(&internet, scenario.plan(), scheduling, 6);
        }
    }
}

#[test]
fn stealing_survives_the_paranoid_scenario_at_any_worker_count() {
    // The paranoid composite layers every deception (spoofed quoted
    // TTLs, per-probe forking, egress hiding, silence) on top of the
    // stealing executor's arbitrary task interleaving; reports must
    // still be byte-identical at every worker count.
    let internet = generate(&InternetConfig::small(17));
    let paranoid = FaultScenario::ALL
        .iter()
        .find(|s| s.name() == "paranoid")
        .expect("paranoid scenario exists");
    let run = |jobs: usize| {
        let cfg = CampaignConfig {
            hdn_threshold: 6,
            faults: paranoid.plan(),
            seed: 5,
            jobs,
            scheduling: Scheduling::Stealing,
            ..CampaignConfig::default()
        };
        Campaign::new(&internet.net, &internet.cp, internet.vps.clone(), cfg)
            .run()
            .report()
    };
    let serial = run(1);
    for jobs in [2, 4] {
        assert_eq!(
            serial,
            run(jobs),
            "paranoid stealing diverged at jobs={jobs}"
        );
    }
}

#[test]
#[ignore = "tenfold scale: run in release CI via --include-ignored"]
fn batched_walk_matches_scalar_tenfold_scale() {
    let internet = generate(&InternetConfig::tenfold(8));
    let hostile = FaultScenario::ALL
        .iter()
        .find(|s| s.name() == "hostile")
        .expect("hostile scenario exists");
    for scheduling in [Scheduling::VpBatches, Scheduling::Stealing] {
        assert_batched_matches_scalar(&internet, FaultPlan::none(), scheduling, 12);
        assert_batched_matches_scalar(&internet, hostile.plan(), scheduling, 12);
    }
}

#[test]
fn incremental_snapshot_is_identical_across_worker_counts() {
    // The streaming builder ingests shard merges in vantage-point
    // order, so its per-phase delta rows and order-independent
    // checksum must land on the same values at every worker count,
    // under both schedulers, clean and hostile.
    let internet = generate(&InternetConfig::small(11));
    let hostile = FaultScenario::ALL
        .iter()
        .copied()
        .find(|s| s.name() == "hostile")
        .expect("hostile scenario exists");
    for faults in [FaultPlan::none(), hostile.plan()] {
        for scheduling in [Scheduling::VpBatches, Scheduling::Stealing] {
            let run = |jobs: usize| {
                let cfg = CampaignConfig {
                    hdn_threshold: 6,
                    faults: faults.clone(),
                    seed: 7,
                    jobs,
                    scheduling,
                    ..CampaignConfig::default()
                };
                Campaign::new(&internet.net, &internet.cp, internet.vps.clone(), cfg).run()
            };
            let serial = run(1);
            assert_eq!(serial.snapshot_deltas.len(), 2, "bootstrap + probe rows");
            for jobs in [2, 4] {
                let parallel = run(jobs);
                assert_eq!(
                    serial.snapshot_deltas, parallel.snapshot_deltas,
                    "delta rows diverged at jobs={jobs} ({scheduling:?})"
                );
                assert_eq!(
                    serial.snapshot_checksum, parallel.snapshot_checksum,
                    "snapshot checksum diverged at jobs={jobs} ({scheduling:?})"
                );
            }
        }
    }
}

#[test]
fn probe_accounting_matches_across_worker_counts() {
    let internet = generate(&InternetConfig::small(11));
    let run = |jobs: usize| {
        let cfg = CampaignConfig {
            hdn_threshold: 6,
            faults: FaultPlan::with_loss(0.05).expect("valid loss"),
            seed: 7,
            jobs,
            ..CampaignConfig::default()
        };
        Campaign::new(&internet.net, &internet.cp, internet.vps.clone(), cfg).run()
    };
    let a = run(1);
    let b = run(4);
    assert_eq!(a.probes, b.probes);
    assert_eq!(a.probes_by_vp, b.probes_by_vp);
    assert_eq!(a.trace_vps, b.trace_vps);
    assert_eq!(
        a.tunnels().count(),
        b.tunnels().count(),
        "revealed tunnel count must not depend on the worker count"
    );
}
