//! End-to-end campaign validation: everything the blind measurement
//! pipeline reveals is checked against simulator ground truth.

use wormhole::core::{Campaign, CampaignConfig};
use wormhole::net::PoppingMode;
use wormhole::topo::{generate, GroundTruth, InternetConfig};

fn quick_campaign() -> (wormhole::topo::Internet, wormhole::core::CampaignResult) {
    let internet = generate(&InternetConfig::small(23));
    let cfg = CampaignConfig {
        hdn_threshold: 6,
        ..CampaignConfig::default()
    };
    let campaign = Campaign::new(&internet.net, &internet.cp, internet.vps.clone(), cfg);
    let result = campaign.run();
    (internet, result)
}

#[test]
fn revealed_hops_are_real_hidden_routers() {
    let (internet, result) = quick_campaign();
    let gt = GroundTruth::new(&internet.net, &internet.cp);
    let mut verified = 0usize;
    for c in &result.candidates {
        let Some(t) = result
            .revelations
            .get(&(c.ingress, c.egress))
            .and_then(|o| o.tunnel())
        else {
            continue;
        };
        let (Some(ingress), Some(egress)) =
            (internet.net.owner(c.ingress), internet.net.owner(c.egress))
        else {
            panic!("candidate endpoints resolve");
        };
        // The true hidden routers between the pair, on the path the
        // observing VP's probe actually took.
        let vp = internet.vps[c.vp_index];
        let Some(hidden) = gt.hidden_hops(vp, c.target, ingress, egress, 0) else {
            continue; // pair not on this target's path for flow 0
        };
        let revealed: Vec<_> = t
            .hops()
            .iter()
            .map(|&a| internet.net.owner(a).expect("revealed addr exists"))
            .collect();
        // Under ECMP the revealed path can be a sibling equal-cost path;
        // lengths must agree, and when the sets match we count an exact
        // verification.
        assert_eq!(
            revealed.len(),
            hidden.len(),
            "revealed length must match ground truth for {} → {}",
            c.ingress,
            c.egress
        );
        if revealed == hidden {
            verified += 1;
        }
    }
    assert!(verified > 0, "at least some revelations verify exactly");
}

#[test]
fn revealed_hops_stay_inside_the_pair_as() {
    let (internet, result) = quick_campaign();
    for t in result.tunnels() {
        let asn = internet.net.owner_asn(t.ingress).unwrap();
        assert_eq!(internet.net.owner_asn(t.egress), Some(asn));
        for hop in t.hops() {
            assert_eq!(
                internet.net.owner_asn(hop),
                Some(asn),
                "LSR {hop} leaked outside {asn}"
            );
        }
    }
}

#[test]
fn no_false_revelations_on_direct_links() {
    // Every revealed pair must actually hide something: the pair's
    // routers must NOT be physically adjacent.
    let (internet, result) = quick_campaign();
    for t in result.tunnels() {
        let a = internet.net.owner(t.ingress).unwrap();
        let b = internet.net.owner(t.egress).unwrap();
        let adjacent = internet.net.router(a).neighbors().contains(&b);
        assert!(
            !adjacent,
            "pair {} → {} is physically adjacent yet was 'revealed'",
            t.ingress, t.egress
        );
    }
}

#[test]
fn uhp_personas_never_reveal() {
    let mut cfg = InternetConfig::small(29);
    // Make one persona UHP.
    cfg.personas[0].uhp = true;
    let internet = generate(&cfg);
    let asn = internet.personas[0].asn;
    let campaign = Campaign::new(
        &internet.net,
        &internet.cp,
        internet.vps.clone(),
        CampaignConfig {
            hdn_threshold: 6,
            ..CampaignConfig::default()
        },
    );
    let result = campaign.run();
    assert!(internet
        .net
        .as_members(asn)
        .iter()
        .all(|&r| internet.net.router(r).config.popping == PoppingMode::Uhp));
    for t in result.tunnels() {
        assert_ne!(
            internet.net.owner_asn(t.ingress),
            Some(asn),
            "UHP persona must be unrevealable"
        );
    }
}

#[test]
fn probing_budget_accounted() {
    let (_, result) = quick_campaign();
    assert!(result.probes > 1000, "campaign must actually probe");
    // Every revelation's extra probes are included.
    let extra: u64 = result.tunnels().map(|t| t.extra_probes).sum();
    assert!(extra > 0);
    assert!(extra < result.probes);
}

#[test]
fn campaign_is_deterministic() {
    let (_, a) = quick_campaign();
    let (_, b) = quick_campaign();
    assert_eq!(a.targets, b.targets);
    assert_eq!(a.candidates.len(), b.candidates.len());
    assert_eq!(a.probes, b.probes);
    assert_eq!(
        a.tunnels().count(),
        b.tunnels().count(),
        "same seed ⇒ same revelations"
    );
}
