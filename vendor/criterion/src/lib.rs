//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal harness: benchmark groups, `bench_function` /
//! `bench_with_input`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs its closure a small
//! fixed number of iterations and prints the mean wall-clock time —
//! enough for coarse regression spotting, with no statistics engine.
//! Under `cargo test` (cargo passes `--test` to `harness = false` bench
//! binaries) every benchmark body runs exactly once as a smoke test.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Identifier for a parameterised benchmark (`function_name/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Values usable as the id argument of `bench_function`.
pub trait IntoBenchmarkId {
    /// Convert into the printable id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Run `routine` for the configured number of iterations, timing it.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Set the number of iterations per benchmark (criterion's sample
    /// count maps directly onto iterations in this shim).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        let iters = if smoke_mode() { 1 } else { self.sample_size };
        self.criterion.run_one(&label, iters, |b| f(b));
        self
    }

    /// Run one benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        let iters = if smoke_mode() { 1 } else { self.sample_size };
        self.criterion.run_one(&label, iters, |b| f(b, input));
        self
    }

    /// Finish the group (no-op beyond matching criterion's API).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_id();
        let iters = if smoke_mode() { 1 } else { 20 };
        self.run_one(&label, iters, |b| f(b));
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, iters: u64, mut f: F) {
        let mut bencher = Bencher {
            iters,
            elapsed_ns: 0,
        };
        f(&mut bencher);
        if bencher.iters > 0 {
            let mean = bencher.elapsed_ns / u128::from(bencher.iters);
            println!("bench {label}: {mean} ns/iter ({iters} iters)");
        }
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_each_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("count", |b| b.iter(|| count += 1));
        // 3 iterations in bench mode, 1 in smoke mode; either way it ran.
        assert!(count >= 1);
        group.bench_with_input(BenchmarkId::new("with_input", 5), &5u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("lookup", 1024).into_id(), "lookup/1024");
    }
}
