//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal property-testing harness: the [`proptest!`] macro
//! runs each property over a fixed number of seeded random cases,
//! [`prop_assert!`]/[`prop_assert_eq!`] report failures with the case's
//! inputs, and [`strategy::Strategy`] covers the strategy forms the
//! tests use (integer ranges, `any::<T>()`, tuples, and
//! `collection::vec`). Shrinking is intentionally not implemented — on
//! failure the harness reports the concrete inputs of the failing case
//! instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;

/// Number of random cases each property is executed against.
pub const NUM_CASES: u32 = 64;

/// Strategies for generating inputs.
pub mod strategy {
    use core::marker::PhantomData;
    use core::ops::{Range, RangeInclusive};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.gen::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_int!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// Strategy returned by [`any`](super::any).
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.sample(rng),)*)
                }
            }
        };
    }
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// `Just`-style constant strategy.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

/// Strategy constructor for unconstrained values of `T`.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(core::marker::PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use core::ops::{Range, RangeInclusive};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Size specification accepted by [`vec`]: an exact length or a
    /// range of lengths.
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec<S::Value>` with a length drawn from the
    /// size range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Build a vector strategy from an element strategy and a size spec.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner types referenced by the macros.
pub mod test_runner {
    use super::{StdRng, NUM_CASES};
    use rand::SeedableRng;

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Result type for one property case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives a property over [`NUM_CASES`] seeded cases.
    pub struct TestRunner {
        rng: StdRng,
    }

    impl TestRunner {
        /// Runner with the fixed default seed (deterministic runs).
        pub fn deterministic() -> Self {
            TestRunner {
                rng: StdRng::seed_from_u64(0x5EED_CAFE),
            }
        }

        /// Number of cases this runner executes.
        pub fn cases(&self) -> u32 {
            NUM_CASES
        }

        /// Access the case-generation RNG.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }

    impl Default for TestRunner {
        fn default() -> Self {
            Self::deterministic()
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::strategy::{Arbitrary, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests. Each function body runs once per generated
/// case; `prop_assert*` failures abort the case with its inputs printed.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::default();
                for case in 0..runner.cases() {
                    $(let $arg = $crate::strategy::Strategy::sample(&$strat, runner.rng());)*
                    let inputs = format!(
                        concat!("{{ ", $(stringify!($arg), " = {:?}, ",)* "}}"),
                        $(&$arg),*
                    );
                    let outcome = (|| -> $crate::test_runner::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "property '{}' failed at case {}/{} with inputs {}: {}",
                            stringify!($name),
                            case + 1,
                            runner.cases(),
                            inputs,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 1u8..=255, y in -50i64..50, n in 1usize..7) {
            prop_assert!(x >= 1);
            prop_assert!((-50..50).contains(&y));
            prop_assert!((1..7).contains(&n));
        }

        #[test]
        fn vec_sizes_obey_spec(
            exact in crate::collection::vec(any::<u32>(), 32),
            ranged in crate::collection::vec((any::<u32>(), 0u8..=32), 1..64),
        ) {
            prop_assert_eq!(exact.len(), 32);
            prop_assert!(!ranged.is_empty() && ranged.len() < 64);
            for &(_, len) in &ranged {
                prop_assert!(len <= 32);
            }
        }
    }

    #[test]
    #[should_panic(expected = "property 'always_fails' failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            fn always_fails(x in 0u8..=255) {
                prop_assert!(u16::from(x) > 300, "x is only {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn tuple_and_just_strategies_sample() {
        let mut runner = crate::test_runner::TestRunner::default();
        let strat = (Just(7u8), 0u8..4, any::<bool>());
        for _ in 0..50 {
            let (a, b, _c) = strat.sample(runner.rng());
            assert_eq!(a, 7);
            assert!(b < 4);
        }
    }
}
