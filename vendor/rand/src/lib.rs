//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, dependency-free implementation: a SplitMix64
//! generator behind [`rngs::StdRng`], the [`Rng`] extension trait with
//! `gen`, `gen_range`, and `gen_bool`, and [`SeedableRng::seed_from_u64`].
//! Callers in this repo only rely on *statistical* properties of the
//! stream (loss injection rates, survey-prior sampling), never on the
//! exact values produced by upstream `rand`, so SplitMix64 — which passes
//! BigCrush — is a faithful substitute.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Produce the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` constructor is needed
/// in this workspace).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draw one value from the generator's uniform stream.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types usable with `Rng::gen_range`.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[low, high)`.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (low as i128 + v) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (low as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + f64::sample(rng) * (high - low)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_exclusive(rng, low, high)
    }
}

/// Range forms accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draw a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Extension trait mirroring the `rand::Rng` convenience API.
pub trait Rng: RngCore {
    /// Uniform draw of a [`Standard`] type (`rng.gen::<f64>()` is uniform
    /// in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a range, e.g. `rng.gen_range(0..n)` or
    /// `rng.gen_range(5..=12)`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 generator standing in for `rand::rngs::StdRng`.
    ///
    /// Deterministic for a given seed, with full 64-bit state avalanche
    /// per step; the workspace only depends on statistical uniformity,
    /// not on upstream's ChaCha stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10usize);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(5..=12usize);
            assert!((5..=12).contains(&w));
            let s = rng.gen_range(-4i64..5);
            assert!((-4..5).contains(&s));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
