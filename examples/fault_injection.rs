//! Fault injection: how loss and ICMP rate limiting degrade traces and
//! what scamper-style retries recover.
//!
//! ```sh
//! cargo run --example fault_injection
//! ```

use wormhole::net::FaultPlan;
use wormhole::probe::{Session, TracerouteOpts};
use wormhole::topo::{gns3_fig2, Fig2Config};

fn main() {
    let s = gns3_fig2(Fig2Config::Default);

    for (label, loss, icmp_loss, attempts) in [
        ("clean", 0.0, 0.0, 1),
        ("3% link loss, 1 attempt", 0.03, 0.0, 1),
        ("3% link loss, 4 attempts", 0.03, 0.0, 4),
        ("10% ICMP rate limiting", 0.0, 0.10, 2),
    ] {
        let mut complete = 0usize;
        let mut stars = 0usize;
        let mut probes = 0u64;
        let runs = 40;
        for seed in 0..runs {
            let mut sess = Session::with_faults(
                &s.net,
                &s.cp,
                s.vp,
                FaultPlan {
                    loss,
                    icmp_loss,
                    jitter_ms: 0.1,
                    ..FaultPlan::default()
                },
                seed,
            );
            sess.set_opts(TracerouteOpts {
                attempts,
                ..TracerouteOpts::default()
            });
            let t = sess.traceroute(s.target);
            if t.reached && t.responsive_count() == 7 {
                complete += 1;
            }
            stars += t.hops.iter().filter(|h| h.addr.is_none()).count();
            probes += sess.stats.probes;
        }
        println!("{label:<28} complete traces {complete}/{runs}   stars {stars}   probes {probes}");
    }
    println!("\nretries recover loss at the cost of extra probes — the trade the paper's scamper configuration makes");
}
