//! Runs the full §4 measurement campaign against a synthetic Internet
//! built from the paper's ten AS personas, then summarises what the
//! four techniques found.
//!
//! ```sh
//! cargo run --release --example internet_campaign            # full scale
//! WORMHOLE_SCALE=quick cargo run --example internet_campaign  # reduced
//! ```

use wormhole::core::RevealMethod;
use wormhole::experiments::{PaperContext, Scale};

fn main() {
    let scale = Scale::from_env();
    eprintln!("generating the synthetic Internet and running the campaign ({scale:?})…");
    let ctx = PaperContext::generate(scale);
    let net = &ctx.internet.net;

    println!("== Topology ==");
    println!(
        "  {} routers, {} links, {} ASes ({} transit personas, {} stubs), {} vantage points",
        net.num_routers(),
        net.num_links(),
        net.as_list().len(),
        ctx.internet.personas.len(),
        ctx.internet.stub_asns.len(),
        ctx.internet.vps.len()
    );

    println!("\n== Bootstrap snapshot (the 'CAIDA ITDK' stand-in) ==");
    println!(
        "  {} nodes, {} links; {} HDNs at degree ≥ {}",
        ctx.result.snapshot.num_nodes(),
        ctx.result.snapshot.num_links(),
        ctx.result.hdns.len(),
        ctx.config.hdn_threshold
    );

    println!("\n== Campaign ==");
    println!(
        "  {} targets probed, {} traces, {} probe packets \
         (≈{:.0} s of real probing at the paper's 25 pps)",
        ctx.result.targets.len(),
        ctx.result.traces.len(),
        ctx.result.probes,
        ctx.result.probes as f64 / 25.0
    );
    println!(
        "  {} candidate Ingress–Egress observations over {} unique pairs",
        ctx.result.candidates.len(),
        ctx.result.unique_pairs().len()
    );

    let mut by_method = [0usize; 4];
    let mut hidden_total = 0usize;
    for t in ctx.result.tunnels() {
        hidden_total += t.len();
        match t.method() {
            RevealMethod::Dpr => by_method[0] += 1,
            RevealMethod::Brpr => by_method[1] += 1,
            RevealMethod::Either => by_method[2] += 1,
            RevealMethod::Hybrid => by_method[3] += 1,
        }
    }
    println!("\n== Revelation ==");
    println!(
        "  {} invisible tunnels revealed ({} hidden router interfaces):",
        ctx.result.tunnels().count(),
        hidden_total
    );
    println!(
        "    DPR {}   BRPR {}   'DPR or BRPR' {}   hybrid {}",
        by_method[0], by_method[1], by_method[2], by_method[3]
    );

    println!("\n== Per persona ==");
    for row in wormhole::experiments::table4::rows(&ctx) {
        println!(
            "  {:<24} pairs {:>3}  revealed {:>3}  hidden IPs {:>3}  density {:.3} → {:.3}",
            format!("{} (AS{})", row.name, row.asn.0),
            row.ie_pairs,
            row.revealed_pairs,
            row.ips_lsrs,
            row.density_before,
            row.density_after
        );
    }
    println!("\nrun `cargo run --release -p wormhole-experiments --bin exp_all` for every table and figure");
}
