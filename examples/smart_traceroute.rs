//! The paper's §8 vision, working: a traceroute that uses FRPLA/RTLA as
//! triggers and DPR/BRPR to reveal invisible tunnels on the fly —
//! across every testbed configuration and a synthetic-Internet path.
//!
//! ```sh
//! cargo run --example smart_traceroute
//! ```

use wormhole::core::{smart_traceroute, SmartOpts, Trigger};
use wormhole::net::PoppingMode;
use wormhole::probe::{Session, TracerouteOpts};
use wormhole::topo::{generate, gns3_fig2, gns3_fig2_te, Fig2Config, InternetConfig};

fn show(title: &str, net: &wormhole::net::Network, t: &wormhole::core::SmartTrace) {
    println!("== {title} ==");
    for hop in &t.hops {
        let name = net
            .owner(hop.addr)
            .map(|r| net.router(r).name.clone())
            .unwrap_or_default();
        match hop.revealed_by {
            Some(Trigger::FrplaShift(n)) => {
                println!(
                    "  {:<14} {name}   ← revealed (FRPLA shift {n})",
                    hop.addr.to_string()
                )
            }
            Some(Trigger::RtlaGap(n)) => {
                println!(
                    "  {:<14} {name}   ← revealed (RTLA gap {n})",
                    hop.addr.to_string()
                )
            }
            None => println!("  {:<14} {name}", hop.addr.to_string()),
        }
    }
    for (addr, trig) in &t.unrevealed_triggers {
        println!("  ! {addr} triggered ({trig:?}) but nothing revealed — UHP suspect");
    }
    println!(
        "  ({} hops revealed, {} extra probes)\n",
        t.revealed_count(),
        t.extra_probes
    );
}

fn main() {
    // Testbed configurations.
    for (title, s) in [
        (
            "Cisco defaults, invisible (BRPR path)",
            gns3_fig2(Fig2Config::BackwardRecursive),
        ),
        (
            "Juniper-style, invisible (DPR path)",
            gns3_fig2(Fig2Config::ExplicitRoute),
        ),
        (
            "UHP — truly invisible",
            gns3_fig2(Fig2Config::TotallyInvisible),
        ),
        (
            "RSVP-TE + UHP — truly invisible",
            gns3_fig2_te(PoppingMode::Uhp, false),
        ),
    ] {
        let mut sess = Session::new(&s.net, &s.cp, s.vp);
        sess.set_opts(TracerouteOpts::default());
        let net = &s.net;
        let t = smart_traceroute(
            &mut sess,
            s.target,
            |a| net.owner_asn(a),
            &SmartOpts::default(),
        );
        show(title, &s.net, &t);
    }

    // One long path across the synthetic Internet.
    let internet = generate(&InternetConfig::small(3));
    let vp = internet.vps[0];
    let target = internet
        .net
        .as_members(internet.personas[1].asn)
        .last()
        .map(|&r| internet.net.router(r).loopback)
        .expect("persona has routers");
    let mut sess = Session::new(&internet.net, &internet.cp, vp);
    sess.set_opts(TracerouteOpts::default());
    let net = &internet.net;
    let t = smart_traceroute(
        &mut sess,
        target,
        |a| net.owner_asn(a),
        &SmartOpts::default(),
    );
    show("synthetic Internet crossing", &internet.net, &t);
}
