//! Router fingerprinting and RTLA, hands-on: infer Table 1 signatures
//! by probing, then use the `<255, 64>` gap to measure a return tunnel.
//!
//! ```sh
//! cargo run --example fingerprinting
//! ```

use wormhole::core::{infer_initial_ttl, return_tunnel_length, Signature};
use wormhole::experiments::table1::fingerprint_vendor;
use wormhole::net::Vendor;
use wormhole::probe::{Session, TracerouteOpts};
use wormhole::topo::{gns3_fig2_with, Fig2Config, Fig2Opts};

fn main() {
    println!("== Table 1 signatures, inferred by probing ==\n");
    println!("{:<16} {:>10} {:>10}", "vendor", "expected", "measured");
    for vendor in Vendor::ALL {
        let expected = vendor.signature();
        let measured = fingerprint_vendor(vendor);
        println!(
            "{:<16} {:>10} {:>10}",
            vendor.to_string(),
            format!("<{},{}>", expected.0, expected.1),
            format!("<{},{}>", measured.0, measured.1)
        );
    }

    println!("\n== RTLA on a Juniper egress LER ==\n");
    // Juniper LERs, invisible tunnels.
    let s = gns3_fig2_with(Fig2Opts::preset_juniper_ler(Fig2Config::BackwardRecursive));
    let mut sess = Session::new(&s.net, &s.cp, s.vp);
    sess.set_opts(TracerouteOpts::default());
    let trace = sess.traceroute(s.target);
    let egress = s.left_addr("PE2");
    let te = trace
        .hop_of(egress)
        .and_then(|h| h.reply_ip_ttl)
        .expect("egress answered");
    let er = sess.ping(egress).reply.expect("egress pings").reply_ip_ttl;
    println!(
        "time-exceeded observed TTL: {te}  (initial {})",
        infer_initial_ttl(te)
    );
    println!(
        "echo-reply    observed TTL: {er}  (initial {})",
        infer_initial_ttl(er)
    );
    let sig = Signature {
        te: Some(infer_initial_ttl(te)),
        er: Some(infer_initial_ttl(er)),
    };
    let rtl = return_tunnel_length(sig, te, er).expect("<255,64> signature");
    println!("\ngap = (255 − {te}) − (64 − {er}) = {rtl} → the return LSP hides {rtl} LSRs");
    println!("(the testbed's tunnel really is {rtl} LSRs long: P1, P2, P3)");
    assert_eq!(rtl, 3);
}
