//! Quickstart: trace through an invisible MPLS tunnel, notice that the
//! LSRs are missing, and reveal them.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use wormhole::core::{reveal_between, rfa_of_hop, RevealOpts};
use wormhole::probe::{Session, TracerouteOpts};
use wormhole::topo::{gns3_fig2, Fig2Config};

fn main() {
    // The paper's Fig. 2 testbed: AS2 runs MPLS/LDP over
    // PE1 - P1 - P2 - P3 - PE2 with `no mpls ip propagate-ttl`.
    let s = gns3_fig2(Fig2Config::BackwardRecursive);
    let mut sess = Session::new(&s.net, &s.cp, s.vp);
    sess.set_opts(TracerouteOpts::default());

    println!("== Traceroute towards CE2 (the tunnel is invisible) ==\n");
    let trace = sess.traceroute(s.target);
    println!("{trace}");
    println!(
        "The trace shows {} hops; the real path has 7 routers — the\n\
         three LSRs vanished behind the PE1→PE2 \"link\".\n",
        trace.responsive_count()
    );

    // FRPLA hint: the egress's reply TTL says the return path is longer
    // than the forward one.
    let egress = s.left_addr("PE2");
    let hop = trace.hop_of(egress).expect("egress visible");
    let rfa = rfa_of_hop(hop).expect("reply TTL present");
    println!(
        "FRPLA at the egress: forward {} hops, return {} hops → shift of {}\n\
         (≈ the hidden tunnel length).\n",
        rfa.forward_len, rfa.return_len, rfa.rfa
    );

    // Reveal the content with the BRPR/DPR recursion.
    println!("== Revealing the hidden hops ==\n");
    let out = reveal_between(
        &mut sess,
        s.left_addr("PE1"),
        egress,
        s.target,
        &RevealOpts::default(),
    );
    let tunnel = out.tunnel().expect("revelation succeeds here");
    println!(
        "revealed {} hidden hops via {:?} using {} extra probes:",
        tunnel.len(),
        tunnel.method(),
        tunnel.extra_probes
    );
    for (i, hop) in tunnel.hops().iter().enumerate() {
        let name = s
            .net
            .owner(*hop)
            .map(|r| s.net.router(r).name.clone())
            .unwrap_or_default();
        println!("  {}. {hop}  ({name})", i + 1);
    }
}
