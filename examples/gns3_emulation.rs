//! Reproduces the paper's §3.3 GNS3 emulation: the four MPLS
//! configurations of the Fig. 2 testbed and their paris-traceroute
//! listings (Fig. 4), bracketed return TTLs included.
//!
//! ```sh
//! cargo run --example gns3_emulation
//! ```

use wormhole::experiments::fig4;
use wormhole::topo::Fig2Config;

fn main() {
    for config in Fig2Config::ALL {
        println!("==== {} configuration ====\n", config.name());
        let (s, traces) = fig4::traces_for(config);
        for trace in traces {
            for line in trace.to_string().lines() {
                // Annotate hop lines with the router name, mimicking the
                // paper's "Pi.left" notation.
                let name = line
                    .split_whitespace()
                    .nth(1)
                    .and_then(|tok| tok.parse::<wormhole::net::Addr>().ok())
                    .and_then(|addr| s.net.owner(addr))
                    .map(|r| s.net.router(r).name.clone());
                match name {
                    Some(name) => println!("{line:<28} # {name}"),
                    None => println!("{line}"),
                }
            }
            println!();
        }
    }
    println!("(every listing above matches the paper's Fig. 4, return TTLs included)");
}
