//! Trace records: what a measurement host observes.

use std::fmt;
use wormhole_net::{Addr, DropReason, Lse, ReplyKind, RouterId};

/// What ultimately happened at a hop — the typed replacement for the
/// bare `*`. A real prober cannot always tell these apart, but scamper
/// distinguishes at least rate-limited silence (late/absent ICMP under
/// load) from dead paths, and the campaign's graceful-degradation
/// accounting needs the distinction.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum HopOutcome {
    /// A reply arrived.
    Replied,
    /// Every attempt died to a (configured or persistently) silent
    /// router.
    Silent,
    /// Every attempt was suppressed by ICMP rate limiting.
    RateLimited,
    /// No route towards the destination and no unreachable came back.
    Unreachable,
    /// Probes or replies were lost in transit (loss, flaps, loops).
    Lost,
    /// The per-trace probe budget ran out before this hop could be
    /// (re)tried.
    BudgetExhausted,
}

impl HopOutcome {
    /// Classifies a terminal [`DropReason`] (the *last* failure of the
    /// hop's retry loop decides the outcome).
    pub fn from_drop(reason: DropReason) -> HopOutcome {
        match reason {
            DropReason::Silent => HopOutcome::Silent,
            DropReason::IcmpSuppressed | DropReason::RateLimited => HopOutcome::RateLimited,
            DropReason::NoRoute => HopOutcome::Unreachable,
            _ => HopOutcome::Lost,
        }
    }
}

/// One traceroute hop.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceHop {
    /// The probe TTL that elicited this hop.
    pub ttl: u8,
    /// The replying address (`None` ⇒ `*`).
    pub addr: Option<Addr>,
    /// The reply's IP-TTL as received — the paper's bracketed value,
    /// input to FRPLA/RTLA.
    pub reply_ip_ttl: Option<u8>,
    /// Round-trip time, when a reply arrived.
    pub rtt_ms: Option<f64>,
    /// RFC 4950 quoted label stack entries.
    pub labels: Vec<Lse>,
    /// What kind of reply arrived.
    pub kind: Option<ReplyKind>,
    /// What happened at this hop (typed star/rate-limited/unreachable
    /// instead of a bare `None`).
    pub outcome: HopOutcome,
    /// Probe attempts spent on this hop.
    pub attempts: u8,
    /// Simulator instrumentation: the true router behind `addr`. Never
    /// consulted by measurement code; used by validation and tests.
    pub truth: Option<RouterId>,
}

impl TraceHop {
    /// A non-responding hop (`*`).
    pub fn star(ttl: u8) -> TraceHop {
        TraceHop {
            ttl,
            addr: None,
            reply_ip_ttl: None,
            rtt_ms: None,
            labels: Vec::new(),
            kind: None,
            outcome: HopOutcome::Lost,
            attempts: 0,
            truth: None,
        }
    }

    /// True when the hop carries at least one quoted MPLS label.
    pub fn is_labeled(&self) -> bool {
        !self.labels.is_empty()
    }
}

/// A complete traceroute.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Probe source address (the vantage point).
    pub src: Addr,
    /// Probe destination.
    pub dst: Addr,
    /// The Paris flow identifier (constant across the trace).
    pub flow: u16,
    /// Hops in TTL order, starting at the configured start TTL.
    pub hops: Vec<TraceHop>,
    /// True when an echo-reply from `dst` terminated the trace.
    pub reached: bool,
    /// Probe packets this trace spent.
    pub probes: u32,
    /// True when the per-trace probe budget cut the trace short.
    pub truncated: bool,
}

impl Trace {
    /// The last hop that produced a reply.
    pub fn last_responsive(&self) -> Option<&TraceHop> {
        self.hops.iter().rev().find(|h| h.addr.is_some())
    }

    /// The last `n` responsive hops, oldest first (the campaign looks at
    /// the final `X, Y, D` triple, §4).
    pub fn last_responsive_n(&self, n: usize) -> Vec<&TraceHop> {
        let mut out: Vec<&TraceHop> = self
            .hops
            .iter()
            .rev()
            .filter(|h| h.addr.is_some())
            .take(n)
            .collect();
        out.reverse();
        out
    }

    /// The hop that answered with `addr`, if any.
    pub fn hop_of(&self, addr: Addr) -> Option<&TraceHop> {
        self.hops.iter().find(|h| h.addr == Some(addr))
    }

    /// The address sequence (with `None` for stars) for graph building.
    pub fn addr_path(&self) -> Vec<Option<Addr>> {
        self.hops.iter().map(|h| h.addr).collect()
    }

    /// True when any hop quotes MPLS labels (an *explicit* tunnel).
    pub fn has_labels(&self) -> bool {
        self.hops.iter().any(TraceHop::is_labeled)
    }

    /// Number of responsive hops.
    pub fn responsive_count(&self) -> usize {
        self.hops.iter().filter(|h| h.addr.is_some()).count()
    }

    /// Number of responsive hops whose address already appeared at an
    /// earlier TTL of this trace. Deterministic per-flow forwarding
    /// never revisits a router, so a non-zero count is positive evidence
    /// of a forged loop/cycle artifact (a non-Paris load balancer
    /// forking the per-probe path; Viger et al.).
    pub fn revisits(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        self.hops
            .iter()
            .filter_map(|h| h.addr)
            .filter(|&a| !seen.insert(a))
            .count()
    }

    /// Number of non-responsive hops (`*`).
    pub fn stars(&self) -> usize {
        self.hops.len() - self.responsive_count()
    }
}

impl fmt::Display for Trace {
    /// Paris-traceroute-style rendering, matching the paper's Fig. 4
    /// listings: `hop addr [return-ttl]` and quoted `MPLS Label n TTL=t`
    /// continuation lines.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "$pt {}", self.dst)?;
        for hop in &self.hops {
            match hop.addr {
                Some(addr) => {
                    write!(f, "{:>2}  {}", hop.ttl, addr)?;
                    if let Some(ttl) = hop.reply_ip_ttl {
                        write!(f, " [{ttl}]")?;
                    }
                    writeln!(f)?;
                    for lse in &hop.labels {
                        writeln!(f, "      {lse}")?;
                    }
                }
                None => writeln!(f, "{:>2}  *", hop.ttl)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_net::{Label, Lse};

    fn hop(ttl: u8, last_octet: u8) -> TraceHop {
        TraceHop {
            ttl,
            addr: Some(Addr::new(10, 0, 0, last_octet)),
            reply_ip_ttl: Some(250),
            rtt_ms: Some(3.5),
            labels: Vec::new(),
            kind: Some(ReplyKind::TimeExceeded),
            outcome: HopOutcome::Replied,
            attempts: 1,
            truth: None,
        }
    }

    fn sample() -> Trace {
        Trace {
            src: Addr::new(10, 9, 0, 1),
            dst: Addr::new(10, 0, 0, 9),
            flow: 3,
            hops: vec![hop(1, 1), TraceHop::star(2), hop(3, 3)],
            reached: false,
            probes: 4,
            truncated: false,
        }
    }

    #[test]
    fn last_responsive_skips_stars() {
        let t = sample();
        assert_eq!(t.last_responsive().unwrap().ttl, 3);
        assert_eq!(t.responsive_count(), 2);
        let last2 = t.last_responsive_n(2);
        assert_eq!(last2.len(), 2);
        assert_eq!(last2[0].ttl, 1);
        assert_eq!(last2[1].ttl, 3);
    }

    #[test]
    fn addr_path_keeps_stars() {
        let t = sample();
        let p = t.addr_path();
        assert_eq!(p.len(), 3);
        assert!(p[1].is_none());
    }

    #[test]
    fn display_is_paris_style() {
        let mut t = sample();
        t.hops[0].labels.push(Lse::new(Label(19), 1));
        let s = t.to_string();
        assert!(s.contains("$pt 10.0.0.9"));
        assert!(s.contains("10.0.0.1 [250]"));
        assert!(s.contains("MPLS Label 19 TTL=1"));
        assert!(s.contains(" 2  *"));
        assert!(t.has_labels());
    }

    #[test]
    fn hop_of_finds_address() {
        let t = sample();
        assert!(t.hop_of(Addr::new(10, 0, 0, 3)).is_some());
        assert!(t.hop_of(Addr::new(10, 0, 0, 99)).is_none());
    }

    #[test]
    fn revisits_counts_forged_loops() {
        let mut t = sample();
        assert_eq!(t.revisits(), 0);
        assert_eq!(t.stars(), 1);
        // The TTL-1 router "reappears" at TTL 4 — a loop artifact.
        t.hops.push(hop(4, 1));
        assert_eq!(t.revisits(), 1);
        t.hops.push(hop(5, 1));
        assert_eq!(t.revisits(), 2);
    }
}
