//! Echo-request probing (ping), used for router fingerprinting.
//!
//! RTLA and the Table 1 signatures need, for each discovered address,
//! the initial TTL of its *echo-reply* in addition to the
//! *time-exceeded* TTL traceroute already observed (§2.3).

use wormhole_net::{Addr, Engine, Packet, ReplyKind, RouterId, SendOutcome};

/// The observation from a successful ping.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PingResult {
    /// Replying address.
    pub from: Addr,
    /// The echo-reply's IP-TTL as received at the vantage point.
    pub reply_ip_ttl: u8,
    /// Round-trip time in milliseconds.
    pub rtt_ms: f64,
}

/// Pings `dst` from `vp`, retrying up to `attempts` times.
pub fn ping(
    eng: &mut Engine<'_>,
    vp: RouterId,
    src: Addr,
    dst: Addr,
    flow: u16,
    id: u16,
    attempts: u8,
) -> Option<PingResult> {
    for seq in 0..attempts.max(1) as u16 {
        let probe = Packet::echo_request(src, dst, 64, flow, id, seq);
        if let SendOutcome::Reply(r) = eng.send(vp, probe) {
            if r.kind == ReplyKind::EchoReply {
                return Some(PingResult {
                    from: r.from,
                    reply_ip_ttl: r.ip_ttl,
                    rtt_ms: r.rtt_ms,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_net::FaultPlan;
    use wormhole_topo::{gns3_fig2, gns3_fig2_with, Fig2Config, Fig2Opts};

    #[test]
    fn ping_returns_reply_ttl() {
        let s = gns3_fig2(Fig2Config::Default);
        let mut eng = Engine::new(&s.net, &s.cp);
        let src = s.net.router(s.vp).loopback;
        let r = ping(&mut eng, s.vp, src, s.target, 1, 7, 2).unwrap();
        assert_eq!(r.from, s.target);
        assert!(r.rtt_ms > 0.0);
    }

    #[test]
    fn juniper_echo_reply_is_64_based() {
        // Juniper LERs: echo-reply initial TTL 64 → observed well below
        // the 255-based time-exceeded values.
        let s = gns3_fig2_with(Fig2Opts::preset_juniper_ler(Fig2Config::BackwardRecursive));
        let mut eng = Engine::new(&s.net, &s.cp);
        let src = s.net.router(s.vp).loopback;
        let pe2_left = s.left_addr("PE2");
        let r = ping(&mut eng, s.vp, src, pe2_left, 1, 7, 2).unwrap();
        assert!(r.reply_ip_ttl <= 64, "got {}", r.reply_ip_ttl);
        assert!(r.reply_ip_ttl > 48);
    }

    #[test]
    fn ping_gives_up_on_full_loss() {
        let s = gns3_fig2(Fig2Config::Default);
        let mut eng = Engine::with_faults(&s.net, &s.cp, FaultPlan::with_loss(1.0), 3);
        let src = s.net.router(s.vp).loopback;
        assert!(ping(&mut eng, s.vp, src, s.target, 1, 7, 3).is_none());
    }
}
