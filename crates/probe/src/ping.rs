//! Echo-request probing (ping), used for router fingerprinting.
//!
//! RTLA and the Table 1 signatures need, for each discovered address,
//! the initial TTL of its *echo-reply* in addition to the
//! *time-exceeded* TTL traceroute already observed (§2.3).
//!
//! A failed ping is not just a missing value: the campaign's
//! degradation accounting wants to know *how* it failed (rate limited
//! vs. silent vs. lost) and how many probes it burned, so [`ping`]
//! always returns a [`PingResult`] carrying attempts-used and the last
//! failure kind.

use crate::trace::HopOutcome;
use wormhole_net::{Addr, DropReason, Engine, Packet, ReplyKind, RouterId, SendOutcome};

/// Why the last unsuccessful ping attempt failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PingFailure {
    /// Echo-reply (or the probe's ICMP) suppressed by rate limiting.
    RateLimited,
    /// The target is configured (or persistently faulted) silent.
    Silent,
    /// No route, or an error reply came back instead of an echo-reply.
    Unreachable,
    /// Probe or reply lost in transit.
    Lost,
}

impl PingFailure {
    fn from_drop(reason: DropReason) -> PingFailure {
        match HopOutcome::from_drop(reason) {
            HopOutcome::RateLimited => PingFailure::RateLimited,
            HopOutcome::Silent => PingFailure::Silent,
            HopOutcome::Unreachable => PingFailure::Unreachable,
            _ => PingFailure::Lost,
        }
    }
}

/// The observation from a successful ping.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PingReply {
    /// Replying address.
    pub from: Addr,
    /// The echo-reply's IP-TTL as received at the vantage point.
    pub reply_ip_ttl: u8,
    /// Round-trip time in milliseconds.
    pub rtt_ms: f64,
}

/// The full outcome of a ping: the reply when one arrived, plus
/// probe-accounting either way.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PingResult {
    /// The reply, when any attempt succeeded.
    pub reply: Option<PingReply>,
    /// Probe attempts actually sent.
    pub attempts: u8,
    /// The last attempt's failure kind, when no reply arrived (also set
    /// when earlier attempts failed before one succeeded).
    pub last_failure: Option<PingFailure>,
}

impl PingResult {
    /// An empty result (no probes sent) — the merge default for work
    /// lost to a degraded shard.
    pub fn empty() -> PingResult {
        PingResult {
            reply: None,
            attempts: 0,
            last_failure: None,
        }
    }

    /// The echo-reply's IP-TTL, when a reply arrived.
    pub fn reply_ip_ttl(&self) -> Option<u8> {
        self.reply.map(|r| r.reply_ip_ttl)
    }

    /// True when a reply arrived.
    pub fn is_reply(&self) -> bool {
        self.reply.is_some()
    }
}

/// A resumable ping: the retry loop as an explicit state machine with
/// at most one outstanding probe, shared by the scalar [`ping`] driver
/// and the batched session walk.
#[derive(Clone, Copy, Debug)]
pub struct PingMachine {
    src: Addr,
    dst: Addr,
    flow: u16,
    id: u16,
    max_attempts: u8,
    result: PingResult,
    done: bool,
}

impl PingMachine {
    /// A machine that will ping `dst` up to `attempts` times.
    pub fn new(src: Addr, dst: Addr, flow: u16, id: u16, attempts: u8) -> PingMachine {
        PingMachine {
            src,
            dst,
            flow,
            id,
            max_attempts: attempts.max(1),
            result: PingResult::empty(),
            done: false,
        }
    }

    /// The next probe to send, or `None` when the ping is complete.
    /// Every returned packet must be answered with
    /// [`PingMachine::on_outcome`] before asking for the next one.
    pub fn next_request(&mut self) -> Option<Packet> {
        if self.done || self.result.attempts >= self.max_attempts {
            self.done = true;
            return None;
        }
        let seq = u16::from(self.result.attempts);
        self.result.attempts += 1;
        Some(Packet::echo_request(
            self.src, self.dst, 64, self.flow, self.id, seq,
        ))
    }

    /// Feeds the outcome of the last requested probe back into the
    /// machine.
    pub fn on_outcome(&mut self, out: &SendOutcome) {
        if self.done {
            return;
        }
        match out {
            SendOutcome::Reply(r) if r.kind == ReplyKind::EchoReply => {
                self.result.reply = Some(PingReply {
                    from: r.from,
                    reply_ip_ttl: r.ip_ttl,
                    rtt_ms: r.rtt_ms,
                });
                self.done = true;
            }
            SendOutcome::Reply(_) => {
                // An error reply (unreachable) instead of an echo-reply.
                self.result.last_failure = Some(PingFailure::Unreachable);
            }
            SendOutcome::Lost { reason, .. } => {
                self.result.last_failure = Some(PingFailure::from_drop(*reason));
            }
        }
    }

    /// Whether the ping is complete.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Consumes the machine into its [`PingResult`].
    pub fn finish(self) -> PingResult {
        self.result
    }
}

/// Pings `dst` from `vp`, retrying up to `attempts` times. The scalar
/// driver over [`PingMachine`].
pub fn ping(
    eng: &mut Engine<'_>,
    vp: RouterId,
    src: Addr,
    dst: Addr,
    flow: u16,
    id: u16,
    attempts: u8,
) -> PingResult {
    let mut m = PingMachine::new(src, dst, flow, id, attempts);
    while let Some(probe) = m.next_request() {
        let out = eng.send(vp, probe);
        m.on_outcome(&out);
    }
    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_net::FaultPlan;
    use wormhole_topo::{gns3_fig2, gns3_fig2_with, Fig2Config, Fig2Opts};

    #[test]
    fn ping_returns_reply_ttl() {
        let s = gns3_fig2(Fig2Config::Default);
        let mut eng = Engine::new(&s.net, &s.cp);
        let src = s.net.router(s.vp).loopback;
        let out = ping(&mut eng, s.vp, src, s.target, 1, 7, 2);
        let r = out.reply.unwrap();
        assert_eq!(r.from, s.target);
        assert!(r.rtt_ms > 0.0);
        assert_eq!(out.attempts, 1);
        assert_eq!(out.last_failure, None);
    }

    #[test]
    fn juniper_echo_reply_is_64_based() {
        // Juniper LERs: echo-reply initial TTL 64 → observed well below
        // the 255-based time-exceeded values.
        let s = gns3_fig2_with(Fig2Opts::preset_juniper_ler(Fig2Config::BackwardRecursive));
        let mut eng = Engine::new(&s.net, &s.cp);
        let src = s.net.router(s.vp).loopback;
        let pe2_left = s.left_addr("PE2");
        let r = ping(&mut eng, s.vp, src, pe2_left, 1, 7, 2).reply.unwrap();
        assert!(r.reply_ip_ttl <= 64, "got {}", r.reply_ip_ttl);
        assert!(r.reply_ip_ttl > 48);
    }

    #[test]
    fn ping_gives_up_on_full_loss_with_accounting() {
        let s = gns3_fig2(Fig2Config::Default);
        let mut eng = Engine::with_faults(&s.net, &s.cp, FaultPlan::with_loss(1.0).unwrap(), 3);
        let src = s.net.router(s.vp).loopback;
        let out = ping(&mut eng, s.vp, src, s.target, 1, 7, 3);
        assert!(out.reply.is_none());
        assert_eq!(out.attempts, 3);
        assert_eq!(out.last_failure, Some(PingFailure::Lost));
    }

    #[test]
    fn unreachable_target_reports_failure_kind() {
        let s = gns3_fig2(Fig2Config::Default);
        let mut eng = Engine::new(&s.net, &s.cp);
        let src = s.net.router(s.vp).loopback;
        let out = ping(&mut eng, s.vp, src, Addr::new(9, 9, 9, 9), 1, 7, 2);
        assert!(out.reply.is_none());
        assert_eq!(out.last_failure, Some(PingFailure::Unreachable));
    }
}
