//! `wormhole-probe`: the measurement tool layer (scamper stand-in).
//!
//! * [`traceroute`] — ICMP-echo Paris traceroute with retries, gap
//!   limits, and the paper's start-at-TTL-2 campaign preset;
//! * [`ping`] — echo-request probing for TTL fingerprinting;
//! * [`multipath`] — ECMP branch enumeration by flow sweeping (MDA);
//! * [`trace`] — trace/hop records, rendered in the paper's Fig. 4
//!   listing style;
//! * [`session`] — per-vantage-point sessions with probe budget
//!   accounting;
//! * [`sink`] — streaming consumers of completed traces
//!   ([`TraceSink`], the shared JSONL emitter).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod multipath;
pub mod ping;
pub mod session;
pub mod sink;
pub mod trace;
pub mod traceroute;
pub mod wire;

pub use multipath::{enumerate_paths, MultipathResult};
pub use ping::{ping, PingFailure, PingMachine, PingReply, PingResult};
pub use session::{Session, SessionStats};
pub use sink::{stats_delta, stats_jsonl, trace_jsonl, JsonlSink, NullSink, TraceSink};
pub use trace::{HopOutcome, Trace, TraceHop};
pub use traceroute::{traceroute, ProbeRequest, TraceMachine, TracerouteOpts};
