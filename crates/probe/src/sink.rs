//! Streaming consumers of completed traces.
//!
//! A [`TraceSink`] receives traces one at a time as probing completes
//! them, so consumers (a JSONL emitter, a serving socket, an
//! incremental aggregator) never need a whole phase buffered in front
//! of them. [`crate::Session`] drives an attached sink directly —
//! scalar traceroutes emit on completion, batched traceroutes emit a
//! batch's traces in input order as each batch drains — and the
//! campaign layer drives one with merged traces in global order, which
//! is how the batch CLI's `--emit jsonl` mode and `wormhole-serve`
//! share a single emission path.

use crate::trace::{HopOutcome, Trace};
use std::io::Write;
use wormhole_net::{EngineStats, ReplyKind};

/// A consumer of completed traces and engine-counter deltas.
///
/// `vp` is caller-defined attribution (the campaign passes the
/// vantage-point index; sessions pass the tag given to
/// [`crate::Session::set_sink`]).
pub trait TraceSink {
    /// One completed trace.
    fn on_trace(&mut self, vp: usize, trace: &Trace);

    /// Engine counters accumulated since the previous `on_stats` call
    /// (per trace for scalar probing, per batch for batched probing,
    /// per phase at the campaign level).
    fn on_stats(&mut self, delta: &EngineStats) {
        let _ = delta;
    }

    /// A phase boundary marker (campaign-level sinks only).
    fn on_phase(&mut self, phase: &str) {
        let _ = phase;
    }
}

/// The do-nothing sink: `Campaign::run` streams into this.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn on_trace(&mut self, _vp: usize, _trace: &Trace) {}
}

/// The difference between two cumulative counter snapshots (all fields
/// are monotone counters, so `after - before` is well-defined).
pub fn stats_delta(before: &EngineStats, after: &EngineStats) -> EngineStats {
    EngineStats {
        probes: after.probes - before.probes,
        crossings: after.crossings - before.crossings,
        replies: after.replies - before.replies,
        lost: after.lost - before.lost,
        heap_allocs: after.heap_allocs - before.heap_allocs,
    }
}

/// Streams traces as JSON Lines: one self-contained JSON object per
/// line, hand-rendered with a fixed field order so the same campaign
/// emits byte-identical streams from the CLI and from `wormhole-serve`.
pub struct JsonlSink<W: Write> {
    out: W,
    emit_stats: bool,
}

impl<W: Write> JsonlSink<W> {
    /// A sink writing trace lines to `out`.
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink {
            out,
            emit_stats: false,
        }
    }

    /// Also emit `{"type":"stats",...}` delta lines and
    /// `{"type":"phase",...}` markers.
    pub fn with_stats(mut self) -> JsonlSink<W> {
        self.emit_stats = true;
        self
    }

    /// Unwraps the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn on_trace(&mut self, vp: usize, trace: &Trace) {
        let _ = writeln!(self.out, "{}", trace_jsonl(vp, trace));
    }

    fn on_stats(&mut self, delta: &EngineStats) {
        if self.emit_stats {
            let _ = writeln!(self.out, "{}", stats_jsonl(delta));
        }
    }

    fn on_phase(&mut self, phase: &str) {
        if self.emit_stats {
            let _ = writeln!(self.out, "{{\"type\":\"phase\",\"phase\":\"{phase}\"}}");
        }
    }
}

fn kind_label(kind: ReplyKind) -> &'static str {
    match kind {
        ReplyKind::EchoReply => "echo-reply",
        ReplyKind::TimeExceeded => "time-exceeded",
        ReplyKind::DestUnreachable => "unreachable",
    }
}

fn outcome_label(outcome: HopOutcome) -> &'static str {
    match outcome {
        HopOutcome::Replied => "replied",
        HopOutcome::Silent => "silent",
        HopOutcome::RateLimited => "rate-limited",
        HopOutcome::Unreachable => "unreachable",
        HopOutcome::Lost => "lost",
        HopOutcome::BudgetExhausted => "budget-exhausted",
    }
}

/// Renders one trace as a single JSON line (no trailing newline).
/// Every value is either numeric, boolean, or a string with no
/// escapable characters (dotted-quad addresses, fixed enum labels), so
/// no escaping pass is needed — asserted in tests.
pub fn trace_jsonl(vp: usize, t: &Trace) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(128 + t.hops.len() * 96);
    let _ = write!(
        s,
        "{{\"type\":\"trace\",\"vp\":{vp},\"src\":\"{}\",\"dst\":\"{}\",\"flow\":{},\
         \"reached\":{},\"probes\":{},\"truncated\":{},\"hops\":[",
        t.src, t.dst, t.flow, t.reached, t.probes, t.truncated
    );
    for (i, h) in t.hops.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{{\"ttl\":{}", h.ttl);
        if let Some(a) = h.addr {
            let _ = write!(s, ",\"addr\":\"{a}\"");
        }
        if let Some(ttl) = h.reply_ip_ttl {
            let _ = write!(s, ",\"reply_ttl\":{ttl}");
        }
        if let Some(rtt) = h.rtt_ms {
            let _ = write!(s, ",\"rtt_ms\":{rtt:.6}");
        }
        if let Some(kind) = h.kind {
            let _ = write!(s, ",\"kind\":\"{}\"", kind_label(kind));
        }
        if !h.labels.is_empty() {
            s.push_str(",\"labels\":[");
            for (k, lse) in h.labels.iter().enumerate() {
                if k > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{lse}\"");
            }
            s.push(']');
        }
        let _ = write!(
            s,
            ",\"outcome\":\"{}\",\"attempts\":{}}}",
            outcome_label(h.outcome),
            h.attempts
        );
    }
    s.push_str("]}");
    s
}

/// Renders an engine-counter delta as a single JSON line.
pub fn stats_jsonl(d: &EngineStats) -> String {
    format!(
        "{{\"type\":\"stats\",\"probes\":{},\"crossings\":{},\"replies\":{},\"lost\":{},\
         \"heap_allocs\":{}}}",
        d.probes, d.crossings, d.replies, d.lost, d.heap_allocs
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceHop;
    use wormhole_net::{Addr, Label, Lse};

    fn sample() -> Trace {
        let mut replied = TraceHop {
            ttl: 2,
            addr: Some(Addr::new(10, 0, 0, 1)),
            reply_ip_ttl: Some(253),
            rtt_ms: Some(1.25),
            labels: vec![Lse::new(Label(19), 1)],
            kind: Some(ReplyKind::TimeExceeded),
            outcome: HopOutcome::Replied,
            attempts: 1,
            truth: None,
        };
        replied.labels.push(Lse::new(Label(20), 2));
        Trace {
            src: Addr::new(10, 9, 0, 1),
            dst: Addr::new(10, 0, 0, 9),
            flow: 7,
            hops: vec![replied, TraceHop::star(3)],
            reached: false,
            probes: 4,
            truncated: false,
        }
    }

    #[test]
    fn trace_line_shape() {
        let line = trace_jsonl(3, &sample());
        assert!(line.starts_with("{\"type\":\"trace\",\"vp\":3,"));
        assert!(line.contains("\"dst\":\"10.0.0.9\""));
        assert!(line.contains("\"rtt_ms\":1.250000"));
        assert!(line.contains("\"kind\":\"time-exceeded\""));
        assert!(line.contains("\"outcome\":\"lost\""));
        assert!(line.ends_with("]}"));
        assert!(!line.contains('\n'));
        // No value needs JSON escaping: addresses are dotted quads and
        // enum labels are fixed — the whole line must stay escape-free.
        assert!(!line.contains('\\'));
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let mut sink = JsonlSink::new(Vec::new()).with_stats();
        sink.on_phase("probe");
        sink.on_trace(0, &sample());
        sink.on_stats(&EngineStats {
            probes: 4,
            crossings: 9,
            replies: 3,
            lost: 1,
            heap_allocs: 0,
        });
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "{\"type\":\"phase\",\"phase\":\"probe\"}");
        assert!(lines[1].starts_with("{\"type\":\"trace\""));
        assert_eq!(
            lines[2],
            "{\"type\":\"stats\",\"probes\":4,\"crossings\":9,\"replies\":3,\"lost\":1,\
             \"heap_allocs\":0}"
        );
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let before = EngineStats {
            probes: 10,
            crossings: 50,
            replies: 8,
            lost: 2,
            heap_allocs: 0,
        };
        let mut after = before.clone();
        after.merge(&EngineStats {
            probes: 5,
            crossings: 21,
            replies: 4,
            lost: 1,
            heap_allocs: 0,
        });
        let d = stats_delta(&before, &after);
        assert_eq!(d.probes, 5);
        assert_eq!(d.crossings, 21);
        assert_eq!(d.replies, 4);
        assert_eq!(d.lost, 1);
    }
}
