//! Paris traceroute over the simulator.
//!
//! Mirrors the paper's measurement setup: scamper's ICMP-Paris
//! traceroute — ICMP echo probes whose flow-identifying fields are held
//! constant so per-flow ECMP keeps the path stable, configurable start
//! TTL (the campaign starts at 2), per-hop retries, and a gap limit.

use crate::trace::{Trace, TraceHop};
use wormhole_net::{Addr, Engine, Packet, ReplyKind, RouterId, SendOutcome};

/// Traceroute options.
#[derive(Clone, Debug)]
pub struct TracerouteOpts {
    /// First TTL probed (the paper's campaign uses 2).
    pub start_ttl: u8,
    /// Last TTL probed.
    pub max_ttl: u8,
    /// Probe attempts per hop before recording `*`.
    pub attempts: u8,
    /// Consecutive stars after which the trace is abandoned.
    pub gap_limit: u8,
}

impl Default for TracerouteOpts {
    fn default() -> TracerouteOpts {
        TracerouteOpts {
            start_ttl: 1,
            max_ttl: 40,
            attempts: 2,
            gap_limit: 6,
        }
    }
}

impl TracerouteOpts {
    /// The §4 campaign configuration (start at TTL 2).
    pub fn campaign() -> TracerouteOpts {
        TracerouteOpts {
            start_ttl: 2,
            ..TracerouteOpts::default()
        }
    }
}

/// Runs a Paris traceroute from `vp` towards `dst`.
///
/// `flow` is held constant for every probe of the trace; `id` tags the
/// echo identifier so replies can be matched in logs.
pub fn traceroute(
    eng: &mut Engine<'_>,
    vp: RouterId,
    src: Addr,
    dst: Addr,
    flow: u16,
    id: u16,
    opts: &TracerouteOpts,
) -> Trace {
    let mut hops = Vec::new();
    let mut reached = false;
    let mut gap = 0u8;
    let mut seq: u16 = 0;
    for ttl in opts.start_ttl..=opts.max_ttl {
        let mut hop = TraceHop::star(ttl);
        for _attempt in 0..opts.attempts.max(1) {
            seq = seq.wrapping_add(1);
            let probe = Packet::echo_request(src, dst, ttl, flow, id, seq);
            match eng.send(vp, probe) {
                SendOutcome::Reply(r) => {
                    hop = TraceHop {
                        ttl,
                        addr: Some(r.from),
                        reply_ip_ttl: Some(r.ip_ttl),
                        rtt_ms: Some(r.rtt_ms),
                        labels: r.mpls_ext.clone(),
                        kind: Some(r.kind),
                        truth: r.fwd_path.last().copied(),
                    };
                    break;
                }
                SendOutcome::Lost { .. } => {}
            }
        }
        let responded = hop.addr.is_some();
        let kind = hop.kind;
        let from = hop.addr;
        hops.push(hop);
        if responded {
            gap = 0;
        } else {
            gap += 1;
            if gap >= opts.gap_limit {
                break;
            }
            continue;
        }
        match kind {
            Some(ReplyKind::EchoReply) => {
                // Echo replies are sourced from the probed address.
                reached = true;
                break;
            }
            Some(ReplyKind::DestUnreachable) => break,
            _ => {}
        }
        if from == Some(dst) {
            // A time-exceeded *from* the destination address still
            // terminates the trace (the target was reached).
            reached = true;
            break;
        }
    }
    Trace {
        src,
        dst,
        flow,
        hops,
        reached,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_net::{DropReason, FaultPlan};
    use wormhole_topo::{gns3_fig2, Fig2Config};

    #[test]
    fn reaches_target_with_all_hops() {
        let s = gns3_fig2(Fig2Config::Default);
        let mut eng = Engine::new(&s.net, &s.cp);
        let src = s.net.router(s.vp).loopback;
        let t = traceroute(
            &mut eng,
            s.vp,
            src,
            s.target,
            5,
            1,
            &TracerouteOpts::default(),
        );
        assert!(t.reached);
        assert_eq!(t.hops.len(), 7);
        let names: Vec<String> = t
            .hops
            .iter()
            .map(|h| {
                let owner = s.net.owner(h.addr.unwrap()).unwrap();
                s.net.router(owner).name.clone()
            })
            .collect();
        assert_eq!(names, ["CE1", "PE1", "P1", "P2", "P3", "PE2", "CE2"]);
        // Explicit tunnel: mid hops labeled.
        assert!(t.hops[2].is_labeled());
        assert!(!t.hops[0].is_labeled());
        // Final hop is an echo reply.
        assert_eq!(t.hops[6].kind, Some(ReplyKind::EchoReply));
    }

    #[test]
    fn campaign_opts_start_at_two() {
        let s = gns3_fig2(Fig2Config::Default);
        let mut eng = Engine::new(&s.net, &s.cp);
        let src = s.net.router(s.vp).loopback;
        let t = traceroute(
            &mut eng,
            s.vp,
            src,
            s.target,
            5,
            1,
            &TracerouteOpts::campaign(),
        );
        assert_eq!(t.hops[0].ttl, 2);
        assert!(t.reached);
    }

    #[test]
    fn invisible_tunnel_shows_four_hops() {
        let s = gns3_fig2(Fig2Config::BackwardRecursive);
        let mut eng = Engine::new(&s.net, &s.cp);
        let src = s.net.router(s.vp).loopback;
        let t = traceroute(
            &mut eng,
            s.vp,
            src,
            s.target,
            5,
            1,
            &TracerouteOpts::default(),
        );
        assert!(t.reached);
        assert_eq!(t.hops.len(), 4);
        assert!(!t.has_labels());
    }

    #[test]
    fn retries_survive_loss() {
        let s = gns3_fig2(Fig2Config::Default);
        // 5% loss *per link crossing* (a late hop's round trip crosses
        // ~14 links); with 5 attempts the trace should still complete.
        let mut eng =
            wormhole_net::Engine::with_faults(&s.net, &s.cp, FaultPlan::with_loss(0.05), 9);
        let src = s.net.router(s.vp).loopback;
        let opts = TracerouteOpts {
            attempts: 5,
            ..TracerouteOpts::default()
        };
        let t = traceroute(&mut eng, s.vp, src, s.target, 5, 1, &opts);
        assert!(t.responsive_count() >= 5, "trace: {t}");
    }

    #[test]
    fn gap_limit_abandons_dead_paths() {
        let s = gns3_fig2(Fig2Config::Default);
        // 100% loss: every hop is a star; trace stops at the gap limit.
        let mut eng =
            wormhole_net::Engine::with_faults(&s.net, &s.cp, FaultPlan::with_loss(1.0), 9);
        let src = s.net.router(s.vp).loopback;
        let opts = TracerouteOpts {
            gap_limit: 3,
            attempts: 1,
            ..TracerouteOpts::default()
        };
        let t = traceroute(&mut eng, s.vp, src, s.target, 5, 1, &opts);
        assert_eq!(t.hops.len(), 3);
        assert!(!t.reached);
        let _ = DropReason::Loss;
    }

    #[test]
    fn unreachable_terminates() {
        let s = gns3_fig2(Fig2Config::Default);
        let mut eng = Engine::new(&s.net, &s.cp);
        let src = s.net.router(s.vp).loopback;
        let t = traceroute(
            &mut eng,
            s.vp,
            src,
            Addr::new(9, 9, 9, 9),
            5,
            1,
            &TracerouteOpts::default(),
        );
        assert!(!t.reached);
        assert_eq!(
            t.last_responsive().unwrap().kind,
            Some(ReplyKind::DestUnreachable)
        );
    }
}
