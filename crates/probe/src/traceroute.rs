//! Paris traceroute over the simulator.
//!
//! Mirrors the paper's measurement setup: scamper's ICMP-Paris
//! traceroute — ICMP echo probes whose flow-identifying fields are held
//! constant so per-flow ECMP keeps the path stable, configurable start
//! TTL (the campaign starts at 2), per-hop retries, and a gap limit.
//!
//! Robustness extensions on top of the paper's setup: adaptive per-hop
//! retry with exponential backoff in *virtual* time (backoff lets
//! rate-limiter token buckets refill, so retrying a rate-limited hop
//! actually helps), and a per-trace probe budget that cuts runaway
//! traces short instead of letting a hostile path consume the whole
//! campaign. All of it is deterministic: backoff advances the worker's
//! virtual clock only.

use crate::trace::{HopOutcome, Trace, TraceHop};
use wormhole_net::{Addr, DropReason, Engine, Packet, ReplyKind, RouterId, SendOutcome};

/// Extra attempts the adaptive policy may add when a hop's failures
/// look like rate limiting (waiting + retrying is likely to succeed).
const ADAPTIVE_EXTRA_ATTEMPTS: u8 = 2;

/// Exponential-backoff cap: waits double per retry up to `2^3 ×` the
/// base backoff.
const BACKOFF_MAX_DOUBLINGS: u8 = 3;

/// Traceroute options.
#[derive(Clone, Debug)]
pub struct TracerouteOpts {
    /// First TTL probed (the paper's campaign uses 2).
    pub start_ttl: u8,
    /// Last TTL probed.
    pub max_ttl: u8,
    /// Probe attempts per hop before recording `*`.
    pub attempts: u8,
    /// Consecutive stars after which the trace is abandoned.
    pub gap_limit: u8,
    /// Per-trace probe budget; when it runs out the trace is truncated
    /// with a [`HopOutcome::BudgetExhausted`] hop. `None` = unlimited.
    pub probe_budget: Option<u32>,
    /// Base backoff (virtual ms) before each per-hop retry; doubles per
    /// retry. `0.0` disables backoff.
    pub backoff_ms: f64,
    /// When true, hops whose failures look rate-limited earn up to
    /// [`ADAPTIVE_EXTRA_ATTEMPTS`] extra (backed-off) attempts.
    pub adaptive: bool,
}

impl Default for TracerouteOpts {
    fn default() -> TracerouteOpts {
        TracerouteOpts {
            start_ttl: 1,
            max_ttl: 40,
            attempts: 2,
            gap_limit: 6,
            probe_budget: None,
            backoff_ms: 0.0,
            adaptive: false,
        }
    }
}

impl TracerouteOpts {
    /// The §4 campaign configuration (start at TTL 2), hardened with a
    /// probe budget and adaptive backed-off retries.
    pub fn campaign() -> TracerouteOpts {
        TracerouteOpts {
            start_ttl: 2,
            probe_budget: Some(160),
            backoff_ms: 20.0,
            adaptive: true,
            ..TracerouteOpts::default()
        }
    }
}

/// The next probe a [`TraceMachine`] wants on the wire, plus the
/// virtual-time backoff to apply before sending it.
#[derive(Clone, Copy, Debug)]
pub struct ProbeRequest {
    /// The probe packet.
    pub pkt: Packet,
    /// Virtual milliseconds of retry backoff to wait before sending
    /// (`0.0` = send immediately).
    pub wait_ms: f64,
}

/// A resumable Paris traceroute: the trace logic as an explicit state
/// machine with at most one outstanding probe.
///
/// [`traceroute`] drives a single machine to completion; the batched
/// session walk drives many machines round-robin, pooling each sweep's
/// probes into one engine batch. Both paths run *this* code, so a
/// trace's hop records, retry policy, budget accounting and
/// termination rules cannot diverge between the scalar and batched
/// walks.
#[derive(Clone, Debug)]
pub struct TraceMachine {
    src: Addr,
    dst: Addr,
    flow: u16,
    id: u16,
    opts: TracerouteOpts,
    hops: Vec<TraceHop>,
    reached: bool,
    truncated: bool,
    probes: u32,
    gap: u8,
    seq: u16,
    ttl: u8,
    hop: TraceHop,
    last_drop: Option<DropReason>,
    max_attempts: u8,
    attempt: u8,
    done: bool,
}

impl TraceMachine {
    /// A machine ready to trace from `src` towards `dst`.
    pub fn new(src: Addr, dst: Addr, flow: u16, id: u16, opts: TracerouteOpts) -> TraceMachine {
        let ttl = opts.start_ttl;
        let done = opts.start_ttl > opts.max_ttl;
        let max_attempts = opts.attempts.max(1);
        TraceMachine {
            src,
            dst,
            flow,
            id,
            opts,
            // Pre-sized for the common short trace; paths longer than
            // this grow normally.
            hops: Vec::with_capacity(8),
            reached: false,
            truncated: false,
            probes: 0,
            gap: 0,
            seq: 0,
            ttl,
            hop: TraceHop::star(ttl),
            last_drop: None,
            max_attempts,
            attempt: 0,
            done,
        }
    }

    fn base_attempts(&self) -> u8 {
        self.opts.attempts.max(1)
    }

    /// The next probe to send, or `None` when the trace is complete.
    /// Every returned request must be answered with
    /// [`TraceMachine::on_outcome`] before asking for the next one.
    pub fn next_request(&mut self) -> Option<ProbeRequest> {
        if self.done {
            return None;
        }
        if self.opts.probe_budget.is_some_and(|b| self.probes >= b) {
            self.truncated = true;
            self.hop.outcome = HopOutcome::BudgetExhausted;
            self.hop.attempts = self.attempt;
            let ttl = self.ttl;
            self.hops
                .push(std::mem::replace(&mut self.hop, TraceHop::star(ttl)));
            self.done = true;
            return None;
        }
        let wait_ms = if self.attempt > 0 && self.opts.backoff_ms > 0.0 {
            let doublings = (self.attempt - 1).min(BACKOFF_MAX_DOUBLINGS);
            self.opts.backoff_ms * f64::from(1u32 << doublings)
        } else {
            0.0
        };
        self.seq = self.seq.wrapping_add(1);
        self.attempt += 1;
        self.probes += 1;
        Some(ProbeRequest {
            pkt: Packet::echo_request(self.src, self.dst, self.ttl, self.flow, self.id, self.seq),
            wait_ms,
        })
    }

    /// Feeds the outcome of the last requested probe back into the
    /// machine.
    pub fn on_outcome(&mut self, out: &SendOutcome) {
        if self.done {
            return;
        }
        match out {
            SendOutcome::Reply(r) => {
                self.hop = TraceHop {
                    ttl: self.ttl,
                    addr: Some(r.from),
                    reply_ip_ttl: Some(r.ip_ttl),
                    rtt_ms: Some(r.rtt_ms),
                    labels: r.mpls_ext.to_vec(),
                    kind: Some(r.kind),
                    outcome: HopOutcome::Replied,
                    attempts: self.attempt,
                    truth: Some(r.replier),
                };
                self.finish_hop();
            }
            SendOutcome::Lost { reason, .. } => {
                self.last_drop = Some(*reason);
                if self.opts.adaptive
                    && HopOutcome::from_drop(*reason) == HopOutcome::RateLimited
                    && self.max_attempts < self.base_attempts() + ADAPTIVE_EXTRA_ATTEMPTS
                {
                    // Backed-off retries give the bucket time to
                    // refill; spend a couple extra attempts here.
                    self.max_attempts += 1;
                }
                if self.attempt >= self.max_attempts {
                    self.finish_hop();
                }
            }
        }
    }

    /// Closes out the current TTL's hop record and either terminates
    /// the trace or moves to the next TTL.
    fn finish_hop(&mut self) {
        if self.hop.addr.is_none() {
            self.hop.attempts = self.attempt;
            if let Some(reason) = self.last_drop {
                self.hop.outcome = HopOutcome::from_drop(reason);
            }
        }
        let responded = self.hop.addr.is_some();
        let kind = self.hop.kind;
        let from = self.hop.addr;
        let ttl = self.ttl;
        self.hops
            .push(std::mem::replace(&mut self.hop, TraceHop::star(ttl)));
        if responded {
            self.gap = 0;
        } else {
            self.gap += 1;
            if self.gap >= self.opts.gap_limit {
                self.done = true;
                return;
            }
            self.advance_ttl();
            return;
        }
        match kind {
            Some(ReplyKind::EchoReply) => {
                // Echo replies are sourced from the probed address.
                self.reached = true;
                self.done = true;
                return;
            }
            Some(ReplyKind::DestUnreachable) => {
                self.done = true;
                return;
            }
            _ => {}
        }
        if from == Some(self.dst) {
            // A time-exceeded *from* the destination address still
            // terminates the trace (the target was reached).
            self.reached = true;
            self.done = true;
            return;
        }
        self.advance_ttl();
    }

    fn advance_ttl(&mut self) {
        if self.ttl >= self.opts.max_ttl {
            self.done = true;
            return;
        }
        self.ttl += 1;
        self.hop = TraceHop::star(self.ttl);
        self.last_drop = None;
        self.max_attempts = self.base_attempts();
        self.attempt = 0;
    }

    /// Whether the trace is complete.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Consumes the machine into its [`Trace`].
    pub fn finish(self) -> Trace {
        Trace {
            src: self.src,
            dst: self.dst,
            flow: self.flow,
            hops: self.hops,
            reached: self.reached,
            probes: self.probes,
            truncated: self.truncated,
        }
    }
}

/// Runs a Paris traceroute from `vp` towards `dst`.
///
/// `flow` is held constant for every probe of the trace; `id` tags the
/// echo identifier so replies can be matched in logs. This is the
/// scalar driver over [`TraceMachine`]: one machine, one outstanding
/// probe, driven to completion.
pub fn traceroute(
    eng: &mut Engine<'_>,
    vp: RouterId,
    src: Addr,
    dst: Addr,
    flow: u16,
    id: u16,
    opts: &TracerouteOpts,
) -> Trace {
    let mut m = TraceMachine::new(src, dst, flow, id, opts.clone());
    while let Some(req) = m.next_request() {
        if req.wait_ms > 0.0 {
            eng.wait(req.wait_ms);
        }
        let out = eng.send(vp, req.pkt);
        m.on_outcome(&out);
    }
    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_net::{DropReason, FaultPlan};
    use wormhole_topo::{gns3_fig2, Fig2Config};

    #[test]
    fn reaches_target_with_all_hops() {
        let s = gns3_fig2(Fig2Config::Default);
        let mut eng = Engine::new(&s.net, &s.cp);
        let src = s.net.router(s.vp).loopback;
        let t = traceroute(
            &mut eng,
            s.vp,
            src,
            s.target,
            5,
            1,
            &TracerouteOpts::default(),
        );
        assert!(t.reached);
        assert_eq!(t.hops.len(), 7);
        let names: Vec<String> = t
            .hops
            .iter()
            .map(|h| {
                let owner = s.net.owner(h.addr.unwrap()).unwrap();
                s.net.router(owner).name.clone()
            })
            .collect();
        assert_eq!(names, ["CE1", "PE1", "P1", "P2", "P3", "PE2", "CE2"]);
        // Explicit tunnel: mid hops labeled.
        assert!(t.hops[2].is_labeled());
        assert!(!t.hops[0].is_labeled());
        // Final hop is an echo reply.
        assert_eq!(t.hops[6].kind, Some(ReplyKind::EchoReply));
    }

    #[test]
    fn campaign_opts_start_at_two() {
        let s = gns3_fig2(Fig2Config::Default);
        let mut eng = Engine::new(&s.net, &s.cp);
        let src = s.net.router(s.vp).loopback;
        let t = traceroute(
            &mut eng,
            s.vp,
            src,
            s.target,
            5,
            1,
            &TracerouteOpts::campaign(),
        );
        assert_eq!(t.hops[0].ttl, 2);
        assert!(t.reached);
    }

    #[test]
    fn invisible_tunnel_shows_four_hops() {
        let s = gns3_fig2(Fig2Config::BackwardRecursive);
        let mut eng = Engine::new(&s.net, &s.cp);
        let src = s.net.router(s.vp).loopback;
        let t = traceroute(
            &mut eng,
            s.vp,
            src,
            s.target,
            5,
            1,
            &TracerouteOpts::default(),
        );
        assert!(t.reached);
        assert_eq!(t.hops.len(), 4);
        assert!(!t.has_labels());
    }

    #[test]
    fn retries_survive_loss() {
        let s = gns3_fig2(Fig2Config::Default);
        // 5% loss *per link crossing* (a late hop's round trip crosses
        // ~14 links); with 5 attempts the trace should still complete.
        let mut eng = wormhole_net::Engine::with_faults(
            &s.net,
            &s.cp,
            FaultPlan::with_loss(0.05).unwrap(),
            9,
        );
        let src = s.net.router(s.vp).loopback;
        let opts = TracerouteOpts {
            attempts: 5,
            ..TracerouteOpts::default()
        };
        let t = traceroute(&mut eng, s.vp, src, s.target, 5, 1, &opts);
        assert!(t.responsive_count() >= 5, "trace: {t}");
    }

    #[test]
    fn gap_limit_abandons_dead_paths() {
        let s = gns3_fig2(Fig2Config::Default);
        // 100% loss: every hop is a star; trace stops at the gap limit.
        let mut eng =
            wormhole_net::Engine::with_faults(&s.net, &s.cp, FaultPlan::with_loss(1.0).unwrap(), 9);
        let src = s.net.router(s.vp).loopback;
        let opts = TracerouteOpts {
            gap_limit: 3,
            attempts: 1,
            ..TracerouteOpts::default()
        };
        let t = traceroute(&mut eng, s.vp, src, s.target, 5, 1, &opts);
        assert_eq!(t.hops.len(), 3);
        assert!(!t.reached);
        assert!(t
            .hops
            .iter()
            .all(|h| h.outcome == HopOutcome::Lost && h.attempts == 1));
        assert_eq!(t.probes, 3);
        let _ = DropReason::Loss;
    }

    #[test]
    fn probe_budget_truncates_the_trace() {
        let s = gns3_fig2(Fig2Config::Default);
        let mut eng =
            wormhole_net::Engine::with_faults(&s.net, &s.cp, FaultPlan::with_loss(1.0).unwrap(), 9);
        let src = s.net.router(s.vp).loopback;
        let opts = TracerouteOpts {
            attempts: 2,
            probe_budget: Some(5),
            ..TracerouteOpts::default()
        };
        let t = traceroute(&mut eng, s.vp, src, s.target, 5, 1, &opts);
        assert!(t.truncated);
        assert_eq!(t.probes, 5);
        assert_eq!(
            t.hops.last().unwrap().outcome,
            HopOutcome::BudgetExhausted,
            "trace: {t:?}"
        );
    }

    #[test]
    fn stars_are_typed_rate_limited_when_buckets_are_dry() {
        use wormhole_net::RateLimit;
        let s = gns3_fig2(Fig2Config::Default);
        // Single-token buckets with a near-zero refill: a first trace
        // drains every router's bucket, the second sees typed
        // rate-limited stars.
        let plan = FaultPlan {
            te_limit: Some(RateLimit {
                per_sec: 0.01,
                burst: 1.0,
                mpls_only: false,
            }),
            ..FaultPlan::default()
        };
        let mut eng = wormhole_net::Engine::with_faults(&s.net, &s.cp, plan, 9);
        let src = s.net.router(s.vp).loopback;
        let warm = traceroute(
            &mut eng,
            s.vp,
            src,
            s.target,
            5,
            1,
            &TracerouteOpts::default(),
        );
        assert!(warm.reached);
        let t = traceroute(
            &mut eng,
            s.vp,
            src,
            s.target,
            5,
            2,
            &TracerouteOpts {
                attempts: 1,
                gap_limit: 2,
                ..TracerouteOpts::default()
            },
        );
        assert!(
            t.hops.iter().any(|h| h.outcome == HopOutcome::RateLimited),
            "expected a rate-limited hop: {t:?}"
        );
    }

    #[test]
    fn adaptive_backoff_recovers_a_rate_limited_hop() {
        use wormhole_net::RateLimit;
        let s = gns3_fig2(Fig2Config::Default);
        // 2 tokens/s, burst 1: after a warm-up trace drains the buckets,
        // a bare single-attempt retrace fails its first hops, but the
        // adaptive policy's backed-off extra attempts wait long enough
        // (100/200 virtual ms) for buckets to refill.
        let plan = FaultPlan {
            te_limit: Some(RateLimit {
                per_sec: 2.0,
                burst: 1.0,
                mpls_only: false,
            }),
            ..FaultPlan::default()
        };
        let src = s.net.router(s.vp).loopback;
        let mut eng = wormhole_net::Engine::with_faults(&s.net, &s.cp, plan, 9);
        let warm = traceroute(
            &mut eng,
            s.vp,
            src,
            s.target,
            5,
            1,
            &TracerouteOpts::default(),
        );
        assert!(warm.reached);
        let opts = TracerouteOpts {
            attempts: 1,
            adaptive: true,
            backoff_ms: 100.0,
            ..TracerouteOpts::default()
        };
        let t = traceroute(&mut eng, s.vp, src, s.target, 5, 2, &opts);
        assert!(t.reached, "adaptive retries should complete: {t:?}");
        assert!(
            t.hops.iter().any(|h| h.attempts > 1),
            "some hop should have needed a retry: {t:?}"
        );
    }

    #[test]
    fn unreachable_terminates() {
        let s = gns3_fig2(Fig2Config::Default);
        let mut eng = Engine::new(&s.net, &s.cp);
        let src = s.net.router(s.vp).loopback;
        let t = traceroute(
            &mut eng,
            s.vp,
            src,
            Addr::new(9, 9, 9, 9),
            5,
            1,
            &TracerouteOpts::default(),
        );
        assert!(!t.reached);
        assert_eq!(
            t.last_responsive().unwrap().kind,
            Some(ReplyKind::DestUnreachable)
        );
    }
}
