//! Wire codecs for probe-layer records.
//!
//! Distributed campaign workers ship completed traces and ping results
//! back to the master as length-prefixed shard files
//! (`wormhole_core::distributed`); these [`Wire`] impls define the
//! byte layout of the probe-layer payloads. Floats travel as raw IEEE
//! bits, so a decoded record is *equal* to the encoded one — not
//! merely close — which is what lets a file-level merge reproduce the
//! in-process report byte for byte.

use crate::ping::{PingFailure, PingReply, PingResult};
use crate::trace::{HopOutcome, Trace, TraceHop};
use crate::traceroute::TracerouteOpts;
use wormhole_net::wire::{Reader, Wire, WireError};

impl Wire for TracerouteOpts {
    fn put(&self, out: &mut Vec<u8>) {
        self.start_ttl.put(out);
        self.max_ttl.put(out);
        self.attempts.put(out);
        self.gap_limit.put(out);
        self.probe_budget.put(out);
        self.backoff_ms.put(out);
        self.adaptive.put(out);
    }

    fn take(r: &mut Reader<'_>) -> Result<TracerouteOpts, WireError> {
        Ok(TracerouteOpts {
            start_ttl: Wire::take(r)?,
            max_ttl: Wire::take(r)?,
            attempts: Wire::take(r)?,
            gap_limit: Wire::take(r)?,
            probe_budget: Wire::take(r)?,
            backoff_ms: Wire::take(r)?,
            adaptive: Wire::take(r)?,
        })
    }
}

impl Wire for HopOutcome {
    fn put(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            HopOutcome::Replied => 0,
            HopOutcome::Silent => 1,
            HopOutcome::RateLimited => 2,
            HopOutcome::Unreachable => 3,
            HopOutcome::Lost => 4,
            HopOutcome::BudgetExhausted => 5,
        };
        tag.put(out);
    }

    fn take(r: &mut Reader<'_>) -> Result<HopOutcome, WireError> {
        Ok(match u8::take(r)? {
            0 => HopOutcome::Replied,
            1 => HopOutcome::Silent,
            2 => HopOutcome::RateLimited,
            3 => HopOutcome::Unreachable,
            4 => HopOutcome::Lost,
            5 => HopOutcome::BudgetExhausted,
            _ => return Err(WireError::Corrupt("hop outcome tag")),
        })
    }
}

impl Wire for TraceHop {
    fn put(&self, out: &mut Vec<u8>) {
        self.ttl.put(out);
        self.addr.put(out);
        self.reply_ip_ttl.put(out);
        self.rtt_ms.put(out);
        self.labels.put(out);
        self.kind.put(out);
        self.outcome.put(out);
        self.attempts.put(out);
        self.truth.put(out);
    }

    fn take(r: &mut Reader<'_>) -> Result<TraceHop, WireError> {
        Ok(TraceHop {
            ttl: Wire::take(r)?,
            addr: Wire::take(r)?,
            reply_ip_ttl: Wire::take(r)?,
            rtt_ms: Wire::take(r)?,
            labels: Wire::take(r)?,
            kind: Wire::take(r)?,
            outcome: Wire::take(r)?,
            attempts: Wire::take(r)?,
            truth: Wire::take(r)?,
        })
    }
}

impl Wire for Trace {
    fn put(&self, out: &mut Vec<u8>) {
        self.src.put(out);
        self.dst.put(out);
        self.flow.put(out);
        self.hops.put(out);
        self.reached.put(out);
        self.probes.put(out);
        self.truncated.put(out);
    }

    fn take(r: &mut Reader<'_>) -> Result<Trace, WireError> {
        Ok(Trace {
            src: Wire::take(r)?,
            dst: Wire::take(r)?,
            flow: Wire::take(r)?,
            hops: Wire::take(r)?,
            reached: Wire::take(r)?,
            probes: Wire::take(r)?,
            truncated: Wire::take(r)?,
        })
    }
}

impl Wire for PingFailure {
    fn put(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            PingFailure::RateLimited => 0,
            PingFailure::Silent => 1,
            PingFailure::Unreachable => 2,
            PingFailure::Lost => 3,
        };
        tag.put(out);
    }

    fn take(r: &mut Reader<'_>) -> Result<PingFailure, WireError> {
        Ok(match u8::take(r)? {
            0 => PingFailure::RateLimited,
            1 => PingFailure::Silent,
            2 => PingFailure::Unreachable,
            3 => PingFailure::Lost,
            _ => return Err(WireError::Corrupt("ping failure tag")),
        })
    }
}

impl Wire for PingReply {
    fn put(&self, out: &mut Vec<u8>) {
        self.from.put(out);
        self.reply_ip_ttl.put(out);
        self.rtt_ms.put(out);
    }

    fn take(r: &mut Reader<'_>) -> Result<PingReply, WireError> {
        Ok(PingReply {
            from: Wire::take(r)?,
            reply_ip_ttl: Wire::take(r)?,
            rtt_ms: Wire::take(r)?,
        })
    }
}

impl Wire for PingResult {
    fn put(&self, out: &mut Vec<u8>) {
        self.reply.put(out);
        self.attempts.put(out);
        self.last_failure.put(out);
    }

    fn take(r: &mut Reader<'_>) -> Result<PingResult, WireError> {
        Ok(PingResult {
            reply: Wire::take(r)?,
            attempts: Wire::take(r)?,
            last_failure: Wire::take(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_net::wire::{from_bytes, to_bytes};
    use wormhole_net::{Addr, Lse, ReplyKind, RouterId};

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = to_bytes(v);
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(&back, v);
        assert_eq!(to_bytes(&back), bytes);
    }

    #[test]
    fn trace_round_trips() {
        let hop = TraceHop {
            ttl: 3,
            addr: Some(Addr(0x0A00_0102)),
            reply_ip_ttl: Some(253),
            rtt_ms: Some(17.25),
            labels: vec![Lse::new(wormhole_net::Label(300), 4)],
            kind: Some(ReplyKind::TimeExceeded),
            outcome: HopOutcome::Replied,
            attempts: 1,
            truth: Some(RouterId(9)),
        };
        let star = TraceHop {
            ttl: 4,
            addr: None,
            reply_ip_ttl: None,
            rtt_ms: None,
            labels: Vec::new(),
            kind: None,
            outcome: HopOutcome::Silent,
            attempts: 2,
            truth: None,
        };
        round_trip(&hop);
        round_trip(&star);
        round_trip(&Trace {
            src: Addr(1),
            dst: Addr(2),
            flow: 7,
            hops: vec![hop, star],
            reached: false,
            probes: 11,
            truncated: true,
        });
    }

    #[test]
    fn ping_round_trips() {
        round_trip(&PingResult::empty());
        round_trip(&PingResult {
            reply: Some(PingReply {
                from: Addr(77),
                reply_ip_ttl: 64,
                rtt_ms: 3.5,
            }),
            attempts: 2,
            last_failure: Some(PingFailure::Lost),
        });
    }

    #[test]
    fn bad_tags_are_corrupt() {
        let bytes = vec![9u8];
        assert!(from_bytes::<HopOutcome>(&bytes).is_err());
        assert!(from_bytes::<PingFailure>(&bytes).is_err());
    }
}
