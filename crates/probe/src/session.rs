//! Vantage-point probing sessions with budget accounting.
//!
//! The paper's campaign ran five VP teams at 25 packets/s for weeks; our
//! sessions track the equivalent cost (probes sent, traces run, wall
//! time at a configured rate) so experiments can report the probing
//! budget a real deployment would need.

use crate::ping::{ping, PingResult};
use crate::trace::Trace;
use crate::traceroute::{traceroute, TracerouteOpts};
use wormhole_net::{
    Addr, ControlPlane, Engine, EngineStats, FaultPlan, Network, ProbeState, RouterId, SubstrateRef,
};

/// Session counters.
#[derive(Clone, Debug, Default)]
pub struct SessionStats {
    /// Traceroutes run.
    pub traceroutes: u64,
    /// Pings run.
    pub pings: u64,
    /// Individual probe packets injected.
    pub probes: u64,
}

impl SessionStats {
    /// Wall-clock seconds a real prober would need at `rate` packets/s
    /// (the paper used 25 pps).
    pub fn wall_seconds_at(&self, rate: f64) -> f64 {
        assert!(rate > 0.0);
        self.probes as f64 / rate
    }
}

/// A probing session bound to one vantage point.
///
/// A session is the per-worker half of the substrate/worker split: it
/// owns its engine's [`ProbeState`] (fault RNG stream, counters) and
/// its own TTL/flow bookkeeping, while the topology and routing state
/// behind its [`SubstrateRef`] are immutable and shared. Sessions are
/// `Send`, so a campaign can move one per vantage point onto scoped
/// worker threads.
pub struct Session<'a> {
    eng: Engine<'a>,
    vp: RouterId,
    src: Addr,
    opts: TracerouteOpts,
    next_id: u16,
    /// Counters.
    pub stats: SessionStats,
}

// Compile-time audit: campaign workers move sessions across threads.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Session<'_>>();
};

impl<'a> Session<'a> {
    /// A fault-free session probing from `vp`.
    pub fn new(net: &'a Network, cp: &'a ControlPlane, vp: RouterId) -> Session<'a> {
        Session::with_faults(net, cp, vp, FaultPlan::none(), 0)
    }

    /// A session with fault injection.
    ///
    /// # Panics
    /// Under `debug_assertions`, refuses to start over a network with
    /// `Error`-level static-analysis findings (lint before simulate).
    pub fn with_faults(
        net: &'a Network,
        cp: &'a ControlPlane,
        vp: RouterId,
        faults: FaultPlan,
        seed: u64,
    ) -> Session<'a> {
        #[cfg(debug_assertions)]
        wormhole_lint::deny_errors("Session", &wormhole_lint::check_plane(net, cp));
        Session::over(
            SubstrateRef::new(net, cp),
            vp,
            ProbeState::new(faults, seed),
        )
    }

    /// A session over an already-linted substrate with externally-built
    /// worker state. No lint gate runs here: the caller (typically a
    /// campaign, which lints the substrate once for all of its workers)
    /// is responsible for having vetted the network.
    pub fn over(sub: SubstrateRef<'a>, vp: RouterId, state: ProbeState) -> Session<'a> {
        let src = sub.net.router(vp).loopback;
        // Sessions consume replies through [`Trace`]/[`PingResult`] and
        // never read the engine's ground-truth path recordings, so the
        // recording (and its per-probe heap traffic) stays off: the
        // steady-state campaign walk is allocation-free.
        let mut eng = Engine::over(sub, state);
        eng.set_record_paths(false);
        Session {
            eng,
            vp,
            src,
            opts: TracerouteOpts::campaign(),
            next_id: 1,
            stats: SessionStats::default(),
        }
    }

    /// Overrides the traceroute options (default: the §4 campaign
    /// settings).
    pub fn set_opts(&mut self, opts: TracerouteOpts) {
        self.opts = opts;
    }

    /// The vantage point.
    pub fn vp(&self) -> RouterId {
        self.vp
    }

    /// The vantage point's source address.
    pub fn src(&self) -> Addr {
        self.src
    }

    /// The network probed by this session.
    pub fn network(&self) -> &'a Network {
        self.eng.network()
    }

    /// The underlying engine's traffic counters — in particular the
    /// `heap_allocs` proof counter the benches and the regression gate
    /// assert stays at zero for the recording-off campaign walk.
    pub fn engine_stats(&self) -> &EngineStats {
        self.eng.stats()
    }

    fn flow_for(&self, dst: Addr) -> u16 {
        // Stable per-(vp, dst) flow id: Paris traceroute keeps the flow
        // constant within a trace; different destinations hash onto
        // different ECMP branches.
        let mut h: u32 = 0x811c_9dc5;
        for b in dst.0.to_le_bytes().into_iter().chain([self.vp.0 as u8]) {
            h ^= b as u32;
            h = h.wrapping_mul(0x0100_0193);
        }
        h as u16
    }

    /// Runs a Paris traceroute to `dst`.
    pub fn traceroute(&mut self, dst: Addr) -> Trace {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        let flow = self.flow_for(dst);
        let before = self.eng.stats().probes;
        let t = traceroute(&mut self.eng, self.vp, self.src, dst, flow, id, &self.opts);
        self.stats.traceroutes += 1;
        self.stats.probes += self.eng.stats().probes - before;
        t
    }

    /// Pings `dst` (two attempts). The result carries attempts-used and
    /// the last failure kind even when no reply arrived.
    pub fn ping(&mut self, dst: Addr) -> PingResult {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        let flow = self.flow_for(dst);
        let before = self.eng.stats().probes;
        let r = ping(&mut self.eng, self.vp, self.src, dst, flow, id, 2);
        self.stats.pings += 1;
        self.stats.probes += self.eng.stats().probes - before;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_topo::{gns3_fig2, Fig2Config};

    #[test]
    fn session_counts_probes() {
        let s = gns3_fig2(Fig2Config::Default);
        let mut sess = Session::new(&s.net, &s.cp, s.vp);
        sess.set_opts(TracerouteOpts::default());
        let t = sess.traceroute(s.target);
        assert!(t.reached);
        assert_eq!(sess.stats.traceroutes, 1);
        assert_eq!(sess.stats.probes, 7);
        assert!(sess.ping(s.target).is_reply());
        assert_eq!(sess.stats.pings, 1);
        assert_eq!(sess.stats.probes, 8);
        assert_eq!(
            sess.engine_stats().heap_allocs,
            0,
            "sessions keep path recording off, so the walk must not allocate"
        );
        assert!((sess.stats.wall_seconds_at(25.0) - 8.0 / 25.0).abs() < 1e-9);
    }

    #[test]
    fn flows_are_stable_per_destination() {
        let s = gns3_fig2(Fig2Config::Default);
        let mut sess = Session::new(&s.net, &s.cp, s.vp);
        let t1 = sess.traceroute(s.target);
        let t2 = sess.traceroute(s.target);
        assert_eq!(t1.flow, t2.flow);
        let other = s.left_addr("PE2");
        let t3 = sess.traceroute(other);
        // Different destination (almost surely) hashes differently; at
        // minimum the trace is still well-formed.
        assert!(t3.responsive_count() > 0);
    }
}
