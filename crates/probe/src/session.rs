//! Vantage-point probing sessions with budget accounting.
//!
//! The paper's campaign ran five VP teams at 25 packets/s for weeks; our
//! sessions track the equivalent cost (probes sent, traces run, wall
//! time at a configured rate) so experiments can report the probing
//! budget a real deployment would need.

use crate::ping::{ping, PingMachine, PingResult};
use crate::sink::{stats_delta, TraceSink};
use crate::trace::Trace;
use crate::traceroute::{traceroute, TraceMachine, TracerouteOpts};
use wormhole_net::{
    Addr, ControlPlane, Engine, EngineStats, FaultPlan, Network, Packet, ProbeState, RouterId,
    SendOutcome, SubstrateRef,
};

/// Session counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SessionStats {
    /// Traceroutes run.
    pub traceroutes: u64,
    /// Pings run.
    pub pings: u64,
    /// Individual probe packets injected.
    pub probes: u64,
}

impl SessionStats {
    /// Wall-clock seconds a real prober would need at `rate` packets/s
    /// (the paper used 25 pps).
    pub fn wall_seconds_at(&self, rate: f64) -> f64 {
        assert!(rate > 0.0);
        self.probes as f64 / rate
    }
}

/// A probing session bound to one vantage point.
///
/// A session is the per-worker half of the substrate/worker split: it
/// owns its engine's [`ProbeState`] (fault RNG stream, counters) and
/// its own TTL/flow bookkeeping, while the topology and routing state
/// behind its [`SubstrateRef`] are immutable and shared. Sessions are
/// `Send`, so a campaign can move one per vantage point onto scoped
/// worker threads.
pub struct Session<'a> {
    eng: Engine<'a>,
    vp: RouterId,
    src: Addr,
    opts: TracerouteOpts,
    next_id: u16,
    sink: Option<(usize, Box<dyn TraceSink + Send + 'a>)>,
    /// Counters.
    pub stats: SessionStats,
}

// Compile-time audit: campaign workers move sessions across threads.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Session<'_>>();
};

impl<'a> Session<'a> {
    /// A fault-free session probing from `vp`.
    pub fn new(net: &'a Network, cp: &'a ControlPlane, vp: RouterId) -> Session<'a> {
        Session::with_faults(net, cp, vp, FaultPlan::none(), 0)
    }

    /// A session with fault injection.
    ///
    /// # Panics
    /// Under `debug_assertions`, refuses to start over a network with
    /// `Error`-level static-analysis findings (lint before simulate).
    pub fn with_faults(
        net: &'a Network,
        cp: &'a ControlPlane,
        vp: RouterId,
        faults: FaultPlan,
        seed: u64,
    ) -> Session<'a> {
        #[cfg(debug_assertions)]
        wormhole_lint::deny_errors("Session", &wormhole_lint::check_plane(net, cp));
        Session::over(
            SubstrateRef::new(net, cp),
            vp,
            ProbeState::new(faults, seed),
        )
    }

    /// A session over an already-linted substrate with externally-built
    /// worker state. No lint gate runs here: the caller (typically a
    /// campaign, which lints the substrate once for all of its workers)
    /// is responsible for having vetted the network.
    pub fn over(sub: SubstrateRef<'a>, vp: RouterId, state: ProbeState) -> Session<'a> {
        let src = sub.net.router(vp).loopback;
        // Sessions consume replies through [`Trace`]/[`PingResult`] and
        // never read the engine's ground-truth path recordings, so the
        // recording (and its per-probe heap traffic) stays off: the
        // steady-state campaign walk is allocation-free.
        let mut eng = Engine::over(sub, state);
        eng.set_record_paths(false);
        Session {
            eng,
            vp,
            src,
            opts: TracerouteOpts::campaign(),
            next_id: 1,
            sink: None,
            stats: SessionStats::default(),
        }
    }

    /// Overrides the traceroute options (default: the §4 campaign
    /// settings).
    pub fn set_opts(&mut self, opts: TracerouteOpts) {
        self.opts = opts;
    }

    /// Attaches a streaming [`TraceSink`]: every completed traceroute
    /// is forwarded as it finishes (batched traceroutes flush a batch
    /// in input order as it drains), each followed by the engine-stats
    /// delta it cost — no phase-sized buffering anywhere. `tag` is the
    /// attribution passed to [`TraceSink::on_trace`] (campaigns use the
    /// vantage-point index).
    pub fn set_sink(&mut self, tag: usize, sink: Box<dyn TraceSink + Send + 'a>) {
        self.sink = Some((tag, sink));
    }

    /// Detaches and returns the streaming sink, if any.
    pub fn take_sink(&mut self) -> Option<Box<dyn TraceSink + Send + 'a>> {
        self.sink.take().map(|(_, s)| s)
    }

    /// The vantage point.
    pub fn vp(&self) -> RouterId {
        self.vp
    }

    /// The vantage point's source address.
    pub fn src(&self) -> Addr {
        self.src
    }

    /// The network probed by this session.
    pub fn network(&self) -> &'a Network {
        self.eng.network()
    }

    /// The underlying engine's traffic counters — in particular the
    /// `heap_allocs` proof counter the benches and the regression gate
    /// assert stays at zero for the recording-off campaign walk.
    pub fn engine_stats(&self) -> &EngineStats {
        self.eng.stats()
    }

    fn flow_for(&self, dst: Addr) -> u16 {
        // Stable per-(vp, dst) flow id: Paris traceroute keeps the flow
        // constant within a trace; different destinations hash onto
        // different ECMP branches.
        let mut h: u32 = 0x811c_9dc5;
        for b in dst.0.to_le_bytes().into_iter().chain([self.vp.0 as u8]) {
            h ^= b as u32;
            h = h.wrapping_mul(0x0100_0193);
        }
        h as u16
    }

    /// Runs a Paris traceroute to `dst`.
    pub fn traceroute(&mut self, dst: Addr) -> Trace {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        let flow = self.flow_for(dst);
        let snap = self.sink.is_some().then(|| self.eng.stats().clone());
        let before = self.eng.stats().probes;
        let t = traceroute(&mut self.eng, self.vp, self.src, dst, flow, id, &self.opts);
        self.stats.traceroutes += 1;
        self.stats.probes += self.eng.stats().probes - before;
        if let Some((tag, sink)) = self.sink.as_mut() {
            sink.on_trace(*tag, &t);
            if let Some(snap) = snap {
                sink.on_stats(&stats_delta(&snap, self.eng.stats()));
            }
        }
        t
    }

    /// Pings `dst` (two attempts). The result carries attempts-used and
    /// the last failure kind even when no reply arrived.
    pub fn ping(&mut self, dst: Addr) -> PingResult {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        let flow = self.flow_for(dst);
        let before = self.eng.stats().probes;
        let r = ping(&mut self.eng, self.vp, self.src, dst, flow, id, 2);
        self.stats.pings += 1;
        self.stats.probes += self.eng.stats().probes - before;
        r
    }

    /// Whether this session's fault plan permits interleaved batch
    /// probing (see [`FaultPlan::batch_safe`]).
    fn batch_safe(&self) -> bool {
        self.eng.state.faults.batch_safe()
    }

    /// Traceroutes every destination in `dsts`, returning one trace
    /// per destination in input order.
    ///
    /// Under a batch-safe fault plan the traces run as concurrent
    /// [`TraceMachine`]s — each sweep collects one outstanding probe
    /// per unfinished trace and pushes them through the engine's SoA
    /// batch walk ([`Engine::send_batch`]), so per-probe engine entry
    /// costs amortize across up to [`wormhole_net::BATCH_WIDTH`] packets. Echo ids
    /// are assigned upfront in destination order — exactly the ids the
    /// scalar loop would assign — and batch-safe outcomes are pure
    /// per-packet, so the returned traces, the session counters and
    /// the engine totals are byte-identical to calling
    /// [`Session::traceroute`] per destination. Order-sensitive fault
    /// plans fall back to exactly that scalar loop.
    pub fn traceroute_batch(&mut self, dsts: &[Addr]) -> Vec<Trace> {
        if !self.batch_safe() {
            return dsts.iter().map(|&d| self.traceroute(d)).collect();
        }
        let snap = self.sink.is_some().then(|| self.eng.stats().clone());
        let before = self.eng.stats().probes;
        let mut machines: Vec<Option<TraceMachine>> = dsts
            .iter()
            .map(|&d| {
                let id = self.next_id;
                self.next_id = self.next_id.wrapping_add(1);
                Some(TraceMachine::new(
                    self.src,
                    d,
                    self.flow_for(d),
                    id,
                    self.opts.clone(),
                ))
            })
            .collect();
        let mut traces: Vec<Option<Trace>> = dsts.iter().map(|_| None).collect();
        let mut pkts: Vec<Packet> = Vec::with_capacity(dsts.len());
        let mut idxs: Vec<usize> = Vec::with_capacity(dsts.len());
        let mut outs: Vec<SendOutcome> = Vec::with_capacity(dsts.len());
        // Dense list of unfinished machines, always in ascending index
        // order (`retain` compacts in place), so waits and probes are
        // collected in exactly the scalar loop's order while finished
        // machines cost nothing to skip.
        let mut live: Vec<usize> = (0..machines.len()).collect();
        while !live.is_empty() {
            pkts.clear();
            idxs.clear();
            outs.clear();
            let eng = &mut self.eng;
            live.retain(|&i| {
                let Some(m) = machines[i].as_mut() else {
                    return false;
                };
                match m.next_request() {
                    Some(req) => {
                        if req.wait_ms > 0.0 {
                            eng.wait(req.wait_ms);
                        }
                        pkts.push(req.pkt);
                        idxs.push(i);
                        true
                    }
                    None => {
                        if let Some(m) = machines[i].take() {
                            traces[i] = Some(m.finish());
                        }
                        false
                    }
                }
            });
            if pkts.is_empty() {
                continue;
            }
            self.eng.send_batch(self.vp, &pkts, &mut outs);
            for (k, &i) in idxs.iter().enumerate() {
                if let Some(m) = machines[i].as_mut() {
                    m.on_outcome(&outs[k]);
                }
            }
        }
        self.stats.traceroutes += dsts.len() as u64;
        self.stats.probes += self.eng.stats().probes - before;
        let out: Vec<Trace> = traces.into_iter().flatten().collect();
        debug_assert_eq!(out.len(), dsts.len());
        if let Some((tag, sink)) = self.sink.as_mut() {
            for t in &out {
                sink.on_trace(*tag, t);
            }
            if let Some(snap) = snap {
                sink.on_stats(&stats_delta(&snap, self.eng.stats()));
            }
        }
        out
    }

    /// Pings every destination in `dsts` (two attempts each),
    /// returning one result per destination in input order. The batch
    /// analogue of [`Session::ping`]; see [`Session::traceroute_batch`]
    /// for the equivalence and fallback rules.
    pub fn ping_batch(&mut self, dsts: &[Addr]) -> Vec<PingResult> {
        if !self.batch_safe() {
            return dsts.iter().map(|&d| self.ping(d)).collect();
        }
        let before = self.eng.stats().probes;
        let mut machines: Vec<Option<PingMachine>> = dsts
            .iter()
            .map(|&d| {
                let id = self.next_id;
                self.next_id = self.next_id.wrapping_add(1);
                Some(PingMachine::new(self.src, d, self.flow_for(d), id, 2))
            })
            .collect();
        let mut results: Vec<Option<PingResult>> = dsts.iter().map(|_| None).collect();
        let mut pkts: Vec<Packet> = Vec::with_capacity(dsts.len());
        let mut idxs: Vec<usize> = Vec::with_capacity(dsts.len());
        let mut outs: Vec<SendOutcome> = Vec::with_capacity(dsts.len());
        let mut live: Vec<usize> = (0..machines.len()).collect();
        while !live.is_empty() {
            pkts.clear();
            idxs.clear();
            outs.clear();
            live.retain(|&i| {
                let Some(m) = machines[i].as_mut() else {
                    return false;
                };
                match m.next_request() {
                    Some(pkt) => {
                        pkts.push(pkt);
                        idxs.push(i);
                        true
                    }
                    None => {
                        if let Some(m) = machines[i].take() {
                            results[i] = Some(m.finish());
                        }
                        false
                    }
                }
            });
            if pkts.is_empty() {
                continue;
            }
            self.eng.send_batch(self.vp, &pkts, &mut outs);
            for (k, &i) in idxs.iter().enumerate() {
                if let Some(m) = machines[i].as_mut() {
                    m.on_outcome(&outs[k]);
                }
            }
        }
        self.stats.pings += dsts.len() as u64;
        self.stats.probes += self.eng.stats().probes - before;
        let out: Vec<PingResult> = results.into_iter().flatten().collect();
        debug_assert_eq!(out.len(), dsts.len());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_topo::{gns3_fig2, Fig2Config};

    #[test]
    fn session_counts_probes() {
        let s = gns3_fig2(Fig2Config::Default);
        let mut sess = Session::new(&s.net, &s.cp, s.vp);
        sess.set_opts(TracerouteOpts::default());
        let t = sess.traceroute(s.target);
        assert!(t.reached);
        assert_eq!(sess.stats.traceroutes, 1);
        assert_eq!(sess.stats.probes, 7);
        assert!(sess.ping(s.target).is_reply());
        assert_eq!(sess.stats.pings, 1);
        assert_eq!(sess.stats.probes, 8);
        assert_eq!(
            sess.engine_stats().heap_allocs,
            0,
            "sessions keep path recording off, so the walk must not allocate"
        );
        assert!((sess.stats.wall_seconds_at(25.0) - 8.0 / 25.0).abs() < 1e-9);
    }

    #[test]
    fn batched_session_matches_scalar() {
        let s = gns3_fig2(Fig2Config::Default);
        let dsts = [
            s.target,
            s.left_addr("PE2"),
            Addr::new(9, 9, 9, 9),
            s.target,
        ];

        let mut scalar = Session::new(&s.net, &s.cp, s.vp);
        let straces: Vec<Trace> = dsts.iter().map(|&d| scalar.traceroute(d)).collect();
        let spings: Vec<PingResult> = dsts.iter().map(|&d| scalar.ping(d)).collect();

        let mut batched = Session::new(&s.net, &s.cp, s.vp);
        let btraces = batched.traceroute_batch(&dsts);
        let bpings = batched.ping_batch(&dsts);

        assert_eq!(straces, btraces);
        assert_eq!(spings, bpings);
        assert_eq!(scalar.stats, batched.stats);
        assert_eq!(scalar.engine_stats(), batched.engine_stats());
        assert_eq!(batched.engine_stats().heap_allocs, 0);
    }

    #[test]
    fn batched_session_falls_back_under_order_sensitive_faults() {
        let s = gns3_fig2(Fig2Config::Default);
        let dsts = [s.target, s.left_addr("PE2")];
        let plan = FaultPlan::with_loss(0.4).unwrap();

        let mut scalar = Session::with_faults(&s.net, &s.cp, s.vp, plan.clone(), 21);
        let straces: Vec<Trace> = dsts.iter().map(|&d| scalar.traceroute(d)).collect();

        let mut batched = Session::with_faults(&s.net, &s.cp, s.vp, plan, 21);
        let btraces = batched.traceroute_batch(&dsts);

        assert_eq!(straces, btraces);
        assert_eq!(scalar.engine_stats(), batched.engine_stats());
    }

    #[test]
    fn sessions_stream_traces_to_an_attached_sink() {
        use crate::sink::TraceSink;
        use std::sync::{Arc, Mutex};

        #[derive(Default)]
        struct Capture {
            traces: Vec<(usize, Addr)>,
            probe_delta: u64,
        }
        struct Shared(Arc<Mutex<Capture>>);
        impl TraceSink for Shared {
            fn on_trace(&mut self, vp: usize, trace: &Trace) {
                self.0.lock().unwrap().traces.push((vp, trace.dst));
            }
            fn on_stats(&mut self, delta: &EngineStats) {
                self.0.lock().unwrap().probe_delta += delta.probes;
            }
        }

        let s = gns3_fig2(Fig2Config::Default);
        let dsts = [s.target, s.left_addr("PE2")];
        let captured = Arc::new(Mutex::new(Capture::default()));

        let mut sess = Session::new(&s.net, &s.cp, s.vp);
        sess.set_sink(7, Box::new(Shared(captured.clone())));
        let scalar = sess.traceroute(dsts[0]);
        let batched = sess.traceroute_batch(&dsts);
        assert!(sess.take_sink().is_some());
        // Detached: no further streaming.
        let _ = sess.traceroute(dsts[0]);

        let cap = captured.lock().unwrap();
        assert_eq!(
            cap.traces,
            vec![(7, dsts[0]), (7, dsts[0]), (7, dsts[1])],
            "one emission per completed trace, batches in input order"
        );
        assert_eq!(
            cap.probe_delta,
            u64::from(scalar.probes) + batched.iter().map(|t| u64::from(t.probes)).sum::<u64>(),
            "stats deltas account for exactly the emitted traces"
        );
    }

    #[test]
    fn flows_are_stable_per_destination() {
        let s = gns3_fig2(Fig2Config::Default);
        let mut sess = Session::new(&s.net, &s.cp, s.vp);
        let t1 = sess.traceroute(s.target);
        let t2 = sess.traceroute(s.target);
        assert_eq!(t1.flow, t2.flow);
        let other = s.left_addr("PE2");
        let t3 = sess.traceroute(other);
        // Different destination (almost surely) hashes differently; at
        // minimum the trace is still well-formed.
        assert!(t3.responsive_count() > 0);
    }
}
