//! ECMP multipath enumeration by flow-identifier sweeping.
//!
//! Paris traceroute holds the flow constant so one trace sees one
//! consistent path; sweeping the flow identifier instead enumerates the
//! per-flow ECMP branches (the MDA idea). The paper leans on this twice:
//! footnote 11 notes that DPR may reveal an equal-cost *sibling* of the
//! original LSP, and Fig. 9a's small negative mass comes from replies
//! hashed onto different return branches. This module measures exactly
//! that branching.

use crate::trace::Trace;
use crate::traceroute::{traceroute, TracerouteOpts};
use std::collections::BTreeSet;
use wormhole_net::{Addr, Engine, RouterId};

/// The result of a multipath enumeration towards one destination.
#[derive(Debug, Clone)]
pub struct MultipathResult {
    /// The distinct responsive-hop address sequences observed, each with
    /// one flow id that produced it.
    pub paths: Vec<(u16, Vec<Addr>)>,
    /// Per hop position (0-based, from the start TTL): the set of
    /// addresses observed across flows.
    pub hops: Vec<BTreeSet<Addr>>,
    /// Flows probed.
    pub flows: usize,
}

impl MultipathResult {
    /// Number of distinct end-to-end paths seen.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// The hop positions where flows diverge (more than one address).
    pub fn divergent_hops(&self) -> Vec<usize> {
        self.hops
            .iter()
            .enumerate()
            .filter(|(_, s)| s.len() > 1)
            .map(|(i, _)| i)
            .collect()
    }

    /// True when every flow followed the same address sequence.
    pub fn is_single_path(&self) -> bool {
        self.paths.len() <= 1
    }
}

/// Enumerates ECMP branches towards `dst` by running one Paris
/// traceroute per flow id in `0..flows`.
pub fn enumerate_paths(
    eng: &mut Engine<'_>,
    vp: RouterId,
    src: Addr,
    dst: Addr,
    flows: u16,
    opts: &TracerouteOpts,
) -> MultipathResult {
    let mut paths: Vec<(u16, Vec<Addr>)> = Vec::new();
    let mut hops: Vec<BTreeSet<Addr>> = Vec::new();
    for flow in 0..flows {
        let trace: Trace = traceroute(eng, vp, src, dst, flow, 0x4D44, opts);
        let seq: Vec<Addr> = trace.hops.iter().filter_map(|h| h.addr).collect();
        for (i, &a) in seq.iter().enumerate() {
            if hops.len() <= i {
                hops.push(BTreeSet::new());
            }
            hops[i].insert(a);
        }
        if !paths.iter().any(|(_, p)| *p == seq) {
            paths.push((flow, seq));
        }
    }
    MultipathResult {
        paths,
        hops,
        flows: flows as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_net::{
        Asn, ControlPlane, LinkOpts, NetworkBuilder, RelKind, RouterConfig, Vendor,
    };
    use wormhole_topo::{gns3_fig2, Fig2Config};

    #[test]
    fn single_path_topology_yields_one_path() {
        let s = gns3_fig2(Fig2Config::Default);
        let mut eng = Engine::new(&s.net, &s.cp);
        let src = s.net.router(s.vp).loopback;
        let r = enumerate_paths(
            &mut eng,
            s.vp,
            src,
            s.target,
            16,
            &TracerouteOpts::default(),
        );
        assert!(r.is_single_path());
        assert!(r.divergent_hops().is_empty());
        assert_eq!(r.flows, 16);
    }

    #[test]
    fn diamond_topology_exposes_both_branches() {
        // vp - a - {b | c} - d - t : two equal-cost branches at `a`.
        let mut bld = NetworkBuilder::new();
        let cfg = RouterConfig::ip_router(Vendor::CiscoIos);
        let vp = bld.add_router("vp", Asn(1), RouterConfig::host());
        let a = bld.add_router("a", Asn(1), cfg.clone());
        let b = bld.add_router("b", Asn(1), cfg.clone());
        let c = bld.add_router("c", Asn(1), cfg.clone());
        let d = bld.add_router("d", Asn(1), cfg.clone());
        let t = bld.add_router("t", Asn(2), cfg);
        bld.link(vp, a, LinkOpts::default());
        bld.link(a, b, LinkOpts::default());
        bld.link(a, c, LinkOpts::default());
        bld.link(b, d, LinkOpts::default());
        bld.link(c, d, LinkOpts::default());
        bld.link(d, t, LinkOpts::default());
        bld.as_rel(Asn(1), Asn(2), RelKind::ProviderCustomer);
        let net = bld.build().unwrap();
        let cp = ControlPlane::build(&net).unwrap();
        let mut eng = Engine::new(&net, &cp);
        let src = net.router(vp).loopback;
        let dst = net.router(t).loopback;
        let r = enumerate_paths(&mut eng, vp, src, dst, 32, &TracerouteOpts::default());
        assert_eq!(r.path_count(), 2, "both ECMP branches observed");
        // Divergence at the b/c position — and at d, which answers from
        // a different incoming interface per branch (the classic
        // traceroute artifact alias resolution exists to undo).
        assert_eq!(r.divergent_hops(), vec![1, 2]);
        assert_eq!(r.hops[1].len(), 2);
        let d_addrs: Vec<_> = r.hops[2].iter().copied().collect();
        assert!(d_addrs.iter().all(|&x| net.owner(x) == Some(d)));
        // Each flow individually stays consistent (Paris property).
        for (flow, path) in &r.paths {
            let again = traceroute(&mut eng, vp, src, dst, *flow, 1, &TracerouteOpts::default());
            let seq: Vec<Addr> = again.hops.iter().filter_map(|h| h.addr).collect();
            assert_eq!(&seq, path, "flow {flow} must be stable");
        }
    }
}
