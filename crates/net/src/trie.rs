//! A binary radix trie for longest-prefix-match FIB lookups.
//!
//! Path-compressed tries buy little at our table sizes; a plain binary
//! trie with dense child arrays is simple, robust, and fast enough that
//! lookups never show up in campaign profiles (see the `trie` Criterion
//! group). Correctness is cross-checked against a linear scan by a
//! property test.

use crate::addr::{Addr, Prefix};

#[derive(Debug, Clone)]
struct Node<T> {
    children: [Option<usize>; 2],
    value: Option<T>,
}

impl<T> Node<T> {
    fn new() -> Node<T> {
        Node {
            children: [None, None],
            value: None,
        }
    }
}

/// A longest-prefix-match table mapping [`Prefix`]es to values.
#[derive(Debug, Clone)]
pub struct PrefixTrie<T> {
    nodes: Vec<Node<T>>,
    len: usize,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        PrefixTrie::new()
    }
}

impl<T> PrefixTrie<T> {
    /// Creates an empty table.
    pub fn new() -> PrefixTrie<T> {
        PrefixTrie {
            nodes: vec![Node::new()],
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no prefix is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bit(addr: Addr, depth: u8) -> usize {
        ((addr.0 >> (31 - depth)) & 1) as usize
    }

    /// Inserts `prefix → value`, returning the previous value if the
    /// prefix was already present.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let mut node = 0usize;
        for depth in 0..prefix.len {
            let b = Self::bit(prefix.addr, depth);
            node = match self.nodes[node].children[b] {
                Some(next) => next,
                None => {
                    self.nodes.push(Node::new());
                    let next = self.nodes.len() - 1;
                    self.nodes[node].children[b] = Some(next);
                    next
                }
            };
        }
        let old = self.nodes[node].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Exact-match lookup of a stored prefix.
    pub fn get(&self, prefix: Prefix) -> Option<&T> {
        let mut node = 0usize;
        for depth in 0..prefix.len {
            let b = Self::bit(prefix.addr, depth);
            node = self.nodes[node].children[b]?;
        }
        self.nodes[node].value.as_ref()
    }

    /// Removes an exact prefix, returning its value. (Nodes are not
    /// reclaimed; tables are built once and queried many times.)
    pub fn remove(&mut self, prefix: Prefix) -> Option<T> {
        let mut node = 0usize;
        for depth in 0..prefix.len {
            let b = Self::bit(prefix.addr, depth);
            node = self.nodes[node].children[b]?;
        }
        let old = self.nodes[node].value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Longest-prefix-match: the most specific stored prefix containing
    /// `addr`, with its value.
    pub fn lookup(&self, addr: Addr) -> Option<(Prefix, &T)> {
        let mut node = 0usize;
        let mut best: Option<(u8, &T)> = None;
        if let Some(v) = self.nodes[node].value.as_ref() {
            best = Some((0, v));
        }
        for depth in 0..32u8 {
            let b = Self::bit(addr, depth);
            match self.nodes[node].children[b] {
                Some(next) => {
                    node = next;
                    if let Some(v) = self.nodes[node].value.as_ref() {
                        best = Some((depth + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, v)| (Prefix::new(Addr(addr.0 & Prefix::mask(len)), len), v))
    }

    /// Iterates over all stored `(prefix, value)` pairs in trie order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &T)> + '_ {
        // Depth-first walk carrying the accumulated prefix bits.
        let mut stack = vec![(0usize, 0u32, 0u8)];
        std::iter::from_fn(move || {
            while let Some((node, bits, depth)) = stack.pop() {
                for b in [1usize, 0usize] {
                    if let Some(next) = self.nodes[node].children[b] {
                        let nbits = bits | ((b as u32) << (31 - depth));
                        stack.push((next, nbits, depth + 1));
                    }
                }
                if let Some(v) = self.nodes[node].value.as_ref() {
                    return Some((Prefix::new(Addr(bits), depth), v));
                }
            }
            None
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }
    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), "big");
        t.insert(p("10.1.0.0/16"), "mid");
        t.insert(p("10.1.2.0/24"), "small");
        assert_eq!(t.lookup(a("10.1.2.3")).unwrap().1, &"small");
        assert_eq!(t.lookup(a("10.1.9.9")).unwrap().1, &"mid");
        assert_eq!(t.lookup(a("10.9.9.9")).unwrap().1, &"big");
        assert!(t.lookup(a("11.0.0.1")).is_none());
    }

    #[test]
    fn lookup_reports_matched_prefix() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.1.0.0/16"), 1);
        let (matched, _) = t.lookup(a("10.1.200.4")).unwrap();
        assert_eq!(matched, p("10.1.0.0/16"));
    }

    #[test]
    fn default_route() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), "default");
        t.insert(p("10.0.0.0/8"), "ten");
        assert_eq!(t.lookup(a("8.8.8.8")).unwrap().1, &"default");
        assert_eq!(t.lookup(a("10.8.8.8")).unwrap().1, &"ten");
    }

    #[test]
    fn host_routes() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.1.2.3/32"), "host");
        t.insert(p("10.1.2.0/31"), "link");
        assert_eq!(t.lookup(a("10.1.2.3")).unwrap().1, &"host");
        assert_eq!(t.lookup(a("10.1.2.1")).unwrap().1, &"link");
        assert!(t.lookup(a("10.1.2.4")).is_none());
    }

    #[test]
    fn insert_replaces_and_remove_deletes() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(p("10.0.0.0/8")), Some(2));
        assert!(t.is_empty());
        assert!(t.lookup(a("10.0.0.1")).is_none());
        assert_eq!(t.remove(p("10.0.0.0/8")), None);
    }

    #[test]
    fn get_is_exact_only() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&1));
        assert_eq!(t.get(p("10.0.0.0/16")), None);
        assert_eq!(t.get(p("10.0.0.0/7")), None);
    }

    #[test]
    fn iter_yields_all_entries() {
        let mut t = PrefixTrie::new();
        let prefixes = ["10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/24", "0.0.0.0/0"];
        for (i, s) in prefixes.iter().enumerate() {
            t.insert(p(s), i);
        }
        let mut got: Vec<Prefix> = t.iter().map(|(pfx, _)| pfx).collect();
        got.sort();
        let mut want: Vec<Prefix> = prefixes.iter().map(|s| p(s)).collect();
        want.sort();
        assert_eq!(got, want);
    }
}
