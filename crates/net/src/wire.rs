//! Hand-rolled length-prefixed binary codec for the files the
//! distributed campaign exchanges (shard specs, shard results, the
//! substrate cache).
//!
//! The format is deliberately boring: little-endian fixed-width
//! integers, `u64` length prefixes on sequences, one tag byte per
//! `Option`/`Result`/enum variant, and `f64` as raw IEEE-754 bits so
//! every value round-trips *exactly* — the distributed merge promises
//! byte-identical campaign reports, so the codec must never lose a bit
//! to text formatting. There is no versioning or reflection here;
//! every file that uses the codec carries its own magic + version
//! header and is consumed by the same build that wrote it.

use std::fmt;

/// Why decoding failed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated,
    /// The bytes decoded to an impossible value (bad tag, length
    /// overflow, non-UTF-8 string …).
    Corrupt(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated input"),
            WireError::Corrupt(what) => write!(f, "corrupt input: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A cursor over a byte buffer being decoded.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte was consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes the next `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
}

/// A value with an exact binary encoding. `put` appends the encoding to
/// `out`; `take` consumes exactly what `put` wrote. Round-trip is
/// byte-exact: `take(put(v)) == v` and re-encoding yields the same
/// bytes.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `out`.
    fn put(&self, out: &mut Vec<u8>);
    /// Decodes one value from `r`.
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn put(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
                let bytes = r.take_bytes(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("sized take")))
            }
        }
    )*};
}

wire_int!(u8, u16, u32, u64);

impl Wire for usize {
    fn put(&self, out: &mut Vec<u8>) {
        (*self as u64).put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        usize::try_from(u64::take(r)?).map_err(|_| WireError::Corrupt("usize overflow"))
    }
}

impl Wire for bool {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::take(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Corrupt("bool tag")),
        }
    }
}

impl Wire for f64 {
    /// Raw IEEE-754 bits: the round-trip is exact, including NaN
    /// payloads and signed zeros.
    fn put(&self, out: &mut Vec<u8>) {
        self.to_bits().put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::take(r)?))
    }
}

impl Wire for String {
    fn put(&self, out: &mut Vec<u8>) {
        self.len().put(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = usize::take(r)?;
        let bytes = r.take_bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Corrupt("non-UTF-8 string"))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.put(out);
            }
        }
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::take(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::take(r)?)),
            _ => Err(WireError::Corrupt("Option tag")),
        }
    }
}

impl<T: Wire, E: Wire> Wire for Result<T, E> {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            Ok(v) => {
                out.push(0);
                v.put(out);
            }
            Err(e) => {
                out.push(1);
                e.put(out);
            }
        }
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::take(r)? {
            0 => Ok(Ok(T::take(r)?)),
            1 => Ok(Err(E::take(r)?)),
            _ => Err(WireError::Corrupt("Result tag")),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn put(&self, out: &mut Vec<u8>) {
        self.len().put(out);
        for v in self {
            v.put(out);
        }
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = usize::take(r)?;
        // Guard the pre-allocation: a corrupt length must not OOM the
        // process before the (inevitable) Truncated error surfaces.
        let mut out = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            out.push(T::take(r)?);
        }
        Ok(out)
    }
}

macro_rules! wire_tuple {
    ($($name:ident),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn put(&self, out: &mut Vec<u8>) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.put(out);)+
            }
            fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
                Ok(($($name::take(r)?,)+))
            }
        }
    };
}

wire_tuple!(A, B);
wire_tuple!(A, B, C);
wire_tuple!(A, B, C, D);

impl Wire for crate::Addr {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(crate::Addr(u32::take(r)?))
    }
}

impl Wire for crate::RouterId {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(crate::RouterId(u32::take(r)?))
    }
}

impl Wire for crate::Label {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(crate::Label(u32::take(r)?))
    }
}

impl Wire for crate::Asn {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(crate::Asn(u32::take(r)?))
    }
}

impl Wire for crate::Lse {
    fn put(&self, out: &mut Vec<u8>) {
        self.label.put(out);
        self.tc.put(out);
        self.bottom.put(out);
        self.ttl.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(crate::Lse {
            label: crate::Label::take(r)?,
            tc: u8::take(r)?,
            bottom: bool::take(r)?,
            ttl: u8::take(r)?,
        })
    }
}

impl Wire for crate::ReplyKind {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(match self {
            crate::ReplyKind::EchoReply => 0,
            crate::ReplyKind::TimeExceeded => 1,
            crate::ReplyKind::DestUnreachable => 2,
        });
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match u8::take(r)? {
            0 => crate::ReplyKind::EchoReply,
            1 => crate::ReplyKind::TimeExceeded,
            2 => crate::ReplyKind::DestUnreachable,
            _ => return Err(WireError::Corrupt("ReplyKind tag")),
        })
    }
}

impl Wire for crate::RouteClass {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(match self {
            crate::RouteClass::Customer => 0,
            crate::RouteClass::Peer => 1,
            crate::RouteClass::Provider => 2,
        });
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match u8::take(r)? {
            0 => crate::RouteClass::Customer,
            1 => crate::RouteClass::Peer,
            2 => crate::RouteClass::Provider,
            _ => return Err(WireError::Corrupt("RouteClass tag")),
        })
    }
}

impl Wire for crate::Bgp {
    fn put(&self, out: &mut Vec<u8>) {
        self.next_as.put(out);
        self.route.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(crate::Bgp {
            next_as: Wire::take(r)?,
            route: Wire::take(r)?,
        })
    }
}

impl Wire for crate::ExtRoute {
    /// Packed into one `u32`: tag in the low two bits, payload above —
    /// the external-route table is the bulk of the substrate cache
    /// (`n_as × num_routers` entries), so every entry stays four bytes.
    fn put(&self, out: &mut Vec<u8>) {
        let packed: u32 = match *self {
            crate::ExtRoute::Unreachable => 0,
            crate::ExtRoute::Direct { iface } => 1 | (iface << 2),
            crate::ExtRoute::ViaEgress { egress } => 2 | (egress.0 << 2),
        };
        packed.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let packed = u32::take(r)?;
        Ok(match packed & 0b11 {
            0 if packed == 0 => crate::ExtRoute::Unreachable,
            1 => crate::ExtRoute::Direct { iface: packed >> 2 },
            2 => crate::ExtRoute::ViaEgress {
                egress: crate::RouterId(packed >> 2),
            },
            _ => return Err(WireError::Corrupt("ExtRoute tag")),
        })
    }
}

impl Wire for crate::EngineStats {
    fn put(&self, out: &mut Vec<u8>) {
        self.probes.put(out);
        self.crossings.put(out);
        self.replies.put(out);
        self.lost.put(out);
        self.heap_allocs.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(crate::EngineStats {
            probes: u64::take(r)?,
            crossings: u64::take(r)?,
            replies: u64::take(r)?,
            lost: u64::take(r)?,
            heap_allocs: u64::take(r)?,
        })
    }
}

impl Wire for crate::RateLimit {
    fn put(&self, out: &mut Vec<u8>) {
        self.per_sec.put(out);
        self.burst.put(out);
        self.mpls_only.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(crate::RateLimit {
            per_sec: f64::take(r)?,
            burst: f64::take(r)?,
            mpls_only: bool::take(r)?,
        })
    }
}

impl Wire for crate::SilentSet {
    fn put(&self, out: &mut Vec<u8>) {
        self.share.put(out);
        self.salt.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(crate::SilentSet {
            share: f64::take(r)?,
            salt: u64::take(r)?,
        })
    }
}

impl Wire for crate::FlapSchedule {
    fn put(&self, out: &mut Vec<u8>) {
        self.share.put(out);
        self.salt.put(out);
        self.period_ms.put(out);
        self.down_ms.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(crate::FlapSchedule {
            share: f64::take(r)?,
            salt: u64::take(r)?,
            period_ms: f64::take(r)?,
            down_ms: f64::take(r)?,
        })
    }
}

impl Wire for crate::TtlSpoof {
    fn put(&self, out: &mut Vec<u8>) {
        self.share.put(out);
        self.salt.put(out);
        self.per_probe.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(crate::TtlSpoof {
            share: f64::take(r)?,
            salt: u64::take(r)?,
            per_probe: bool::take(r)?,
        })
    }
}

impl Wire for crate::NonParisLb {
    fn put(&self, out: &mut Vec<u8>) {
        self.share.put(out);
        self.salt.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(crate::NonParisLb {
            share: f64::take(r)?,
            salt: u64::take(r)?,
        })
    }
}

impl Wire for crate::EgressHide {
    fn put(&self, out: &mut Vec<u8>) {
        self.share.put(out);
        self.salt.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(crate::EgressHide {
            share: f64::take(r)?,
            salt: u64::take(r)?,
        })
    }
}

impl Wire for crate::FaultPlan {
    /// The full plan travels in every shard spec so a worker process
    /// reproduces the master's fault behavior bit for bit — floats as
    /// raw IEEE bits, every optional behavior tagged.
    fn put(&self, out: &mut Vec<u8>) {
        self.loss.put(out);
        self.icmp_loss.put(out);
        self.jitter_ms.put(out);
        self.te_limit.put(out);
        self.er_limit.put(out);
        self.silent.put(out);
        self.flaps.put(out);
        self.ttl_spoof.put(out);
        self.non_paris.put(out);
        self.egress_hide.put(out);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(crate::FaultPlan {
            loss: f64::take(r)?,
            icmp_loss: f64::take(r)?,
            jitter_ms: f64::take(r)?,
            te_limit: Wire::take(r)?,
            er_limit: Wire::take(r)?,
            silent: Wire::take(r)?,
            flaps: Wire::take(r)?,
            ttl_spoof: Wire::take(r)?,
            non_paris: Wire::take(r)?,
            egress_hide: Wire::take(r)?,
        })
    }
}

/// FNV-1a (64-bit) over a byte buffer — the integrity checksum trailing
/// every shard/cache file. Not cryptographic; it catches truncation and
/// bit rot, which is all a same-machine file handoff needs.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes one value to a fresh buffer (convenience for file writers).
pub fn to_bytes<T: Wire>(v: &T) -> Vec<u8> {
    let mut out = Vec::new();
    v.put(&mut out);
    out
}

/// Decodes one value from a buffer, requiring every byte be consumed.
pub fn from_bytes<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(bytes);
    let v = T::take(&mut r)?;
    if !r.is_empty() {
        return Err(WireError::Corrupt("trailing bytes"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Addr, EngineStats, Label, Lse, ReplyKind};

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        assert_eq!(from_bytes::<T>(&bytes).expect("decodes"), v);
        // Re-encoding is byte-stable.
        assert_eq!(to_bytes(&from_bytes::<T>(&bytes).unwrap()), bytes);
    }

    #[test]
    fn primitives_round_trip_exactly() {
        round_trip(0u8);
        round_trip(u16::MAX);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(String::from("wörmhole"));
        round_trip(-0.0f64);
        round_trip(f64::MAX);
        // NaN needs a bit-level comparison.
        let bytes = to_bytes(&f64::NAN);
        assert_eq!(
            from_bytes::<f64>(&bytes).unwrap().to_bits(),
            f64::NAN.to_bits()
        );
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u32, 2, 3]);
        round_trip(Option::<u64>::None);
        round_trip(Some(vec![String::from("a"), String::from("b")]));
        round_trip(Result::<u32, String>::Ok(7));
        round_trip(Result::<u32, String>::Err("worker panicked".into()));
        round_trip((Addr::new(10, 0, 0, 1), 3u8, Some(2.5f64)));
    }

    #[test]
    fn domain_types_round_trip() {
        round_trip(Addr::new(192, 168, 0, 1));
        round_trip(crate::RouterId(41));
        round_trip(crate::Asn(3257));
        round_trip(Lse::new(Label(19), 1));
        round_trip(ReplyKind::TimeExceeded);
        round_trip(crate::ExtRoute::Unreachable);
        round_trip(crate::ExtRoute::Direct { iface: 3 });
        round_trip(crate::ExtRoute::ViaEgress {
            egress: crate::RouterId(14_000),
        });
        round_trip(crate::RouteClass::Peer);
        round_trip(EngineStats {
            probes: 1,
            crossings: 2,
            replies: 3,
            lost: 4,
            heap_allocs: 0,
        });
    }

    #[test]
    fn fault_plan_round_trips() {
        round_trip(crate::FaultPlan::none());
        round_trip(crate::FaultPlan {
            loss: 0.02,
            icmp_loss: 0.01,
            jitter_ms: 0.5,
            te_limit: Some(crate::RateLimit {
                per_sec: 10.0,
                burst: 4.0,
                mpls_only: true,
            }),
            er_limit: None,
            silent: Some(crate::SilentSet {
                share: 0.1,
                salt: 7,
            }),
            flaps: Some(crate::FlapSchedule {
                share: 0.05,
                salt: 9,
                period_ms: 100.0,
                down_ms: 10.0,
            }),
            ttl_spoof: Some(crate::TtlSpoof {
                share: 0.2,
                salt: 3,
                per_probe: false,
            }),
            non_paris: Some(crate::NonParisLb {
                share: 0.1,
                salt: 5,
            }),
            egress_hide: Some(crate::EgressHide {
                share: 0.3,
                salt: 1,
            }),
        });
    }

    #[test]
    fn corrupt_input_is_a_typed_error() {
        assert_eq!(
            from_bytes::<bool>(&[9]),
            Err(WireError::Corrupt("bool tag"))
        );
        assert_eq!(from_bytes::<u32>(&[1, 2]), Err(WireError::Truncated));
        let mut ok = to_bytes(&vec![1u8, 2]);
        ok.push(0xFF);
        assert_eq!(
            from_bytes::<Vec<u8>>(&ok),
            Err(WireError::Corrupt("trailing bytes"))
        );
        // A forged huge length dies with Truncated, not an OOM.
        let mut huge = Vec::new();
        u64::MAX.put(&mut huge);
        assert_eq!(from_bytes::<Vec<u8>>(&huge), Err(WireError::Truncated));
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        let a = checksum(b"wormhole");
        assert_eq!(a, checksum(b"wormhole"));
        assert_ne!(a, checksum(b"wormhol3"));
        assert_ne!(checksum(b""), 0);
    }
}
