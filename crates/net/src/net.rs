//! The network container and its builder.

use crate::addr::{Addr, AddrAllocator, Prefix};
use crate::error::NetError;
use crate::ids::{Asn, LinkId, PortRef, RouterId};
use crate::router::{Interface, Router, RouterConfig};
use crate::te::TeTunnel;
use crate::vendor::PoppingMode;
use std::collections::HashMap;

/// A bidirectional point-to-point link between two router interfaces.
#[derive(Clone, Debug)]
pub struct Link {
    /// Dense identifier.
    pub id: LinkId,
    /// One endpoint.
    pub a: PortRef,
    /// The other endpoint.
    pub b: PortRef,
    /// The shared `/31` subnet.
    pub prefix: Prefix,
    /// One-way propagation delay in milliseconds.
    pub delay_ms: f64,
    /// IGP metric in the a→b direction.
    pub metric_ab: u32,
    /// IGP metric in the b→a direction.
    pub metric_ba: u32,
    /// True when the endpoints are in different ASes (an eBGP link).
    pub inter_as: bool,
}

/// Business relationship between two ASes (Gao–Rexford model).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RelKind {
    /// The first AS is the *provider* of the second.
    ProviderCustomer,
    /// Settlement-free peering.
    Peer,
}

/// An AS-level relationship edge.
#[derive(Copy, Clone, Debug)]
pub struct AsRel {
    /// First AS (the provider for [`RelKind::ProviderCustomer`]).
    pub a: Asn,
    /// Second AS (the customer for [`RelKind::ProviderCustomer`]).
    pub b: Asn,
    /// The relationship kind.
    pub kind: RelKind,
}

/// Options for a new link.
#[derive(Copy, Clone, Debug)]
pub struct LinkOpts {
    /// One-way propagation delay in milliseconds.
    pub delay_ms: f64,
    /// IGP metric a→b.
    pub metric_ab: u32,
    /// IGP metric b→a.
    pub metric_ba: u32,
}

impl Default for LinkOpts {
    fn default() -> LinkOpts {
        LinkOpts {
            delay_ms: 1.0,
            metric_ab: 10,
            metric_ba: 10,
        }
    }
}

impl LinkOpts {
    /// Symmetric metric and delay.
    pub fn symmetric(metric: u32, delay_ms: f64) -> LinkOpts {
        LinkOpts {
            delay_ms,
            metric_ab: metric,
            metric_ba: metric,
        }
    }
}

/// An immutable network: routers, links, AS relationships, and the
/// address-ownership index. Built once through [`NetworkBuilder`]; the
/// control plane ([`crate::control::ControlPlane`]) is computed from it.
#[derive(Clone, Debug)]
pub struct Network {
    routers: Vec<Router>,
    links: Vec<Link>,
    as_rels: Vec<AsRel>,
    te_tunnels: Vec<TeTunnel>,
    addr_owner: HashMap<Addr, RouterId>,
    as_list: Vec<Asn>,
    as_index: HashMap<Asn, usize>,
    as_members: Vec<Vec<RouterId>>,
}

impl Network {
    /// All routers, indexed by [`RouterId`].
    pub fn routers(&self) -> &[Router] {
        &self.routers
    }

    /// The router with the given id.
    pub fn router(&self, id: RouterId) -> &Router {
        &self.routers[id.index()]
    }

    /// All links, indexed by [`LinkId`].
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The link with the given id.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// The declared AS-level relationships.
    pub fn as_rels(&self) -> &[AsRel] {
        &self.as_rels
    }

    /// The configured RSVP-TE tunnels.
    pub fn te_tunnels(&self) -> &[TeTunnel] {
        &self.te_tunnels
    }

    /// The router owning `addr` (loopback or interface address).
    pub fn owner(&self, addr: Addr) -> Option<RouterId> {
        self.addr_owner.get(&addr).copied()
    }

    /// The AS owning `addr`, through its owner router.
    pub fn owner_asn(&self, addr: Addr) -> Option<Asn> {
        self.owner(addr).map(|r| self.router(r).asn)
    }

    /// All ASes present, in registration order.
    pub fn as_list(&self) -> &[Asn] {
        &self.as_list
    }

    /// The dense index of an AS (used by per-AS control-plane tables).
    pub fn as_index(&self, asn: Asn) -> Option<usize> {
        self.as_index.get(&asn).copied()
    }

    /// The routers of an AS.
    pub fn as_members(&self, asn: Asn) -> &[RouterId] {
        match self.as_index(asn) {
            Some(i) => &self.as_members[i],
            None => &[],
        }
    }

    /// A router by name (linear scan; intended for scenarios/tests).
    pub fn router_by_name(&self, name: &str) -> Option<&Router> {
        self.routers.iter().find(|r| r.name == name)
    }

    /// Number of routers.
    pub fn num_routers(&self) -> usize {
        self.routers.len()
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Iterates over every address in the network with its owner.
    pub fn addresses(&self) -> impl Iterator<Item = (Addr, RouterId)> + '_ {
        self.addr_owner.iter().map(|(a, r)| (*a, *r))
    }

    /// Rebinds `addr` to `owner` in the memoized owner hash without
    /// touching the routers that actually hold the address (test-only
    /// mutation hook for the D511 owner-hash invariant check).
    #[cfg(feature = "mutation")]
    pub fn poison_owner(&mut self, addr: Addr, owner: RouterId) {
        self.addr_owner.insert(addr, owner);
    }

    /// Border routers of `asn`: members with at least one inter-AS link.
    pub fn borders(&self, asn: Asn) -> Vec<RouterId> {
        self.as_members(asn)
            .iter()
            .copied()
            .filter(|&r| {
                self.router(r)
                    .ifaces
                    .iter()
                    .any(|i| self.link(i.link).inter_as)
            })
            .collect()
    }
}

/// Incrementally constructs a [`Network`].
///
/// Loopbacks are auto-allocated as `10.<as-index>.0.0/18` host addresses
/// and intra-AS link subnets from `10.<as-index>.64.0/18` for the first
/// 246 ASes (denser `/20` pools in the upper halves of the same space
/// carry the plan to 1266 ASes — see `NetworkBuilder::as_pools`);
/// inter-AS link subnets come from the shared `172.16.0.0/12` pool, so
/// address ownership is readable straight from traces. Explicit
/// addresses can be supplied for hand-built scenarios.
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    routers: Vec<Router>,
    links: Vec<Link>,
    as_rels: Vec<AsRel>,
    te_tunnels: Vec<TeTunnel>,
    as_list: Vec<Asn>,
    as_index: HashMap<Asn, usize>,
    loopback_alloc: Vec<AddrAllocator>,
    link_alloc: Vec<AddrAllocator>,
    inter_as_alloc: Option<AddrAllocator>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> NetworkBuilder {
        NetworkBuilder::default()
    }

    fn as_slot(&mut self, asn: Asn) -> usize {
        if let Some(&i) = self.as_index.get(&asn) {
            return i;
        }
        let i = self.as_list.len();
        let (loopbacks, links) = NetworkBuilder::as_pools(i);
        self.as_list.push(asn);
        self.as_index.insert(asn, i);
        self.loopback_alloc.push(AddrAllocator::new(loopbacks));
        self.link_alloc.push(AddrAllocator::new(links));
        i
    }

    /// The address plan: AS slot → `(loopback pool, intra-AS link
    /// pool)`.
    ///
    /// The first 246 slots keep the original `/18` pair in the lower
    /// half of `10.<slot+1>.0.0/16`, so every address of a topology
    /// that fit the old plan is byte-identical under this one. Slots
    /// beyond 245 pack four ASes per second octet as `/20` pairs in
    /// the **upper** half (`.128.0` and up), which the legacy plan
    /// never touched — capacity 246 + 255·4 = 1266 ASes, enough for
    /// thousand-AS internets, with 4094 loopbacks and 2048 `/31` link
    /// subnets per extended AS.
    ///
    /// # Panics
    /// When `i` exceeds the 1266-slot plan.
    fn as_pools(i: usize) -> (Prefix, Prefix) {
        if i < 246 {
            let base = (i + 1) as u8; // 10.0/16 reserved for hosts-less use
            (
                Prefix::new(Addr::new(10, base, 0, 0), 18),
                Prefix::new(Addr::new(10, base, 64, 0), 18),
            )
        } else {
            let j = i - 246;
            let second = 1 + j / 4;
            assert!(second <= 255, "address plan supports at most 1266 ASes");
            let third = 128 + (j % 4) as u8 * 32;
            (
                Prefix::new(Addr::new(10, second as u8, third, 0), 20),
                Prefix::new(Addr::new(10, second as u8, third + 16, 0), 20),
            )
        }
    }

    /// Adds a router with an auto-allocated loopback.
    pub fn add_router(&mut self, name: &str, asn: Asn, config: RouterConfig) -> RouterId {
        let slot = self.as_slot(asn);
        let loopback = self.loopback_alloc[slot]
            .alloc_host()
            .expect("loopback pool exhausted");
        self.add_router_with_loopback(name, asn, config, loopback)
    }

    /// Adds a router with an explicit loopback address.
    pub fn add_router_with_loopback(
        &mut self,
        name: &str,
        asn: Asn,
        config: RouterConfig,
        loopback: Addr,
    ) -> RouterId {
        self.as_slot(asn);
        let id = RouterId(self.routers.len() as u32);
        self.routers.push(Router {
            id,
            name: name.to_string(),
            asn,
            loopback,
            ifaces: Vec::new(),
            config,
        });
        id
    }

    /// Connects two routers with an auto-allocated `/31` subnet. Returns
    /// the new link id. Intra-AS subnets come from the first router's AS
    /// pool; inter-AS subnets from the shared pool.
    pub fn link(&mut self, a: RouterId, b: RouterId, opts: LinkOpts) -> LinkId {
        let (asn_a, asn_b) = (self.routers[a.index()].asn, self.routers[b.index()].asn);
        let prefix = if asn_a == asn_b {
            let slot = self.as_index[&asn_a];
            self.link_alloc[slot]
                .alloc_subnet(31)
                .expect("link pool exhausted")
        } else {
            self.inter_as_alloc
                .get_or_insert_with(|| {
                    AddrAllocator::new(Prefix::new(Addr::new(172, 16, 0, 0), 12))
                })
                .alloc_subnet(31)
                .expect("inter-AS link pool exhausted")
        };
        self.link_with_prefix(a, b, prefix, opts)
    }

    /// Connects two routers over an explicit `/31` subnet: `a` receives
    /// the even address, `b` the odd one.
    pub fn link_with_prefix(
        &mut self,
        a: RouterId,
        b: RouterId,
        prefix: Prefix,
        opts: LinkOpts,
    ) -> LinkId {
        assert_eq!(prefix.len, 31, "links use /31 subnets");
        assert_ne!(a, b, "self-links are not allowed");
        let id = LinkId(self.links.len() as u32);
        let (addr_a, addr_b) = (prefix.nth(0), prefix.nth(1));
        let iface_a = self.routers[a.index()].ifaces.len() as u32;
        let iface_b = self.routers[b.index()].ifaces.len() as u32;
        let inter_as = self.routers[a.index()].asn != self.routers[b.index()].asn;
        self.routers[a.index()].ifaces.push(Interface {
            addr: addr_a,
            prefix,
            link: id,
            peer: b,
            peer_addr: addr_b,
        });
        self.routers[b.index()].ifaces.push(Interface {
            addr: addr_b,
            prefix,
            link: id,
            peer: a,
            peer_addr: addr_a,
        });
        self.links.push(Link {
            id,
            a: PortRef {
                router: a,
                iface: iface_a,
            },
            b: PortRef {
                router: b,
                iface: iface_b,
            },
            prefix,
            delay_ms: opts.delay_ms,
            metric_ab: opts.metric_ab,
            metric_ba: opts.metric_ba,
            inter_as,
        });
        id
    }

    /// Declares an AS-level business relationship.
    pub fn as_rel(&mut self, a: Asn, b: Asn, kind: RelKind) {
        self.as_rels.push(AsRel { a, b, kind });
    }

    /// Pins an RSVP-TE tunnel along an explicit router path (head LER
    /// first, tail LER last). Validated when the control plane is
    /// built. Returns the tunnel id.
    pub fn te_tunnel(&mut self, path: Vec<RouterId>, popping: PoppingMode) -> u32 {
        let id = self.te_tunnels.len() as u32;
        self.te_tunnels.push(TeTunnel { id, path, popping });
        id
    }

    /// Finalises the network, validating address uniqueness.
    pub fn build(self) -> Result<Network, NetError> {
        let mut addr_owner = HashMap::new();
        for r in &self.routers {
            if let Some(prev) = addr_owner.insert(r.loopback, r.id) {
                return Err(NetError::DuplicateAddress {
                    addr: r.loopback,
                    first: prev,
                    second: r.id,
                });
            }
            for i in &r.ifaces {
                if let Some(prev) = addr_owner.insert(i.addr, r.id) {
                    return Err(NetError::DuplicateAddress {
                        addr: i.addr,
                        first: prev,
                        second: r.id,
                    });
                }
            }
        }
        let mut as_members = vec![Vec::new(); self.as_list.len()];
        for r in &self.routers {
            as_members[self.as_index[&r.asn]].push(r.id);
        }
        Ok(Network {
            routers: self.routers,
            links: self.links,
            as_rels: self.as_rels,
            te_tunnels: self.te_tunnels,
            addr_owner,
            as_list: self.as_list,
            as_index: self.as_index,
            as_members,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vendor::Vendor;

    fn two_as_net() -> Network {
        let mut b = NetworkBuilder::new();
        let r1 = b.add_router("A1", Asn(1), RouterConfig::ip_router(Vendor::CiscoIos));
        let r2 = b.add_router("A2", Asn(1), RouterConfig::ip_router(Vendor::CiscoIos));
        let r3 = b.add_router("B1", Asn(2), RouterConfig::ip_router(Vendor::JuniperJunos));
        b.link(r1, r2, LinkOpts::default());
        b.link(r2, r3, LinkOpts::default());
        b.as_rel(Asn(1), Asn(2), RelKind::ProviderCustomer);
        b.build().unwrap()
    }

    #[test]
    fn builder_allocates_readable_addresses() {
        let net = two_as_net();
        let a1 = net.router_by_name("A1").unwrap();
        assert_eq!(a1.loopback, Addr::new(10, 1, 0, 0));
        let b1 = net.router_by_name("B1").unwrap();
        assert_eq!(b1.loopback, Addr::new(10, 2, 0, 0));
        // Intra-AS link in AS1's pool, inter-AS link in 172.16/12.
        assert_eq!(net.link(LinkId(0)).prefix.addr, Addr::new(10, 1, 64, 0));
        assert_eq!(net.link(LinkId(1)).prefix.addr.octets()[0], 172);
        assert!(net.link(LinkId(1)).inter_as);
        assert!(!net.link(LinkId(0)).inter_as);
    }

    #[test]
    fn owner_index() {
        let net = two_as_net();
        let a2 = net.router_by_name("A2").unwrap();
        assert_eq!(net.owner(a2.loopback), Some(a2.id));
        assert_eq!(net.owner(a2.ifaces[0].addr), Some(a2.id));
        assert_eq!(net.owner_asn(a2.loopback), Some(Asn(1)));
        assert_eq!(net.owner(Addr::new(9, 9, 9, 9)), None);
    }

    #[test]
    fn membership_and_borders() {
        let net = two_as_net();
        assert_eq!(net.as_members(Asn(1)).len(), 2);
        assert_eq!(net.as_members(Asn(2)).len(), 1);
        assert_eq!(net.as_members(Asn(7)).len(), 0);
        let borders = net.borders(Asn(1));
        assert_eq!(borders, vec![net.router_by_name("A2").unwrap().id]);
    }

    #[test]
    fn duplicate_addresses_rejected() {
        let mut b = NetworkBuilder::new();
        let lo = Addr::new(10, 9, 9, 9);
        b.add_router_with_loopback("X", Asn(1), RouterConfig::host(), lo);
        b.add_router_with_loopback("Y", Asn(1), RouterConfig::host(), lo);
        assert!(matches!(b.build(), Err(NetError::DuplicateAddress { .. })));
    }

    #[test]
    fn address_plan_extends_past_246_ases_without_moving_legacy_pools() {
        // Legacy slots keep the exact /18 pairs (byte-compatibility
        // with every pre-extension topology)...
        assert_eq!(
            NetworkBuilder::as_pools(0),
            (
                Prefix::new(Addr::new(10, 1, 0, 0), 18),
                Prefix::new(Addr::new(10, 1, 64, 0), 18)
            )
        );
        assert_eq!(
            NetworkBuilder::as_pools(245),
            (
                Prefix::new(Addr::new(10, 246, 0, 0), 18),
                Prefix::new(Addr::new(10, 246, 64, 0), 18)
            )
        );
        // ...and extended slots pack /20 pairs into the upper halves.
        assert_eq!(
            NetworkBuilder::as_pools(246),
            (
                Prefix::new(Addr::new(10, 1, 128, 0), 20),
                Prefix::new(Addr::new(10, 1, 144, 0), 20)
            )
        );
        assert_eq!(
            NetworkBuilder::as_pools(249),
            (
                Prefix::new(Addr::new(10, 1, 224, 0), 20),
                Prefix::new(Addr::new(10, 1, 240, 0), 20)
            )
        );
        assert_eq!(
            NetworkBuilder::as_pools(1265),
            (
                Prefix::new(Addr::new(10, 255, 224, 0), 20),
                Prefix::new(Addr::new(10, 255, 240, 0), 20)
            )
        );
        // No pool overlaps any other across the whole plan.
        let pools: Vec<Prefix> = (0..1266)
            .flat_map(|i| {
                let (lo, li) = NetworkBuilder::as_pools(i);
                [lo, li]
            })
            .collect();
        for (i, a) in pools.iter().enumerate() {
            for b in &pools[i + 1..] {
                assert!(
                    !a.covers(b) && !b.covers(a),
                    "pools {a:?} and {b:?} overlap"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at most 1266")]
    fn address_plan_rejects_slot_1266() {
        let _ = NetworkBuilder::as_pools(1266);
    }

    #[test]
    fn thousand_as_builder_allocates_disjoint_addresses() {
        let mut b = NetworkBuilder::new();
        let mut ids = Vec::new();
        for asn in 0..1000u32 {
            let r1 = b.add_router(
                &format!("R{asn}a"),
                Asn(asn + 1),
                RouterConfig::ip_router(Vendor::CiscoIos),
            );
            let r2 = b.add_router(
                &format!("R{asn}b"),
                Asn(asn + 1),
                RouterConfig::ip_router(Vendor::CiscoIos),
            );
            b.link(r1, r2, LinkOpts::default());
            ids.push(r1);
        }
        // Chain the ASes so the network is connected.
        for w in ids.windows(2) {
            b.link(w[0], w[1], LinkOpts::default());
        }
        for asn in 1..1000u32 {
            b.as_rel(Asn(asn), Asn(asn + 1), RelKind::Peer);
        }
        let net = b.build().expect("duplicate-free thousand-AS address plan");
        assert_eq!(net.routers().len(), 2000);
        // Legacy region untouched: first AS still gets the old bytes.
        assert_eq!(net.routers()[0].loopback, Addr::new(10, 1, 0, 0));
        // Extended region in the upper halves.
        let r = &net.routers()[2 * 246];
        assert_eq!(r.loopback.octets()[2] & 0x80, 0x80);
        assert_eq!(net.owner(r.loopback), Some(r.id));
    }

    #[test]
    fn link_endpoints_see_each_other() {
        let net = two_as_net();
        let a1 = net.router_by_name("A1").unwrap();
        let a2 = net.router_by_name("A2").unwrap();
        let i = &a1.ifaces[0];
        assert_eq!(i.peer, a2.id);
        assert_eq!(i.peer_addr, a2.ifaces[0].addr);
        assert_eq!(i.prefix, a2.ifaces[0].prefix);
        assert_ne!(i.addr, a2.ifaces[0].addr);
    }
}
