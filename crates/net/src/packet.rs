//! Packet model: IPv4 packets, ICMP payloads, and MPLS label stacks.
//!
//! The model is deliberately semantic rather than byte-exact: it carries
//! every field the measurement techniques of the paper depend on (IP-TTL,
//! LSE-TTL, RFC 4950 quoted stacks, reply kinds, flow identifiers for
//! Paris traceroute) and nothing else.
//!
//! [`LabelStack`] is an inline fixed-capacity array rather than a `Vec`:
//! real deployments in the model never stack more than two labels
//! (LDP/TE transport + explicit null), so a `Copy` stack makes the whole
//! [`Packet`] — and the RFC 4950 quoted stack inside ICMP errors —
//! copyable without touching the heap on the per-hop path.

use crate::addr::Addr;
use crate::ids::Label;
use std::fmt;
use std::ops::Deref;

/// An MPLS Label Stack Entry (RFC 3032): label, traffic class, bottom of
/// stack flag, and the LSE-TTL that RFC 3443 TTL processing manipulates.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Lse {
    /// The 20-bit label value.
    pub label: Label,
    /// Traffic Class (formerly EXP) bits.
    pub tc: u8,
    /// Bottom-of-stack flag.
    pub bottom: bool,
    /// The LSE time-to-live.
    pub ttl: u8,
}

impl Lse {
    /// A fresh LSE with the given label and TTL (TC zero; `bottom` is
    /// recomputed whenever the stack changes).
    pub fn new(label: Label, ttl: u8) -> Lse {
        Lse {
            label,
            tc: 0,
            bottom: true,
            ttl,
        }
    }

    const ZERO: Lse = Lse {
        label: Label(0),
        tc: 0,
        bottom: true,
        ttl: 0,
    };
}

impl fmt::Display for Lse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MPLS Label {} TTL={}", self.label.0, self.ttl)
    }
}

/// Maximum label-stack depth the simulator supports. The deployments the
/// paper profiles never exceed two (a transport label plus explicit
/// null); the extra headroom covers what-if topologies.
pub const LABEL_STACK_CAP: usize = 4;

/// An MPLS label stack; index 0 is the top of the stack. Stored inline
/// (`Copy`, no heap) — see the module docs.
#[derive(Copy, Clone, PartialEq, Eq)]
pub struct LabelStack {
    len: u8,
    entries: [Lse; LABEL_STACK_CAP],
}

impl Default for LabelStack {
    fn default() -> LabelStack {
        LabelStack::empty()
    }
}

impl LabelStack {
    /// An empty stack (a plain IP packet).
    pub const fn empty() -> LabelStack {
        LabelStack {
            len: 0,
            entries: [Lse::ZERO; LABEL_STACK_CAP],
        }
    }

    /// True when no label is present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The top (outermost) entry, if any.
    pub fn top(&self) -> Option<&Lse> {
        self.as_slice().first()
    }

    /// Mutable access to the top entry.
    pub fn top_mut(&mut self) -> Option<&mut Lse> {
        let n = self.len as usize;
        self.entries[..n].first_mut()
    }

    /// Pushes `lse` on top of the stack, fixing bottom-of-stack flags.
    ///
    /// # Panics
    /// When the stack already holds [`LABEL_STACK_CAP`] entries; the
    /// control plane never builds label chains that deep.
    pub fn push(&mut self, lse: Lse) {
        let n = self.len as usize;
        assert!(n < LABEL_STACK_CAP, "label stack overflow");
        for i in (0..n).rev() {
            self.entries[i + 1] = self.entries[i];
        }
        self.entries[0] = lse;
        self.len += 1;
        self.fix_bottom();
    }

    /// Pops the top entry, fixing bottom-of-stack flags.
    pub fn pop(&mut self) -> Option<Lse> {
        if self.len == 0 {
            return None;
        }
        let lse = self.entries[0];
        let n = self.len as usize;
        for i in 1..n {
            self.entries[i - 1] = self.entries[i];
        }
        self.len -= 1;
        self.fix_bottom();
        Some(lse)
    }

    /// Number of entries.
    pub fn depth(&self) -> usize {
        self.len as usize
    }

    /// The entries as a slice, top of stack first.
    pub fn as_slice(&self) -> &[Lse] {
        &self.entries[..self.len as usize]
    }

    /// Copies the entries into a fresh `Vec` (top of stack first), for
    /// callers that persist the stack beyond the packet's lifetime.
    pub fn to_vec(&self) -> Vec<Lse> {
        self.as_slice().to_vec()
    }

    fn fix_bottom(&mut self) {
        let n = self.len as usize;
        for (i, lse) in self.entries[..n].iter_mut().enumerate() {
            lse.bottom = i + 1 == n;
        }
    }
}

impl Deref for LabelStack {
    type Target = [Lse];

    fn deref(&self) -> &[Lse] {
        self.as_slice()
    }
}

impl fmt::Debug for LabelStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl FromIterator<Lse> for LabelStack {
    fn from_iter<T: IntoIterator<Item = Lse>>(iter: T) -> LabelStack {
        let mut stack = LabelStack::empty();
        for lse in iter {
            let n = stack.len as usize;
            assert!(n < LABEL_STACK_CAP, "label stack overflow");
            stack.entries[n] = lse;
            stack.len += 1;
        }
        stack.fix_bottom();
        stack
    }
}

/// The kind of probe or reply a packet carries.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum IcmpPayload {
    /// ICMP echo-request (what scamper's ICMP-Paris traceroute and ping
    /// send). `id`/`seq` identify the probe.
    EchoRequest {
        /// Echo identifier (per measurement session).
        id: u16,
        /// Echo sequence number (per probe).
        seq: u16,
    },
    /// ICMP echo-reply.
    EchoReply {
        /// Echo identifier copied from the request.
        id: u16,
        /// Echo sequence copied from the request.
        seq: u16,
    },
    /// ICMP time-exceeded, quoting the expired probe and optionally the
    /// MPLS label stack of the expired packet (RFC 4950).
    TimeExceeded {
        /// Echo id of the quoted probe.
        quoted_id: u16,
        /// Echo seq of the quoted probe.
        quoted_seq: u16,
        /// Destination address of the quoted probe.
        quoted_dst: Addr,
        /// RFC 4950 MPLS extension: the label stack of the packet whose
        /// TTL expired, as received by the replying router. Empty when
        /// the router does not implement RFC 4950 or the packet carried
        /// no labels.
        mpls_ext: LabelStack,
    },
    /// ICMP destination-unreachable (quotes the probe like time-exceeded).
    DestUnreachable {
        /// Echo id of the quoted probe.
        quoted_id: u16,
        /// Echo seq of the quoted probe.
        quoted_seq: u16,
    },
}

impl IcmpPayload {
    /// True for the two error kinds (time-exceeded / unreachable), which
    /// must never elicit further ICMP errors.
    pub fn is_error(&self) -> bool {
        matches!(
            self,
            IcmpPayload::TimeExceeded { .. } | IcmpPayload::DestUnreachable { .. }
        )
    }
}

/// A simulated packet: an IPv4 header, an ICMP payload, and an optional
/// MPLS label stack "below" the frame header. `Copy` — moving a packet
/// through the engine never allocates.
#[derive(Copy, Clone, Debug)]
pub struct Packet {
    /// IPv4 source address.
    pub src: Addr,
    /// IPv4 destination address.
    pub dst: Addr,
    /// The IPv4 time-to-live.
    pub ip_ttl: u8,
    /// Flow identifier: stands in for the (src, dst, proto, checksum)
    /// 5-tuple fields that Paris traceroute keeps constant so that
    /// per-flow ECMP hashing picks a stable path.
    pub flow: u16,
    /// The ICMP payload.
    pub payload: IcmpPayload,
    /// The MPLS label stack (empty ⇒ plain IP packet).
    pub stack: LabelStack,
    /// Accumulated one-way propagation delay, in milliseconds. The engine
    /// adds each traversed link's delay; a reply inherits the probe's
    /// accumulated delay so its final value is the RTT.
    pub elapsed_ms: f64,
}

impl Packet {
    /// Builds an echo-request probe.
    pub fn echo_request(src: Addr, dst: Addr, ip_ttl: u8, flow: u16, id: u16, seq: u16) -> Packet {
        Packet {
            src,
            dst,
            ip_ttl,
            flow,
            payload: IcmpPayload::EchoRequest { id, seq },
            stack: LabelStack::empty(),
            elapsed_ms: 0.0,
        }
    }

    /// True when the packet currently carries at least one label.
    pub fn is_labeled(&self) -> bool {
        !self.stack.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_push_pop_maintains_bottom_flags() {
        let mut s = LabelStack::empty();
        s.push(Lse::new(Label(16), 255));
        assert!(s[0].bottom);
        s.push(Lse::new(Label(17), 255));
        assert!(!s[0].bottom);
        assert!(s[1].bottom);
        assert_eq!(s.depth(), 2);
        let top = s.pop().unwrap();
        assert_eq!(top.label, Label(17));
        assert!(s[0].bottom);
        assert_eq!(s.pop().unwrap().label, Label(16));
        assert!(s.pop().is_none());
    }

    #[test]
    fn stack_is_inline_and_copyable() {
        let mut s = LabelStack::empty();
        s.push(Lse::new(Label(16), 31));
        let copied = s; // Copy, not move: no heap behind the stack
        s.push(Lse::new(Label(17), 255));
        assert_eq!(copied.depth(), 1);
        assert_eq!(s.depth(), 2);
        assert_eq!(copied.to_vec(), vec![Lse::new(Label(16), 31)]);
    }

    #[test]
    fn stack_collects_from_iterator_in_order() {
        let s: LabelStack = [Lse::new(Label(5), 9), Lse::new(Label(6), 8)]
            .into_iter()
            .collect();
        assert_eq!(s.depth(), 2);
        assert_eq!(s[0].label, Label(5));
        assert!(!s[0].bottom);
        assert!(s[1].bottom);
    }

    #[test]
    fn lse_display_matches_traceroute_style() {
        let lse = Lse::new(Label(19), 1);
        assert_eq!(lse.to_string(), "MPLS Label 19 TTL=1");
    }

    #[test]
    fn error_classification() {
        let te = IcmpPayload::TimeExceeded {
            quoted_id: 1,
            quoted_seq: 2,
            quoted_dst: Addr::new(1, 2, 3, 4),
            mpls_ext: LabelStack::empty(),
        };
        assert!(te.is_error());
        assert!(!IcmpPayload::EchoRequest { id: 0, seq: 0 }.is_error());
        assert!(!IcmpPayload::EchoReply { id: 0, seq: 0 }.is_error());
    }

    #[test]
    fn echo_request_builder() {
        let p = Packet::echo_request(Addr::new(1, 1, 1, 1), Addr::new(2, 2, 2, 2), 64, 7, 9, 3);
        assert_eq!(p.ip_ttl, 64);
        assert!(!p.is_labeled());
        assert_eq!(p.flow, 7);
    }
}
