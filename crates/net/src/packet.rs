//! Packet model: IPv4 packets, ICMP payloads, and MPLS label stacks.
//!
//! The model is deliberately semantic rather than byte-exact: it carries
//! every field the measurement techniques of the paper depend on (IP-TTL,
//! LSE-TTL, RFC 4950 quoted stacks, reply kinds, flow identifiers for
//! Paris traceroute) and nothing else.

use crate::addr::Addr;
use crate::ids::Label;
use std::fmt;

/// An MPLS Label Stack Entry (RFC 3032): label, traffic class, bottom of
/// stack flag, and the LSE-TTL that RFC 3443 TTL processing manipulates.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Lse {
    /// The 20-bit label value.
    pub label: Label,
    /// Traffic Class (formerly EXP) bits.
    pub tc: u8,
    /// Bottom-of-stack flag.
    pub bottom: bool,
    /// The LSE time-to-live.
    pub ttl: u8,
}

impl Lse {
    /// A fresh LSE with the given label and TTL (TC zero; `bottom` is
    /// recomputed whenever the stack changes).
    pub fn new(label: Label, ttl: u8) -> Lse {
        Lse {
            label,
            tc: 0,
            bottom: true,
            ttl,
        }
    }
}

impl fmt::Display for Lse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MPLS Label {} TTL={}", self.label.0, self.ttl)
    }
}

/// An MPLS label stack; index 0 is the top of the stack.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LabelStack(pub Vec<Lse>);

impl LabelStack {
    /// An empty stack (a plain IP packet).
    pub fn empty() -> LabelStack {
        LabelStack(Vec::new())
    }

    /// True when no label is present.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The top (outermost) entry, if any.
    pub fn top(&self) -> Option<&Lse> {
        self.0.first()
    }

    /// Mutable access to the top entry.
    pub fn top_mut(&mut self) -> Option<&mut Lse> {
        self.0.first_mut()
    }

    /// Pushes `lse` on top of the stack, fixing bottom-of-stack flags.
    pub fn push(&mut self, lse: Lse) {
        self.0.insert(0, lse);
        self.fix_bottom();
    }

    /// Pops the top entry, fixing bottom-of-stack flags.
    pub fn pop(&mut self) -> Option<Lse> {
        if self.0.is_empty() {
            return None;
        }
        let lse = self.0.remove(0);
        self.fix_bottom();
        Some(lse)
    }

    /// Number of entries.
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    fn fix_bottom(&mut self) {
        let n = self.0.len();
        for (i, lse) in self.0.iter_mut().enumerate() {
            lse.bottom = i + 1 == n;
        }
    }
}

/// The kind of probe or reply a packet carries.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IcmpPayload {
    /// ICMP echo-request (what scamper's ICMP-Paris traceroute and ping
    /// send). `id`/`seq` identify the probe.
    EchoRequest {
        /// Echo identifier (per measurement session).
        id: u16,
        /// Echo sequence number (per probe).
        seq: u16,
    },
    /// ICMP echo-reply.
    EchoReply {
        /// Echo identifier copied from the request.
        id: u16,
        /// Echo sequence copied from the request.
        seq: u16,
    },
    /// ICMP time-exceeded, quoting the expired probe and optionally the
    /// MPLS label stack of the expired packet (RFC 4950).
    TimeExceeded {
        /// Echo id of the quoted probe.
        quoted_id: u16,
        /// Echo seq of the quoted probe.
        quoted_seq: u16,
        /// Destination address of the quoted probe.
        quoted_dst: Addr,
        /// RFC 4950 MPLS extension: the label stack of the packet whose
        /// TTL expired, as received by the replying router. Empty when
        /// the router does not implement RFC 4950 or the packet carried
        /// no labels.
        mpls_ext: Vec<Lse>,
    },
    /// ICMP destination-unreachable (quotes the probe like time-exceeded).
    DestUnreachable {
        /// Echo id of the quoted probe.
        quoted_id: u16,
        /// Echo seq of the quoted probe.
        quoted_seq: u16,
    },
}

impl IcmpPayload {
    /// True for the two error kinds (time-exceeded / unreachable), which
    /// must never elicit further ICMP errors.
    pub fn is_error(&self) -> bool {
        matches!(
            self,
            IcmpPayload::TimeExceeded { .. } | IcmpPayload::DestUnreachable { .. }
        )
    }
}

/// A simulated packet: an IPv4 header, an ICMP payload, and an optional
/// MPLS label stack "below" the frame header.
#[derive(Clone, Debug)]
pub struct Packet {
    /// IPv4 source address.
    pub src: Addr,
    /// IPv4 destination address.
    pub dst: Addr,
    /// The IPv4 time-to-live.
    pub ip_ttl: u8,
    /// Flow identifier: stands in for the (src, dst, proto, checksum)
    /// 5-tuple fields that Paris traceroute keeps constant so that
    /// per-flow ECMP hashing picks a stable path.
    pub flow: u16,
    /// The ICMP payload.
    pub payload: IcmpPayload,
    /// The MPLS label stack (empty ⇒ plain IP packet).
    pub stack: LabelStack,
    /// Accumulated one-way propagation delay, in milliseconds. The engine
    /// adds each traversed link's delay; a reply inherits the probe's
    /// accumulated delay so its final value is the RTT.
    pub elapsed_ms: f64,
}

impl Packet {
    /// Builds an echo-request probe.
    pub fn echo_request(src: Addr, dst: Addr, ip_ttl: u8, flow: u16, id: u16, seq: u16) -> Packet {
        Packet {
            src,
            dst,
            ip_ttl,
            flow,
            payload: IcmpPayload::EchoRequest { id, seq },
            stack: LabelStack::empty(),
            elapsed_ms: 0.0,
        }
    }

    /// True when the packet currently carries at least one label.
    pub fn is_labeled(&self) -> bool {
        !self.stack.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_push_pop_maintains_bottom_flags() {
        let mut s = LabelStack::empty();
        s.push(Lse::new(Label(16), 255));
        assert!(s.0[0].bottom);
        s.push(Lse::new(Label(17), 255));
        assert!(!s.0[0].bottom);
        assert!(s.0[1].bottom);
        assert_eq!(s.depth(), 2);
        let top = s.pop().unwrap();
        assert_eq!(top.label, Label(17));
        assert!(s.0[0].bottom);
        assert_eq!(s.pop().unwrap().label, Label(16));
        assert!(s.pop().is_none());
    }

    #[test]
    fn lse_display_matches_traceroute_style() {
        let lse = Lse::new(Label(19), 1);
        assert_eq!(lse.to_string(), "MPLS Label 19 TTL=1");
    }

    #[test]
    fn error_classification() {
        let te = IcmpPayload::TimeExceeded {
            quoted_id: 1,
            quoted_seq: 2,
            quoted_dst: Addr::new(1, 2, 3, 4),
            mpls_ext: vec![],
        };
        assert!(te.is_error());
        assert!(!IcmpPayload::EchoRequest { id: 0, seq: 0 }.is_error());
        assert!(!IcmpPayload::EchoReply { id: 0, seq: 0 }.is_error());
    }

    #[test]
    fn echo_request_builder() {
        let p = Packet::echo_request(Addr::new(1, 1, 1, 1), Addr::new(2, 2, 2, 2), 64, 7, 9, 3);
        assert_eq!(p.ip_ttl, 64);
        assert!(!p.is_labeled());
        assert_eq!(p.flow, 7);
    }
}
