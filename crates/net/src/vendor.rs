//! Router vendor profiles: initial-TTL signatures and MPLS defaults.
//!
//! Paper Table 1 associates router brands with the pair of initial TTLs
//! `<time-exceeded, echo-reply>`; §2 and §3 describe the per-vendor LDP
//! label-advertising defaults the revelation techniques exploit.

use std::fmt;

/// A router brand / operating-system family.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Vendor {
    /// Cisco IOS / IOS XR — signature `<255, 255>`, LDP labels for all
    /// IGP prefixes by default.
    CiscoIos,
    /// Juniper Junos — signature `<255, 64>`, LDP labels for loopback
    /// addresses only by default.
    JuniperJunos,
    /// Juniper JunosE — signature `<128, 128>`.
    JuniperJunosE,
    /// Brocade / Alcatel / Linux-based — signature `<64, 64>`.
    BrocadeLinux,
}

impl Vendor {
    /// All vendor families, in Table 1 order.
    pub const ALL: [Vendor; 4] = [
        Vendor::CiscoIos,
        Vendor::JuniperJunos,
        Vendor::JuniperJunosE,
        Vendor::BrocadeLinux,
    ];

    /// The initial TTL of ICMP time-exceeded messages.
    pub const fn te_init_ttl(self) -> u8 {
        match self {
            Vendor::CiscoIos => 255,
            Vendor::JuniperJunos => 255,
            Vendor::JuniperJunosE => 128,
            Vendor::BrocadeLinux => 64,
        }
    }

    /// The initial TTL of ICMP echo-reply messages.
    pub const fn er_init_ttl(self) -> u8 {
        match self {
            Vendor::CiscoIos => 255,
            Vendor::JuniperJunos => 64,
            Vendor::JuniperJunosE => 128,
            Vendor::BrocadeLinux => 64,
        }
    }

    /// The `<te, er>` pair-signature of Table 1.
    pub const fn signature(self) -> (u8, u8) {
        (self.te_init_ttl(), self.er_init_ttl())
    }

    /// The vendor's default LDP label-advertising policy.
    ///
    /// Cisco allocates labels for every prefix in the IGP routing table;
    /// Juniper only for loopback (host) addresses — the structural fact
    /// behind BRPR vs DPR applicability (paper §3.2).
    pub const fn default_ldp_policy(self) -> LdpPolicy {
        match self {
            Vendor::CiscoIos => LdpPolicy::AllPrefixes,
            Vendor::JuniperJunos => LdpPolicy::LoopbackOnly,
            // JunosE and the Brocade/Alcatel family behave like Juniper
            // here for our purposes (AS3549's <64,64> core "looks similar
            // to the Juniper routers behavior", paper §6).
            Vendor::JuniperJunosE => LdpPolicy::LoopbackOnly,
            Vendor::BrocadeLinux => LdpPolicy::LoopbackOnly,
        }
    }
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Vendor::CiscoIos => "Cisco IOS",
            Vendor::JuniperJunos => "Juniper Junos",
            Vendor::JuniperJunosE => "Juniper JunosE",
            Vendor::BrocadeLinux => "Brocade/Linux",
        };
        f.write_str(s)
    }
}

/// Which prefixes a router announces labels for through LDP.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum LdpPolicy {
    /// Labels for every internal IGP prefix (Cisco default).
    AllPrefixes,
    /// Labels for `/32` loopback host routes only (Juniper default, or
    /// Cisco with `mpls ldp label allocate global host-routes`).
    LoopbackOnly,
    /// LDP disabled on this router.
    None,
}

/// How the last label is removed at the end of an LSP.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum PoppingMode {
    /// Penultimate Hop Popping: the egress advertises implicit-null and
    /// the penultimate LSR pops (the default everywhere).
    Php,
    /// Ultimate Hop Popping: the egress advertises explicit-null and pops
    /// itself (`mpls ldp explicit-null`; makes tunnels totally invisible).
    Uhp,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_signatures() {
        assert_eq!(Vendor::CiscoIos.signature(), (255, 255));
        assert_eq!(Vendor::JuniperJunos.signature(), (255, 64));
        assert_eq!(Vendor::JuniperJunosE.signature(), (128, 128));
        assert_eq!(Vendor::BrocadeLinux.signature(), (64, 64));
    }

    #[test]
    fn vendor_defaults() {
        assert_eq!(
            Vendor::CiscoIos.default_ldp_policy(),
            LdpPolicy::AllPrefixes
        );
        assert_eq!(
            Vendor::JuniperJunos.default_ldp_policy(),
            LdpPolicy::LoopbackOnly
        );
    }

    #[test]
    fn all_vendors_listed_once() {
        let mut seen = std::collections::HashSet::new();
        for v in Vendor::ALL {
            assert!(seen.insert(v));
        }
        assert_eq!(seen.len(), 4);
    }
}
