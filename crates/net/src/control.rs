//! Control-plane assembly: FIBs, BGP external routes, and LFIBs.
//!
//! [`ControlPlane::build`] computes, from an immutable [`Network`]:
//!
//! 1. per-AS IGP distance matrices ([`AsIgp`]);
//! 2. per-router intra-AS FIBs (ECMP next-hop sets towards the nearest
//!    owner of each internal prefix);
//! 3. per-router external routes: hot-potato egress selection over the
//!    valley-free AS-level routes ([`Bgp`]);
//! 4. LDP bindings ([`LdpBindings`]) and per-router LFIBs implementing
//!    swap / PHP-pop / explicit-null-swap.

use crate::bgp::Bgp;
use crate::error::NetError;
use crate::ids::{Label, RouterId};
use crate::igp::AsIgp;
use crate::ldp::{LabelValue, LdpBindings};
use crate::net::Network;
use crate::prefixes::AsPrefixes;
use crate::vendor::PoppingMode;
use std::collections::HashMap;

/// An intra-AS FIB entry: the ECMP set of `(iface index, next router)`.
#[derive(Clone, Debug, Default)]
pub struct FibEntry {
    /// Equal-cost next hops towards the nearest prefix owner.
    pub nexthops: Vec<(u32, RouterId)>,
}

/// A route towards an external AS.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ExtRoute {
    /// No valley-free route exists.
    Unreachable,
    /// This router is the egress border: forward over its own eBGP
    /// interface.
    Direct {
        /// Interface index of the eBGP link to use.
        iface: u32,
    },
    /// Forward towards the chosen egress border's loopback (the BGP
    /// next hop); MPLS ingresses push the label bound to that loopback.
    ViaEgress {
        /// The selected egress border router.
        egress: RouterId,
    },
}

/// What an LFIB entry does with the top label.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LabelAction {
    /// Replace the top label (mid-LSP forwarding).
    Swap(Label),
    /// Remove the top label (Penultimate Hop Popping, or a downstream
    /// neighbor without a binding — Cisco "untagged").
    Pop,
    /// Replace the top label with explicit null (penultimate hop of a
    /// UHP LSP).
    SwapExplicitNull,
}

/// One ECMP branch of an LFIB entry.
#[derive(Copy, Clone, Debug)]
pub struct LfibHop {
    /// Outgoing interface index.
    pub iface: u32,
    /// The next router.
    pub next: RouterId,
    /// The label operation on this branch.
    pub action: LabelAction,
}

/// An LFIB entry: incoming label → FEC and ECMP branches.
#[derive(Clone, Debug)]
pub struct LfibEntry {
    /// The FEC (prefix slot in the router's AS table).
    pub slot: u32,
    /// ECMP branches.
    pub nexthops: Vec<LfibHop>,
}

/// The computed control plane of a network.
#[derive(Debug, Clone)]
pub struct ControlPlane {
    /// Per-AS internal prefix tables (dense AS index order).
    pub as_prefixes: Vec<AsPrefixes>,
    /// Per-AS IGP views.
    pub igp: Vec<AsIgp>,
    /// AS-level routes.
    pub bgp: Bgp,
    /// LDP advertisements.
    pub bindings: LdpBindings,
    /// `fib[router][slot]` — intra-AS forwarding (slots of the router's
    /// own AS; empty entry ⇒ the router owns the prefix or it is
    /// unreachable).
    fib: Vec<Vec<FibEntry>>,
    /// `ext[router][dst_as_index]` — external forwarding.
    ext: Vec<Vec<ExtRoute>>,
    /// `lfib[router][incoming label]`.
    lfib: Vec<HashMap<Label, LfibEntry>>,
    /// RSVP-TE autoroute at tunnel heads: `(head, tail)` → the head's
    /// `(out iface, first hop, label to push)`.
    te_autoroute: HashMap<(RouterId, RouterId), (u32, RouterId, Option<Label>)>,
}

impl ControlPlane {
    /// Computes the full control plane. Fails when an AS is internally
    /// disconnected or an inter-AS link lacks a declared relationship.
    pub fn build(net: &Network) -> Result<ControlPlane, NetError> {
        let bgp = Bgp::compute(net)?;
        let n_as = net.as_list().len();
        let mut as_prefixes = Vec::with_capacity(n_as);
        let mut igp = Vec::with_capacity(n_as);
        for &asn in net.as_list() {
            let view = AsIgp::compute(net, asn);
            if let Some(unreachable) = view.find_unreachable() {
                return Err(NetError::DisconnectedAs { asn, unreachable });
            }
            igp.push(view);
            as_prefixes.push(AsPrefixes::build(net, asn));
        }
        let bindings = LdpBindings::compute(net, &as_prefixes);

        // Intra-AS FIBs.
        let mut fib: Vec<Vec<FibEntry>> = vec![Vec::new(); net.num_routers()];
        for (as_idx, ap) in as_prefixes.iter().enumerate() {
            let view = &igp[as_idx];
            for &rid in net.as_members(ap.asn) {
                let table = &mut fib[rid.index()];
                table.resize(ap.len(), FibEntry::default());
                for slot in 0..ap.len() as u32 {
                    let owners = ap.owners(slot);
                    if owners.contains(&rid) {
                        continue; // connected route, engine handles it
                    }
                    let best = owners
                        .iter()
                        .map(|&o| view.distance(rid, o))
                        .min()
                        .unwrap_or(crate::igp::INF);
                    if best >= crate::igp::INF {
                        continue;
                    }
                    let mut hops: Vec<(u32, RouterId)> = Vec::new();
                    for &o in owners {
                        if view.distance(rid, o) != best {
                            continue;
                        }
                        for h in view.first_hops(net, rid, o) {
                            if !hops.contains(&h) {
                                hops.push(h);
                            }
                        }
                    }
                    hops.sort_by_key(|&(i, r)| (r, i));
                    table[slot as usize] = FibEntry { nexthops: hops };
                }
            }
        }

        // External routes with hot-potato egress selection.
        let mut ext = vec![vec![ExtRoute::Unreachable; n_as]; net.num_routers()];
        for (src_as, &asn) in net.as_list().iter().enumerate() {
            let view = &igp[src_as];
            let borders = net.borders(asn);
            #[allow(clippy::needless_range_loop)] // dst_as indexes two tables
            for dst_as in 0..n_as {
                if dst_as == src_as {
                    continue;
                }
                let best_next = bgp.next_hops(dst_as, src_as);
                if best_next.is_empty() {
                    continue;
                }
                // Candidate (border, iface) pairs reaching a best next AS.
                let mut candidates: Vec<(RouterId, u32)> = Vec::new();
                for &b in &borders {
                    for (idx, iface) in net.router(b).ifaces.iter().enumerate() {
                        if !net.link(iface.link).inter_as {
                            continue;
                        }
                        let peer_as = net.router(iface.peer).asn;
                        let peer_idx = net
                            .as_index(peer_as)
                            .ok_or(NetError::UnregisteredAs { asn: peer_as })?;
                        if best_next.contains(&peer_idx) {
                            candidates.push((b, idx as u32));
                        }
                    }
                }
                if candidates.is_empty() {
                    continue; // relationship without a physical link
                }
                candidates.sort_by_key(|&(r, i)| (r, i));
                for &rid in net.as_members(asn) {
                    if let Some(&(_, iface)) = candidates.iter().find(|&&(b, _)| b == rid) {
                        ext[rid.index()][dst_as] = ExtRoute::Direct { iface };
                        continue;
                    }
                    // Nearest candidate border (hot potato).
                    let choice = candidates
                        .iter()
                        .map(|&(b, _)| (view.distance(rid, b), b))
                        .min();
                    if let Some((d, egress)) = choice {
                        if d < crate::igp::INF {
                            ext[rid.index()][dst_as] = ExtRoute::ViaEgress { egress };
                        }
                    }
                }
            }
        }

        // LFIBs: one entry per real incoming label.
        let mut lfib: Vec<HashMap<Label, LfibEntry>> = vec![HashMap::new(); net.num_routers()];
        for (as_idx, ap) in as_prefixes.iter().enumerate() {
            debug_assert_eq!(net.as_index(ap.asn), Some(as_idx));
            for &rid in net.as_members(ap.asn) {
                let advertised: Vec<(u32, LabelValue)> = bindings.advertisements(rid).collect();
                for (slot, value) in advertised {
                    let LabelValue::Real(in_label) = value else {
                        continue;
                    };
                    let entry = &fib[rid.index()][slot as usize];
                    let mut hops = Vec::with_capacity(entry.nexthops.len());
                    for &(iface, next) in &entry.nexthops {
                        let action = match bindings.advertised(next, slot) {
                            Some(LabelValue::Real(out)) => LabelAction::Swap(out),
                            Some(LabelValue::ImplicitNull) => LabelAction::Pop,
                            Some(LabelValue::ExplicitNull) => LabelAction::SwapExplicitNull,
                            // Downstream has no binding: "untagged".
                            None => LabelAction::Pop,
                        };
                        hops.push(LfibHop {
                            iface,
                            next,
                            action,
                        });
                    }
                    if !hops.is_empty() {
                        lfib[rid.index()].insert(
                            in_label,
                            LfibEntry {
                                slot,
                                nexthops: hops,
                            },
                        );
                    }
                }
            }
        }

        // RSVP-TE tunnels: validate paths, install the label chain at
        // every transit LSR, and record the head's autoroute decision.
        let mut te_autoroute = HashMap::new();
        for t in net.te_tunnels() {
            t.validate(net)
                .map_err(|reason| NetError::InvalidTeTunnel { reason })?;
            for i in 1..t.path.len().saturating_sub(1) {
                let cur = t.path[i];
                let next = t.path[i + 1];
                let iface = net
                    .router(cur)
                    .iface_to(next)
                    .ok_or(NetError::MissingAdjacency {
                        from: cur,
                        to: next,
                    })? as u32;
                let action = if i + 1 == t.path.len() - 1 {
                    match t.popping {
                        PoppingMode::Php => LabelAction::Pop,
                        PoppingMode::Uhp => LabelAction::SwapExplicitNull,
                    }
                } else {
                    LabelAction::Swap(t.label_into(i + 1))
                };
                lfib[cur.index()].insert(
                    t.label_into(i),
                    LfibEntry {
                        slot: u32::MAX, // TE entries carry no LDP FEC
                        nexthops: vec![LfibHop {
                            iface,
                            next,
                            action,
                        }],
                    },
                );
            }
            let first = t.path[1];
            let head = t.head();
            let iface = net
                .router(head)
                .iface_to(first)
                .ok_or(NetError::MissingAdjacency {
                    from: head,
                    to: first,
                })? as u32;
            let push = if t.path.len() == 2 {
                match t.popping {
                    PoppingMode::Php => None, // one-hop LSP degenerates
                    PoppingMode::Uhp => Some(Label::EXPLICIT_NULL),
                }
            } else {
                Some(t.label_into(1))
            };
            te_autoroute.insert((t.head(), t.tail()), (iface, first, push));
        }

        Ok(ControlPlane {
            as_prefixes,
            igp,
            bgp,
            bindings,
            fib,
            ext,
            lfib,
            te_autoroute,
        })
    }

    /// The intra-AS FIB entry of `router` for prefix `slot`.
    pub fn fib_entry(&self, router: RouterId, slot: u32) -> Option<&FibEntry> {
        let e = self.fib[router.index()].get(slot as usize)?;
        if e.nexthops.is_empty() {
            None
        } else {
            Some(e)
        }
    }

    /// The external route of `router` towards the AS with dense index
    /// `dst_as`.
    pub fn ext_route(&self, router: RouterId, dst_as: usize) -> ExtRoute {
        self.ext[router.index()][dst_as]
    }

    /// The LFIB entry of `router` for incoming `label`.
    pub fn lfib_entry(&self, router: RouterId, label: Label) -> Option<&LfibEntry> {
        self.lfib[router.index()].get(&label)
    }

    /// Number of LFIB entries installed at `router`.
    pub fn lfib_size(&self, router: RouterId) -> usize {
        self.lfib[router.index()].len()
    }

    /// Iterates over every LFIB entry installed at `router`, as
    /// `(incoming label, entry)` pairs (arbitrary order).
    pub fn lfib_entries(&self, router: RouterId) -> impl Iterator<Item = (Label, &LfibEntry)> + '_ {
        self.lfib[router.index()].iter().map(|(&l, e)| (l, e))
    }

    /// Installs (or overwrites) an LFIB entry at `router` — a what-if
    /// mutator for fault-injection studies and for exercising the
    /// static checks: `build` only ever produces consistent LFIBs, so
    /// dangling label-swaps can only be created deliberately.
    pub fn inject_lfib_entry(&mut self, router: RouterId, label: Label, entry: LfibEntry) {
        self.lfib[router.index()].insert(label, entry);
    }

    /// The TE autoroute decision at `head` for traffic towards `tail`
    /// (its BGP next hop or its own addresses):
    /// `(out iface, first hop, label to push)`.
    pub fn te_route(
        &self,
        head: RouterId,
        tail: RouterId,
    ) -> Option<(u32, RouterId, Option<Label>)> {
        self.te_autoroute.get(&(head, tail)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Asn;
    use crate::net::{LinkOpts, NetworkBuilder, RelKind};
    use crate::router::RouterConfig;
    use crate::vendor::Vendor;

    /// AS1(h) -- AS2: a - b - c (MPLS line) -- AS3(t).
    fn line_net() -> (Network, [RouterId; 5]) {
        let mut bld = NetworkBuilder::new();
        let h = bld.add_router("h", Asn(1), RouterConfig::ip_router(Vendor::CiscoIos));
        let a = bld.add_router("a", Asn(2), RouterConfig::mpls_router(Vendor::CiscoIos));
        let b = bld.add_router("b", Asn(2), RouterConfig::mpls_router(Vendor::CiscoIos));
        let c = bld.add_router("c", Asn(2), RouterConfig::mpls_router(Vendor::CiscoIos));
        let t = bld.add_router("t", Asn(3), RouterConfig::ip_router(Vendor::CiscoIos));
        bld.link(h, a, LinkOpts::default());
        bld.link(a, b, LinkOpts::default());
        bld.link(b, c, LinkOpts::default());
        bld.link(c, t, LinkOpts::default());
        bld.as_rel(Asn(2), Asn(1), RelKind::ProviderCustomer);
        bld.as_rel(Asn(2), Asn(3), RelKind::ProviderCustomer);
        (bld.build().unwrap(), [h, a, b, c, t])
    }

    #[test]
    fn fib_points_to_nearest_owner() {
        let (net, [_, a, b, c, _]) = line_net();
        let cp = ControlPlane::build(&net).unwrap();
        let as2 = net.as_index(Asn(2)).unwrap();
        let ap = &cp.as_prefixes[as2];
        let slot = ap.lookup(net.router(c).loopback).unwrap();
        let e = cp.fib_entry(a, slot).unwrap();
        assert_eq!(e.nexthops.len(), 1);
        assert_eq!(e.nexthops[0].1, b);
        // Owner has no FIB entry (connected).
        assert!(cp.fib_entry(c, slot).is_none());
    }

    #[test]
    fn ext_routes_direct_and_via_egress() {
        let (net, [h, a, b, c, t]) = line_net();
        let cp = ControlPlane::build(&net).unwrap();
        let as3 = net.as_index(Asn(3)).unwrap();
        // c is the egress border towards AS3.
        assert!(matches!(cp.ext_route(c, as3), ExtRoute::Direct { .. }));
        assert_eq!(cp.ext_route(a, as3), ExtRoute::ViaEgress { egress: c });
        assert_eq!(cp.ext_route(b, as3), ExtRoute::ViaEgress { egress: c });
        // AS1's router reaches AS3 through its provider.
        let as1_h = cp.ext_route(h, as3);
        assert!(matches!(as1_h, ExtRoute::Direct { .. }));
        // And t's route back to AS1.
        let as1 = net.as_index(Asn(1)).unwrap();
        assert!(matches!(cp.ext_route(t, as1), ExtRoute::Direct { .. }));
    }

    #[test]
    fn lfib_swap_then_pop() {
        let (net, [_, a, b, c, _]) = line_net();
        let cp = ControlPlane::build(&net).unwrap();
        let as2 = net.as_index(Asn(2)).unwrap();
        let ap = &cp.as_prefixes[as2];
        let slot = ap.lookup(net.router(c).loopback).unwrap();
        // a pushes b's label; b's LFIB entry for it pops (c advertised
        // implicit null for its own loopback): a 2-hop LSP a -> b -> c.
        let LabelValue::Real(lb) = cp.bindings.advertised(b, slot).unwrap() else {
            panic!("b should advertise a real label");
        };
        let entry = cp.lfib_entry(b, lb).unwrap();
        assert_eq!(entry.slot, slot);
        assert_eq!(entry.nexthops.len(), 1);
        assert_eq!(entry.nexthops[0].next, c);
        assert_eq!(entry.nexthops[0].action, LabelAction::Pop);
        // a itself advertises a real label whose entry swaps to b's.
        let LabelValue::Real(la) = cp.bindings.advertised(a, slot).unwrap() else {
            panic!()
        };
        let entry_a = cp.lfib_entry(a, la).unwrap();
        assert_eq!(entry_a.nexthops[0].action, LabelAction::Swap(lb));
        assert!(cp.lfib_size(a) > 0);
    }

    #[test]
    fn disconnected_as_rejected() {
        let mut bld = NetworkBuilder::new();
        let cfg = RouterConfig::ip_router(Vendor::CiscoIos);
        bld.add_router("x", Asn(1), cfg.clone());
        bld.add_router("y", Asn(1), cfg);
        let net = bld.build().unwrap();
        assert!(matches!(
            ControlPlane::build(&net),
            Err(NetError::DisconnectedAs { .. })
        ));
    }

    #[test]
    fn uhp_penultimate_swaps_explicit_null() {
        let mut bld = NetworkBuilder::new();
        let a = bld.add_router("a", Asn(1), RouterConfig::mpls_router(Vendor::CiscoIos));
        let b = bld.add_router("b", Asn(1), RouterConfig::mpls_router(Vendor::CiscoIos));
        let c = bld.add_router(
            "c",
            Asn(1),
            RouterConfig::mpls_router(Vendor::CiscoIos).uhp(),
        );
        bld.link(a, b, LinkOpts::default());
        bld.link(b, c, LinkOpts::default());
        let net = bld.build().unwrap();
        let cp = ControlPlane::build(&net).unwrap();
        let ap = &cp.as_prefixes[0];
        let slot = ap.lookup(net.router(c).loopback).unwrap();
        let LabelValue::Real(lb) = cp.bindings.advertised(b, slot).unwrap() else {
            panic!()
        };
        let entry = cp.lfib_entry(b, lb).unwrap();
        assert_eq!(entry.nexthops[0].action, LabelAction::SwapExplicitNull);
        let _ = a;
    }
}
