//! Control-plane assembly: FIBs, BGP external routes, and LFIBs.
//!
//! [`ControlPlane::build`] computes, from an immutable [`Network`]:
//!
//! 1. per-AS IGP distance matrices ([`AsIgp`]), in parallel across
//!    ASes (`build_with_jobs`) with a deterministic AS-ordered merge;
//! 2. per-router intra-AS FIBs (ECMP next-hop sets towards the nearest
//!    owner of each internal prefix), flattened into one shared pool
//!    with per-router offset tables;
//! 3. per-router external routes: hot-potato egress selection over the
//!    valley-free AS-level routes ([`Bgp`]);
//! 4. LDP bindings ([`LdpBindings`]) and per-router LFIBs implementing
//!    swap / PHP-pop / explicit-null-swap, stored as dense label
//!    windows (labels are small integers we allocate ourselves) with a
//!    sorted overflow for outliers (RSVP-TE labels, injected entries).

use crate::addr::Addr;
use crate::bgp::Bgp;
use crate::error::NetError;
use crate::ids::{Asn, Label, LinkId, RouterId};
use crate::igp::AsIgp;
use crate::ldp::{LabelValue, LdpBindings};
use crate::net::Network;
use crate::prefixes::AsPrefixes;
use crate::vendor::PoppingMode;
use std::collections::HashMap;

/// A route towards an external AS.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ExtRoute {
    /// No valley-free route exists.
    Unreachable,
    /// This router is the egress border: forward over its own eBGP
    /// interface.
    Direct {
        /// Interface index of the eBGP link to use.
        iface: u32,
    },
    /// Forward towards the chosen egress border's loopback (the BGP
    /// next hop); MPLS ingresses push the label bound to that loopback.
    ViaEgress {
        /// The selected egress border router.
        egress: RouterId,
    },
}

/// Why [`ControlPlane::from_cache_payload`] rejected a payload.
#[derive(Debug)]
pub enum CachePayloadError {
    /// The payload bytes did not decode, or the decoded tables'
    /// dimensions do not match the network they were paired with.
    Decode(crate::wire::WireError),
    /// The plane could not be assembled over this network (the same
    /// errors a cold [`ControlPlane::build_with_jobs`] can hit).
    Assemble(NetError),
}

impl std::fmt::Display for CachePayloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CachePayloadError::Decode(e) => write!(f, "cache payload: {e}"),
            CachePayloadError::Assemble(e) => write!(f, "cache payload assembly: {e:?}"),
        }
    }
}

impl std::error::Error for CachePayloadError {}

/// What an LFIB entry does with the top label.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LabelAction {
    /// Replace the top label (mid-LSP forwarding).
    Swap(Label),
    /// Remove the top label (Penultimate Hop Popping, or a downstream
    /// neighbor without a binding — Cisco "untagged").
    Pop,
    /// Replace the top label with explicit null (penultimate hop of a
    /// UHP LSP).
    SwapExplicitNull,
}

/// One ECMP branch of an LFIB entry.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LfibHop {
    /// Outgoing interface index.
    pub iface: u32,
    /// The next router.
    pub next: RouterId,
    /// The label operation on this branch.
    pub action: LabelAction,
}

/// An LFIB entry: incoming label → FEC and ECMP branches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LfibEntry {
    /// The FEC (prefix slot in the router's AS table).
    pub slot: u32,
    /// ECMP branches.
    pub nexthops: Vec<LfibHop>,
}

/// Labels further than this from a router's dense LDP run go to the
/// sorted overflow instead of growing the window (RSVP-TE labels live
/// at `500_000+`, far from the LDP runs that start near `16`).
const LFIB_WINDOW_SPAN: u32 = 4096;

/// The LFIB of one router: a dense label window (direct indexing for
/// the contiguous LDP run) plus a small sorted overflow for outliers.
#[derive(Debug, Clone, Default)]
struct RouterLfib {
    /// Label value of `window[0]`.
    lo: u32,
    /// `window[label - lo]`, `None` for gaps.
    window: Vec<Option<LfibEntry>>,
    /// Entries outside the window, sorted by label value.
    overflow: Vec<(u32, LfibEntry)>,
    /// Number of installed entries (window `Some`s + overflow).
    len: usize,
}

impl RouterLfib {
    #[inline]
    fn get(&self, label: Label) -> Option<&LfibEntry> {
        let v = label.0;
        if v >= self.lo {
            if let Some(Some(e)) = self.window.get((v - self.lo) as usize) {
                return Some(e);
            }
        }
        self.overflow
            .binary_search_by_key(&v, |&(l, _)| l)
            .ok()
            .map(|i| &self.overflow[i].1)
    }

    fn insert(&mut self, label: Label, entry: LfibEntry) {
        let v = label.0;
        if self.window.is_empty() {
            self.lo = v;
            self.window.push(Some(entry));
            self.len += 1;
            self.absorb_overflow();
            return;
        }
        let hi = self.lo + self.window.len() as u32;
        if v >= self.lo && v < hi {
            let slot = &mut self.window[(v - self.lo) as usize];
            if slot.is_none() {
                self.len += 1;
            }
            *slot = Some(entry);
            return;
        }
        if v >= hi && v - self.lo < LFIB_WINDOW_SPAN {
            self.window.resize_with((v - self.lo + 1) as usize, || None);
            self.window[(v - self.lo) as usize] = Some(entry);
            self.len += 1;
            self.absorb_overflow();
            return;
        }
        if v < self.lo && hi - v <= LFIB_WINDOW_SPAN {
            let shift = (self.lo - v) as usize;
            let mut grown: Vec<Option<LfibEntry>> = Vec::with_capacity(self.window.len() + shift);
            grown.resize_with(shift, || None);
            grown.append(&mut self.window);
            self.window = grown;
            self.lo = v;
            self.window[0] = Some(entry);
            self.len += 1;
            self.absorb_overflow();
            return;
        }
        match self.overflow.binary_search_by_key(&v, |&(l, _)| l) {
            Ok(i) => self.overflow[i] = (v, entry),
            Err(i) => {
                self.overflow.insert(i, (v, entry));
                self.len += 1;
            }
        }
    }

    /// Migrates overflow entries that the (re)grown window now covers,
    /// so every label has exactly one home.
    fn absorb_overflow(&mut self) {
        if self.overflow.is_empty() {
            return;
        }
        let lo = self.lo;
        let hi = self.lo + self.window.len() as u32;
        let mut kept = Vec::with_capacity(self.overflow.len());
        for (v, e) in self.overflow.drain(..) {
            if v >= lo && v < hi {
                self.window[(v - lo) as usize] = Some(e);
            } else {
                kept.push((v, e));
            }
        }
        self.overflow = kept;
    }

    fn iter(&self) -> impl Iterator<Item = (Label, &LfibEntry)> + '_ {
        let lo = self.lo;
        self.window
            .iter()
            .enumerate()
            .filter_map(move |(i, e)| e.as_ref().map(|e| (Label(lo + i as u32), e)))
            .chain(self.overflow.iter().map(|(v, e)| (Label(*v), e)))
    }
}

/// A TE autoroute decision: `(out iface, first hop, label to push)`.
pub type TeRoute = (u32, RouterId, Option<Label>);

/// Bit flags of the per-router walk-table configuration byte — the
/// [`RouterConfig`](crate::router::RouterConfig) knobs the engine's hot
/// loop consults, condensed into one byte per router so a forwarding
/// step reads a single dense-table row instead of chasing the full
/// `Router` struct.
pub mod walk {
    /// MPLS/LDP forwarding enabled.
    pub const MPLS: u8 = 1 << 0;
    /// RFC 3443 `ttl-propagate` on.
    pub const TTL_PROPAGATE: u8 = 1 << 1;
    /// RFC 4950 label-stack quoting on.
    pub const RFC4950: u8 = 1 << 2;
    /// `min(IP-TTL, LSE-TTL)` applied when the last label pops.
    pub const MIN_ON_EXIT: u8 = 1 << 3;
    /// The router answers probes.
    pub const REPLIES: u8 = 1 << 4;
    /// The router is a measurement host.
    pub const IS_HOST: u8 = 1 << 5;
}

/// One flat interface record of the walk tables: everything the
/// engine's hot loop reads per wire crossing, inlined from
/// [`crate::router::Interface`] and [`crate::net::Link`] so a crossing
/// is one indexed load instead of three dependent pointer chases.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct WalkIface {
    /// The interface's own address.
    pub addr: Addr,
    /// The peer's address on the shared subnet (the arrival address).
    pub peer_addr: Addr,
    /// The router on the other end.
    pub peer: RouterId,
    /// The link this interface terminates (flap schedules key on it).
    pub link: LinkId,
    /// One-way propagation delay of the link, in milliseconds.
    pub delay_ms: f64,
}

/// Addresses per page of the dense owner index (and the page
/// alignment): the low 12 bits of an address index into a page, the
/// high 20 bits select it.
pub const OWNER_PAGE_SIZE: usize = 1 << 12;

/// The computed control plane of a network.
#[derive(Debug, Clone)]
pub struct ControlPlane {
    /// Per-AS internal prefix tables (dense AS index order).
    pub as_prefixes: Vec<AsPrefixes>,
    /// Per-AS IGP views.
    pub igp: Vec<AsIgp>,
    /// AS-level routes.
    pub bgp: Bgp,
    /// LDP advertisements.
    pub bindings: LdpBindings,
    /// Router → base index into [`Self::fib_spans`] (one span per slot
    /// of the router's own AS table); length `num_routers + 1`.
    fib_base: Vec<u32>,
    /// `(start, len)` into [`Self::fib_pool`] per `(router, slot)`.
    fib_spans: Vec<(u32, u32)>,
    /// Concatenated ECMP next-hop sets `(iface index, next router)`.
    fib_pool: Vec<(u32, RouterId)>,
    /// External forwarding, flattened row-major:
    /// `ext[router.index() * ext_stride + dst_as_index]`. One flat
    /// array instead of a `Vec<Vec<_>>` keeps the per-hop inter-AS
    /// lookup a single indexed load with no pointer chase.
    ext: Vec<ExtRoute>,
    /// Row stride of [`Self::ext`]: the number of ASes.
    ext_stride: usize,
    /// Per-router dense LFIBs.
    lfib: Vec<RouterLfib>,
    /// Router → span of [`Self::te_routes`] headed there; length
    /// `num_routers + 1`. Almost every router heads no tunnel, so the
    /// miss path is two adjacent loads.
    te_heads: Vec<u32>,
    /// `(tail, (out iface, first hop, label to push))`, grouped by head
    /// router and sorted by tail within each group.
    te_routes: Vec<(RouterId, TeRoute)>,
    /// FIB slot of each router's loopback inside its own AS table
    /// (`u32::MAX` = none). The packet walk only ever longest-prefix
    /// matches addresses inside the AS that owns them, so these tables
    /// pay every trie walk once at build time.
    loopback_slot: Vec<u32>,
    /// Router → base index into [`Self::iface_slot`]; length
    /// `num_routers + 1`.
    iface_slot_base: Vec<u32>,
    /// FIB slot of each interface address inside its owner's own AS
    /// table (`u32::MAX` = none), in router-then-interface order.
    iface_slot: Vec<u32>,
    /// Dense AS index of each router's own AS (`u32::MAX` = the AS is
    /// unregistered, which `NetworkBuilder` never produces).
    router_as_idx: Vec<u32>,
    /// Level-1 page table of the dense address→owner index:
    /// `addr >> 12` → base of a [`OWNER_PAGE_SIZE`]-entry page in
    /// [`Self::owner_pool`] (`u32::MAX` = no address in that /20).
    /// Addresses come from the builder's contiguous pools, so the
    /// handful of live pages replace the per-leg owner hash with two
    /// dependent array loads.
    owner_page: Vec<u32>,
    /// Concatenated owner pages: `owner router id + 1`, `0` = unowned.
    owner_pool: Vec<u32>,
    /// Per-router configuration byte (see [`walk`]).
    walk_flags: Vec<u8>,
    /// Per-router vendor initial TTL for time-exceeded replies.
    walk_te_ttl: Vec<u8>,
    /// Per-router vendor initial TTL for echo replies.
    walk_er_ttl: Vec<u8>,
    /// Per-router loopback address.
    walk_loopback: Vec<Addr>,
    /// Flat interface records in router-then-interface order, indexed
    /// through [`Self::iface_slot_base`] (same CSR as `iface_slot`).
    walk_iface: Vec<WalkIface>,
}

/// Phase-1 output for one AS: its IGP view and prefix table.
fn compute_as(net: &Network, asn: Asn) -> Result<(AsIgp, AsPrefixes), NetError> {
    let view = AsIgp::compute(net, asn);
    if let Some(unreachable) = view.find_unreachable() {
        return Err(NetError::DisconnectedAs { asn, unreachable });
    }
    let prefixes = AsPrefixes::build(net, asn);
    Ok((view, prefixes))
}

/// The *logical* intra-AS FIB: for every router, the per-slot ECMP
/// next-hop set towards the nearest owner of each internal prefix of
/// its own AS (empty for connected or unreachable prefixes). This is
/// the semantic model that [`ControlPlane::build`] flattens into
/// `fib_base`/`fib_spans`/`fib_pool`; the `wormhole-lint` D5xx
/// verifier re-derives it to cross-check the dense encoding, so build
/// and verifier stay in lockstep by construction.
pub fn logical_fib(
    net: &Network,
    igp: &[AsIgp],
    as_prefixes: &[AsPrefixes],
) -> Vec<Vec<Vec<(u32, RouterId)>>> {
    let mut fib: Vec<Vec<Vec<(u32, RouterId)>>> = vec![Vec::new(); net.num_routers()];
    for (as_idx, ap) in as_prefixes.iter().enumerate() {
        let view = &igp[as_idx];
        for &rid in net.as_members(ap.asn) {
            let table = &mut fib[rid.index()];
            table.resize(ap.len(), Vec::new());
            for slot in 0..ap.len() as u32 {
                let owners = ap.owners(slot);
                if owners.contains(&rid) {
                    continue; // connected route, engine handles it
                }
                let best = owners
                    .iter()
                    .map(|&o| view.distance(rid, o))
                    .min()
                    .unwrap_or(crate::igp::INF);
                if best >= crate::igp::INF {
                    continue;
                }
                let mut hops: Vec<(u32, RouterId)> = Vec::new();
                for &o in owners {
                    if view.distance(rid, o) != best {
                        continue;
                    }
                    for &h in view.first_hops(rid, o) {
                        if !hops.contains(&h) {
                            hops.push(h);
                        }
                    }
                }
                hops.sort_by_key(|&(i, r)| (r, i));
                table[slot as usize] = hops;
            }
        }
    }
    fib
}

/// The LFIB branches a router installs for FEC `slot` given its ECMP
/// next-hop set `hops`: each branch's label operation follows the
/// downstream neighbor's LDP advertisement — swap to its real label,
/// pop on implicit null or a missing binding (Cisco "untagged"),
/// swap-to-explicit-null on UHP. Shared by [`ControlPlane::build`] and
/// the D5xx verifier.
pub fn ldp_lfib_hops(bindings: &LdpBindings, slot: u32, hops: &[(u32, RouterId)]) -> Vec<LfibHop> {
    let mut out = Vec::with_capacity(hops.len());
    for &(iface, next) in hops {
        let action = match bindings.advertised(next, slot) {
            Some(LabelValue::Real(out_label)) => LabelAction::Swap(out_label),
            Some(LabelValue::ImplicitNull) => LabelAction::Pop,
            Some(LabelValue::ExplicitNull) => LabelAction::SwapExplicitNull,
            // Downstream has no binding: "untagged".
            None => LabelAction::Pop,
        };
        out.push(LfibHop {
            iface,
            next,
            action,
        });
    }
    out
}

/// The label program of every RSVP-TE tunnel: the transit LFIB entries
/// to install (in tunnel-then-path order) and the per-`(head, tail)`
/// autoroute decisions sorted by `(head, tail)` (a later tunnel on the
/// same pair wins, as in [`ControlPlane::build`]). Fails when a tunnel
/// path is invalid or lacks a physical adjacency.
#[allow(clippy::type_complexity)] // the two halves of the TE program
pub fn te_program(
    net: &Network,
) -> Result<
    (
        Vec<(RouterId, Label, LfibEntry)>,
        Vec<((RouterId, RouterId), TeRoute)>,
    ),
    NetError,
> {
    let mut transit = Vec::new();
    let mut te_autoroute = HashMap::new();
    for t in net.te_tunnels() {
        t.validate(net)
            .map_err(|reason| NetError::InvalidTeTunnel { reason })?;
        for i in 1..t.path.len().saturating_sub(1) {
            let cur = t.path[i];
            let next = t.path[i + 1];
            let iface = net
                .router(cur)
                .iface_to(next)
                .ok_or(NetError::MissingAdjacency {
                    from: cur,
                    to: next,
                })? as u32;
            let action = if i + 1 == t.path.len() - 1 {
                match t.popping {
                    PoppingMode::Php => LabelAction::Pop,
                    PoppingMode::Uhp => LabelAction::SwapExplicitNull,
                }
            } else {
                LabelAction::Swap(t.label_into(i + 1))
            };
            transit.push((
                cur,
                t.label_into(i),
                LfibEntry {
                    slot: u32::MAX, // TE entries carry no LDP FEC
                    nexthops: vec![LfibHop {
                        iface,
                        next,
                        action,
                    }],
                },
            ));
        }
        let first = t.path[1];
        let head = t.head();
        let iface = net
            .router(head)
            .iface_to(first)
            .ok_or(NetError::MissingAdjacency {
                from: head,
                to: first,
            })? as u32;
        let push = if t.path.len() == 2 {
            match t.popping {
                PoppingMode::Php => None, // one-hop LSP degenerates
                PoppingMode::Uhp => Some(Label::EXPLICIT_NULL),
            }
        } else {
            Some(t.label_into(1))
        };
        te_autoroute.insert((t.head(), t.tail()), (iface, first, push));
    }
    let mut te_list: Vec<((RouterId, RouterId), TeRoute)> = te_autoroute.into_iter().collect();
    te_list.sort_by_key(|&((h, t), _)| (h, t));
    Ok((transit, te_list))
}

impl ControlPlane {
    /// Computes the full control plane, using every available core for
    /// the per-AS phase. Fails when an AS is internally disconnected or
    /// an inter-AS link lacks a declared relationship.
    pub fn build(net: &Network) -> Result<ControlPlane, NetError> {
        let jobs = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ControlPlane::build_with_jobs(net, jobs)
    }

    /// Computes the full control plane with at most `jobs` worker
    /// threads for the per-AS IGP/prefix phase (one Dijkstra per AS
    /// member — the dominant build cost at scale). The result is
    /// byte-identical at any job count: workers fill disjoint AS-index
    /// slots and the merge walks them in AS order, so the first error
    /// by AS index wins deterministically.
    pub fn build_with_jobs(net: &Network, jobs: usize) -> Result<ControlPlane, NetError> {
        let bgp = Bgp::compute(net)?;
        ControlPlane::assemble(net, jobs, bgp, None)
    }

    /// The substrate-cache payload: the two build phases whose cost
    /// dominates at scale (valley-free BGP and the hot-potato external
    /// route table), encoded with [`crate::wire`]. Everything else in
    /// the plane is cheap to recompute from the network, so
    /// [`ControlPlane::from_cache_payload`] rebuilds it instead of
    /// trusting more serialized state than necessary.
    pub fn cache_payload(&self) -> Vec<u8> {
        use crate::wire::Wire as _;
        let mut out = Vec::new();
        self.bgp.put(&mut out);
        self.ext.put(&mut out);
        out
    }

    /// Rebuilds the control plane from a [`ControlPlane::cache_payload`]
    /// over the *same* network. The cached BGP table and external-route
    /// table skip the expensive phases; every other table is assembled
    /// from `net` exactly as [`ControlPlane::build_with_jobs`] would, so
    /// the result is byte-identical to a cold build. A payload whose
    /// external-route table does not match the network's dimensions is
    /// rejected as corrupt (the caller's config checksum should have
    /// caught the mismatch earlier).
    pub fn from_cache_payload(
        net: &Network,
        jobs: usize,
        payload: &[u8],
    ) -> Result<ControlPlane, CachePayloadError> {
        use crate::wire::{Reader, Wire as _, WireError};
        let mut r = Reader::new(payload);
        let bgp = Bgp::take(&mut r).map_err(CachePayloadError::Decode)?;
        let ext: Vec<ExtRoute> = Vec::take(&mut r).map_err(CachePayloadError::Decode)?;
        if !r.is_empty() {
            return Err(CachePayloadError::Decode(WireError::Corrupt(
                "trailing bytes",
            )));
        }
        let n_as = net.as_list().len();
        if ext.len() != n_as * net.num_routers() || bgp.next_as.len() != n_as {
            return Err(CachePayloadError::Decode(WireError::Corrupt(
                "cached table dimensions do not match the network",
            )));
        }
        ControlPlane::assemble(net, jobs, bgp, Some(ext)).map_err(CachePayloadError::Assemble)
    }

    /// The shared tail of [`ControlPlane::build_with_jobs`] and
    /// [`ControlPlane::from_cache_payload`]: everything after BGP.
    /// `cached_ext` skips the hot-potato external-route loop (the
    /// dominant single phase at thousandfold scale) when a cache
    /// supplied the table.
    fn assemble(
        net: &Network,
        jobs: usize,
        bgp: Bgp,
        cached_ext: Option<Vec<ExtRoute>>,
    ) -> Result<ControlPlane, NetError> {
        let as_list = net.as_list();
        let n_as = as_list.len();
        let jobs = jobs.max(1).min(n_as.max(1));

        let mut slots: Vec<Option<Result<(AsIgp, AsPrefixes), NetError>>> = Vec::new();
        slots.resize_with(n_as, || None);
        if jobs <= 1 {
            for (i, slot) in slots.iter_mut().enumerate() {
                *slot = Some(compute_as(net, as_list[i]));
            }
        } else {
            let chunk = n_as.div_ceil(jobs);
            std::thread::scope(|scope| {
                for (ci, chunk_slots) in slots.chunks_mut(chunk).enumerate() {
                    let base = ci * chunk;
                    scope.spawn(move || {
                        for (j, slot) in chunk_slots.iter_mut().enumerate() {
                            *slot = Some(compute_as(net, as_list[base + j]));
                        }
                    });
                }
            });
        }
        let mut as_prefixes = Vec::with_capacity(n_as);
        let mut igp = Vec::with_capacity(n_as);
        for slot in slots.into_iter().flatten() {
            let (view, prefixes) = slot?;
            igp.push(view);
            as_prefixes.push(prefixes);
        }
        let bindings = LdpBindings::compute(net, &as_prefixes);

        // Intra-AS FIBs, first into the logical per-router scratch
        // table that the dense pool below flattens.
        let fib = logical_fib(net, &igp, &as_prefixes);

        // External routes with hot-potato egress selection (or the
        // cached table, which this loop produced on a previous build).
        let compute_ext = cached_ext.is_none();
        let mut ext =
            cached_ext.unwrap_or_else(|| vec![ExtRoute::Unreachable; n_as * net.num_routers()]);
        for (src_as, &asn) in as_list.iter().enumerate() {
            if !compute_ext {
                break;
            }
            let view = &igp[src_as];
            let borders = net.borders(asn);
            #[allow(clippy::needless_range_loop)] // dst_as indexes two tables
            for dst_as in 0..n_as {
                if dst_as == src_as {
                    continue;
                }
                let best_next = bgp.next_hops(dst_as, src_as);
                if best_next.is_empty() {
                    continue;
                }
                // Candidate (border, iface) pairs reaching a best next AS.
                let mut candidates: Vec<(RouterId, u32)> = Vec::new();
                for &b in &borders {
                    for (idx, iface) in net.router(b).ifaces.iter().enumerate() {
                        if !net.link(iface.link).inter_as {
                            continue;
                        }
                        let peer_as = net.router(iface.peer).asn;
                        let peer_idx = net
                            .as_index(peer_as)
                            .ok_or(NetError::UnregisteredAs { asn: peer_as })?;
                        if best_next.contains(&peer_idx) {
                            candidates.push((b, idx as u32));
                        }
                    }
                }
                if candidates.is_empty() {
                    continue; // relationship without a physical link
                }
                candidates.sort_by_key(|&(r, i)| (r, i));
                for &rid in net.as_members(asn) {
                    if let Some(&(_, iface)) = candidates.iter().find(|&&(b, _)| b == rid) {
                        ext[rid.index() * n_as + dst_as] = ExtRoute::Direct { iface };
                        continue;
                    }
                    // Nearest candidate border (hot potato).
                    let choice = candidates
                        .iter()
                        .map(|&(b, _)| (view.distance(rid, b), b))
                        .min();
                    if let Some((d, egress)) = choice {
                        if d < crate::igp::INF {
                            ext[rid.index() * n_as + dst_as] = ExtRoute::ViaEgress { egress };
                        }
                    }
                }
            }
        }

        // LFIBs: one entry per real incoming label.
        let mut lfib: Vec<RouterLfib> = vec![RouterLfib::default(); net.num_routers()];
        for ap in as_prefixes.iter() {
            for &rid in net.as_members(ap.asn) {
                let advertised: Vec<(u32, LabelValue)> = bindings.advertisements(rid).collect();
                for (slot, value) in advertised {
                    let LabelValue::Real(in_label) = value else {
                        continue;
                    };
                    let hops = ldp_lfib_hops(&bindings, slot, &fib[rid.index()][slot as usize]);
                    if !hops.is_empty() {
                        lfib[rid.index()].insert(
                            in_label,
                            LfibEntry {
                                slot,
                                nexthops: hops,
                            },
                        );
                    }
                }
            }
        }

        // RSVP-TE tunnels: validate paths, install the label chain at
        // every transit LSR, and flatten the heads' autoroute decisions
        // into a CSR table grouped by head.
        let (te_transit, te_list) = te_program(net)?;
        for (cur, in_label, entry) in te_transit {
            lfib[cur.index()].insert(in_label, entry);
        }
        let mut te_heads = Vec::with_capacity(net.num_routers() + 1);
        let mut te_routes = Vec::with_capacity(te_list.len());
        let mut cursor = 0usize;
        for r in 0..net.num_routers() {
            te_heads.push(te_routes.len() as u32);
            while cursor < te_list.len() && te_list[cursor].0 .0.index() == r {
                let ((_, tail), route) = te_list[cursor];
                te_routes.push((tail, route));
                cursor += 1;
            }
        }
        te_heads.push(te_routes.len() as u32);

        // Flatten the per-router FIB scratch into the shared pool.
        let mut fib_base = Vec::with_capacity(net.num_routers() + 1);
        let mut fib_spans = Vec::new();
        let mut fib_pool = Vec::new();
        for table in &fib {
            fib_base.push(fib_spans.len() as u32);
            for hops in table {
                fib_spans.push((fib_pool.len() as u32, hops.len() as u32));
                fib_pool.extend_from_slice(hops);
            }
        }
        fib_base.push(fib_spans.len() as u32);

        // Dense destination-resolution tables: the forwarding decision
        // only ever LPMs an address inside the AS that owns it (the
        // destination's own table, or the egress border's loopback in
        // the border's own table), so every slot the walk can ask for
        // is resolved here, once, instead of per packet leg.
        let mut loopback_slot = vec![u32::MAX; net.num_routers()];
        let mut router_as_idx = vec![u32::MAX; net.num_routers()];
        let mut iface_slot_base = Vec::with_capacity(net.num_routers() + 1);
        let mut iface_slot = Vec::new();
        iface_slot_base.push(0u32);
        for (i, r) in net.routers().iter().enumerate() {
            match net.as_index(r.asn) {
                Some(idx) => {
                    let ap = &as_prefixes[idx];
                    router_as_idx[i] = idx as u32;
                    if let Some(s) = ap.lookup(r.loopback) {
                        loopback_slot[i] = s;
                    }
                    for ifc in &r.ifaces {
                        iface_slot.push(ap.lookup(ifc.addr).unwrap_or(u32::MAX));
                    }
                }
                None => iface_slot.resize(iface_slot.len() + r.ifaces.len(), u32::MAX),
            }
            iface_slot_base.push(iface_slot.len() as u32);
        }

        // Dense address→owner index. Walking the routers (not the owner
        // hash) keeps page allocation order — and thus the table bytes —
        // deterministic across builds and job counts.
        let mut owner_page = vec![u32::MAX; 1 << 20];
        let mut owner_pool: Vec<u32> = Vec::new();
        {
            let mut index = |addr: Addr, rid: RouterId| {
                let hi = (addr.0 >> 12) as usize;
                if owner_page[hi] == u32::MAX {
                    owner_page[hi] = owner_pool.len() as u32;
                    owner_pool.resize(owner_pool.len() + OWNER_PAGE_SIZE, 0);
                }
                let base = owner_page[hi] as usize;
                owner_pool[base + (addr.0 & 0xFFF) as usize] = rid.0 + 1;
            };
            for r in net.routers() {
                index(r.loopback, r.id);
                for ifc in &r.ifaces {
                    index(ifc.addr, r.id);
                }
            }
        }

        // Flat walk tables: the per-router configuration byte, vendor
        // TTL signatures, loopbacks and interface records the engine's
        // hot loop reads — one cache-friendly row per router instead of
        // the pointer-heavy `Router` struct.
        let n = net.num_routers();
        let mut walk_flags = Vec::with_capacity(n);
        let mut walk_te_ttl = Vec::with_capacity(n);
        let mut walk_er_ttl = Vec::with_capacity(n);
        let mut walk_loopback = Vec::with_capacity(n);
        let mut walk_iface = Vec::with_capacity(iface_slot.len());
        for r in net.routers() {
            let c = &r.config;
            let mut f = 0u8;
            if c.mpls {
                f |= walk::MPLS;
            }
            if c.ttl_propagate {
                f |= walk::TTL_PROPAGATE;
            }
            if c.rfc4950 {
                f |= walk::RFC4950;
            }
            if c.min_on_exit {
                f |= walk::MIN_ON_EXIT;
            }
            if c.replies {
                f |= walk::REPLIES;
            }
            if c.is_host {
                f |= walk::IS_HOST;
            }
            walk_flags.push(f);
            walk_te_ttl.push(c.vendor.te_init_ttl());
            walk_er_ttl.push(c.vendor.er_init_ttl());
            walk_loopback.push(r.loopback);
            for ifc in &r.ifaces {
                walk_iface.push(WalkIface {
                    addr: ifc.addr,
                    peer_addr: ifc.peer_addr,
                    peer: ifc.peer,
                    link: ifc.link,
                    delay_ms: net.link(ifc.link).delay_ms,
                });
            }
        }

        Ok(ControlPlane {
            as_prefixes,
            igp,
            bgp,
            bindings,
            fib_base,
            fib_spans,
            fib_pool,
            ext,
            ext_stride: n_as,
            lfib,
            te_heads,
            te_routes,
            loopback_slot,
            iface_slot_base,
            iface_slot,
            router_as_idx,
            owner_page,
            owner_pool,
            walk_flags,
            walk_te_ttl,
            walk_er_ttl,
            walk_loopback,
            walk_iface,
        })
    }

    /// The router owning `addr`, through the dense owner index — two
    /// dependent array loads, the replacement for the per-leg owner
    /// hash. Agrees with [`Network::owner`] by construction (the D512
    /// dense-plane rule cross-checks it against the routers).
    #[inline]
    pub fn owner_of(&self, addr: Addr) -> Option<RouterId> {
        let page = self.owner_page[(addr.0 >> 12) as usize];
        if page == u32::MAX {
            return None;
        }
        let v = self.owner_pool[page as usize + (addr.0 & 0xFFF) as usize];
        if v == 0 {
            None
        } else {
            Some(RouterId(v - 1))
        }
    }

    /// The walk-table configuration byte of `router` (see [`walk`]).
    #[inline]
    pub fn router_flags(&self, router: RouterId) -> u8 {
        self.walk_flags[router.index()]
    }

    /// The vendor initial TTL `router` stamps on time-exceeded (and
    /// unreachable) replies.
    #[inline]
    pub fn te_init_ttl(&self, router: RouterId) -> u8 {
        self.walk_te_ttl[router.index()]
    }

    /// The vendor initial TTL `router` stamps on echo replies.
    #[inline]
    pub fn er_init_ttl(&self, router: RouterId) -> u8 {
        self.walk_er_ttl[router.index()]
    }

    /// The loopback address of `router`, from the flat walk table.
    #[inline]
    pub fn loopback_addr(&self, router: RouterId) -> Addr {
        self.walk_loopback[router.index()]
    }

    /// The flat interface records of `router`, in interface order.
    #[inline]
    pub fn walk_ifaces(&self, router: RouterId) -> &[WalkIface] {
        let lo = self.iface_slot_base[router.index()] as usize;
        let hi = self.iface_slot_base[router.index() + 1] as usize;
        &self.walk_iface[lo..hi]
    }

    /// The dense AS index of `router`'s own AS, raw (`u32::MAX` = the
    /// AS is unregistered) — the branch-free form the hot loop compares
    /// against a destination's cached AS index.
    #[inline]
    pub(crate) fn router_as_raw(&self, router: RouterId) -> u32 {
        self.router_as_idx[router.index()]
    }

    /// The FIB slot of `router`'s loopback inside its own AS table.
    #[inline]
    pub fn loopback_slot(&self, router: RouterId) -> Option<u32> {
        let s = self.loopback_slot[router.index()];
        (s != u32::MAX).then_some(s)
    }

    /// The FIB slot of `router`'s interface `iface`'s address inside
    /// its own AS table.
    #[inline]
    pub fn iface_slot(&self, router: RouterId, iface: usize) -> Option<u32> {
        let base = self.iface_slot_base[router.index()] as usize;
        let s = self.iface_slot[base + iface];
        (s != u32::MAX).then_some(s)
    }

    /// The dense AS index of `router`'s own AS.
    #[inline]
    pub fn router_as_index(&self, router: RouterId) -> Option<usize> {
        let i = self.router_as_idx[router.index()];
        (i != u32::MAX).then_some(i as usize)
    }

    /// The intra-AS ECMP next-hop set of `router` for prefix `slot`, as
    /// `(iface index, next router)` pairs. `None` when the router owns
    /// the prefix or it is unreachable.
    #[inline]
    pub fn fib_entry(&self, router: RouterId, slot: u32) -> Option<&[(u32, RouterId)]> {
        let base = self.fib_base[router.index()] as usize;
        let n_slots = self.fib_base[router.index() + 1] as usize - base;
        if slot as usize >= n_slots {
            return None;
        }
        let (start, len) = self.fib_spans[base + slot as usize];
        if len == 0 {
            return None;
        }
        Some(&self.fib_pool[start as usize..(start + len) as usize])
    }

    /// The external route of `router` towards the AS with dense index
    /// `dst_as`.
    #[inline]
    pub fn ext_route(&self, router: RouterId, dst_as: usize) -> ExtRoute {
        self.ext[router.index() * self.ext_stride + dst_as]
    }

    /// The LFIB entry of `router` for incoming `label`.
    #[inline]
    pub fn lfib_entry(&self, router: RouterId, label: Label) -> Option<&LfibEntry> {
        self.lfib[router.index()].get(label)
    }

    /// Number of LFIB entries installed at `router`.
    pub fn lfib_size(&self, router: RouterId) -> usize {
        self.lfib[router.index()].len
    }

    /// Iterates over every LFIB entry installed at `router`, as
    /// `(incoming label, entry)` pairs (arbitrary order).
    pub fn lfib_entries(&self, router: RouterId) -> impl Iterator<Item = (Label, &LfibEntry)> + '_ {
        self.lfib[router.index()].iter()
    }

    /// Installs (or overwrites) an LFIB entry at `router` — a what-if
    /// mutator for fault-injection studies and for exercising the
    /// static checks: `build` only ever produces consistent LFIBs, so
    /// dangling label-swaps can only be created deliberately.
    pub fn inject_lfib_entry(&mut self, router: RouterId, label: Label, entry: LfibEntry) {
        self.lfib[router.index()].insert(label, entry);
    }

    /// The TE autoroute decision at `head` for traffic towards `tail`
    /// (its BGP next hop or its own addresses):
    /// `(out iface, first hop, label to push)`.
    #[inline]
    pub fn te_route(
        &self,
        head: RouterId,
        tail: RouterId,
    ) -> Option<(u32, RouterId, Option<Label>)> {
        let lo = self.te_heads[head.index()] as usize;
        let hi = self.te_heads[head.index() + 1] as usize;
        let span = &self.te_routes[lo..hi];
        if span.is_empty() {
            return None;
        }
        span.binary_search_by_key(&tail, |&(t, _)| t)
            .ok()
            .map(|i| span[i].1)
    }

    /// Borrows every flat destination/forwarding table at once, for the
    /// D5xx dense-plane verifier. The packet walk never goes through
    /// this view — it exists so an external checker can audit CSR
    /// well-formedness without the tables becoming public fields.
    pub fn dense_view(&self) -> DenseView<'_> {
        DenseView {
            fib_base: &self.fib_base,
            fib_spans: &self.fib_spans,
            fib_pool: &self.fib_pool,
            te_heads: &self.te_heads,
            te_routes: &self.te_routes,
            loopback_slot: &self.loopback_slot,
            iface_slot_base: &self.iface_slot_base,
            iface_slot: &self.iface_slot,
            router_as_idx: &self.router_as_idx,
            owner_page: &self.owner_page,
            owner_pool: &self.owner_pool,
        }
    }

    /// Borrows the raw window/overflow representation of `router`'s
    /// LFIB, for the D5xx dense-plane verifier.
    pub fn lfib_raw(&self, router: RouterId) -> LfibRaw<'_> {
        let t = &self.lfib[router.index()];
        LfibRaw {
            lo: t.lo,
            window: &t.window,
            overflow: &t.overflow,
            len: t.len,
        }
    }
}

/// A read-only borrow of every flat table inside a [`ControlPlane`],
/// exposed for invariant verification (see [`ControlPlane::dense_view`]).
#[derive(Copy, Clone, Debug)]
pub struct DenseView<'a> {
    /// Router → base index into `fib_spans`; length `num_routers + 1`.
    pub fib_base: &'a [u32],
    /// `(start, len)` into `fib_pool` per `(router, slot)`.
    pub fib_spans: &'a [(u32, u32)],
    /// Concatenated ECMP next-hop sets `(iface index, next router)`.
    pub fib_pool: &'a [(u32, RouterId)],
    /// Router → span of `te_routes` headed there; length
    /// `num_routers + 1`.
    pub te_heads: &'a [u32],
    /// `(tail, route)` grouped by head, sorted by tail within a group.
    pub te_routes: &'a [(RouterId, TeRoute)],
    /// FIB slot of each router's loopback (`u32::MAX` = none).
    pub loopback_slot: &'a [u32],
    /// Router → base index into `iface_slot`; length `num_routers + 1`.
    pub iface_slot_base: &'a [u32],
    /// FIB slot of each interface address (`u32::MAX` = none).
    pub iface_slot: &'a [u32],
    /// Dense AS index of each router's own AS (`u32::MAX` = none).
    pub router_as_idx: &'a [u32],
    /// Level-1 page table of the dense owner index (`u32::MAX` = no
    /// page for that /20).
    pub owner_page: &'a [u32],
    /// Concatenated owner pages (`owner id + 1`, `0` = unowned).
    pub owner_pool: &'a [u32],
}

/// A read-only borrow of one router's raw LFIB representation (see
/// [`ControlPlane::lfib_raw`]).
#[derive(Copy, Clone, Debug)]
pub struct LfibRaw<'a> {
    /// Label value of `window[0]`.
    pub lo: u32,
    /// `window[label - lo]`, `None` for gaps.
    pub window: &'a [Option<LfibEntry>],
    /// Entries outside the window, sorted by label value.
    pub overflow: &'a [(u32, LfibEntry)],
    /// Claimed number of installed entries.
    pub len: usize,
}

/// Test-only mutation hooks (`mutation` cargo feature): `&mut` access
/// to the private dense tables so the lint crate's mutation self-test
/// can seed one corruption per D5xx rule. Nothing in the simulator
/// calls these.
#[cfg(feature = "mutation")]
impl ControlPlane {
    /// Mutable `te_heads` CSR offsets.
    pub fn te_heads_mut(&mut self) -> &mut Vec<u32> {
        &mut self.te_heads
    }

    /// Mutable `te_routes` pool.
    pub fn te_routes_mut(&mut self) -> &mut Vec<(RouterId, TeRoute)> {
        &mut self.te_routes
    }

    /// Mutable `fib_base` CSR offsets.
    pub fn fib_base_mut(&mut self) -> &mut Vec<u32> {
        &mut self.fib_base
    }

    /// Mutable `fib_spans` table.
    pub fn fib_spans_mut(&mut self) -> &mut Vec<(u32, u32)> {
        &mut self.fib_spans
    }

    /// Mutable `fib_pool`.
    pub fn fib_pool_mut(&mut self) -> &mut Vec<(u32, RouterId)> {
        &mut self.fib_pool
    }

    /// Mutable per-router loopback slot table.
    pub fn loopback_slot_mut(&mut self) -> &mut Vec<u32> {
        &mut self.loopback_slot
    }

    /// Mutable interface slot table.
    pub fn iface_slot_mut(&mut self) -> &mut Vec<u32> {
        &mut self.iface_slot
    }

    /// Mutable interface slot CSR offsets.
    pub fn iface_slot_base_mut(&mut self) -> &mut Vec<u32> {
        &mut self.iface_slot_base
    }

    /// Mutable router → AS index table.
    pub fn router_as_idx_mut(&mut self) -> &mut Vec<u32> {
        &mut self.router_as_idx
    }

    /// Mutable LFIB overflow list of `router`.
    pub fn lfib_overflow_mut(&mut self, router: RouterId) -> &mut Vec<(u32, LfibEntry)> {
        &mut self.lfib[router.index()].overflow
    }

    /// Mutable LFIB window of `router`.
    pub fn lfib_window_mut(&mut self, router: RouterId) -> &mut Vec<Option<LfibEntry>> {
        &mut self.lfib[router.index()].window
    }

    /// Rebinds `addr` to `owner` in the dense owner index without
    /// touching the routers that actually hold the address (test-only
    /// mutation hook for the D512 owner-index invariant check).
    pub fn poison_owner_index(&mut self, addr: Addr, owner: RouterId) {
        let hi = (addr.0 >> 12) as usize;
        if self.owner_page[hi] == u32::MAX {
            self.owner_page[hi] = self.owner_pool.len() as u32;
            self.owner_pool
                .resize(self.owner_pool.len() + OWNER_PAGE_SIZE, 0);
        }
        let base = self.owner_page[hi] as usize;
        self.owner_pool[base + (addr.0 & 0xFFF) as usize] = owner.0 + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Asn;
    use crate::net::{LinkOpts, NetworkBuilder, RelKind};
    use crate::router::RouterConfig;
    use crate::vendor::Vendor;

    /// AS1(h) -- AS2: a - b - c (MPLS line) -- AS3(t).
    fn line_net() -> (Network, [RouterId; 5]) {
        let mut bld = NetworkBuilder::new();
        let h = bld.add_router("h", Asn(1), RouterConfig::ip_router(Vendor::CiscoIos));
        let a = bld.add_router("a", Asn(2), RouterConfig::mpls_router(Vendor::CiscoIos));
        let b = bld.add_router("b", Asn(2), RouterConfig::mpls_router(Vendor::CiscoIos));
        let c = bld.add_router("c", Asn(2), RouterConfig::mpls_router(Vendor::CiscoIos));
        let t = bld.add_router("t", Asn(3), RouterConfig::ip_router(Vendor::CiscoIos));
        bld.link(h, a, LinkOpts::default());
        bld.link(a, b, LinkOpts::default());
        bld.link(b, c, LinkOpts::default());
        bld.link(c, t, LinkOpts::default());
        bld.as_rel(Asn(2), Asn(1), RelKind::ProviderCustomer);
        bld.as_rel(Asn(2), Asn(3), RelKind::ProviderCustomer);
        (bld.build().unwrap(), [h, a, b, c, t])
    }

    #[test]
    fn fib_points_to_nearest_owner() {
        let (net, [_, a, b, c, _]) = line_net();
        let cp = ControlPlane::build(&net).unwrap();
        let as2 = net.as_index(Asn(2)).unwrap();
        let ap = &cp.as_prefixes[as2];
        let slot = ap.lookup(net.router(c).loopback).unwrap();
        let e = cp.fib_entry(a, slot).unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].1, b);
        // Owner has no FIB entry (connected).
        assert!(cp.fib_entry(c, slot).is_none());
    }

    #[test]
    fn parallel_build_matches_serial() {
        let (net, [_, a, _, c, _]) = line_net();
        let serial = ControlPlane::build_with_jobs(&net, 1).unwrap();
        let par = ControlPlane::build_with_jobs(&net, 4).unwrap();
        let as2 = net.as_index(Asn(2)).unwrap();
        let slot = serial.as_prefixes[as2]
            .lookup(net.router(c).loopback)
            .unwrap();
        assert_eq!(serial.fib_entry(a, slot), par.fib_entry(a, slot));
        for r in 0..net.num_routers() as u32 {
            let rid = RouterId(r);
            assert_eq!(serial.lfib_size(rid), par.lfib_size(rid));
        }
        assert_eq!(serial.igp.len(), par.igp.len());
        for (s, p) in serial.igp.iter().zip(par.igp.iter()) {
            assert_eq!(s.asn, p.asn);
            assert_eq!(s.dist, p.dist);
        }
    }

    #[test]
    fn cache_payload_round_trips() {
        let (net, [_, a, _, c, _]) = line_net();
        let cold = ControlPlane::build(&net).unwrap();
        let payload = cold.cache_payload();
        let warm = ControlPlane::from_cache_payload(&net, 1, &payload).unwrap();
        let as2 = net.as_index(Asn(2)).unwrap();
        let slot = cold.as_prefixes[as2]
            .lookup(net.router(c).loopback)
            .unwrap();
        assert_eq!(cold.fib_entry(a, slot), warm.fib_entry(a, slot));
        for r in 0..net.num_routers() as u32 {
            let rid = RouterId(r);
            assert_eq!(cold.lfib_size(rid), warm.lfib_size(rid));
            for dst_as in 0..net.as_list().len() {
                assert_eq!(cold.ext_route(rid, dst_as), warm.ext_route(rid, dst_as));
            }
        }
        // A second encode of the warm plane is byte-identical.
        assert_eq!(payload, warm.cache_payload());
    }

    #[test]
    fn cache_payload_rejects_corruption() {
        let (net, _) = line_net();
        let cp = ControlPlane::build(&net).unwrap();
        let payload = cp.cache_payload();
        // Truncation is caught by the decoder.
        let err = ControlPlane::from_cache_payload(&net, 1, &payload[..payload.len() - 3]);
        assert!(matches!(err, Err(CachePayloadError::Decode(_))));
        // A payload built for a different network fails the dimension check.
        let mut bld = NetworkBuilder::new();
        let x = bld.add_router("x", Asn(1), RouterConfig::ip_router(Vendor::CiscoIos));
        let y = bld.add_router("y", Asn(2), RouterConfig::ip_router(Vendor::CiscoIos));
        bld.link(x, y, LinkOpts::default());
        bld.as_rel(Asn(1), Asn(2), RelKind::Peer);
        let other = bld.build().unwrap();
        let err = ControlPlane::from_cache_payload(&other, 1, &payload);
        assert!(matches!(err, Err(CachePayloadError::Decode(_))));
    }

    #[test]
    fn ext_routes_direct_and_via_egress() {
        let (net, [h, a, b, c, t]) = line_net();
        let cp = ControlPlane::build(&net).unwrap();
        let as3 = net.as_index(Asn(3)).unwrap();
        // c is the egress border towards AS3.
        assert!(matches!(cp.ext_route(c, as3), ExtRoute::Direct { .. }));
        assert_eq!(cp.ext_route(a, as3), ExtRoute::ViaEgress { egress: c });
        assert_eq!(cp.ext_route(b, as3), ExtRoute::ViaEgress { egress: c });
        // AS1's router reaches AS3 through its provider.
        let as1_h = cp.ext_route(h, as3);
        assert!(matches!(as1_h, ExtRoute::Direct { .. }));
        // And t's route back to AS1.
        let as1 = net.as_index(Asn(1)).unwrap();
        assert!(matches!(cp.ext_route(t, as1), ExtRoute::Direct { .. }));
    }

    #[test]
    fn lfib_swap_then_pop() {
        let (net, [_, a, b, c, _]) = line_net();
        let cp = ControlPlane::build(&net).unwrap();
        let as2 = net.as_index(Asn(2)).unwrap();
        let ap = &cp.as_prefixes[as2];
        let slot = ap.lookup(net.router(c).loopback).unwrap();
        // a pushes b's label; b's LFIB entry for it pops (c advertised
        // implicit null for its own loopback): a 2-hop LSP a -> b -> c.
        let LabelValue::Real(lb) = cp.bindings.advertised(b, slot).unwrap() else {
            panic!("b should advertise a real label");
        };
        let entry = cp.lfib_entry(b, lb).unwrap();
        assert_eq!(entry.slot, slot);
        assert_eq!(entry.nexthops.len(), 1);
        assert_eq!(entry.nexthops[0].next, c);
        assert_eq!(entry.nexthops[0].action, LabelAction::Pop);
        // a itself advertises a real label whose entry swaps to b's.
        let LabelValue::Real(la) = cp.bindings.advertised(a, slot).unwrap() else {
            panic!()
        };
        let entry_a = cp.lfib_entry(a, la).unwrap();
        assert_eq!(entry_a.nexthops[0].action, LabelAction::Swap(lb));
        assert!(cp.lfib_size(a) > 0);
    }

    #[test]
    fn lfib_window_handles_sparse_and_injected_labels() {
        // A dense run, a far-away TE-style label, and labels straddling
        // the window edges must all round-trip through the same table.
        let mut t = RouterLfib::default();
        let entry = |slot: u32| LfibEntry {
            slot,
            nexthops: vec![LfibHop {
                iface: 0,
                next: RouterId(1),
                action: LabelAction::Pop,
            }],
        };
        for v in [20u32, 18, 19, 22] {
            t.insert(Label(v), entry(v));
        }
        t.insert(Label(500_007), entry(7)); // overflow (TE range)
        t.insert(Label(16), entry(16)); // front growth
        assert_eq!(t.len, 6);
        for v in [16u32, 18, 19, 20, 22] {
            assert_eq!(t.get(Label(v)).map(|e| e.slot), Some(v), "label {v}");
        }
        assert_eq!(t.get(Label(500_007)).map(|e| e.slot), Some(7));
        assert!(t.get(Label(17)).is_none());
        assert!(t.get(Label(21)).is_none());
        assert!(t.get(Label(500_008)).is_none());
        // Overwrites don't double-count.
        t.insert(Label(20), entry(99));
        assert_eq!(t.len, 6);
        assert_eq!(t.get(Label(20)).map(|e| e.slot), Some(99));
        assert_eq!(t.iter().count(), 6);
    }

    #[test]
    fn disconnected_as_rejected() {
        let mut bld = NetworkBuilder::new();
        let cfg = RouterConfig::ip_router(Vendor::CiscoIos);
        bld.add_router("x", Asn(1), cfg.clone());
        bld.add_router("y", Asn(1), cfg);
        let net = bld.build().unwrap();
        assert!(matches!(
            ControlPlane::build(&net),
            Err(NetError::DisconnectedAs { .. })
        ));
    }

    #[test]
    fn uhp_penultimate_swaps_explicit_null() {
        let mut bld = NetworkBuilder::new();
        let a = bld.add_router("a", Asn(1), RouterConfig::mpls_router(Vendor::CiscoIos));
        let b = bld.add_router("b", Asn(1), RouterConfig::mpls_router(Vendor::CiscoIos));
        let c = bld.add_router(
            "c",
            Asn(1),
            RouterConfig::mpls_router(Vendor::CiscoIos).uhp(),
        );
        bld.link(a, b, LinkOpts::default());
        bld.link(b, c, LinkOpts::default());
        let net = bld.build().unwrap();
        let cp = ControlPlane::build(&net).unwrap();
        let ap = &cp.as_prefixes[0];
        let slot = ap.lookup(net.router(c).loopback).unwrap();
        let LabelValue::Real(lb) = cp.bindings.advertised(b, slot).unwrap() else {
            panic!()
        };
        let entry = cp.lfib_entry(b, lb).unwrap();
        assert_eq!(entry.nexthops[0].action, LabelAction::SwapExplicitNull);
        let _ = a;
    }
}
