//! IPv4 addresses and prefixes.
//!
//! The simulator uses a compact `u32` newtype for addresses rather than
//! `std::net::Ipv4Addr`: every forwarding decision is a couple of integer
//! operations, and traces hold millions of them during a campaign.

use std::fmt;
use std::str::FromStr;

/// An IPv4 address as a host-order `u32`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Addr(pub u32);

impl Addr {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Addr = Addr(0);

    /// Builds an address from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Addr {
        Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// True if the address is `0.0.0.0`.
    pub const fn is_unspecified(self) -> bool {
        self.0 == 0
    }

    /// The `/32` host prefix covering exactly this address.
    pub const fn host_prefix(self) -> Prefix {
        Prefix {
            addr: Addr(self.0),
            len: 32,
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<[u8; 4]> for Addr {
    fn from(o: [u8; 4]) -> Addr {
        Addr::new(o[0], o[1], o[2], o[3])
    }
}

/// Error returned when parsing an address or prefix from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAddrError(pub String);

impl fmt::Display for ParseAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address or prefix: {}", self.0)
    }
}

impl std::error::Error for ParseAddrError {}

impl FromStr for Addr {
    type Err = ParseAddrError;

    fn from_str(s: &str) -> Result<Addr, ParseAddrError> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for slot in octets.iter_mut() {
            let part = parts.next().ok_or_else(|| ParseAddrError(s.to_string()))?;
            *slot = part
                .parse::<u8>()
                .map_err(|_| ParseAddrError(s.to_string()))?;
        }
        if parts.next().is_some() {
            return Err(ParseAddrError(s.to_string()));
        }
        Ok(Addr::from(octets))
    }
}

/// An IPv4 prefix (`addr/len`), with the address stored in masked form.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    /// The network address; host bits are always zero.
    pub addr: Addr,
    /// The prefix length, `0..=32`.
    pub len: u8,
}

impl Prefix {
    /// Builds a prefix, masking off host bits.
    pub fn new(addr: Addr, len: u8) -> Prefix {
        assert!(len <= 32, "prefix length {len} out of range");
        Prefix {
            addr: Addr(addr.0 & Prefix::mask(len)),
            len,
        }
    }

    /// The netmask for a given length as a `u32`.
    pub const fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// True if `addr` falls inside this prefix.
    pub const fn contains(&self, addr: Addr) -> bool {
        (addr.0 & Prefix::mask(self.len)) == self.addr.0
    }

    /// True if `other` is fully covered by this prefix.
    pub const fn covers(&self, other: &Prefix) -> bool {
        self.len <= other.len && self.contains(other.addr)
    }

    /// The number of addresses in the prefix (saturating for `/0`).
    pub const fn size(&self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// The `i`-th address of the prefix.
    ///
    /// # Panics
    /// Panics if `i` is outside the prefix.
    pub fn nth(&self, i: u64) -> Addr {
        assert!(i < self.size(), "address index {i} outside {self}");
        Addr(self.addr.0 + i as u32)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Prefix {
    type Err = ParseAddrError;

    fn from_str(s: &str) -> Result<Prefix, ParseAddrError> {
        let (addr, len) = s.split_once('/').ok_or_else(|| ParseAddrError(s.into()))?;
        let addr: Addr = addr.parse()?;
        let len: u8 = len.parse().map_err(|_| ParseAddrError(s.into()))?;
        if len > 32 {
            return Err(ParseAddrError(s.into()));
        }
        Ok(Prefix::new(addr, len))
    }
}

/// A sequential allocator carving subnets and host addresses out of a pool.
///
/// Topology builders use one allocator per address family (loopbacks,
/// intra-AS links, inter-AS links) so that ownership is recognisable from
/// the dotted quad when reading traces.
#[derive(Debug, Clone)]
pub struct AddrAllocator {
    pool: Prefix,
    next: u64,
}

impl AddrAllocator {
    /// Creates an allocator over `pool`.
    pub fn new(pool: Prefix) -> AddrAllocator {
        AddrAllocator { pool, next: 0 }
    }

    /// Allocates the next single host address (`/32` granularity).
    pub fn alloc_host(&mut self) -> Option<Addr> {
        if self.next >= self.pool.size() {
            return None;
        }
        let a = self.pool.nth(self.next);
        self.next += 1;
        Some(a)
    }

    /// Allocates the next aligned subnet of length `len`.
    pub fn alloc_subnet(&mut self, len: u8) -> Option<Prefix> {
        assert!(len >= self.pool.len && len <= 32);
        let size = 1u64 << (32 - len);
        // Round up to the subnet alignment.
        let start = self.next.div_ceil(size) * size;
        if start + size > self.pool.size() {
            return None;
        }
        self.next = start + size;
        Some(Prefix::new(self.pool.nth(start), len))
    }

    /// Number of addresses handed out (including alignment padding).
    pub fn used(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_roundtrip_display_parse() {
        let a = Addr::new(192, 168, 69, 1);
        assert_eq!(a.to_string(), "192.168.69.1");
        assert_eq!("192.168.69.1".parse::<Addr>().unwrap(), a);
        assert_eq!(a.octets(), [192, 168, 69, 1]);
    }

    #[test]
    fn addr_rejects_garbage() {
        assert!("192.168.1".parse::<Addr>().is_err());
        assert!("192.168.1.1.5".parse::<Addr>().is_err());
        assert!("300.0.0.1".parse::<Addr>().is_err());
        assert!("a.b.c.d".parse::<Addr>().is_err());
    }

    #[test]
    fn prefix_masks_host_bits() {
        let p = Prefix::new(Addr::new(10, 1, 2, 3), 24);
        assert_eq!(p.addr, Addr::new(10, 1, 2, 0));
        assert_eq!(p.to_string(), "10.1.2.0/24");
    }

    #[test]
    fn prefix_contains() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        assert!(p.contains(Addr::new(10, 255, 0, 1)));
        assert!(!p.contains(Addr::new(11, 0, 0, 1)));
        let host = Addr::new(1, 2, 3, 4).host_prefix();
        assert!(host.contains(Addr::new(1, 2, 3, 4)));
        assert!(!host.contains(Addr::new(1, 2, 3, 5)));
    }

    #[test]
    fn prefix_covers() {
        let big: Prefix = "10.0.0.0/8".parse().unwrap();
        let small: Prefix = "10.4.0.0/16".parse().unwrap();
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
        assert!(big.covers(&big));
    }

    #[test]
    fn default_route_contains_everything() {
        let p = Prefix::new(Addr::UNSPECIFIED, 0);
        assert!(p.contains(Addr::new(255, 255, 255, 255)));
        assert!(p.contains(Addr::UNSPECIFIED));
    }

    #[test]
    fn allocator_hosts_and_subnets() {
        let mut alloc = AddrAllocator::new("10.0.0.0/24".parse().unwrap());
        assert_eq!(alloc.alloc_host(), Some(Addr::new(10, 0, 0, 0)));
        assert_eq!(alloc.alloc_host(), Some(Addr::new(10, 0, 0, 1)));
        // Next /31 must be aligned: skips 10.0.0.2? No: 2 is aligned for /31.
        let s = alloc.alloc_subnet(31).unwrap();
        assert_eq!(s, "10.0.0.2/31".parse().unwrap());
        let s = alloc.alloc_subnet(30).unwrap();
        assert_eq!(s, "10.0.0.4/30".parse().unwrap());
    }

    #[test]
    fn allocator_exhaustion() {
        let mut alloc = AddrAllocator::new("10.0.0.0/31".parse().unwrap());
        assert!(alloc.alloc_host().is_some());
        assert!(alloc.alloc_host().is_some());
        assert!(alloc.alloc_host().is_none());
        assert!(alloc.alloc_subnet(32).is_none());
    }
}
