//! The immutable measurement substrate: a built [`Network`] plus its
//! computed [`ControlPlane`], bundled so they can be shared — by
//! reference between scoped campaign workers, or by [`Arc`] handle
//! between owners with independent lifetimes.
//!
//! The split this module anchors is the one the parallel campaign
//! relies on: everything topology- and routing-shaped is **immutable
//! and `Send + Sync`** (built once, read by every worker), while all
//! mutable probing state (fault RNG streams, probe counters, flow-id
//! bookkeeping) lives in a per-worker [`crate::state::ProbeState`].
//! Nothing in this crate uses interior mutability, so sharing a
//! substrate across threads needs no locks.

use crate::control::ControlPlane;
use crate::error::NetError;
use crate::net::Network;
use std::sync::Arc;

/// A borrowed view of the substrate: the cheap, `Copy` handle that
/// [`crate::engine::Engine`] (and everything above it) forwards over.
///
/// Both referents are immutable and `Sync`, so a `SubstrateRef` can be
/// captured by scoped worker threads directly.
#[derive(Copy, Clone, Debug)]
pub struct SubstrateRef<'a> {
    /// The network topology and router configurations.
    pub net: &'a Network,
    /// The computed FIBs, LFIBs, BGP tables and prefix tries.
    pub cp: &'a ControlPlane,
}

impl<'a> SubstrateRef<'a> {
    /// Bundles a network and its control plane.
    pub fn new(net: &'a Network, cp: &'a ControlPlane) -> SubstrateRef<'a> {
        SubstrateRef { net, cp }
    }
}

struct SubstrateInner {
    net: Network,
    cp: ControlPlane,
}

/// An owned, reference-counted substrate: build the network and its
/// control plane once, then clone the handle freely — clones are an
/// `Arc` bump, and every clone sees the same immutable routing state.
#[derive(Clone)]
pub struct Substrate {
    inner: Arc<SubstrateInner>,
}

impl std::fmt::Debug for Substrate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Substrate")
            .field("routers", &self.inner.net.routers().len())
            .finish()
    }
}

impl Substrate {
    /// Builds the control plane for `net` and wraps both.
    pub fn build(net: Network) -> Result<Substrate, NetError> {
        let cp = ControlPlane::build(&net)?;
        Ok(Substrate::from_parts(net, cp))
    }

    /// Wraps an already-computed control plane with its network.
    pub fn from_parts(net: Network, cp: ControlPlane) -> Substrate {
        Substrate {
            inner: Arc::new(SubstrateInner { net, cp }),
        }
    }

    /// The network.
    pub fn net(&self) -> &Network {
        &self.inner.net
    }

    /// The control plane.
    pub fn cp(&self) -> &ControlPlane {
        &self.inner.cp
    }

    /// A borrowed view, as consumed by engines and sessions.
    pub fn as_ref(&self) -> SubstrateRef<'_> {
        SubstrateRef::new(&self.inner.net, &self.inner.cp)
    }
}

// Compile-time audit: the shared substrate must be immutable-shareable
// across campaign workers. If anyone introduces interior mutability
// (Cell, RefCell, Rc) into the topology or routing layers, these
// bounds fail to hold and this module stops compiling.
const _: () = {
    const fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<Network>();
    assert_sync_send::<ControlPlane>();
    assert_sync_send::<Substrate>();
    assert_sync_send::<SubstrateRef<'_>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Asn;
    use crate::net::{LinkOpts, NetworkBuilder};
    use crate::router::RouterConfig;
    use crate::vendor::Vendor;

    fn two_router_net() -> Network {
        let mut b = NetworkBuilder::new();
        let a = b.add_router("a", Asn(1), RouterConfig::ip_router(Vendor::CiscoIos));
        let t = b.add_router("t", Asn(1), RouterConfig::ip_router(Vendor::CiscoIos));
        b.link(a, t, LinkOpts::default());
        b.build().expect("builds")
    }

    #[test]
    fn handle_clones_share_one_substrate() {
        let sub = Substrate::build(two_router_net()).expect("control plane");
        let clone = sub.clone();
        assert!(std::ptr::eq(sub.net(), clone.net()));
        assert!(std::ptr::eq(sub.cp(), clone.cp()));
        let r = sub.as_ref();
        assert!(std::ptr::eq(r.net, sub.net()));
    }

    #[test]
    fn substrate_is_readable_from_scoped_threads() {
        let sub = Substrate::build(two_router_net()).expect("control plane");
        let sref = sub.as_ref();
        let n = std::thread::scope(|s| {
            let h1 = s.spawn(move || sref.net.routers().len());
            let h2 = s.spawn(move || sref.net.routers().len());
            h1.join().expect("worker") + h2.join().expect("worker")
        });
        assert_eq!(n, 4);
    }
}
