//! `wormhole-net`: a packet-level network simulator with vendor-accurate
//! MPLS data planes.
//!
//! This crate is the measurement substrate for the reproduction of
//! *"Through the Wormhole: Tracking Invisible MPLS Tunnels"* (IMC 2017).
//! It models:
//!
//! * IPv4 forwarding with longest-prefix-match FIBs ([`trie`]);
//! * per-AS IGP shortest paths with ECMP ([`igp`]);
//! * valley-free inter-domain routing with hot-potato egress selection
//!   ([`bgp`]);
//! * LDP label distribution with per-vendor advertising policies,
//!   PHP/UHP, and `ttl-propagate` (RFC 3032/3443, [`ldp`]);
//! * ICMP generation with RFC 4950 MPLS extensions and per-vendor
//!   initial TTL signatures ([`vendor`], [`engine`]).
//!
//! The engine's TTL semantics reproduce the paper's Fig. 4 emulation
//! outputs exactly; see `engine`'s module docs for the rule list.
//!
//! # Quick example
//!
//! ```
//! use wormhole_net::{
//!     Addr, Asn, ControlPlane, Engine, LinkOpts, NetworkBuilder, Packet,
//!     RelKind, RouterConfig, Vendor,
//! };
//!
//! let mut b = NetworkBuilder::new();
//! let vp = b.add_router("vp", Asn(1), RouterConfig::host());
//! let a = b.add_router("a", Asn(1), RouterConfig::ip_router(Vendor::CiscoIos));
//! let t = b.add_router("t", Asn(2), RouterConfig::ip_router(Vendor::JuniperJunos));
//! b.link(vp, a, LinkOpts::default());
//! b.link(a, t, LinkOpts::default());
//! b.as_rel(Asn(1), Asn(2), RelKind::Peer);
//! let net = b.build().unwrap();
//! let cp = ControlPlane::build(&net).unwrap();
//! let mut eng = Engine::new(&net, &cp);
//! let dst = net.router_by_name("t").unwrap().loopback;
//! let src = net.router(vp).loopback;
//! let out = eng.send(vp, Packet::echo_request(src, dst, 64, 0, 1, 1));
//! assert!(out.reply().is_some());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod addr;
pub mod batch;
pub mod bgp;
pub mod control;
pub mod engine;
pub mod error;
pub mod fault;
pub mod ids;
pub mod igp;
pub mod ldp;
pub mod net;
pub mod packet;
pub mod prefixes;
pub mod router;
pub mod state;
pub mod substrate;
pub mod te;
pub mod trie;
pub mod vendor;
pub mod wire;

pub use addr::{Addr, AddrAllocator, Prefix};
pub use batch::BATCH_WIDTH;
pub use bgp::{Bgp, RouteClass};
pub use control::{
    ldp_lfib_hops, logical_fib, te_program, walk, CachePayloadError, ControlPlane, DenseView,
    ExtRoute, LabelAction, LfibEntry, LfibHop, LfibRaw, TeRoute, WalkIface, OWNER_PAGE_SIZE,
};
pub use engine::{DropReason, Engine, EngineOpts, EngineStats, ReplyInfo, ReplyKind, SendOutcome};
pub use error::NetError;
pub use fault::{
    trace_seed, worker_seed, EgressHide, FaultPlan, FaultScenario, FlapSchedule, NonParisLb,
    RateLimit, SilentSet, TtlSpoof,
};
pub use ids::{Asn, Label, LinkId, PortRef, RouterId};
pub use igp::AsIgp;
pub use ldp::{LabelValue, LdpBindings};
pub use net::{AsRel, Link, LinkOpts, Network, NetworkBuilder, RelKind};
pub use packet::{IcmpPayload, LabelStack, Lse, Packet};
pub use prefixes::AsPrefixes;
pub use router::{Interface, Router, RouterConfig};
pub use state::{ProbeState, PROBE_PACING_MS};
pub use substrate::{Substrate, SubstrateRef};
pub use te::TeTunnel;
pub use trie::PrefixTrie;
pub use vendor::{LdpPolicy, PoppingMode, Vendor};
