//! Fault injection: probe loss, ICMP rate limiting, persistent
//! silence, and link flaps — composed into named scenarios.
//!
//! Real campaigns lose probes and replies; scamper retries. The engine
//! consults a [`FaultPlan`] at every wire crossing and at every ICMP
//! generation so the probing layer's retry logic is actually exercised.
//!
//! Beyond the v1 i.i.d. loss model, a plan can now describe the failure
//! modes the paper's Internet-scale campaign actually met:
//!
//! * **token-bucket ICMP rate limiters** ([`RateLimit`]) applied
//!   per router, with *separate* budgets for `time-exceeded` and
//!   `echo-reply` generation — an MPLS-only limiter that throttles
//!   `time-exceeded` harder than `echo-reply` stresses exactly the
//!   `<255, 64>` signature RTLA depends on;
//! * **persistently silent routers** ([`SilentSet`]) — the anonymous
//!   routers of real traces, chosen by a pure hash of the router id so
//!   the *same* routers stay silent for every worker and every
//!   `jobs` setting;
//! * **deterministic link-flap schedules** ([`FlapSchedule`]) — a
//!   subset of links goes down for a fixed window of every period of
//!   each worker's *virtual clock* (probes pace the clock forward, see
//!   [`crate::state::ProbeState`]), modelling routing churn without
//!   consuming randomness.
//!
//! On top of the *degrading* faults sit three *deceptive* ones — the
//! adversarial personas of the measurement-artifact literature:
//!
//! * **quoted-TTL spoofing** ([`TtlSpoof`]) — routers that lie about
//!   the initial TTL of the ICMP they emit, breaking the `<255, 64>`
//!   signature RTLA keys on and poisoning the fingerprint taxonomy;
//! * **non-Paris load balancers** ([`NonParisLb`]) — routers that hash
//!   per *probe* instead of per *flow*, forking consecutive probes of
//!   one traceroute onto different ECMP branches and forging loops,
//!   cycles, and phantom stars;
//! * **egress-hiding ASes** ([`EgressHide`]) — ASes that silently drop
//!   `time-exceeded` for probes aimed at their interior interface
//!   addresses, starving exactly the DPR re-traces that target a
//!   suspected egress.
//!
//! Only `loss`, `icmp_loss` and `jitter_ms` draw from the worker RNG
//! stream; every new fault dimension is a pure function of
//! `(plan, router/link id, virtual time)` — the deceptive ones of
//! `(plan, router/AS id, probe key)` — so sharded campaigns stay
//! byte-identical at any thread count.

use crate::error::NetError;
use crate::ids::{LinkId, RouterId};

/// A per-router token-bucket ICMP rate limiter.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RateLimit {
    /// Tokens refilled per second of virtual time.
    pub per_sec: f64,
    /// Bucket capacity (initial tokens and refill ceiling).
    pub burst: f64,
    /// Restrict the limiter to MPLS-enabled routers (LER/LSR throttling,
    /// the paper's §4 failure mode) instead of every router.
    pub mpls_only: bool,
}

impl RateLimit {
    fn validate(&self, what: &str) -> Result<(), NetError> {
        if !(self.per_sec > 0.0 && self.per_sec.is_finite()) {
            return Err(NetError::InvalidFaultPlan {
                reason: format!("{what}: per_sec must be positive and finite"),
            });
        }
        if !(self.burst >= 1.0 && self.burst.is_finite()) {
            return Err(NetError::InvalidFaultPlan {
                reason: format!("{what}: burst must be at least one token"),
            });
        }
        Ok(())
    }
}

/// Persistently silent (anonymous) routers: a `share` of non-host
/// routers, selected by a pure hash of `(salt, router id)`, never
/// generates *any* ICMP — the same routers for every worker.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SilentSet {
    /// Fraction of routers that are persistently silent.
    pub share: f64,
    /// Hash salt (vary to select a different subset).
    pub salt: u64,
}

impl SilentSet {
    /// Whether `router` is in the silent subset. Pure — no RNG.
    pub fn contains(&self, router: RouterId) -> bool {
        in_share(self.salt, u64::from(router.0), self.share)
    }
}

/// A deterministic link-flap schedule: a `share` of links is down for
/// the first `down_ms` of every `period_ms` window of the worker's
/// virtual clock. Each flapping link's phase is offset by its id hash
/// so the whole subset does not blink in unison.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FlapSchedule {
    /// Fraction of links that flap.
    pub share: f64,
    /// Hash salt for subset selection and phase offsets.
    pub salt: u64,
    /// Flap period in virtual milliseconds.
    pub period_ms: f64,
    /// Down window at the start of each period, in virtual ms.
    pub down_ms: f64,
}

impl FlapSchedule {
    /// Whether `link` is down at virtual time `now_ms`. Pure — no RNG.
    pub fn is_down(&self, link: LinkId, now_ms: f64) -> bool {
        if !in_share(self.salt, u64::from(link.0), self.share) {
            return false;
        }
        let offset = (mix(self.salt ^ 0xF1A9, u64::from(link.0)) % 1_000_000) as f64 / 1_000_000.0
            * self.period_ms;
        (now_ms + offset).rem_euclid(self.period_ms) < self.down_ms
    }
}

/// Quoted-TTL deception: a `share` of routers lies about the initial
/// TTL of every ICMP packet it originates, picked from the common
/// initial-TTL menu so the spoof survives the campaign's snap-to-menu
/// inference yet lands on signature pairs outside the honest taxonomy.
/// With `per_probe` set the lie also varies probe to probe, so the same
/// router quotes *inconsistent* TTLs across a fingerprint series.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TtlSpoof {
    /// Fraction of routers that spoof.
    pub share: f64,
    /// Hash salt (vary to select a different subset).
    pub salt: u64,
    /// Re-roll the spoofed value per probe instead of per router.
    pub per_probe: bool,
}

impl TtlSpoof {
    /// Whether `router` spoofs its quoted TTLs. Pure — no RNG.
    pub fn contains(&self, router: RouterId) -> bool {
        in_share(self.salt, u64::from(router.0), self.share)
    }

    /// The initial TTL `router` pretends to use for a reply of `kind`
    /// (0 = time-exceeded/unreachable, 1 = echo-reply) to the probe
    /// identified by `probe_key`. Honest routers return `honest`
    /// unchanged. Pure — no RNG.
    pub fn initial_ttl(&self, router: RouterId, kind: u8, probe_key: u64, honest: u8) -> u8 {
        if !self.contains(router) {
            return honest;
        }
        const MENU: [u8; 4] = [255, 128, 64, 32];
        let per = if self.per_probe { probe_key } else { 0 };
        let h = mix(
            self.salt ^ (0xDE_CE00 + u64::from(kind)),
            mix(u64::from(router.0), per),
        );
        MENU[(h % MENU.len() as u64) as usize]
    }
}

/// Non-Paris load balancing: a `share` of routers re-hashes ECMP per
/// *probe* instead of per *flow*, so consecutive probes of one
/// traceroute fork onto different branches — the classic source of
/// forged loops, cycles, and phantom stars (Viger et al.).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct NonParisLb {
    /// Fraction of routers that fork per probe.
    pub share: f64,
    /// Hash salt (vary to select a different subset).
    pub salt: u64,
}

impl NonParisLb {
    /// Whether `router` forks per probe. Pure — no RNG.
    pub fn forks(&self, router: RouterId) -> bool {
        in_share(self.salt, u64::from(router.0), self.share)
    }

    /// The extra ECMP salt a forking `router` folds in for the probe
    /// identified by `probe_key` — zero for non-forking routers, so the
    /// flow hash stays untouched on the honest path. Pure — no RNG.
    pub fn probe_salt(&self, router: RouterId, probe_key: u64) -> u32 {
        if !self.forks(router) {
            return 0;
        }
        (mix(self.salt ^ 0x1B4A, mix(u64::from(router.0), probe_key)) & 0xFFFF_FFFF) as u32
    }
}

/// Egress hiding: a `share` of ASes silently drops `time-exceeded`
/// (and unreachable) generation for probes whose destination is one of
/// the AS's *interior interface* addresses — exactly the targets DPR
/// re-traces aim at — while leaving loopback- and host-bound traffic
/// honest, so ordinary traceroutes still look clean.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct EgressHide {
    /// Fraction of ASes that hide their interior interfaces.
    pub share: f64,
    /// Hash salt (vary to select a different subset).
    pub salt: u64,
}

impl EgressHide {
    /// Whether the AS numbered `asn` hides its interfaces. Pure.
    pub fn hides(&self, asn: u32) -> bool {
        in_share(self.salt, u64::from(asn), self.share)
    }
}

/// Fault configuration for an [`crate::engine::Engine`].
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Probability that a packet is dropped on each link crossing.
    pub loss: f64,
    /// Probability that a router suppresses an ICMP error it should
    /// have generated (memoryless rate limiting).
    pub icmp_loss: f64,
    /// Uniform extra per-crossing delay bound, in milliseconds
    /// (0 ⇒ deterministic delays).
    pub jitter_ms: f64,
    /// Token-bucket limiter for *time-exceeded* (and unreachable)
    /// generation, per router.
    pub te_limit: Option<RateLimit>,
    /// Token-bucket limiter for *echo-reply* generation, per router.
    pub er_limit: Option<RateLimit>,
    /// Persistently silent routers.
    pub silent: Option<SilentSet>,
    /// Link-flap schedule.
    pub flaps: Option<FlapSchedule>,
    /// Quoted-TTL spoofing routers.
    pub ttl_spoof: Option<TtlSpoof>,
    /// Non-Paris (per-probe) load balancers.
    pub non_paris: Option<NonParisLb>,
    /// Egress-hiding ASes.
    pub egress_hide: Option<EgressHide>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            loss: 0.0,
            icmp_loss: 0.0,
            jitter_ms: 0.0,
            te_limit: None,
            er_limit: None,
            silent: None,
            flaps: None,
            ttl_spoof: None,
            non_paris: None,
            egress_hide: None,
        }
    }
}

impl FaultPlan {
    /// A lossless, deterministic plan (the default).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with uniform packet loss.
    ///
    /// # Errors
    /// [`NetError::InvalidFaultPlan`] when `loss` is outside `[0, 1]`.
    pub fn with_loss(loss: f64) -> Result<FaultPlan, NetError> {
        FaultPlan {
            loss,
            ..FaultPlan::default()
        }
        .validated()
    }

    /// Validates every field, returning the plan for chaining.
    ///
    /// # Errors
    /// [`NetError::InvalidFaultPlan`] naming the first offending field.
    pub fn validated(self) -> Result<FaultPlan, NetError> {
        let prob = |v: f64, what: &str| -> Result<(), NetError> {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(NetError::InvalidFaultPlan {
                    reason: format!("{what} must lie in [0, 1], got {v}"),
                })
            }
        };
        prob(self.loss, "loss")?;
        prob(self.icmp_loss, "icmp_loss")?;
        if !(self.jitter_ms >= 0.0 && self.jitter_ms.is_finite()) {
            return Err(NetError::InvalidFaultPlan {
                reason: format!("jitter_ms must be finite and ≥ 0, got {}", self.jitter_ms),
            });
        }
        if let Some(l) = &self.te_limit {
            l.validate("te_limit")?;
        }
        if let Some(l) = &self.er_limit {
            l.validate("er_limit")?;
        }
        if let Some(s) = &self.silent {
            prob(s.share, "silent.share")?;
        }
        if let Some(t) = &self.ttl_spoof {
            prob(t.share, "ttl_spoof.share")?;
        }
        if let Some(n) = &self.non_paris {
            prob(n.share, "non_paris.share")?;
        }
        if let Some(e) = &self.egress_hide {
            prob(e.share, "egress_hide.share")?;
        }
        if let Some(f) = &self.flaps {
            prob(f.share, "flaps.share")?;
            if !(f.period_ms > 0.0 && f.period_ms.is_finite()) {
                return Err(NetError::InvalidFaultPlan {
                    reason: format!("flaps.period_ms must be positive, got {}", f.period_ms),
                });
            }
            if !(f.down_ms >= 0.0 && f.down_ms <= f.period_ms) {
                return Err(NetError::InvalidFaultPlan {
                    reason: format!(
                        "flaps.down_ms must lie in [0, period_ms], got {}",
                        f.down_ms
                    ),
                });
            }
        }
        Ok(self)
    }

    /// True when the plan can consume randomness. The structured faults
    /// (rate limits, silence, flaps) are pure functions of ids and
    /// virtual time and never draw from the RNG.
    pub fn is_random(&self) -> bool {
        self.loss > 0.0 || self.icmp_loss > 0.0 || self.jitter_ms > 0.0
    }

    /// True when interleaving concurrent probes cannot change any
    /// probe's outcome, so the engine may step them as one SoA batch.
    /// Random draws (per-crossing RNG consumption), token buckets
    /// (shared per-router state) and flap schedules (sampled at each
    /// probe's clock tick) are all order-sensitive; persistent silence
    /// is a pure hash of the router id and stays batch-safe. The
    /// deceptive dimensions are pure per probe, but the SoA batch
    /// walker does not model them, so deceptive plans also fall back.
    /// Plans that fail this predicate make the batch API fall back to
    /// exact sequential scalar processing, which keeps results
    /// byte-identical by construction.
    pub fn batch_safe(&self) -> bool {
        !self.is_random()
            && self.te_limit.is_none()
            && self.er_limit.is_none()
            && self.flaps.is_none()
            && !self.is_deceptive()
    }

    /// True when the plan carries any *deceptive* dimension — faults
    /// that forge plausible-but-wrong evidence (spoofed quoted TTLs,
    /// per-probe forks, hidden egresses) rather than merely losing or
    /// throttling honest evidence.
    pub fn is_deceptive(&self) -> bool {
        self.ttl_spoof.is_some() || self.non_paris.is_some() || self.egress_hide.is_some()
    }

    /// Whether `router` is persistently silent under this plan.
    pub fn is_persistently_silent(&self, router: RouterId) -> bool {
        self.silent.is_some_and(|s| s.contains(router))
    }
}

/// Named fault-scenario presets: the adversarial conditions a campaign
/// must degrade gracefully under, from clean emulation to the hostile
/// composite. Every preset is deterministic per worker stream, so
/// `jobs = N` stays byte-identical under all of them.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FaultScenario {
    /// No faults: the deterministic baseline.
    Clean,
    /// Congested transit core: i.i.d. loss, memoryless ICMP
    /// suppression, and RTT jitter.
    LossyCore,
    /// Edge LERs/LSRs running ICMP rate limiters, with `time-exceeded`
    /// throttled harder than `echo-reply` — the configuration that
    /// starves RTLA's `<255, 64>` gap measurements.
    RateLimitedEdge,
    /// Everything at once: loss, suppression, jitter, asymmetric MPLS
    /// rate limiting, persistently silent routers, and link flaps.
    Hostile,
    /// Deceptive quoted TTLs: a share of routers spoofs the initial
    /// TTL of its ICMP, breaking the `<255, 64>` RTLA assumption and
    /// poisoning fingerprint signatures. No loss, no RNG.
    DeceptiveTtl,
    /// Measurement-artifact load balancers: a share of routers hashes
    /// ECMP per probe instead of per flow, forging loops, cycles, and
    /// phantom stars in otherwise clean traces. No loss, no RNG.
    ArtifactLb,
    /// The deceptive composite: spoofed-and-randomized quoted TTLs,
    /// per-probe forks, egress-hiding ASes, and a pinch of persistent
    /// silence — adversarial, yet still RNG-free and deterministic.
    Paranoid,
}

impl FaultScenario {
    /// Every built-in scenario, in severity order: the degrading
    /// presets first, then the deceptive ones.
    pub const ALL: [FaultScenario; 7] = [
        FaultScenario::Clean,
        FaultScenario::LossyCore,
        FaultScenario::RateLimitedEdge,
        FaultScenario::Hostile,
        FaultScenario::DeceptiveTtl,
        FaultScenario::ArtifactLb,
        FaultScenario::Paranoid,
    ];

    /// The scenario's canonical CLI name.
    pub fn name(self) -> &'static str {
        match self {
            FaultScenario::Clean => "clean",
            FaultScenario::LossyCore => "lossy_core",
            FaultScenario::RateLimitedEdge => "rate_limited_edge",
            FaultScenario::Hostile => "hostile",
            FaultScenario::DeceptiveTtl => "deceptive_ttl",
            FaultScenario::ArtifactLb => "artifact_lb",
            FaultScenario::Paranoid => "paranoid",
        }
    }

    /// Parses a CLI name (`-` and `_` are interchangeable).
    pub fn parse(s: &str) -> Option<FaultScenario> {
        let norm = s.trim().to_ascii_lowercase().replace('-', "_");
        FaultScenario::ALL.into_iter().find(|sc| sc.name() == norm)
    }

    /// The scenario's fault plan.
    pub fn plan(self) -> FaultPlan {
        match self {
            FaultScenario::Clean => FaultPlan::none(),
            FaultScenario::LossyCore => FaultPlan {
                loss: 0.03,
                icmp_loss: 0.02,
                jitter_ms: 0.5,
                ..FaultPlan::default()
            },
            FaultScenario::RateLimitedEdge => FaultPlan {
                loss: 0.005,
                jitter_ms: 0.2,
                te_limit: Some(RateLimit {
                    per_sec: 4.0,
                    burst: 6.0,
                    mpls_only: true,
                }),
                er_limit: Some(RateLimit {
                    per_sec: 12.0,
                    burst: 12.0,
                    mpls_only: true,
                }),
                ..FaultPlan::default()
            },
            FaultScenario::Hostile => FaultPlan {
                loss: 0.06,
                icmp_loss: 0.04,
                jitter_ms: 1.0,
                te_limit: Some(RateLimit {
                    per_sec: 2.0,
                    burst: 4.0,
                    mpls_only: true,
                }),
                er_limit: Some(RateLimit {
                    per_sec: 6.0,
                    burst: 8.0,
                    mpls_only: true,
                }),
                silent: Some(SilentSet {
                    share: 0.04,
                    salt: 0x5117,
                }),
                flaps: Some(FlapSchedule {
                    share: 0.06,
                    salt: 0xF1A9,
                    period_ms: 5_000.0,
                    down_ms: 400.0,
                }),
                ..FaultPlan::default()
            },
            FaultScenario::DeceptiveTtl => FaultPlan {
                ttl_spoof: Some(TtlSpoof {
                    share: 0.30,
                    salt: 0xDECE,
                    per_probe: false,
                }),
                ..FaultPlan::default()
            },
            FaultScenario::ArtifactLb => FaultPlan {
                non_paris: Some(NonParisLb {
                    share: 0.35,
                    salt: 0x1B4A,
                }),
                ..FaultPlan::default()
            },
            FaultScenario::Paranoid => FaultPlan {
                ttl_spoof: Some(TtlSpoof {
                    share: 0.25,
                    salt: 0xDECE,
                    per_probe: true,
                }),
                non_paris: Some(NonParisLb {
                    share: 0.20,
                    salt: 0x1B4A,
                }),
                egress_hide: Some(EgressHide {
                    share: 0.50,
                    salt: 0xE6E5,
                }),
                silent: Some(SilentSet {
                    share: 0.03,
                    salt: 0x5117,
                }),
                ..FaultPlan::default()
            },
        }
    }

    /// Whether the scenario's plan carries deceptive dimensions.
    pub fn is_deceptive(self) -> bool {
        self.plan().is_deceptive()
    }
}

/// SplitMix64 finalizer — the shared bit mixer behind worker seeds and
/// the pure subset-selection hashes.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pure membership test: hashes `(salt, id)` onto `[0, 1)` and compares
/// with `share`.
fn in_share(salt: u64, id: u64, share: f64) -> bool {
    if share <= 0.0 {
        return false;
    }
    ((mix(salt, id.wrapping_add(1)) >> 11) as f64 / (1u64 << 53) as f64) < share
}

/// Derives the RNG seed for campaign worker `worker_id` from the
/// campaign seed — a SplitMix64 finalizer over the pair, so adjacent
/// worker ids land on statistically unrelated streams and the mapping
/// is stable across platforms and thread counts.
pub fn worker_seed(campaign_seed: u64, worker_id: u64) -> u64 {
    mix(campaign_seed, worker_id)
}

/// Derives the RNG seed for one trace of a campaign from
/// `(campaign_seed, vp, target)` — a chained SplitMix64 finalizer, so
/// every trace owns a hermetic stream that depends only on *what* is
/// probed, never on *which worker* runs it or in *what order*. This is
/// what lets idle workers steal individual traces while the campaign
/// report stays byte-identical at any job count.
pub fn trace_seed(campaign_seed: u64, vp: u64, target: u64) -> u64 {
    mix(
        mix(campaign_seed, vp.wrapping_add(0x7472_6163_655F_7631)),
        target,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_lossless() {
        let p = FaultPlan::none();
        assert_eq!(p.loss, 0.0);
        assert_eq!(p.icmp_loss, 0.0);
        assert_eq!(p.jitter_ms, 0.0);
        assert!(p.te_limit.is_none() && p.er_limit.is_none());
        assert!(p.silent.is_none() && p.flaps.is_none());
        assert!(!p.is_random());
        assert!(!p.is_deceptive());
        assert!(p.batch_safe());
    }

    #[test]
    fn loss_out_of_range_is_an_error() {
        let err = FaultPlan::with_loss(1.5).unwrap_err();
        assert!(matches!(err, NetError::InvalidFaultPlan { .. }));
        assert!(err.to_string().contains("loss"));
        assert!(FaultPlan::with_loss(0.3).is_ok());
    }

    #[test]
    fn validated_rejects_bad_structured_fields() {
        let bad_rate = FaultPlan {
            te_limit: Some(RateLimit {
                per_sec: 0.0,
                burst: 4.0,
                mpls_only: true,
            }),
            ..FaultPlan::default()
        };
        assert!(bad_rate.validated().is_err());
        let bad_flap = FaultPlan {
            flaps: Some(FlapSchedule {
                share: 0.1,
                salt: 1,
                period_ms: 100.0,
                down_ms: 200.0,
            }),
            ..FaultPlan::default()
        };
        assert!(bad_flap.validated().is_err());
        let bad_share = FaultPlan {
            silent: Some(SilentSet {
                share: 2.0,
                salt: 1,
            }),
            ..FaultPlan::default()
        };
        assert!(bad_share.validated().is_err());
    }

    #[test]
    fn every_scenario_plan_is_valid() {
        for sc in FaultScenario::ALL {
            assert!(
                sc.plan().validated().is_ok(),
                "{} preset must validate",
                sc.name()
            );
            assert_eq!(FaultScenario::parse(sc.name()), Some(sc));
        }
        assert_eq!(
            FaultScenario::parse("rate-limited-edge"),
            Some(FaultScenario::RateLimitedEdge)
        );
        assert_eq!(FaultScenario::parse("nope"), None);
        assert!(!FaultScenario::Clean.plan().is_random());
        assert!(FaultScenario::Hostile.plan().is_random());
    }

    #[test]
    fn silent_set_is_pure_and_share_scaled() {
        let s = SilentSet {
            share: 0.25,
            salt: 99,
        };
        let hits = (0u32..4000).filter(|&i| s.contains(RouterId(i))).count();
        // Deterministic repeat.
        let hits2 = (0u32..4000).filter(|&i| s.contains(RouterId(i))).count();
        assert_eq!(hits, hits2);
        assert!((800..1200).contains(&hits), "share miscalibrated: {hits}");
        let none = SilentSet {
            share: 0.0,
            salt: 99,
        };
        assert!((0u32..100).all(|i| !none.contains(RouterId(i))));
    }

    #[test]
    fn flap_schedule_is_periodic() {
        let f = FlapSchedule {
            share: 1.0,
            salt: 7,
            period_ms: 1000.0,
            down_ms: 100.0,
        };
        let link = LinkId(3);
        // Find one down instant, then check periodicity and duty cycle.
        let down_times: Vec<f64> = (0..10_000)
            .map(|i| i as f64)
            .filter(|&t| f.is_down(link, t))
            .collect();
        assert!(!down_times.is_empty(), "a 10% duty cycle must show up");
        let share = down_times.len() as f64 / 10_000.0;
        assert!((0.05..0.15).contains(&share), "duty cycle {share}");
        for &t in &down_times {
            assert!(f.is_down(link, t + 1000.0), "periodic at {t}");
        }
        let quiet = FlapSchedule { share: 0.0, ..f };
        assert!((0..1000).all(|t| !quiet.is_down(link, t as f64)));
    }

    #[test]
    fn ttl_spoof_is_pure_and_menu_bound() {
        let t = TtlSpoof {
            share: 1.0,
            salt: 0xDECE,
            per_probe: false,
        };
        for r in 0..200u32 {
            let v = t.initial_ttl(RouterId(r), 0, 7, 255);
            assert_eq!(v, t.initial_ttl(RouterId(r), 0, 99, 255), "per-router");
            assert!([255, 128, 64, 32].contains(&v), "menu-bound: {v}");
        }
        // Some router must actually lie about the <255, 64> pair.
        assert!((0..200u32).any(|r| t.initial_ttl(RouterId(r), 0, 0, 255) != 255));
        assert!((0..200u32).any(|r| t.initial_ttl(RouterId(r), 1, 0, 64) != 64));
        // per_probe re-rolls across probes but stays deterministic.
        let p = TtlSpoof {
            per_probe: true,
            ..t
        };
        assert!((0..64u64)
            .any(|k| p.initial_ttl(RouterId(3), 0, k, 255)
                != p.initial_ttl(RouterId(3), 0, k + 64, 255)));
        assert_eq!(
            p.initial_ttl(RouterId(3), 0, 5, 255),
            p.initial_ttl(RouterId(3), 0, 5, 255)
        );
        // Out-of-share routers stay honest.
        let none = TtlSpoof { share: 0.0, ..t };
        assert!((0..100u32).all(|r| none.initial_ttl(RouterId(r), 0, 0, 255) == 255));
    }

    #[test]
    fn non_paris_perturbs_only_forking_routers() {
        let n = NonParisLb {
            share: 0.5,
            salt: 0x1B4A,
        };
        let forking = (0..100u32).filter(|&r| n.forks(RouterId(r))).count();
        assert!(
            (25..75).contains(&forking),
            "share miscalibrated: {forking}"
        );
        for r in 0..100u32 {
            let rid = RouterId(r);
            if n.forks(rid) {
                // Per-probe: distinct keys yield distinct salts somewhere.
                assert_eq!(n.probe_salt(rid, 4), n.probe_salt(rid, 4));
            } else {
                assert_eq!(n.probe_salt(rid, 4), 0, "honest routers unsalted");
            }
        }
        let rid = (0..100u32).map(RouterId).find(|&r| n.forks(r)).unwrap();
        assert!((0..32u64).any(|k| n.probe_salt(rid, k) != n.probe_salt(rid, k + 32)));
    }

    #[test]
    fn egress_hide_selects_ases_purely() {
        let e = EgressHide {
            share: 0.5,
            salt: 0xE6E5,
        };
        let hidden = (0..1000u32).filter(|&a| e.hides(a)).count();
        assert!(
            (400..600).contains(&hidden),
            "share miscalibrated: {hidden}"
        );
        assert_eq!(e.hides(77), e.hides(77));
        let none = EgressHide { share: 0.0, ..e };
        assert!((0..100u32).all(|a| !none.hides(a)));
    }

    #[test]
    fn deceptive_plans_fall_back_to_scalar() {
        for sc in [
            FaultScenario::DeceptiveTtl,
            FaultScenario::ArtifactLb,
            FaultScenario::Paranoid,
        ] {
            let p = sc.plan();
            assert!(p.is_deceptive(), "{} is deceptive", sc.name());
            assert!(!p.is_random(), "{} never draws RNG", sc.name());
            assert!(!p.batch_safe(), "{} must fall back to scalar", sc.name());
        }
        for sc in [FaultScenario::Clean, FaultScenario::Hostile] {
            assert!(!sc.plan().is_deceptive(), "{} stays honest", sc.name());
        }
    }

    #[test]
    fn worker_seed_is_stable_and_spread() {
        assert_eq!(worker_seed(8, 3), worker_seed(8, 3));
        let seeds: std::collections::HashSet<u64> = (0..64).map(|w| worker_seed(1717, w)).collect();
        assert_eq!(seeds.len(), 64, "worker streams must not collide");
        assert_ne!(worker_seed(0, 0), worker_seed(1, 0));
    }

    #[test]
    fn trace_seed_depends_only_on_the_triple() {
        // Stable, and spread across every axis of (seed, vp, target).
        assert_eq!(trace_seed(42, 3, 9), trace_seed(42, 3, 9));
        let mut seeds = std::collections::HashSet::new();
        for s in 0..4u64 {
            for vp in 0..8u64 {
                for t in 0..32u64 {
                    seeds.insert(trace_seed(s, vp, t));
                }
            }
        }
        assert_eq!(seeds.len(), 4 * 8 * 32, "trace streams must not collide");
        // Distinct from the per-worker stream family on the same ids.
        assert_ne!(trace_seed(42, 3, 9), worker_seed(42, 3));
    }
}
