//! Fault injection: probe loss and ICMP rate limiting.
//!
//! Real campaigns lose probes and replies; scamper retries. The engine
//! consults a [`FaultPlan`] at every wire crossing and at every ICMP
//! generation so the probing layer's retry logic is actually exercised.

/// Probabilistic fault configuration for an [`crate::engine::Engine`].
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Probability that a packet is dropped on each link crossing.
    pub loss: f64,
    /// Probability that a router suppresses an ICMP error it should
    /// have generated (rate limiting).
    pub icmp_loss: f64,
    /// Uniform extra per-crossing delay bound, in milliseconds
    /// (0 ⇒ deterministic delays).
    pub jitter_ms: f64,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            loss: 0.0,
            icmp_loss: 0.0,
            jitter_ms: 0.0,
        }
    }
}

impl FaultPlan {
    /// A lossless, deterministic plan (the default).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with uniform packet loss.
    pub fn with_loss(loss: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&loss));
        FaultPlan {
            loss,
            ..FaultPlan::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_lossless() {
        let p = FaultPlan::none();
        assert_eq!(p.loss, 0.0);
        assert_eq!(p.icmp_loss, 0.0);
        assert_eq!(p.jitter_ms, 0.0);
    }

    #[test]
    #[should_panic]
    fn loss_out_of_range_panics() {
        let _ = FaultPlan::with_loss(1.5);
    }
}
