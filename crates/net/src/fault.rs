//! Fault injection: probe loss and ICMP rate limiting.
//!
//! Real campaigns lose probes and replies; scamper retries. The engine
//! consults a [`FaultPlan`] at every wire crossing and at every ICMP
//! generation so the probing layer's retry logic is actually exercised.

/// Probabilistic fault configuration for an [`crate::engine::Engine`].
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Probability that a packet is dropped on each link crossing.
    pub loss: f64,
    /// Probability that a router suppresses an ICMP error it should
    /// have generated (rate limiting).
    pub icmp_loss: f64,
    /// Uniform extra per-crossing delay bound, in milliseconds
    /// (0 ⇒ deterministic delays).
    pub jitter_ms: f64,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            loss: 0.0,
            icmp_loss: 0.0,
            jitter_ms: 0.0,
        }
    }
}

impl FaultPlan {
    /// A lossless, deterministic plan (the default).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with uniform packet loss.
    pub fn with_loss(loss: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&loss));
        FaultPlan {
            loss,
            ..FaultPlan::default()
        }
    }

    /// True when the plan can consume randomness (any fault enabled).
    pub fn is_random(&self) -> bool {
        self.loss > 0.0 || self.icmp_loss > 0.0 || self.jitter_ms > 0.0
    }
}

/// Derives the RNG seed for campaign worker `worker_id` from the
/// campaign seed — a SplitMix64 finalizer over the pair, so adjacent
/// worker ids land on statistically unrelated streams and the mapping
/// is stable across platforms and thread counts.
pub fn worker_seed(campaign_seed: u64, worker_id: u64) -> u64 {
    let mut z = campaign_seed ^ worker_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_lossless() {
        let p = FaultPlan::none();
        assert_eq!(p.loss, 0.0);
        assert_eq!(p.icmp_loss, 0.0);
        assert_eq!(p.jitter_ms, 0.0);
    }

    #[test]
    #[should_panic]
    fn loss_out_of_range_panics() {
        let _ = FaultPlan::with_loss(1.5);
    }

    #[test]
    fn worker_seed_is_stable_and_spread() {
        assert_eq!(worker_seed(8, 3), worker_seed(8, 3));
        let seeds: std::collections::HashSet<u64> = (0..64).map(|w| worker_seed(1717, w)).collect();
        assert_eq!(seeds.len(), 64, "worker streams must not collide");
        assert_ne!(worker_seed(0, 0), worker_seed(1, 0));
    }
}
