//! Per-worker mutable probing state.
//!
//! The counterpart of [`crate::substrate`]: while the substrate is
//! immutable and shared, everything a probing worker mutates — its
//! fault-injection RNG stream and its traffic counters — is bundled
//! here so each campaign worker owns its state outright and no locking
//! or cross-worker ordering is ever needed.
//!
//! Reproducibility contract: a worker's RNG stream is a pure function
//! of `(campaign_seed, worker_id)` via [`crate::fault::worker_seed`],
//! so campaign results are byte-identical at any thread count as long
//! as each worker processes its own task list in a fixed order.

use crate::engine::EngineStats;
use crate::fault::{worker_seed, FaultPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The mutable half of a probing engine: fault plan, RNG stream and
/// counters. Cheap to create — one per vantage-point worker.
#[derive(Clone, Debug)]
pub struct ProbeState {
    /// Fault injection configuration.
    pub faults: FaultPlan,
    /// The fault/jitter RNG stream.
    pub(crate) rng: StdRng,
    /// Traffic counters.
    pub stats: EngineStats,
}

impl ProbeState {
    /// State seeded directly with `seed` (single-session use).
    pub fn new(faults: FaultPlan, seed: u64) -> ProbeState {
        ProbeState {
            faults,
            rng: StdRng::seed_from_u64(seed),
            stats: EngineStats::default(),
        }
    }

    /// State for campaign worker `worker_id`: the RNG stream is derived
    /// from `(campaign_seed, worker_id)` so every worker draws from its
    /// own deterministic stream regardless of how workers are scheduled
    /// onto threads.
    pub fn for_worker(faults: FaultPlan, campaign_seed: u64, worker_id: u64) -> ProbeState {
        ProbeState::new(faults, worker_seed(campaign_seed, worker_id))
    }

    /// A fault-free, deterministic state.
    pub fn deterministic() -> ProbeState {
        ProbeState::new(FaultPlan::none(), 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn worker_states_draw_distinct_streams() {
        let mut a = ProbeState::for_worker(FaultPlan::none(), 7, 0);
        let mut b = ProbeState::for_worker(FaultPlan::none(), 7, 1);
        let mut a2 = ProbeState::for_worker(FaultPlan::none(), 7, 0);
        let xs: Vec<u64> = (0..4).map(|_| a.rng.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.rng.next_u64()).collect();
        let xs2: Vec<u64> = (0..4).map(|_| a2.rng.next_u64()).collect();
        assert_eq!(xs, xs2, "same (seed, worker) ⇒ same stream");
        assert_ne!(xs, ys, "different workers ⇒ different streams");
    }
}
