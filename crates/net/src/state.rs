//! Per-worker mutable probing state.
//!
//! The counterpart of [`crate::substrate`]: while the substrate is
//! immutable and shared, everything a probing worker mutates — its
//! fault-injection RNG stream, its traffic counters, its virtual clock
//! and its per-router rate-limiter buckets — is bundled here so each
//! campaign worker owns its state outright and no locking or
//! cross-worker ordering is ever needed.
//!
//! Reproducibility contract: a worker's RNG stream is a pure function
//! of `(campaign_seed, worker_id)` via [`crate::fault::worker_seed`],
//! and its virtual clock advances only through that worker's own probe
//! pacing and explicit backoff waits, so campaign results are
//! byte-identical at any thread count as long as each worker processes
//! its own task list in a fixed order.

use crate::engine::EngineStats;
use crate::fault::{worker_seed, FaultPlan, RateLimit};
use crate::ids::RouterId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Virtual milliseconds between consecutive probe injections — the
/// paper's 25 packets/s campaign rate. Token buckets and link flaps
/// refill/advance against this clock, so pacing and backoff genuinely
/// interact with rate limiters.
pub const PROBE_PACING_MS: f64 = 40.0;

/// A lazily materialised RNG stream: the seed is stored at
/// construction and the generator is built on the first draw, so the
/// stream is bit-identical to eager seeding. Work-stealing campaigns
/// construct one hermetic [`ProbeState`] per stolen trace, and under
/// clean (non-random) fault plans that generator is never consulted —
/// laziness removes the per-task seeding cost from the hot path
/// without touching determinism.
#[derive(Clone, Debug)]
pub(crate) struct LazyRng {
    seed: u64,
    rng: Option<StdRng>,
}

impl LazyRng {
    fn new(seed: u64) -> LazyRng {
        LazyRng { seed, rng: None }
    }

    /// The generator, materialised on first use.
    #[inline]
    pub(crate) fn get(&mut self) -> &mut StdRng {
        self.rng
            .get_or_insert_with(|| StdRng::seed_from_u64(self.seed))
    }
}

/// One per-router token bucket.
#[derive(Clone, Copy, Debug)]
struct Bucket {
    tokens: f64,
    refilled_at_ms: f64,
}

/// Which ICMP generation a bucket throttles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum IcmpClass {
    /// time-exceeded and destination-unreachable.
    TimeExceeded,
    /// echo-reply.
    EchoReply,
}

/// The mutable half of a probing engine: fault plan, RNG stream,
/// virtual clock, rate-limiter buckets and counters. Cheap to create —
/// one per vantage-point worker.
#[derive(Clone, Debug)]
pub struct ProbeState {
    /// Fault injection configuration.
    pub faults: FaultPlan,
    /// The fault/jitter RNG stream (materialised on first draw).
    pub(crate) rng: LazyRng,
    /// Traffic counters.
    pub stats: EngineStats,
    /// The worker's virtual clock, in milliseconds. Advances by
    /// [`PROBE_PACING_MS`] per injected probe and by explicit
    /// [`ProbeState::wait`] calls (retry backoff) — never by wall time.
    pub now_ms: f64,
    buckets: HashMap<(RouterId, IcmpClass), Bucket>,
}

impl ProbeState {
    /// State seeded directly with `seed` (single-session use).
    pub fn new(faults: FaultPlan, seed: u64) -> ProbeState {
        ProbeState {
            faults,
            rng: LazyRng::new(seed),
            stats: EngineStats::default(),
            now_ms: 0.0,
            buckets: HashMap::new(),
        }
    }

    /// State for campaign worker `worker_id`: the RNG stream is derived
    /// from `(campaign_seed, worker_id)` so every worker draws from its
    /// own deterministic stream regardless of how workers are scheduled
    /// onto threads.
    pub fn for_worker(faults: FaultPlan, campaign_seed: u64, worker_id: u64) -> ProbeState {
        ProbeState::new(faults, worker_seed(campaign_seed, worker_id))
    }

    /// A fault-free, deterministic state.
    pub fn deterministic() -> ProbeState {
        ProbeState::new(FaultPlan::none(), 0)
    }

    /// Advances the virtual clock by `ms` (retry backoff in virtual
    /// time; negative and non-finite waits are ignored).
    pub fn wait(&mut self, ms: f64) {
        if ms.is_finite() && ms > 0.0 {
            self.now_ms += ms;
        }
    }

    /// Clock tick for one injected probe.
    pub(crate) fn tick_probe(&mut self) {
        self.now_ms += PROBE_PACING_MS;
    }

    /// Consults (and consumes from) `router`'s token bucket for one
    /// ICMP generation. `true` when the reply may be generated.
    fn allow(&mut self, router: RouterId, class: IcmpClass, limit: RateLimit) -> bool {
        let now = self.now_ms;
        let b = self.buckets.entry((router, class)).or_insert(Bucket {
            tokens: limit.burst,
            refilled_at_ms: now,
        });
        let dt = (now - b.refilled_at_ms).max(0.0);
        b.tokens = (b.tokens + dt * limit.per_sec / 1000.0).min(limit.burst);
        b.refilled_at_ms = now;
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Rate-limit gate for a *time-exceeded* / *unreachable* at
    /// `router` (`mpls` = the router's MPLS capability).
    pub(crate) fn allow_te(&mut self, router: RouterId, mpls: bool) -> bool {
        match self.faults.te_limit {
            Some(l) if mpls || !l.mpls_only => self.allow(router, IcmpClass::TimeExceeded, l),
            _ => true,
        }
    }

    /// Rate-limit gate for an *echo-reply* at `router`.
    pub(crate) fn allow_er(&mut self, router: RouterId, mpls: bool) -> bool {
        match self.faults.er_limit {
            Some(l) if mpls || !l.mpls_only => self.allow(router, IcmpClass::EchoReply, l),
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn worker_states_draw_distinct_streams() {
        let mut a = ProbeState::for_worker(FaultPlan::none(), 7, 0);
        let mut b = ProbeState::for_worker(FaultPlan::none(), 7, 1);
        let mut a2 = ProbeState::for_worker(FaultPlan::none(), 7, 0);
        let xs: Vec<u64> = (0..4).map(|_| a.rng.get().next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.rng.get().next_u64()).collect();
        let xs2: Vec<u64> = (0..4).map(|_| a2.rng.get().next_u64()).collect();
        assert_eq!(xs, xs2, "same (seed, worker) ⇒ same stream");
        assert_ne!(xs, ys, "different workers ⇒ different streams");
    }

    #[test]
    fn token_bucket_throttles_and_refills() {
        let plan = FaultPlan {
            te_limit: Some(RateLimit {
                per_sec: 10.0,
                burst: 2.0,
                mpls_only: false,
            }),
            ..FaultPlan::default()
        };
        let mut st = ProbeState::new(plan, 0);
        let r = RouterId(5);
        assert!(st.allow_te(r, false));
        assert!(st.allow_te(r, false));
        assert!(!st.allow_te(r, false), "burst of 2 exhausted");
        // 10 tokens/s ⇒ one token back after 100 virtual ms.
        st.wait(150.0);
        assert!(st.allow_te(r, false));
        assert!(!st.allow_te(r, false));
        // A different router has its own bucket.
        assert!(st.allow_te(RouterId(6), false));
    }

    #[test]
    fn mpls_only_limits_skip_plain_routers() {
        let plan = FaultPlan {
            er_limit: Some(RateLimit {
                per_sec: 1.0,
                burst: 1.0,
                mpls_only: true,
            }),
            ..FaultPlan::default()
        };
        let mut st = ProbeState::new(plan, 0);
        let r = RouterId(1);
        // Plain IP router: never throttled.
        assert!((0..10).all(|_| st.allow_er(r, false)));
        // MPLS router: throttled after the single-token burst.
        assert!(st.allow_er(r, true));
        assert!(!st.allow_er(r, true));
    }

    #[test]
    fn virtual_clock_advances_by_pacing_and_waits() {
        let mut st = ProbeState::deterministic();
        assert_eq!(st.now_ms, 0.0);
        st.tick_probe();
        assert_eq!(st.now_ms, PROBE_PACING_MS);
        st.wait(10.0);
        st.wait(-5.0); // ignored
        st.wait(f64::NAN); // ignored
        assert_eq!(st.now_ms, PROBE_PACING_MS + 10.0);
    }
}
