//! Router model: interfaces, per-router configuration, vendor defaults.

use crate::addr::{Addr, Prefix};
use crate::ids::{Asn, LinkId, RouterId};
use crate::vendor::{LdpPolicy, PoppingMode, Vendor};

/// A router interface: one end of a point-to-point link.
#[derive(Clone, Debug)]
pub struct Interface {
    /// The interface's own address on the link subnet.
    pub addr: Addr,
    /// The link subnet (a `/31` in generated topologies).
    pub prefix: Prefix,
    /// The link this interface terminates.
    pub link: LinkId,
    /// The router on the other end.
    pub peer: RouterId,
    /// The peer's address on the shared subnet.
    pub peer_addr: Addr,
}

/// Per-router configuration: vendor family plus the MPLS knobs whose
/// combinations Table 2 of the paper enumerates.
#[derive(Clone, Debug, PartialEq)]
pub struct RouterConfig {
    /// The vendor family (fixes initial-TTL signature and LDP default).
    pub vendor: Vendor,
    /// Whether MPLS/LDP forwarding is enabled at all.
    pub mpls: bool,
    /// The `ttl-propagate` option (RFC 3443): when `false`, the ingress
    /// sets LSE-TTL to 255 instead of copying the IP-TTL, hiding the
    /// tunnel from traceroute.
    pub ttl_propagate: bool,
    /// PHP (implicit null) vs UHP (explicit null).
    pub popping: PoppingMode,
    /// Which prefixes this router advertises labels for.
    pub ldp_policy: LdpPolicy,
    /// Whether ICMP time-exceeded messages quote the received MPLS label
    /// stack (RFC 4950).
    pub rfc4950: bool,
    /// The RFC 3443 `min(IP-TTL, LSE-TTL)` rule applied when the last
    /// label is popped. Standard on Cisco and Juniper; configurable so
    /// the ablation benches can remove the FRPLA/RTLA signal.
    pub min_on_exit: bool,
    /// Whether the router answers probes at all (`false` models the
    /// anonymous hops every campaign encounters).
    pub replies: bool,
    /// True for measurement hosts (vantage points / targets behind CEs):
    /// hosts originate and sink packets but the campaign never treats
    /// them as routers.
    pub is_host: bool,
}

impl RouterConfig {
    /// A plain IP router of the given vendor: MPLS off, all defaults on.
    pub fn ip_router(vendor: Vendor) -> RouterConfig {
        RouterConfig {
            vendor,
            mpls: false,
            ttl_propagate: true,
            popping: PoppingMode::Php,
            ldp_policy: vendor.default_ldp_policy(),
            rfc4950: true,
            min_on_exit: true,
            replies: true,
            is_host: false,
        }
    }

    /// An MPLS/LDP router with the vendor's factory defaults
    /// (`ttl-propagate` on, PHP, vendor LDP policy).
    pub fn mpls_router(vendor: Vendor) -> RouterConfig {
        RouterConfig {
            mpls: true,
            ..RouterConfig::ip_router(vendor)
        }
    }

    /// An end host (vantage point or destination).
    pub fn host() -> RouterConfig {
        RouterConfig {
            is_host: true,
            ..RouterConfig::ip_router(Vendor::BrocadeLinux)
        }
    }

    /// Returns `self` with `ttl-propagate` disabled (the invisible-tunnel
    /// configuration: `no mpls ip propagate-ttl`).
    pub fn no_ttl_propagate(mut self) -> RouterConfig {
        self.ttl_propagate = false;
        self
    }

    /// Returns `self` with UHP (explicit null) enabled
    /// (`mpls ldp explicit-null`).
    pub fn uhp(mut self) -> RouterConfig {
        self.popping = PoppingMode::Uhp;
        self
    }

    /// Returns `self` with the LDP advertising policy overridden
    /// (e.g. `mpls ldp label allocate global host-routes`).
    pub fn ldp(mut self, policy: LdpPolicy) -> RouterConfig {
        self.ldp_policy = policy;
        self
    }

    /// Returns `self` with RFC 4950 stack quoting disabled (old OSes).
    pub fn without_rfc4950(mut self) -> RouterConfig {
        self.rfc4950 = false;
        self
    }

    /// Returns `self` configured to never answer probes.
    pub fn silent(mut self) -> RouterConfig {
        self.replies = false;
        self
    }
}

/// A router: identity, addresses, interfaces, and configuration.
#[derive(Clone, Debug)]
pub struct Router {
    /// Dense identifier inside the network.
    pub id: RouterId,
    /// Human-readable name (used by scenario outputs, e.g. "PE1").
    pub name: String,
    /// The AS this router belongs to.
    pub asn: Asn,
    /// The router's loopback address (`/32`).
    pub loopback: Addr,
    /// The router's interfaces.
    pub ifaces: Vec<Interface>,
    /// The configuration knobs.
    pub config: RouterConfig,
}

impl Router {
    /// True if `addr` is the loopback or any interface address.
    pub fn owns(&self, addr: Addr) -> bool {
        self.loopback == addr || self.ifaces.iter().any(|i| i.addr == addr)
    }

    /// The interface (index) whose address is `addr`, if any.
    pub fn iface_by_addr(&self, addr: Addr) -> Option<usize> {
        self.ifaces.iter().position(|i| i.addr == addr)
    }

    /// The interface (index) facing `peer`, if any. With parallel links
    /// the first one is returned.
    pub fn iface_to(&self, peer: RouterId) -> Option<usize> {
        self.ifaces.iter().position(|i| i.peer == peer)
    }

    /// All neighbor router ids (deduplicated, insertion order).
    pub fn neighbors(&self) -> Vec<RouterId> {
        let mut out = Vec::with_capacity(self.ifaces.len());
        for i in &self.ifaces {
            if !out.contains(&i.peer) {
                out.push(i.peer);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_router() -> Router {
        Router {
            id: RouterId(0),
            name: "PE1".into(),
            asn: Asn(2),
            loopback: Addr::new(10, 2, 0, 1),
            ifaces: vec![
                Interface {
                    addr: Addr::new(10, 2, 64, 0),
                    prefix: "10.2.64.0/31".parse().unwrap(),
                    link: LinkId(0),
                    peer: RouterId(1),
                    peer_addr: Addr::new(10, 2, 64, 1),
                },
                Interface {
                    addr: Addr::new(10, 2, 64, 2),
                    prefix: "10.2.64.2/31".parse().unwrap(),
                    link: LinkId(1),
                    peer: RouterId(2),
                    peer_addr: Addr::new(10, 2, 64, 3),
                },
            ],
            config: RouterConfig::mpls_router(Vendor::CiscoIos),
        }
    }

    #[test]
    fn ownership_and_lookup() {
        let r = sample_router();
        assert!(r.owns(Addr::new(10, 2, 0, 1)));
        assert!(r.owns(Addr::new(10, 2, 64, 2)));
        assert!(!r.owns(Addr::new(10, 2, 64, 1)));
        assert_eq!(r.iface_by_addr(Addr::new(10, 2, 64, 2)), Some(1));
        assert_eq!(r.iface_to(RouterId(2)), Some(1));
        assert_eq!(r.iface_to(RouterId(9)), None);
        assert_eq!(r.neighbors(), vec![RouterId(1), RouterId(2)]);
    }

    #[test]
    fn config_builders_compose() {
        let c = RouterConfig::mpls_router(Vendor::JuniperJunos)
            .no_ttl_propagate()
            .uhp();
        assert!(c.mpls);
        assert!(!c.ttl_propagate);
        assert_eq!(c.popping, PoppingMode::Uhp);
        assert_eq!(c.ldp_policy, LdpPolicy::LoopbackOnly);
        let c = RouterConfig::mpls_router(Vendor::CiscoIos).ldp(LdpPolicy::LoopbackOnly);
        assert_eq!(c.ldp_policy, LdpPolicy::LoopbackOnly);
        assert!(RouterConfig::host().is_host);
        assert!(!RouterConfig::ip_router(Vendor::CiscoIos).mpls);
        assert!(!RouterConfig::mpls_router(Vendor::CiscoIos).silent().replies);
        assert!(
            !RouterConfig::mpls_router(Vendor::CiscoIos)
                .without_rfc4950()
                .rfc4950
        );
    }
}
