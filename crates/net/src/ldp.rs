//! LDP label distribution (RFC 5036 semantics, downstream unsolicited).
//!
//! Each MPLS router allocates an incoming label per FEC it advertises —
//! all internal prefixes on Cisco, loopback host routes only on Juniper
//! — and advertises the *null* labels for prefixes it owns: implicit
//! null requests Penultimate Hop Popping, explicit null requests
//! Ultimate Hop Popping (paper §2.1).

use crate::ids::{Label, RouterId};
use crate::net::Network;
use crate::prefixes::AsPrefixes;
use crate::vendor::{LdpPolicy, PoppingMode};

/// A label advertisement for a FEC.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LabelValue {
    /// An ordinary label: "switch to me with this label".
    Real(Label),
    /// Implicit null (label 3, never on the wire): "pop before me" (PHP).
    ImplicitNull,
    /// Explicit null (label 0): "swap to 0, I pop myself" (UHP).
    ExplicitNull,
}

/// The complete set of LDP bindings: per router, FEC slot → advertised
/// label. Slots index the router's own AS's [`AsPrefixes`] table.
///
/// Stored as a CSR-style dense table — router `i`'s slot window is
/// `pool[base[i]..base[i+1]]`, directly indexed by slot — because
/// [`LdpBindings::advertised`] runs once per IP hop on the packet
/// walk's hot path, where a per-router hash map lookup was measurable.
#[derive(Debug, Clone)]
pub struct LdpBindings {
    /// `num_routers + 1` offsets into `pool`.
    base: Vec<u32>,
    /// Slot-indexed advertisements; `None` marks a slot the router does
    /// not advertise (e.g. non-/32 prefixes under `LoopbackOnly`).
    pool: Vec<Option<LabelValue>>,
}

impl LdpBindings {
    /// Computes every router's advertisements.
    pub fn compute(net: &Network, as_prefixes: &[AsPrefixes]) -> LdpBindings {
        let mut scratch: Vec<Vec<Option<LabelValue>>> = vec![Vec::new(); net.num_routers()];
        for (as_idx, ap) in as_prefixes.iter().enumerate() {
            debug_assert_eq!(net.as_index(ap.asn), Some(as_idx));
            for &rid in net.as_members(ap.asn) {
                let r = net.router(rid);
                if !r.config.mpls || r.config.ldp_policy == LdpPolicy::None {
                    continue;
                }
                // Offset the label space per router so adjacent LSRs
                // quote visibly distinct labels (as real tables do).
                let mut next_label = Label::FIRST_DYNAMIC.0 + (rid.0 % 61);
                let table = &mut scratch[rid.index()];
                table.resize(ap.len(), None);
                for slot in 0..ap.len() as u32 {
                    let prefix = ap.prefix(slot);
                    let advertise = match r.config.ldp_policy {
                        LdpPolicy::AllPrefixes => true,
                        LdpPolicy::LoopbackOnly => prefix.len == 32,
                        LdpPolicy::None => false,
                    };
                    if !advertise {
                        continue;
                    }
                    let value = if ap.owners(slot).contains(&rid) {
                        match r.config.popping {
                            PoppingMode::Php => LabelValue::ImplicitNull,
                            PoppingMode::Uhp => LabelValue::ExplicitNull,
                        }
                    } else {
                        let l = Label(next_label);
                        next_label += 1;
                        LabelValue::Real(l)
                    };
                    table[slot as usize] = Some(value);
                }
            }
        }
        let mut base = Vec::with_capacity(scratch.len() + 1);
        let mut pool = Vec::new();
        base.push(0u32);
        for table in &scratch {
            pool.extend_from_slice(table);
            base.push(pool.len() as u32);
        }
        LdpBindings { base, pool }
    }

    /// What `router` advertised for FEC `slot` (slot in its own AS's
    /// prefix table), if anything.
    #[inline]
    pub fn advertised(&self, router: RouterId, slot: u32) -> Option<LabelValue> {
        let start = self.base[router.index()] as usize;
        let end = self.base[router.index() + 1] as usize;
        let i = start + slot as usize;
        if i < end {
            self.pool[i]
        } else {
            None
        }
    }

    /// Iterates over `(slot, value)` advertised by `router`.
    pub fn advertisements(&self, router: RouterId) -> impl Iterator<Item = (u32, LabelValue)> + '_ {
        let start = self.base[router.index()] as usize;
        let end = self.base[router.index() + 1] as usize;
        self.pool[start..end]
            .iter()
            .enumerate()
            .filter_map(|(slot, v)| v.map(|v| (slot as u32, v)))
    }

    /// Number of FECs `router` advertises.
    pub fn count(&self, router: RouterId) -> usize {
        self.advertisements(router).count()
    }

    /// The raw CSR representation `(base, pool)`, for the D5xx
    /// dense-plane verifier's well-formedness checks.
    pub fn csr(&self) -> (&[u32], &[Option<LabelValue>]) {
        (&self.base, &self.pool)
    }

    /// Mutable CSR offsets (test-only mutation hook).
    #[cfg(feature = "mutation")]
    pub fn base_mut(&mut self) -> &mut Vec<u32> {
        &mut self.base
    }

    /// Mutable advertisement pool (test-only mutation hook).
    #[cfg(feature = "mutation")]
    pub fn pool_mut(&mut self) -> &mut Vec<Option<LabelValue>> {
        &mut self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Asn;
    use crate::net::{LinkOpts, NetworkBuilder};
    use crate::router::RouterConfig;
    use crate::vendor::Vendor;

    /// x - y - z in one AS; x is MPLS Cisco, y MPLS Juniper, z IP-only.
    fn mixed_as() -> (Network, [RouterId; 3]) {
        let mut b = NetworkBuilder::new();
        let x = b.add_router("x", Asn(1), RouterConfig::mpls_router(Vendor::CiscoIos));
        let y = b.add_router("y", Asn(1), RouterConfig::mpls_router(Vendor::JuniperJunos));
        let z = b.add_router("z", Asn(1), RouterConfig::ip_router(Vendor::CiscoIos));
        b.link(x, y, LinkOpts::default());
        b.link(y, z, LinkOpts::default());
        (b.build().unwrap(), [x, y, z])
    }

    fn prefixes(net: &Network) -> Vec<AsPrefixes> {
        net.as_list()
            .iter()
            .map(|&asn| AsPrefixes::build(net, asn))
            .collect()
    }

    #[test]
    fn cisco_advertises_all_juniper_loopbacks_only() {
        let (net, [x, y, z]) = mixed_as();
        let aps = prefixes(&net);
        let ldp = LdpBindings::compute(&net, &aps);
        // 3 loopbacks + 2 /31s = 5 prefixes; Cisco advertises all.
        assert_eq!(ldp.count(x), 5);
        // Juniper: only the three /32 loopbacks.
        assert_eq!(ldp.count(y), 3);
        // IP-only router: nothing.
        assert_eq!(ldp.count(z), 0);
    }

    #[test]
    fn owners_advertise_null() {
        let (net, [x, _, _]) = mixed_as();
        let aps = prefixes(&net);
        let ldp = LdpBindings::compute(&net, &aps);
        let ap = &aps[0];
        let own_slot = ap.lookup(net.router(x).loopback).unwrap();
        assert_eq!(ldp.advertised(x, own_slot), Some(LabelValue::ImplicitNull));
        // A prefix x does not own gets a real, dynamic label.
        let other_slot = ap.lookup(net.router(RouterId(2)).loopback).unwrap();
        match ldp.advertised(x, other_slot) {
            Some(LabelValue::Real(l)) => assert!(!l.is_reserved()),
            other => panic!("expected real label, got {other:?}"),
        }
    }

    #[test]
    fn uhp_owners_advertise_explicit_null() {
        let mut b = NetworkBuilder::new();
        let x = b.add_router(
            "x",
            Asn(1),
            RouterConfig::mpls_router(Vendor::CiscoIos).uhp(),
        );
        let y = b.add_router("y", Asn(1), RouterConfig::mpls_router(Vendor::CiscoIos));
        b.link(x, y, LinkOpts::default());
        let net = b.build().unwrap();
        let aps = prefixes(&net);
        let ldp = LdpBindings::compute(&net, &aps);
        let slot = aps[0].lookup(net.router(x).loopback).unwrap();
        assert_eq!(ldp.advertised(x, slot), Some(LabelValue::ExplicitNull));
        // y still uses PHP for its own prefixes.
        let slot_y = aps[0].lookup(net.router(y).loopback).unwrap();
        assert_eq!(ldp.advertised(y, slot_y), Some(LabelValue::ImplicitNull));
    }

    #[test]
    fn labels_unique_per_router() {
        let (net, [x, _, _]) = mixed_as();
        let aps = prefixes(&net);
        let ldp = LdpBindings::compute(&net, &aps);
        let mut seen = std::collections::HashSet::new();
        for (_, v) in ldp.advertisements(x) {
            if let LabelValue::Real(l) = v {
                assert!(seen.insert(l), "duplicate incoming label {l}");
            }
        }
        assert!(!seen.is_empty());
    }
}
