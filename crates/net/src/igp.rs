//! Per-AS IGP shortest paths (OSPF/IS-IS stand-in).
//!
//! Each AS's interior routing is an ECMP-aware shortest-path computation
//! over its intra-AS links with per-direction metrics. The control plane
//! runs one Dijkstra per member and keeps the distance matrix: FIB next
//! hops, LDP LSP construction and BGP hot-potato egress selection all
//! derive from it.

use crate::ids::{Asn, RouterId};
use crate::net::Network;
use std::collections::{BinaryHeap, HashMap};

/// "Unreachable" distance sentinel.
pub const INF: u32 = u32::MAX / 2;

/// The IGP view of one AS: members, the all-pairs distance matrix, and
/// the precomputed all-pairs ECMP first-hop sets in CSR layout.
#[derive(Debug, Clone)]
pub struct AsIgp {
    /// The AS.
    pub asn: Asn,
    /// Member routers, in [`Network::as_members`] order.
    pub members: Vec<RouterId>,
    /// Router id → local dense index.
    pub local: HashMap<RouterId, usize>,
    /// `dist[s][d]`: shortest metric from member `s` to member `d`
    /// (local indices).
    pub dist: Vec<Vec<u32>>,
    /// CSR offsets into [`Self::fh_data`]: pair `(s, d)` owns the span
    /// `fh_index[s * n + d] .. fh_index[s * n + d + 1]`.
    fh_index: Vec<u32>,
    /// Concatenated `(iface index, neighbor)` first-hop sets.
    fh_data: Vec<(u32, RouterId)>,
}

impl AsIgp {
    /// Computes the IGP view of `asn`.
    pub fn compute(net: &Network, asn: Asn) -> AsIgp {
        let members: Vec<RouterId> = net.as_members(asn).to_vec();
        let local: HashMap<RouterId, usize> =
            members.iter().enumerate().map(|(i, &r)| (r, i)).collect();
        let dist: Vec<Vec<u32>> = members
            .iter()
            .map(|&src| dijkstra(net, &members, &local, src))
            .collect();
        // Precompute every (s, d) ECMP first-hop set once, so per-hop
        // forwarding decisions borrow a slice instead of re-deriving
        // (and allocating) the set on every packet.
        let n = members.len();
        let mut fh_index = Vec::with_capacity(n * n + 1);
        let mut fh_data = Vec::new();
        fh_index.push(0u32);
        for (ls, &s) in members.iter().enumerate() {
            let router = net.router(s);
            for (ld, &total) in dist[ls].iter().enumerate() {
                if total < INF && ls != ld {
                    for (idx, iface) in router.ifaces.iter().enumerate() {
                        if net.link(iface.link).inter_as {
                            continue;
                        }
                        let Some(&ln) = local.get(&iface.peer) else {
                            continue;
                        };
                        let w = edge_metric(net, s, idx);
                        if w.saturating_add(dist[ln][ld]) == total {
                            fh_data.push((idx as u32, iface.peer));
                        }
                    }
                }
                fh_index.push(fh_data.len() as u32);
            }
        }
        AsIgp {
            asn,
            members,
            local,
            dist,
            fh_index,
            fh_data,
        }
    }

    /// Shortest metric from `s` to `d` (router ids; `INF` if either is
    /// not a member or unreachable).
    pub fn distance(&self, s: RouterId, d: RouterId) -> u32 {
        match (self.local.get(&s), self.local.get(&d)) {
            (Some(&ls), Some(&ld)) => self.dist[ls][ld],
            _ => INF,
        }
    }

    /// The ECMP first-hop set from `s` towards `d`: every
    /// `(iface index, neighbor)` of `s` lying on a shortest path.
    /// Empty when `d` is unreachable or `s == d`. Borrowed from the
    /// table precomputed by [`AsIgp::compute`]; no per-call allocation.
    pub fn first_hops(&self, s: RouterId, d: RouterId) -> &[(u32, RouterId)] {
        let (ls, ld) = match (self.local.get(&s), self.local.get(&d)) {
            (Some(&ls), Some(&ld)) => (ls, ld),
            _ => return &[],
        };
        let cell = ls * self.members.len() + ld;
        let lo = self.fh_index[cell] as usize;
        let hi = self.fh_index[cell + 1] as usize;
        &self.fh_data[lo..hi]
    }

    /// True when every member can reach every other member.
    pub fn connected(&self) -> bool {
        self.dist.iter().all(|row| row.iter().all(|&d| d < INF))
    }

    /// A member unreachable from the first member, if any.
    pub fn find_unreachable(&self) -> Option<RouterId> {
        let row = self.dist.first()?;
        row.iter().position(|&d| d >= INF).map(|i| self.members[i])
    }

    /// The raw first-hop CSR `(fh_index, fh_data)`, for the D5xx
    /// dense-plane verifier's well-formedness checks.
    pub fn first_hop_csr(&self) -> (&[u32], &[(u32, RouterId)]) {
        (&self.fh_index, &self.fh_data)
    }

    /// Mutable first-hop CSR offsets (test-only mutation hook).
    #[cfg(feature = "mutation")]
    pub fn fh_index_mut(&mut self) -> &mut Vec<u32> {
        &mut self.fh_index
    }
}

/// The IGP metric of `router`'s `iface_idx`-th interface in the outgoing
/// direction.
pub fn edge_metric(net: &Network, router: RouterId, iface_idx: usize) -> u32 {
    let iface = &net.router(router).ifaces[iface_idx];
    let link = net.link(iface.link);
    if link.a.router == router && link.a.iface == iface_idx as u32 {
        link.metric_ab
    } else {
        link.metric_ba
    }
}

fn dijkstra(
    net: &Network,
    members: &[RouterId],
    local: &HashMap<RouterId, usize>,
    src: RouterId,
) -> Vec<u32> {
    use std::cmp::Reverse;
    let mut dist = vec![INF; members.len()];
    let src_l = local[&src];
    dist[src_l] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u32, src_l)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        let router = net.router(members[u]);
        for (idx, iface) in router.ifaces.iter().enumerate() {
            if net.link(iface.link).inter_as {
                continue;
            }
            let Some(&v) = local.get(&iface.peer) else {
                continue;
            };
            let nd = d.saturating_add(edge_metric(net, members[u], idx));
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{LinkOpts, NetworkBuilder};
    use crate::router::RouterConfig;
    use crate::vendor::Vendor;

    /// Square AS: a-b, b-d, a-c, c-d, plus an expensive direct a-d.
    fn square() -> (Network, [RouterId; 4]) {
        let mut b = NetworkBuilder::new();
        let cfg = RouterConfig::ip_router(Vendor::CiscoIos);
        let a = b.add_router("a", Asn(1), cfg.clone());
        let bb = b.add_router("b", Asn(1), cfg.clone());
        let c = b.add_router("c", Asn(1), cfg.clone());
        let d = b.add_router("d", Asn(1), cfg.clone());
        b.link(a, bb, LinkOpts::symmetric(10, 1.0));
        b.link(bb, d, LinkOpts::symmetric(10, 1.0));
        b.link(a, c, LinkOpts::symmetric(10, 1.0));
        b.link(c, d, LinkOpts::symmetric(10, 1.0));
        b.link(a, d, LinkOpts::symmetric(100, 1.0));
        (b.build().unwrap(), [a, bb, c, d])
    }

    #[test]
    fn shortest_distances() {
        let (net, [a, bb, c, d]) = square();
        let igp = AsIgp::compute(&net, Asn(1));
        assert_eq!(igp.distance(a, d), 20);
        assert_eq!(igp.distance(a, bb), 10);
        assert_eq!(igp.distance(a, c), 10);
        assert_eq!(igp.distance(d, a), 20);
        assert_eq!(igp.distance(a, a), 0);
        assert!(igp.connected());
        assert!(igp.find_unreachable().is_none());
    }

    #[test]
    fn ecmp_first_hops() {
        let (net, [a, bb, c, d]) = square();
        let igp = AsIgp::compute(&net, Asn(1));
        let mut fh: Vec<RouterId> = igp.first_hops(a, d).iter().map(|&(_, r)| r).collect();
        fh.sort();
        assert_eq!(fh, vec![bb, c]);
        // Direct expensive edge not part of the set.
        assert!(!fh.contains(&d));
        // Single path a->b.
        assert_eq!(igp.first_hops(a, bb).len(), 1);
        // Self: empty.
        assert!(igp.first_hops(a, a).is_empty());
    }

    #[test]
    fn asymmetric_metrics() {
        let mut b = NetworkBuilder::new();
        let cfg = RouterConfig::ip_router(Vendor::CiscoIos);
        let x = b.add_router("x", Asn(1), cfg.clone());
        let y = b.add_router("y", Asn(1), cfg.clone());
        let z = b.add_router("z", Asn(1), cfg.clone());
        // x->y cheap, y->x expensive; detour via z costs 2+2.
        b.link(
            x,
            y,
            LinkOpts {
                delay_ms: 1.0,
                metric_ab: 1,
                metric_ba: 10,
            },
        );
        b.link(x, z, LinkOpts::symmetric(2, 1.0));
        b.link(z, y, LinkOpts::symmetric(2, 1.0));
        let net = b.build().unwrap();
        let igp = AsIgp::compute(&net, Asn(1));
        assert_eq!(igp.distance(x, y), 1);
        assert_eq!(igp.distance(y, x), 4); // via z
        let fh = igp.first_hops(y, x);
        assert_eq!(fh.len(), 1);
        assert_eq!(fh[0].1, z);
    }

    #[test]
    fn disconnected_detected() {
        let mut b = NetworkBuilder::new();
        let cfg = RouterConfig::ip_router(Vendor::CiscoIos);
        let x = b.add_router("x", Asn(1), cfg.clone());
        let y = b.add_router("y", Asn(1), cfg.clone());
        b.link(x, y, LinkOpts::default());
        let lonely = b.add_router("lonely", Asn(1), cfg);
        let net = b.build().unwrap();
        let igp = AsIgp::compute(&net, Asn(1));
        assert!(!igp.connected());
        assert_eq!(igp.find_unreachable(), Some(lonely));
    }

    #[test]
    fn inter_as_links_ignored_by_igp() {
        let mut b = NetworkBuilder::new();
        let cfg = RouterConfig::ip_router(Vendor::CiscoIos);
        let x = b.add_router("x", Asn(1), cfg.clone());
        let y = b.add_router("y", Asn(2), cfg);
        b.link(x, y, LinkOpts::default());
        let net = b.build().unwrap();
        let igp = AsIgp::compute(&net, Asn(1));
        assert_eq!(igp.members.len(), 1);
        assert!(igp.first_hops(x, y).is_empty());
    }
}
