//! AS-level routing: Gao–Rexford valley-free route selection.
//!
//! The measurement techniques never inspect BGP state, but the *shape*
//! of inter-domain routing matters twice in the paper: external transit
//! traffic is label-switched towards the BGP next hop (the egress border
//! loopback), and hot-potato egress selection makes forward and return
//! paths asymmetric — the noise FRPLA must average out (§3.4, Fig 7).

use crate::error::NetError;
use crate::ids::Asn;
use crate::net::{Network, RelKind};
use std::collections::{BinaryHeap, HashMap};

/// One destination's column of the routing table: each AS's selected
/// `(class, AS-path length)`, when reachable.
pub type RouteColumn = Vec<Option<(RouteClass, u32)>>;

/// Preference class of an AS-level route, lower is better
/// (customer > peer > provider in operator revenue terms).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum RouteClass {
    /// Learned from a customer (or the origin itself).
    Customer = 0,
    /// Learned from a settlement-free peer.
    Peer = 1,
    /// Learned from a provider.
    Provider = 2,
}

/// The AS-level routing table: for every destination AS, each AS's set
/// of equally-best next-hop ASes.
#[derive(Debug, Clone)]
pub struct Bgp {
    /// `next_as[dst][src]`: dense AS indices of the best next-hop ASes
    /// from `src` towards `dst` (empty ⇒ unreachable; `src == dst` ⇒
    /// empty by convention).
    pub next_as: Vec<Vec<Vec<usize>>>,
    /// `route[dst][src]`: the selected route's (class, AS-path length).
    pub route: Vec<RouteColumn>,
}

/// Neighbor view used during route computation.
struct AsAdj {
    /// `neighbors[x]`: `(y, class)` pairs where `class` is what `y`
    /// assigns to a route it learns from `x`.
    neighbors: Vec<Vec<(usize, RouteClass)>>,
}

fn build_adj(net: &Network) -> Result<AsAdj, NetError> {
    let n = net.as_list().len();
    let mut neighbors = vec![Vec::new(); n];
    let mut declared: HashMap<(usize, usize), ()> = HashMap::new();
    for rel in net.as_rels() {
        let (Some(a), Some(b)) = (net.as_index(rel.a), net.as_index(rel.b)) else {
            continue; // relationship about an AS with no routers
        };
        declared.insert((a.min(b), a.max(b)), ());
        match rel.kind {
            RelKind::ProviderCustomer => {
                // a provides transit to b. A route propagated a→b is
                // provider-learned at b; a route propagated b→a is
                // customer-learned at a.
                neighbors[a].push((b, RouteClass::Provider));
                neighbors[b].push((a, RouteClass::Customer));
            }
            RelKind::Peer => {
                neighbors[a].push((b, RouteClass::Peer));
                neighbors[b].push((a, RouteClass::Peer));
            }
        }
    }
    // Every physical inter-AS link must be covered by a relationship.
    for link in net.links() {
        if !link.inter_as {
            continue;
        }
        let asn_a = net.router(link.a.router).asn;
        let asn_b = net.router(link.b.router).asn;
        let ia = net
            .as_index(asn_a)
            .ok_or(NetError::UnregisteredAs { asn: asn_a })?;
        let ib = net
            .as_index(asn_b)
            .ok_or(NetError::UnregisteredAs { asn: asn_b })?;
        if !declared.contains_key(&(ia.min(ib), ia.max(ib))) {
            return Err(NetError::MissingAsRel { a: asn_a, b: asn_b });
        }
    }
    Ok(AsAdj { neighbors })
}

impl Bgp {
    /// Computes valley-free best routes for every (destination, source)
    /// AS pair.
    pub fn compute(net: &Network) -> Result<Bgp, NetError> {
        let adj = build_adj(net)?;
        let n = net.as_list().len();
        let mut next_as = Vec::with_capacity(n);
        let mut route = Vec::with_capacity(n);
        for dst in 0..n {
            let (nexts, routes) = Self::single_dest(&adj, n, dst);
            next_as.push(nexts);
            route.push(routes);
        }
        Ok(Bgp { next_as, route })
    }

    /// Dijkstra over the `(class, hops)` lattice for one destination.
    ///
    /// An AS `x` exports its route to neighbor `y` only when `y` is its
    /// customer, or when `x`'s own route is customer-learned / originated
    /// — the classic valley-free export rule.
    fn single_dest(adj: &AsAdj, n: usize, dst: usize) -> (Vec<Vec<usize>>, RouteColumn) {
        use std::cmp::Reverse;
        let mut best: Vec<Option<(RouteClass, u32)>> = vec![None; n];
        let mut nexts: Vec<Vec<usize>> = vec![Vec::new(); n];
        best[dst] = Some((RouteClass::Customer, 0));
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((RouteClass::Customer, 0u32, dst)));
        while let Some(Reverse((class, hops, x))) = heap.pop() {
            if best[x] != Some((class, hops)) {
                continue; // superseded
            }
            for &(y, class_at_y) in &adj.neighbors[x] {
                // Export rule: x -> y allowed if y is x's customer, i.e.
                // y would class the route "Provider"; otherwise only
                // customer routes (and the origin's own) are exported.
                let exporting_down = class_at_y == RouteClass::Provider;
                if !exporting_down && class != RouteClass::Customer {
                    continue;
                }
                let cand = (class_at_y, hops + 1);
                match best[y] {
                    Some(cur) if cur < cand => {}
                    Some(cur) if cur == cand => {
                        if !nexts[y].contains(&x) {
                            nexts[y].push(x);
                        }
                    }
                    _ => {
                        best[y] = Some(cand);
                        nexts[y] = vec![x];
                        heap.push(Reverse((cand.0, cand.1, y)));
                    }
                }
            }
        }
        (nexts, best)
    }

    /// The best next-hop AS indices from `src` towards `dst` (dense
    /// indices).
    pub fn next_hops(&self, dst: usize, src: usize) -> &[usize] {
        &self.next_as[dst][src]
    }

    /// Whether `src` has any route to `dst`.
    pub fn reachable(&self, dst: usize, src: usize) -> bool {
        src == dst || !self.next_as[dst][src].is_empty()
    }

    /// Convenience: resolves through [`Network::as_index`].
    pub fn next_hop_asns(&self, net: &Network, dst: Asn, src: Asn) -> Vec<Asn> {
        let (Some(d), Some(s)) = (net.as_index(dst), net.as_index(src)) else {
            return Vec::new();
        };
        self.next_as[d][s]
            .iter()
            .map(|&i| net.as_list()[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{LinkOpts, NetworkBuilder};
    use crate::router::RouterConfig;
    use crate::vendor::Vendor;

    /// AS1 --customer-of--> AS2 (transit) <--customer-- AS3;
    /// AS2 peers with AS4; AS4 provides AS5.
    fn net5() -> Network {
        let mut b = NetworkBuilder::new();
        let cfg = RouterConfig::ip_router(Vendor::CiscoIos);
        let r1 = b.add_router("r1", Asn(1), cfg.clone());
        let r2 = b.add_router("r2", Asn(2), cfg.clone());
        let r3 = b.add_router("r3", Asn(3), cfg.clone());
        let r4 = b.add_router("r4", Asn(4), cfg.clone());
        let r5 = b.add_router("r5", Asn(5), cfg.clone());
        b.link(r1, r2, LinkOpts::default());
        b.link(r2, r3, LinkOpts::default());
        b.link(r2, r4, LinkOpts::default());
        b.link(r4, r5, LinkOpts::default());
        b.as_rel(Asn(2), Asn(1), RelKind::ProviderCustomer);
        b.as_rel(Asn(2), Asn(3), RelKind::ProviderCustomer);
        b.as_rel(Asn(2), Asn(4), RelKind::Peer);
        b.as_rel(Asn(4), Asn(5), RelKind::ProviderCustomer);
        b.build().unwrap()
    }

    #[test]
    fn transit_through_provider() {
        let net = net5();
        let bgp = Bgp::compute(&net).unwrap();
        // AS1 reaches AS3 via its provider AS2.
        assert_eq!(bgp.next_hop_asns(&net, Asn(3), Asn(1)), vec![Asn(2)]);
        // AS3 reaches AS1 via AS2 as well.
        assert_eq!(bgp.next_hop_asns(&net, Asn(1), Asn(3)), vec![Asn(2)]);
    }

    #[test]
    fn peering_is_not_transit() {
        let net = net5();
        let bgp = Bgp::compute(&net).unwrap();
        // AS2 reaches AS5 through its peer AS4 (AS4 exports its customer).
        assert_eq!(bgp.next_hop_asns(&net, Asn(5), Asn(2)), vec![Asn(4)]);
        // And AS1 (customer of AS2) reaches AS5 via AS2.
        assert_eq!(bgp.next_hop_asns(&net, Asn(5), Asn(1)), vec![Asn(2)]);
        // AS5 reaches AS1: AS5 -> AS4 (provider) -> peer AS2 -> customer.
        assert_eq!(bgp.next_hop_asns(&net, Asn(1), Asn(5)), vec![Asn(4)]);
    }

    #[test]
    fn customer_routes_preferred_over_peer() {
        // AS2 has both a customer path and a peer path to AS6:
        // AS2 -> AS3 (customer) -> AS6 (customer of AS3)
        // AS2 -> AS4 (peer), AS4 -> AS6 (customer of AS4)
        let mut b = NetworkBuilder::new();
        let cfg = RouterConfig::ip_router(Vendor::CiscoIos);
        let r2 = b.add_router("r2", Asn(2), cfg.clone());
        let r3 = b.add_router("r3", Asn(3), cfg.clone());
        let r4 = b.add_router("r4", Asn(4), cfg.clone());
        let r6 = b.add_router("r6", Asn(6), cfg.clone());
        b.link(r2, r3, LinkOpts::default());
        b.link(r2, r4, LinkOpts::default());
        b.link(r3, r6, LinkOpts::default());
        b.link(r4, r6, LinkOpts::default());
        b.as_rel(Asn(2), Asn(3), RelKind::ProviderCustomer);
        b.as_rel(Asn(2), Asn(4), RelKind::Peer);
        b.as_rel(Asn(3), Asn(6), RelKind::ProviderCustomer);
        b.as_rel(Asn(4), Asn(6), RelKind::ProviderCustomer);
        let net = b.build().unwrap();
        let bgp = Bgp::compute(&net).unwrap();
        assert_eq!(bgp.next_hop_asns(&net, Asn(6), Asn(2)), vec![Asn(3)]);
    }

    #[test]
    fn ecmp_as_level_ties_kept() {
        // Two equally-good customer paths from AS1 to AS4.
        let mut b = NetworkBuilder::new();
        let cfg = RouterConfig::ip_router(Vendor::CiscoIos);
        let r1 = b.add_router("r1", Asn(1), cfg.clone());
        let r2 = b.add_router("r2", Asn(2), cfg.clone());
        let r3 = b.add_router("r3", Asn(3), cfg.clone());
        let r4 = b.add_router("r4", Asn(4), cfg.clone());
        b.link(r1, r2, LinkOpts::default());
        b.link(r1, r3, LinkOpts::default());
        b.link(r2, r4, LinkOpts::default());
        b.link(r3, r4, LinkOpts::default());
        b.as_rel(Asn(1), Asn(2), RelKind::ProviderCustomer);
        b.as_rel(Asn(1), Asn(3), RelKind::ProviderCustomer);
        b.as_rel(Asn(2), Asn(4), RelKind::ProviderCustomer);
        b.as_rel(Asn(3), Asn(4), RelKind::ProviderCustomer);
        let net = b.build().unwrap();
        let bgp = Bgp::compute(&net).unwrap();
        let mut nh = bgp.next_hop_asns(&net, Asn(4), Asn(1));
        nh.sort();
        assert_eq!(nh, vec![Asn(2), Asn(3)]);
    }

    #[test]
    fn undeclared_inter_as_link_is_an_error() {
        let mut b = NetworkBuilder::new();
        let cfg = RouterConfig::ip_router(Vendor::CiscoIos);
        let r1 = b.add_router("r1", Asn(1), cfg.clone());
        let r2 = b.add_router("r2", Asn(2), cfg);
        b.link(r1, r2, LinkOpts::default());
        let net = b.build().unwrap();
        assert!(matches!(
            Bgp::compute(&net),
            Err(NetError::MissingAsRel { .. })
        ));
    }

    #[test]
    fn valley_paths_rejected() {
        // AS1 and AS3 are both customers of nobody, peers of AS2? No:
        // peer-peer-peer chains must not provide transit:
        // AS1 - peer - AS2 - peer - AS3: AS1 cannot reach AS3.
        let mut b = NetworkBuilder::new();
        let cfg = RouterConfig::ip_router(Vendor::CiscoIos);
        let r1 = b.add_router("r1", Asn(1), cfg.clone());
        let r2 = b.add_router("r2", Asn(2), cfg.clone());
        let r3 = b.add_router("r3", Asn(3), cfg.clone());
        b.link(r1, r2, LinkOpts::default());
        b.link(r2, r3, LinkOpts::default());
        b.as_rel(Asn(1), Asn(2), RelKind::Peer);
        b.as_rel(Asn(2), Asn(3), RelKind::Peer);
        let net = b.build().unwrap();
        let bgp = Bgp::compute(&net).unwrap();
        assert!(bgp.next_hop_asns(&net, Asn(3), Asn(1)).is_empty());
        // Direct peers still reach each other.
        assert_eq!(bgp.next_hop_asns(&net, Asn(2), Asn(1)), vec![Asn(2)]);
    }
}
