//! Error types for network construction and control-plane computation.

use crate::addr::Addr;
use crate::ids::{Asn, RouterId};
use std::fmt;

/// Errors raised while building a network or its control plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The same address was assigned to two routers.
    DuplicateAddress {
        /// The conflicting address.
        addr: Addr,
        /// First owner.
        first: RouterId,
        /// Second owner.
        second: RouterId,
    },
    /// An AS's intra-AS graph is disconnected; IGP routing is undefined.
    DisconnectedAs {
        /// The offending AS.
        asn: Asn,
        /// A router unreachable from the AS's first member.
        unreachable: RouterId,
    },
    /// Two ASes exchange traffic but no relationship was declared.
    MissingAsRel {
        /// First AS.
        a: Asn,
        /// Second AS.
        b: Asn,
    },
    /// An RSVP-TE tunnel's explicit path is unusable.
    InvalidTeTunnel {
        /// What is wrong with it.
        reason: String,
    },
    /// A router or link references an AS the network never registered.
    UnregisteredAs {
        /// The unknown AS.
        asn: Asn,
    },
    /// A control-plane path references consecutive routers that share
    /// no link.
    MissingAdjacency {
        /// The upstream router.
        from: RouterId,
        /// The unreachable downstream router.
        to: RouterId,
    },
    /// A fault plan with out-of-range parameters.
    InvalidFaultPlan {
        /// Which field is wrong and why.
        reason: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::DuplicateAddress {
                addr,
                first,
                second,
            } => write!(f, "address {addr} assigned to both {first} and {second}"),
            NetError::DisconnectedAs { asn, unreachable } => {
                write!(f, "{asn} is disconnected: {unreachable} unreachable")
            }
            NetError::MissingAsRel { a, b } => {
                write!(f, "link between {a} and {b} without an AS relationship")
            }
            NetError::InvalidTeTunnel { reason } => {
                write!(f, "invalid RSVP-TE tunnel: {reason}")
            }
            NetError::UnregisteredAs { asn } => {
                write!(f, "{asn} is referenced but not registered")
            }
            NetError::MissingAdjacency { from, to } => {
                write!(f, "no link between {from} and {to}")
            }
            NetError::InvalidFaultPlan { reason } => {
                write!(f, "invalid fault plan: {reason}")
            }
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetError::DuplicateAddress {
            addr: Addr::new(10, 0, 0, 1),
            first: RouterId(1),
            second: RouterId(2),
        };
        assert!(e.to_string().contains("10.0.0.1"));
        let e = NetError::DisconnectedAs {
            asn: Asn(2),
            unreachable: RouterId(5),
        };
        assert!(e.to_string().contains("AS2"));
        let e = NetError::MissingAsRel {
            a: Asn(1),
            b: Asn(2),
        };
        assert!(e.to_string().contains("AS1"));
        let e = NetError::UnregisteredAs { asn: Asn(7) };
        assert!(e.to_string().contains("AS7"));
        let e = NetError::MissingAdjacency {
            from: RouterId(1),
            to: RouterId(2),
        };
        assert!(e.to_string().contains("no link"));
    }
}
