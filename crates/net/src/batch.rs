//! Struct-of-arrays lanes for the batched engine walk.
//!
//! [`crate::engine::Engine::send_batch`] advances up to [`BATCH_WIDTH`]
//! in-flight probes together. Each sweep it mirrors every live
//! flight's hot fields — IP-TTL, top-of-stack LSE-TTL and label,
//! current router slot, and a live/labeled status byte — into the
//! parallel arrays here. The arrays are fixed-width and cache-line
//! aligned (`#[repr(align(64))]`), so the TTL classification pass is
//! straight-line arithmetic over contiguous bytes the compiler can
//! vectorize, and the flag-byte gather walks the control plane's dense
//! per-router rows for every lane *before* the per-lane advance — a
//! safe-Rust software prefetch that pulls the next routers' walk-table
//! cache lines in early (`wormhole-net` forbids `unsafe`, so explicit
//! prefetch intrinsics are off the table; a gather of the bytes the
//! advance is about to read is the next best thing and doubles as the
//! expiry classifier's input).
//!
//! The classification drives *scheduling*, never semantics: lanes the
//! pre-pass marks as expiring step first (they turn into ICMP return
//! legs and leave the forwarding sweep early), the rest step after.
//! Under a batch-safe fault plan every probe's outcome is a pure
//! function of its own packet, so this ordering freedom cannot change
//! results — which is exactly what keeps the batched walk byte-
//! identical to the scalar one.

use crate::control::ControlPlane;
use crate::ids::RouterId;

/// Number of probes advanced together by one batch sweep. Also the
/// natural chunk size for schedulers feeding the batched walk (the
/// work-stealing campaign scheduler claims tasks in chunks of this
/// size).
pub const BATCH_WIDTH: usize = 64;

/// A cache-line-aligned fixed-width lane.
#[repr(align(64))]
pub(crate) struct Lane<T>(pub(crate) [T; BATCH_WIDTH]);

/// Lane status: dead/done.
const DEAD: u8 = 0;
/// Lane status: live, forwarding as plain IP.
const LIVE_IP: u8 = 1;
/// Lane status: live, top-of-stack label active.
const LIVE_MPLS: u8 = 2;

/// The struct-of-arrays mirror of a batch of flights. All state is
/// inline — constructing and running a batch never touches the heap.
pub(crate) struct BatchLanes {
    /// Packet IP-TTLs.
    ip_ttl: Lane<u8>,
    /// Top-of-stack LSE-TTLs (255 when unlabeled).
    lse_ttl: Lane<u8>,
    /// Top-of-stack label values (`u32::MAX` when unlabeled).
    #[allow(dead_code)] // mirrored for the classifier's label-window checks
    label: Lane<u32>,
    /// Current router slots.
    cur: Lane<u32>,
    /// Per-lane status ([`DEAD`]/[`LIVE_IP`]/[`LIVE_MPLS`]).
    status: Lane<u8>,
    /// Classifier output: 1 when the lane's governing TTL expires at
    /// the current router.
    expired: Lane<u8>,
    /// Gathered walk-table flag bytes for each lane's current router.
    flags: Lane<u8>,
}

impl BatchLanes {
    /// Empty lanes (all dead).
    pub(crate) fn new() -> BatchLanes {
        BatchLanes {
            ip_ttl: Lane([0; BATCH_WIDTH]),
            lse_ttl: Lane([0; BATCH_WIDTH]),
            label: Lane([0; BATCH_WIDTH]),
            cur: Lane([0; BATCH_WIDTH]),
            status: Lane([DEAD; BATCH_WIDTH]),
            expired: Lane([0; BATCH_WIDTH]),
            flags: Lane([0; BATCH_WIDTH]),
        }
    }

    /// Mirrors one flight's hot fields into lane `i`; the tuple is
    /// `(ip_ttl, lse_ttl, label, cur, labeled)` from
    /// `Flight::lane()`.
    #[inline]
    pub(crate) fn load(
        &mut self,
        i: usize,
        (ip, lse, label, cur, labeled): (u8, u8, u32, u32, bool),
    ) {
        self.ip_ttl.0[i] = ip;
        self.lse_ttl.0[i] = lse;
        self.label.0[i] = label;
        self.cur.0[i] = cur;
        self.status.0[i] = if labeled { LIVE_MPLS } else { LIVE_IP };
    }

    /// Marks lane `i` dead (its flight completed).
    #[inline]
    pub(crate) fn clear(&mut self, i: usize) {
        self.status.0[i] = DEAD;
    }

    /// The vectorizable classification pass: for every live lane, the
    /// governing TTL (LSE-TTL for labeled lanes, IP-TTL otherwise) is
    /// compared against the expiry threshold in one straight-line sweep
    /// over the aligned arrays. `live` is the batch driver's dense list
    /// of live lane indices — sweeps late in a chunk's life, when a few
    /// stragglers remain, cost O(live) rather than O(width).
    pub(crate) fn classify(&mut self, live: &[u8]) {
        for &i in live {
            let i = i as usize;
            let labeled = self.status.0[i] == LIVE_MPLS;
            let eff = if labeled {
                self.lse_ttl.0[i]
            } else {
                self.ip_ttl.0[i]
            };
            self.expired.0[i] = u8::from(self.status.0[i] != DEAD && eff <= 1);
        }
    }

    /// Gathers the walk-table flag byte of every live lane's current
    /// router. Touching those dense rows here — one tight loop, before
    /// any per-lane advance runs — pulls the cache lines the advance
    /// will read, hiding the lookup latency behind the gather.
    pub(crate) fn gather_flags(&mut self, cp: &ControlPlane, live: &[u8]) {
        for &i in live {
            let i = i as usize;
            self.flags.0[i] = if self.status.0[i] != DEAD {
                cp.router_flags(RouterId(self.cur.0[i]))
            } else {
                0
            };
        }
    }

    /// Whether lane `i` belongs to advance pass `pass` (1 = expiring
    /// lanes, 0 = the rest). Dead lanes belong to neither.
    #[inline]
    pub(crate) fn in_pass(&self, i: usize, pass: u8) -> bool {
        self.status.0[i] != DEAD && self.expired.0[i] == pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_partitions_by_governing_ttl() {
        let mut lanes = BatchLanes::new();
        // Lane 0: plain IP, expiring. Lane 1: plain IP, alive.
        // Lane 2: labeled, LSE expiring (IP-TTL healthy).
        // Lane 3: labeled, alive (IP-TTL at 1 is irrelevant).
        lanes.load(0, (1, 255, u32::MAX, 10, false));
        lanes.load(1, (5, 255, u32::MAX, 11, false));
        lanes.load(2, (9, 1, 42, 12, true));
        lanes.load(3, (1, 9, 42, 13, true));
        lanes.classify(&[0, 1, 2, 3]);
        assert!(lanes.in_pass(0, 1));
        assert!(lanes.in_pass(1, 0));
        assert!(lanes.in_pass(2, 1));
        assert!(lanes.in_pass(3, 0));
        // Dead lanes belong to neither pass.
        lanes.clear(0);
        lanes.classify(&[0, 1, 2, 3]);
        assert!(!lanes.in_pass(0, 1) && !lanes.in_pass(0, 0));
    }

    #[test]
    fn lanes_are_cache_line_aligned() {
        assert_eq!(std::mem::align_of::<Lane<u8>>(), 64);
        assert_eq!(std::mem::align_of::<Lane<u32>>(), 64);
        assert_eq!(std::mem::align_of::<BatchLanes>(), 64);
    }
}
