//! RSVP-TE tunnels: operator-pinned explicit LSPs (RFC 3209).
//!
//! The paper's survey (§2.1) finds half the operators combining RSVP-TE
//! with LDP, and its conclusion attributes the few completely opaque
//! ASes to "MPLS only with UHP, for VPN and/or traffic engineering":
//! a UHP RSVP-TE tunnel is the one configuration none of the four
//! techniques can see through. This module models such tunnels: an
//! explicit router path with its own label chain, entered at the head
//! via autoroute (traffic whose BGP next hop — or whose destination
//! loopback — is the tail).

use crate::ids::{Label, RouterId};
use crate::net::Network;
use crate::vendor::PoppingMode;

/// An explicitly routed TE tunnel.
#[derive(Clone, Debug)]
pub struct TeTunnel {
    /// Dense tunnel id (assigned by the builder).
    pub id: u32,
    /// The full path, head LER first, tail LER last.
    pub path: Vec<RouterId>,
    /// PHP (penultimate pops) or UHP (tail pops explicit null — the
    /// "truly invisible" configuration).
    pub popping: PoppingMode,
}

impl TeTunnel {
    /// The head-end (ingress LER), when the path is non-empty.
    pub fn try_head(&self) -> Option<RouterId> {
        self.path.first().copied()
    }

    /// The tail-end (egress LER), when the path is non-empty.
    pub fn try_tail(&self) -> Option<RouterId> {
        self.path.last().copied()
    }

    /// The head-end (ingress LER).
    ///
    /// # Panics
    ///
    /// Panics on an empty path; call [`TeTunnel::validate`] first, or
    /// use [`TeTunnel::try_head`] on unvalidated tunnels.
    pub fn head(&self) -> RouterId {
        self.try_head().expect("validated path")
    }

    /// The tail-end (egress LER).
    ///
    /// # Panics
    ///
    /// Panics on an empty path; call [`TeTunnel::validate`] first, or
    /// use [`TeTunnel::try_tail`] on unvalidated tunnels.
    pub fn tail(&self) -> RouterId {
        self.try_tail().expect("validated path")
    }

    /// Number of LSRs strictly inside the tunnel.
    pub fn interior_len(&self) -> usize {
        self.path.len().saturating_sub(2)
    }

    /// The RSVP-assigned incoming label at `path[i]` (i ≥ 1). TE labels
    /// live far above the LDP allocation range, so the two label spaces
    /// never collide on a router.
    pub fn label_into(&self, i: usize) -> Label {
        debug_assert!(i >= 1 && i < self.path.len());
        Label(500_000 + self.id)
    }

    /// Validates the tunnel against a network: at least head and tail,
    /// consecutive hops adjacent, single AS, MPLS heads/tails.
    pub fn validate(&self, net: &Network) -> Result<(), String> {
        if self.path.len() < 2 {
            return Err(format!("tunnel {}: path needs at least 2 routers", self.id));
        }
        let asn = net.router(self.head()).asn;
        for w in self.path.windows(2) {
            let (a, b) = (w[0], w[1]);
            if net.router(a).asn != asn || net.router(b).asn != asn {
                return Err(format!("tunnel {}: path leaves {asn}", self.id));
            }
            if net.router(a).iface_to(b).is_none() {
                return Err(format!(
                    "tunnel {}: {} and {} are not adjacent",
                    self.id,
                    net.router(a).name,
                    net.router(b).name
                ));
            }
        }
        let mut seen = std::collections::HashSet::new();
        if !self.path.iter().all(|r| seen.insert(*r)) {
            return Err(format!("tunnel {}: path revisits a router", self.id));
        }
        for end in [self.head(), self.tail()] {
            if !net.router(end).config.mpls {
                return Err(format!(
                    "tunnel {}: {} is not MPLS-enabled",
                    self.id,
                    net.router(end).name
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Asn;
    use crate::net::{LinkOpts, NetworkBuilder};
    use crate::router::RouterConfig;
    use crate::vendor::Vendor;

    fn line4() -> (Network, Vec<RouterId>) {
        let mut b = NetworkBuilder::new();
        let cfg = RouterConfig::mpls_router(Vendor::CiscoIos);
        let ids: Vec<RouterId> = (0..4)
            .map(|i| b.add_router(&format!("r{i}"), Asn(1), cfg.clone()))
            .collect();
        for w in ids.windows(2) {
            b.link(w[0], w[1], LinkOpts::default());
        }
        (b.build().unwrap(), ids)
    }

    #[test]
    fn valid_tunnel() {
        let (net, ids) = line4();
        let t = TeTunnel {
            id: 0,
            path: ids.clone(),
            popping: PoppingMode::Uhp,
        };
        assert!(t.validate(&net).is_ok());
        assert_eq!(t.head(), ids[0]);
        assert_eq!(t.tail(), ids[3]);
        assert_eq!(t.interior_len(), 2);
        assert!(t.label_into(1).0 >= 500_000);
    }

    #[test]
    fn rejects_non_adjacent_path() {
        let (net, ids) = line4();
        let t = TeTunnel {
            id: 1,
            path: vec![ids[0], ids[2]],
            popping: PoppingMode::Php,
        };
        assert!(t.validate(&net).is_err());
    }

    #[test]
    fn rejects_loops_and_short_paths() {
        let (net, ids) = line4();
        let t = TeTunnel {
            id: 2,
            path: vec![ids[0]],
            popping: PoppingMode::Php,
        };
        assert!(t.validate(&net).is_err());
        let t = TeTunnel {
            id: 3,
            path: vec![ids[0], ids[1], ids[0]],
            popping: PoppingMode::Php,
        };
        assert!(t.validate(&net).is_err());
    }
}
