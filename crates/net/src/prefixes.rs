//! Per-AS internal prefix tables.
//!
//! Every AS advertises a set of *internal* prefixes through its IGP:
//! member loopbacks (`/32` host routes) and the `/31` subnets of links
//! touching the AS (including its side of eBGP links). The table is the
//! shared vocabulary of the control plane: FIB entries, LDP FECs and
//! LFIB entries all refer to dense *slots* in it.

use crate::addr::{Addr, Prefix};
use crate::ids::{Asn, RouterId};
use crate::net::Network;
use crate::trie::PrefixTrie;
use std::collections::HashMap;

/// The internal prefixes of one AS, with owners and an LPM index.
#[derive(Debug, Clone)]
pub struct AsPrefixes {
    /// The AS.
    pub asn: Asn,
    /// Slot → prefix.
    pub prefixes: Vec<Prefix>,
    /// Slot → member routers owning an address inside the prefix.
    pub owners: Vec<Vec<RouterId>>,
    /// Address → slot, longest-prefix-match.
    pub lpm: PrefixTrie<u32>,
}

impl AsPrefixes {
    /// Collects the internal prefixes of `asn`.
    pub fn build(net: &Network, asn: Asn) -> AsPrefixes {
        let mut prefixes: Vec<Prefix> = Vec::new();
        let mut owners: Vec<Vec<RouterId>> = Vec::new();
        let mut index: HashMap<Prefix, u32> = HashMap::new();
        let mut add = |prefix: Prefix, owner: RouterId| {
            let slot = *index.entry(prefix).or_insert_with(|| {
                prefixes.push(prefix);
                owners.push(Vec::new());
                (prefixes.len() - 1) as u32
            });
            let o = &mut owners[slot as usize];
            if !o.contains(&owner) {
                o.push(owner);
            }
        };
        for &rid in net.as_members(asn) {
            let r = net.router(rid);
            add(r.loopback.host_prefix(), rid);
            for iface in &r.ifaces {
                add(iface.prefix, rid);
            }
        }
        let mut lpm = PrefixTrie::new();
        for (slot, p) in prefixes.iter().enumerate() {
            lpm.insert(*p, slot as u32);
        }
        AsPrefixes {
            asn,
            prefixes,
            owners,
            lpm,
        }
    }

    /// The slot whose prefix best matches `addr`, if any.
    pub fn lookup(&self, addr: Addr) -> Option<u32> {
        self.lpm.lookup(addr).map(|(_, &slot)| slot)
    }

    /// The prefix stored at `slot`.
    pub fn prefix(&self, slot: u32) -> Prefix {
        self.prefixes[slot as usize]
    }

    /// The owners of `slot`.
    pub fn owners(&self, slot: u32) -> &[RouterId] {
        &self.owners[slot as usize]
    }

    /// Number of prefixes.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// True when the AS has no prefixes (no members).
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{LinkOpts, NetworkBuilder};
    use crate::router::RouterConfig;
    use crate::vendor::Vendor;

    fn line3() -> (Network, [RouterId; 3]) {
        let mut b = NetworkBuilder::new();
        let cfg = RouterConfig::ip_router(Vendor::CiscoIos);
        let x = b.add_router("x", Asn(1), cfg.clone());
        let y = b.add_router("y", Asn(1), cfg.clone());
        let z = b.add_router("z", Asn(2), cfg);
        b.link(x, y, LinkOpts::default());
        b.link(y, z, LinkOpts::default());
        (b.build().unwrap(), [x, y, z])
    }

    #[test]
    fn collects_loopbacks_and_links() {
        let (net, [x, y, _]) = line3();
        let ap = AsPrefixes::build(&net, Asn(1));
        // 2 loopbacks + 1 intra link + 1 inter-AS link subnet.
        assert_eq!(ap.len(), 4);
        let lo_x = net.router(x).loopback.host_prefix();
        let slot = ap.lookup(net.router(x).loopback).unwrap();
        assert_eq!(ap.prefix(slot), lo_x);
        assert_eq!(ap.owners(slot), &[x]);
        // The intra-AS /31 has both endpoints as owners.
        let link_addr = net.router(x).ifaces[0].addr;
        let slot = ap.lookup(link_addr).unwrap();
        let mut o = ap.owners(slot).to_vec();
        o.sort();
        assert_eq!(o, vec![x, y]);
    }

    #[test]
    fn inter_as_subnet_owned_by_local_border_only() {
        let (net, [_, y, z]) = line3();
        let ap1 = AsPrefixes::build(&net, Asn(1));
        let inter_prefix = net.router(z).ifaces[0].prefix;
        let slot = ap1
            .lookup(inter_prefix.nth(0))
            .expect("inter-AS subnet visible in AS1");
        assert_eq!(ap1.prefix(slot), inter_prefix);
        assert_eq!(ap1.owners(slot), &[y]);
        // And from AS2's point of view, owned by z only.
        let ap2 = AsPrefixes::build(&net, Asn(2));
        let slot = ap2.lookup(inter_prefix.nth(1)).unwrap();
        assert_eq!(ap2.owners(slot), &[z]);
    }

    #[test]
    fn lookup_misses_foreign_space() {
        let (net, _) = line3();
        let ap = AsPrefixes::build(&net, Asn(1));
        assert!(ap.lookup(Addr::new(8, 8, 8, 8)).is_none());
        assert!(!ap.is_empty());
    }
}
