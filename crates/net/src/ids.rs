//! Small typed identifiers used across the simulator.

use std::fmt;

/// Identifies a router inside a [`crate::net::Network`] (dense index).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RouterId(pub u32);

impl RouterId {
    /// The dense index as `usize` for vector indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// An Autonomous System number.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Identifies a link inside a [`crate::net::Network`] (dense index).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The dense index as `usize` for vector indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interface slot on a specific router.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct PortRef {
    /// The router owning the interface.
    pub router: RouterId,
    /// Index into that router's interface table.
    pub iface: u32,
}

impl fmt::Display for PortRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.if{}", self.router, self.iface)
    }
}

/// An MPLS label value (20-bit space; 0–15 are reserved).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Label(pub u32);

impl Label {
    /// "IPv4 Explicit NULL" (RFC 3032): egress pops it (UHP).
    pub const EXPLICIT_NULL: Label = Label(0);
    /// "Implicit NULL" (RFC 3032): never on the wire; advertising it
    /// requests Penultimate Hop Popping.
    pub const IMPLICIT_NULL: Label = Label(3);
    /// First label value usable for ordinary bindings.
    pub const FIRST_DYNAMIC: Label = Label(16);

    /// True for the two NULL labels with special forwarding semantics.
    pub const fn is_reserved(self) -> bool {
        self.0 < 16
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(RouterId(7).to_string(), "R7");
        assert_eq!(Asn(3320).to_string(), "AS3320");
        assert_eq!(Label(19).to_string(), "L19");
        assert_eq!(
            PortRef {
                router: RouterId(2),
                iface: 1
            }
            .to_string(),
            "R2.if1"
        );
    }

    #[test]
    fn reserved_labels() {
        assert!(Label::EXPLICIT_NULL.is_reserved());
        assert!(Label::IMPLICIT_NULL.is_reserved());
        assert!(!Label::FIRST_DYNAMIC.is_reserved());
        assert!(!Label(100).is_reserved());
    }
}
