//! The forwarding engine: moves packets through the network applying
//! vendor-accurate IP/MPLS TTL semantics.
//!
//! The TTL rules implemented here reproduce, bit for bit, the emulation
//! outputs of the paper's Fig. 4 (all four configurations, including the
//! bracketed return TTLs):
//!
//! * an originating router does **not** decrement its own packets;
//! * a forwarding router decrements the IP-TTL only for **unlabeled**
//!   packets; expiry (decrement to 0) elicits a time-exceeded whose
//!   source is the **incoming interface** address;
//! * the ingress push sets LSE-TTL to the (already decremented) IP-TTL
//!   when `ttl-propagate` is on, and to 255 otherwise (RFC 3443);
//! * LSRs decrement only the top LSE-TTL; on expiry the time-exceeded
//!   reply is first label-switched **to the end of the LSP** (with a
//!   fresh 255 LSE-TTL) unless the generator is the penultimate hop;
//! * popping the last label (PHP at the penultimate hop, or explicit
//!   null at a UHP egress) applies `IP-TTL ← min(IP-TTL, LSE-TTL)` and
//!   forwards **without** an IP decrement;
//! * a UHP egress receiving explicit null decrements the LSE-TTL (so
//!   visible UHP tunnels still reveal the egress) before popping.
//!
//! # Execution model
//!
//! A probe's life — forward leg, ICMP generation, return leg — is a
//! resumable state machine ([`Flight`]): one *step* advances a packet
//! by exactly one router visit. The scalar [`Engine::send`] drives a
//! single flight to completion; [`Engine::send_batch`] drives up to
//! [`crate::batch::BATCH_WIDTH`] flights together, mirroring their hot
//! fields into cache-line-aligned struct-of-arrays lanes each sweep so
//! TTL classification runs over contiguous arrays and the next routers'
//! dense-table rows are touched before the per-lane advance (see
//! [`crate::batch`]). All per-hop state the machine consults lives in
//! the [`ControlPlane`]'s dense walk tables — flag bytes, vendor TTLs,
//! flat interface records, and a paged address→owner index — so the
//! steady-state walk performs no hashing and never dereferences the
//! heavyweight `Router` objects.

use crate::addr::Addr;
use crate::batch::{BatchLanes, BATCH_WIDTH};
use crate::control::{walk, ControlPlane, ExtRoute, LabelAction, LfibEntry};
use crate::fault::FaultPlan;
use crate::ids::{Label, RouterId};
use crate::net::Network;
use crate::packet::{IcmpPayload, LabelStack, Lse, Packet};
use crate::state::ProbeState;
use crate::substrate::SubstrateRef;
use rand::Rng;

/// Engine options.
#[derive(Clone, Debug)]
pub struct EngineOpts {
    /// Hard cap on router visits per packet (loop guard).
    pub max_visits: usize,
    /// Record ground-truth router paths (`fwd_path`/`ret_path` on
    /// [`ReplyInfo`]). On by default for validation; measurement
    /// sessions turn it off, which makes the steady-state packet walk
    /// allocation-free (see [`EngineStats::heap_allocs`]).
    pub record_paths: bool,
}

impl Default for EngineOpts {
    fn default() -> EngineOpts {
        EngineOpts {
            max_visits: 255,
            record_paths: true,
        }
    }
}

/// Counters kept by the engine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Probes injected via [`Engine::send`].
    pub probes: u64,
    /// Wire crossings (a proxy for simulated traffic volume).
    pub crossings: u64,
    /// Replies delivered back to the prober.
    pub replies: u64,
    /// Probes lost for any reason.
    pub lost: u64,
    /// Heap allocations the engine performed on behalf of packets —
    /// charged once per path-recording buffer. Packets, label stacks
    /// and ICMP payloads are inline `Copy` data, so with
    /// [`EngineOpts::record_paths`] off this stays at zero: the
    /// steady-state walk never touches the heap.
    pub heap_allocs: u64,
}

impl EngineStats {
    /// Accumulates another engine's counters into this one. Every field
    /// is a plain sum, so aggregating a fleet of per-worker engines is
    /// order-independent — the campaign relies on that to report one
    /// deterministic total at any job count.
    pub fn merge(&mut self, other: &EngineStats) {
        self.probes += other.probes;
        self.crossings += other.crossings;
        self.replies += other.replies;
        self.lost += other.lost;
        self.heap_allocs += other.heap_allocs;
    }
}

/// The kind of reply observed by the prober.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ReplyKind {
    /// ICMP echo-reply (probe reached its destination).
    EchoReply,
    /// ICMP time-exceeded.
    TimeExceeded,
    /// ICMP destination-unreachable.
    DestUnreachable,
}

/// Everything the prober observes about a reply, plus simulator ground
/// truth for validation (`fwd_path`/`ret_path` — never consulted by the
/// measurement techniques).
#[derive(Clone, Debug)]
pub struct ReplyInfo {
    /// Reply kind.
    pub kind: ReplyKind,
    /// The reply's IP source address (for time-exceeded: the incoming
    /// interface of the replying router).
    pub from: Addr,
    /// The reply's IP-TTL as received by the prober — the bracketed
    /// value of the paper's Fig. 4, input to FRPLA and RTLA.
    pub ip_ttl: u8,
    /// RFC 4950 quoted label stack, if any.
    pub mpls_ext: LabelStack,
    /// Round-trip time in milliseconds.
    pub rtt_ms: f64,
    /// Ground truth: the router that generated the reply. Unlike the
    /// path vectors this is always recorded — it is a single `Copy` id.
    pub replier: RouterId,
    /// Ground truth: routers the probe traversed (starting at the
    /// origin, ending at the replying/delivering router). Empty when
    /// [`EngineOpts::record_paths`] is off.
    pub fwd_path: Vec<RouterId>,
    /// Ground truth: routers the reply traversed. Empty when
    /// [`EngineOpts::record_paths`] is off.
    pub ret_path: Vec<RouterId>,
}

/// Why a probe produced no reply.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// Random loss on a link.
    Loss,
    /// No route towards the destination (and no unreachable generated).
    NoRoute,
    /// The router at the expiry point is configured silent, or is
    /// persistently silent under the fault plan.
    Silent,
    /// ICMP generation suppressed (memoryless rate limiting).
    IcmpSuppressed,
    /// ICMP generation denied by a per-router token-bucket rate
    /// limiter ([`crate::fault::RateLimit`]).
    RateLimited,
    /// The link was down under the fault plan's flap schedule.
    LinkDown,
    /// Loop guard tripped.
    Loop,
    /// A label arrived at a router without a matching LFIB entry.
    BadLabel,
    /// A reply itself expired or failed to come back.
    ReplyLost,
}

/// Outcome of a probe.
#[derive(Clone, Debug)]
pub enum SendOutcome {
    /// A reply came back to the prober.
    Reply(ReplyInfo),
    /// Nothing came back.
    Lost {
        /// Where the probe (or its reply) died, if known.
        at: Option<RouterId>,
        /// Why.
        reason: DropReason,
    },
}

impl SendOutcome {
    /// The reply, if any.
    pub fn reply(&self) -> Option<&ReplyInfo> {
        match self {
            SendOutcome::Reply(r) => Some(r),
            SendOutcome::Lost { .. } => None,
        }
    }
}

enum Leg {
    Delivered {
        at: RouterId,
        pkt: Packet,
        path: Vec<RouterId>,
    },
    Reply {
        reply: Packet,
        at: RouterId,
        /// `Some((iface, next))` when the reply must be injected
        /// directly on the wire (label-switched to the tunnel end).
        first_hop: Option<(u32, RouterId)>,
        path: Vec<RouterId>,
    },
    Dropped {
        at: RouterId,
        reason: DropReason,
        #[allow(dead_code)] // kept for debugging dumps
        path: Vec<RouterId>,
    },
}

struct NextHop {
    iface: u32,
    next: RouterId,
    push: Option<Label>,
}

/// Per-leg destination route cache. A packet's destination is fixed
/// for the whole leg, so everything derived from it is paid once per
/// leg — not at every hop. Resolution is pure dense-table arithmetic:
/// the owner comes from the [`ControlPlane`]'s paged address→owner
/// index (two array loads, no hashing), and the one O(degree) scan the
/// engine used to run *per hop* — "is the destination my directly
/// connected neighbor's interface?" — collapses to a precomputed
/// `(router, iface, next)` triple: a non-loopback destination address
/// sits on exactly one link, so the only router whose connected scan
/// can ever succeed is that link's far side.
struct DstCache {
    resolved: bool,
    owner: Option<RouterId>,
    /// The owner's raw AS index (`u32::MAX` = none) for branch-free
    /// same-AS comparisons against [`ControlPlane::router_as_raw`].
    dst_as_raw: u32,
    dst_idx: Option<usize>,
    /// The destination's FIB slot inside its own AS table — the only
    /// table `decide` ever matches it against.
    slot: Option<u32>,
    /// `(router, iface, next)` of the unique connected hop that
    /// delivers to a non-loopback destination; `None` for loopbacks.
    conn: Option<(RouterId, u32, RouterId)>,
}

impl DstCache {
    fn new() -> DstCache {
        DstCache {
            resolved: false,
            owner: None,
            dst_as_raw: u32::MAX,
            dst_idx: None,
            slot: None,
            conn: None,
        }
    }

    /// The router owning `dst`, resolved once per leg via the dense
    /// owner index. Also fixes the destination's AS, its own-AS FIB
    /// slot, and the unique connected hop for non-loopback addresses.
    /// The hot path is the memoized hit — one predictable branch and a
    /// field read per visit; the once-per-leg fill stays out of line.
    #[inline]
    fn resolve(&mut self, sub: SubstrateRef<'_>, dst: Addr) -> Option<RouterId> {
        if !self.resolved {
            self.fill(sub, dst);
        }
        self.owner
    }

    #[inline(never)]
    fn fill(&mut self, sub: SubstrateRef<'_>, dst: Addr) {
        self.resolved = true;
        self.owner = sub.cp.owner_of(dst);
        if let Some(o) = self.owner {
            self.dst_as_raw = sub.cp.router_as_raw(o);
            self.dst_idx = sub.cp.router_as_index(o);
            if sub.cp.loopback_addr(o) == dst {
                self.slot = sub.cp.loopback_slot(o);
            } else {
                let ifaces = sub.cp.walk_ifaces(o);
                if let Some(idx) = ifaces.iter().position(|i| i.addr == dst) {
                    self.slot = sub.cp.iface_slot(o, idx);
                    // The far side of the destination's link is the
                    // one router that can deliver it as a connected
                    // neighbor (the builder assigns every address
                    // exactly once).
                    let link = sub.net.link(ifaces[idx].link);
                    let far = if link.a.router == o { link.b } else { link.a };
                    self.conn = Some((far.router, far.iface, o));
                }
            }
        }
    }
}

/// One leg of a flight: a packet in motion plus everything the per-hop
/// step needs to resume where it left off.
pub(crate) struct LegFlight {
    pkt: Packet,
    cur: RouterId,
    in_iface_addr: Option<Addr>,
    via_wire: bool,
    visits: usize,
    dst: DstCache,
    path: Vec<RouterId>,
}

impl LegFlight {
    fn drop_here(&mut self, reason: DropReason) -> Leg {
        Leg::Dropped {
            at: self.cur,
            reason,
            path: std::mem::take(&mut self.path),
        }
    }

    /// Lane mirror of this leg's hot fields, for the SoA batch driver:
    /// `(ip_ttl, lse_ttl, label, cur, labeled)`.
    pub(crate) fn lane(&self) -> (u8, u8, u32, u32, bool) {
        let (label, lse_ttl) = match self.pkt.stack.top() {
            Some(t) => (t.label.0, t.ttl),
            None => (u32::MAX, u8::MAX),
        };
        let labeled = self.via_wire && self.pkt.is_labeled();
        (self.pkt.ip_ttl, lse_ttl, label, self.cur.0, labeled)
    }
}

/// Which leg a flight is on.
enum Phase {
    /// Forward leg: the probe travelling towards its destination.
    Fwd,
    /// Return leg: an ICMP reply travelling back to the prober.
    Ret { kind: ReplyKind, from: Addr },
}

/// A probe in flight: the resumable state machine behind both the
/// scalar walk and the batched walk. One [`Engine::step_flight`] call
/// advances it by exactly one router visit.
pub(crate) struct Flight {
    leg: LegFlight,
    phase: Phase,
    probe_src: Addr,
    replier: RouterId,
    fwd_path: Vec<RouterId>,
}

impl Flight {
    /// Lane mirror of the flight's hot fields (see [`LegFlight::lane`]).
    pub(crate) fn lane(&self) -> (u8, u8, u32, u32, bool) {
        self.leg.lane()
    }
}

/// The forwarding engine: an immutable [`SubstrateRef`] (shared
/// topology + routing state) plus an owned, mutable [`ProbeState`]
/// (fault RNG stream and counters). The split is what lets campaign
/// workers run engines concurrently over one substrate with no locks.
pub struct Engine<'a> {
    sub: SubstrateRef<'a>,
    opts: EngineOpts,
    /// The mutable half: fault plan, RNG stream, counters.
    pub state: ProbeState,
}

impl<'a> Engine<'a> {
    /// A deterministic, fault-free engine.
    pub fn new(net: &'a Network, cp: &'a ControlPlane) -> Engine<'a> {
        Engine::with_faults(net, cp, FaultPlan::none(), 0)
    }

    /// An engine with fault injection, seeded for reproducibility.
    pub fn with_faults(
        net: &'a Network,
        cp: &'a ControlPlane,
        faults: FaultPlan,
        seed: u64,
    ) -> Engine<'a> {
        Engine::over(SubstrateRef::new(net, cp), ProbeState::new(faults, seed))
    }

    /// An engine over a substrate handle with externally-built state —
    /// the constructor campaign workers use.
    pub fn over(sub: SubstrateRef<'a>, state: ProbeState) -> Engine<'a> {
        Engine {
            sub,
            opts: EngineOpts::default(),
            state,
        }
    }

    /// Turns ground-truth path recording on or off (see
    /// [`EngineOpts::record_paths`]).
    pub fn set_record_paths(&mut self, record: bool) {
        self.opts.record_paths = record;
    }

    /// The network this engine forwards over.
    pub fn network(&self) -> &'a Network {
        self.sub.net
    }

    /// The control plane in use.
    pub fn control_plane(&self) -> &'a ControlPlane {
        self.sub.cp
    }

    /// The substrate handle.
    pub fn substrate(&self) -> SubstrateRef<'a> {
        self.sub
    }

    /// The traffic counters.
    pub fn stats(&self) -> &EngineStats {
        &self.state.stats
    }

    /// Advances the worker's virtual clock by `ms` — retry backoff in
    /// virtual time. Rate-limiter buckets refill and flap schedules
    /// progress against this clock, so backing off genuinely trades
    /// probing time for reply budget.
    pub fn wait(&mut self, ms: f64) {
        self.state.wait(ms);
    }

    /// Sends `pkt` from `origin` and runs the simulation to completion,
    /// including the reply's return trip.
    pub fn send(&mut self, origin: RouterId, pkt: Packet) -> SendOutcome {
        let mut fl = self.launch(origin, pkt);
        loop {
            if let Some(out) = self.step_flight(&mut fl) {
                return out;
            }
        }
    }

    /// Sends every packet in `pkts` from `origin`, appending one
    /// outcome per packet (in input order) to `out`.
    ///
    /// Under a batch-safe fault plan ([`FaultPlan::batch_safe`]) the
    /// packets advance together, up to [`BATCH_WIDTH`] at a time, over
    /// struct-of-arrays lanes: each sweep mirrors the live flights' hot
    /// fields (IP-TTL, top LSE-TTL/label, current router, status) into
    /// cache-line-aligned arrays, classifies expiring lanes with
    /// straight-line array arithmetic, touches the next routers' dense
    /// flag rows ahead of the advance, and then steps every live flight
    /// one router visit — expiring lanes first, so ICMP generators
    /// leave the forwarding sweep early. Batch-safe plans draw no RNG
    /// and consult no token bucket or flap schedule, so per-packet
    /// outcomes and all [`EngineStats`] totals are byte-identical to
    /// the scalar walk regardless of interleaving. Order-sensitive
    /// plans fall back to exact sequential scalar sends — identical by
    /// construction.
    ///
    /// The batch driver itself never allocates: lanes and flight slots
    /// live on the stack, so with path recording off `heap_allocs`
    /// stays at zero.
    pub fn send_batch(&mut self, origin: RouterId, pkts: &[Packet], out: &mut Vec<SendOutcome>) {
        if !self.state.faults.batch_safe() {
            for &p in pkts {
                let o = self.send(origin, p);
                out.push(o);
            }
            return;
        }
        let mut lanes = BatchLanes::new();
        // Flight and outcome slots are hoisted out of the chunk loop:
        // every chunk drains back to all-`None`, so the arrays are
        // initialized once per call, not re-zeroed per chunk.
        let mut flights: [Option<Flight>; BATCH_WIDTH] = std::array::from_fn(|_| None);
        let mut results: [Option<SendOutcome>; BATCH_WIDTH] = std::array::from_fn(|_| None);
        // Dense list of live lane indices — sweeps iterate exactly the
        // live lanes instead of scanning the full width as flights
        // drain out.
        let mut live_idx = [0u8; BATCH_WIDTH];
        for chunk in pkts.chunks(BATCH_WIDTH) {
            for (i, &p) in chunk.iter().enumerate() {
                let fl = self.launch(origin, p);
                lanes.load(i, fl.lane());
                flights[i] = Some(fl);
                live_idx[i] = i as u8;
            }
            let mut n_live = chunk.len();
            while n_live > 0 {
                lanes.classify(&live_idx[..n_live]);
                lanes.gather_flags(self.sub.cp, &live_idx[..n_live]);
                // Expiring lanes step first (they convert to return
                // legs and often leave the sweep); each lane steps in
                // exactly one of the two passes. Completed lanes are
                // swap-removed from the live list; lanes that stay
                // live reload their mirror for the next sweep.
                for pass in [1u8, 0u8] {
                    let mut j = 0;
                    while j < n_live {
                        let i = live_idx[j] as usize;
                        if !lanes.in_pass(i, pass) {
                            j += 1;
                            continue;
                        }
                        let Some(fl) = flights[i].as_mut() else {
                            j += 1;
                            continue;
                        };
                        match self.step_flight(fl) {
                            Some(o) => {
                                results[i] = Some(o);
                                flights[i] = None;
                                lanes.clear(i);
                                n_live -= 1;
                                live_idx[j] = live_idx[n_live];
                            }
                            None => {
                                lanes.load(i, fl.lane());
                                j += 1;
                            }
                        }
                    }
                }
            }
            for r in results.iter_mut().take(chunk.len()) {
                if let Some(o) = r.take() {
                    out.push(o);
                }
            }
        }
    }

    /// Starts a probe's flight: counts it, ticks the pacing clock, and
    /// places the packet at its origin ready for the first step.
    pub(crate) fn launch(&mut self, origin: RouterId, pkt: Packet) -> Flight {
        assert!(pkt.ip_ttl >= 1, "probes need a TTL of at least 1");
        self.state.stats.probes += 1;
        self.state.tick_probe();
        let probe_src = pkt.src;
        let leg = self.leg_new(origin, pkt);
        Flight {
            leg,
            phase: Phase::Fwd,
            probe_src,
            replier: origin,
            fwd_path: Vec::new(),
        }
    }

    /// Advances `fl` by one router visit; `Some` when the flight
    /// completed on this step.
    pub(crate) fn step_flight(&mut self, fl: &mut Flight) -> Option<SendOutcome> {
        let end = self.leg_step(&mut fl.leg)?;
        match fl.phase {
            Phase::Fwd => self.fwd_transition(fl, end).err(),
            Phase::Ret { kind, from } => Some(self.ret_outcome(fl, kind, from, end)),
        }
    }

    /// Processes the end of the forward leg: either transitions the
    /// flight onto its return leg or finishes it with a loss.
    fn fwd_transition(&mut self, fl: &mut Flight, end: Leg) -> Result<(), SendOutcome> {
        match end {
            Leg::Delivered { at, pkt, path } => {
                // Probe reached its destination: echo requests elicit an
                // echo-reply; anything else just sinks.
                let IcmpPayload::EchoRequest { id, seq } = pkt.payload else {
                    return Err(self.lost(Some(at), DropReason::ReplyLost));
                };
                let flags = self.sub.cp.router_flags(at);
                if flags & walk::REPLIES == 0
                    || (flags & walk::IS_HOST == 0 && self.state.faults.is_persistently_silent(at))
                {
                    return Err(self.lost(Some(at), DropReason::Silent));
                }
                if self.hides_egress(at, pkt.dst) {
                    return Err(self.lost(Some(at), DropReason::Silent));
                }
                if !self.state.allow_er(at, flags & walk::MPLS != 0) {
                    return Err(self.lost(Some(at), DropReason::RateLimited));
                }
                let reply = Packet {
                    src: pkt.dst,
                    dst: pkt.src,
                    ip_ttl: self.reply_init_ttl(at, 1, probe_key(&pkt)),
                    flow: pkt.flow,
                    payload: IcmpPayload::EchoReply { id, seq },
                    stack: LabelStack::empty(),
                    elapsed_ms: pkt.elapsed_ms,
                };
                self.begin_return(fl, ReplyKind::EchoReply, at, reply, None, path)
            }
            Leg::Reply {
                reply,
                at,
                first_hop,
                path,
            } => {
                let kind = match reply.payload {
                    IcmpPayload::TimeExceeded { .. } => ReplyKind::TimeExceeded,
                    IcmpPayload::DestUnreachable { .. } => ReplyKind::DestUnreachable,
                    // Error legs always carry ICMP errors; drop anything
                    // else rather than crash the probing session.
                    _ => return Err(self.lost(Some(at), DropReason::ReplyLost)),
                };
                self.begin_return(fl, kind, at, reply, first_hop, path)
            }
            Leg::Dropped { at, reason, .. } => Err(self.lost(Some(at), reason)),
        }
    }

    /// Launches the return leg at `at`, recording the forward path and
    /// the replying router on the flight.
    fn begin_return(
        &mut self,
        fl: &mut Flight,
        kind: ReplyKind,
        at: RouterId,
        reply: Packet,
        first_hop: Option<(u32, RouterId)>,
        fwd_path: Vec<RouterId>,
    ) -> Result<(), SendOutcome> {
        let from = reply.src;
        fl.fwd_path = fwd_path;
        fl.replier = at;
        match self.leg_launch(at, reply, first_hop) {
            Ok(leg) => {
                fl.leg = leg;
                fl.phase = Phase::Ret { kind, from };
                Ok(())
            }
            Err(Leg::Dropped {
                at: died, reason, ..
            }) => Err(self.lost(Some(died), reason)),
            Err(_) => Err(self.lost(Some(at), DropReason::ReplyLost)),
        }
    }

    /// Processes the end of the return leg into the probe's outcome.
    fn ret_outcome(
        &mut self,
        fl: &mut Flight,
        kind: ReplyKind,
        from: Addr,
        end: Leg,
    ) -> SendOutcome {
        let out = match end {
            Leg::Delivered {
                at: end_at,
                pkt,
                path,
            } => {
                if pkt.dst != fl.probe_src || self.sub.cp.owner_of(fl.probe_src) != Some(end_at) {
                    self.lost(Some(end_at), DropReason::ReplyLost)
                } else {
                    // The quoted stack is inline `Copy` data — no clone.
                    let mpls_ext = match pkt.payload {
                        IcmpPayload::TimeExceeded { mpls_ext, .. } => mpls_ext,
                        _ => LabelStack::empty(),
                    };
                    SendOutcome::Reply(ReplyInfo {
                        kind,
                        from,
                        ip_ttl: pkt.ip_ttl,
                        mpls_ext,
                        rtt_ms: pkt.elapsed_ms,
                        replier: fl.replier,
                        fwd_path: std::mem::take(&mut fl.fwd_path),
                        ret_path: path,
                    })
                }
            }
            Leg::Reply { at: died, .. } => self.lost(Some(died), DropReason::ReplyLost),
            Leg::Dropped {
                at: died, reason, ..
            } => self.lost(Some(died), reason),
        };
        if matches!(out, SendOutcome::Reply(_)) {
            self.state.stats.replies += 1;
        }
        out
    }

    fn lost(&mut self, at: Option<RouterId>, reason: DropReason) -> SendOutcome {
        self.state.stats.lost += 1;
        SendOutcome::Lost { at, reason }
    }

    /// A fresh leg with the packet sitting at `origin`.
    fn leg_new(&mut self, origin: RouterId, pkt: Packet) -> LegFlight {
        // `Vec::new()` does not allocate; with recording off the path
        // buffer never grows, so the whole walk stays heap-free.
        let mut f = LegFlight {
            pkt,
            cur: origin,
            in_iface_addr: None,
            via_wire: false,
            visits: 0,
            dst: DstCache::new(),
            path: Vec::new(),
        };
        if self.opts.record_paths {
            self.state.stats.heap_allocs += 1;
            f.path.reserve(8);
            f.path.push(origin);
        }
        f
    }

    /// A fresh leg, optionally injected directly on the wire (`inject`
    /// skips the origin's forwarding decision — label-switched replies).
    // A large `Err` is deliberate here: `Leg` stays inline `Copy`-ish
    // stack data so the heap-free walk never boxes on the error path.
    #[allow(clippy::result_large_err)]
    fn leg_launch(
        &mut self,
        origin: RouterId,
        pkt: Packet,
        inject: Option<(u32, RouterId)>,
    ) -> Result<LegFlight, Leg> {
        let mut f = self.leg_new(origin, pkt);
        if let Some((iface, next)) = inject {
            match self.cross(origin, iface, &mut f.pkt) {
                Ok(arrival) => {
                    f.cur = next;
                    f.in_iface_addr = Some(arrival);
                    f.via_wire = true;
                    if self.opts.record_paths {
                        f.path.push(next);
                    }
                }
                Err(reason) => return Err(f.drop_here(reason)),
            }
        }
        Ok(f)
    }

    /// One router visit: moves the leg's packet forward by one hop, or
    /// ends the leg (`Some`) with delivery, an ICMP reply, or a drop.
    fn leg_step(&mut self, f: &mut LegFlight) -> Option<Leg> {
        f.visits += 1;
        if f.visits > self.opts.max_visits {
            return Some(f.drop_here(DropReason::Loop));
        }
        let cur = f.cur;
        let flags = self.sub.cp.router_flags(cur);
        let mut skip_decrement = false;

        // --- MPLS processing ---------------------------------------
        if f.via_wire && f.pkt.is_labeled() {
            // A labeled packet with an empty stack is malformed;
            // treat it as a bad label instead of panicking.
            let Some(&top) = f.pkt.stack.top() else {
                return Some(f.drop_here(DropReason::BadLabel));
            };
            if top.label == Label::EXPLICIT_NULL {
                // UHP egress, RFC 3443 short-pipe semantics (what
                // reproduces the paper's Fig. 4d): the LSE-TTL is
                // discarded — no `min` copy — and the egress charges
                // the tunnel's single IP decrement *without* an
                // expiry check (a 0-TTL packet is still handed to
                // the final hop, where it is delivered or expires).
                f.pkt.stack.pop();
                if !f.pkt.stack.is_empty() {
                    // Nested stacks are outside our LDP model.
                    return Some(f.drop_here(DropReason::BadLabel));
                }
                if self.sub.cp.owner_of(f.pkt.dst) != Some(cur) {
                    f.pkt.ip_ttl = f.pkt.ip_ttl.saturating_sub(1);
                }
                skip_decrement = true;
                // fall through to IP processing
            } else {
                let Some(entry) = self.sub.cp.lfib_entry(cur, top.label) else {
                    return Some(f.drop_here(DropReason::BadLabel));
                };
                let entry: &LfibEntry = entry;
                if top.ttl <= 1 {
                    // LSE expiry: the reply is label-switched to the
                    // end of the LSP unless we are the penultimate
                    // hop (whose action pops the last label).
                    let hop = pick(&entry.nexthops, f.pkt.flow, self.ecmp_salt(cur, &f.pkt));
                    let downstream = match hop.action {
                        LabelAction::Swap(l) => Some((l, hop.iface, hop.next)),
                        LabelAction::SwapExplicitNull => {
                            Some((Label::EXPLICIT_NULL, hop.iface, hop.next))
                        }
                        LabelAction::Pop => None,
                    };
                    let path = std::mem::take(&mut f.path);
                    return Some(self.icmp_expired(cur, &f.pkt, f.in_iface_addr, downstream, path));
                }
                let hop = *pick(&entry.nexthops, f.pkt.flow, self.ecmp_salt(cur, &f.pkt));
                match hop.action {
                    LabelAction::Swap(l) => {
                        if let Some(lse) = f.pkt.stack.top_mut() {
                            lse.ttl -= 1;
                            lse.label = l;
                        }
                    }
                    LabelAction::SwapExplicitNull => {
                        if let Some(lse) = f.pkt.stack.top_mut() {
                            lse.ttl -= 1;
                            lse.label = Label::EXPLICIT_NULL;
                        }
                    }
                    LabelAction::Pop => {
                        if let Some(lse) = f.pkt.stack.pop() {
                            if f.pkt.stack.is_empty() && flags & walk::MIN_ON_EXIT != 0 {
                                f.pkt.ip_ttl = f.pkt.ip_ttl.min(lse.ttl.saturating_sub(1));
                            }
                        }
                    }
                }
                return match self.cross(cur, hop.iface, &mut f.pkt) {
                    Ok(arrival) => {
                        f.cur = hop.next;
                        f.in_iface_addr = Some(arrival);
                        f.via_wire = true;
                        if self.opts.record_paths {
                            f.path.push(f.cur);
                        }
                        None
                    }
                    Err(reason) => Some(f.drop_here(reason)),
                };
            }
        }

        // --- IP processing ------------------------------------------
        // Addresses are owned by exactly one router, so the cached
        // owner *is* the "does this router own the destination?" check,
        // without the per-hop interface scan.
        if f.dst.resolve(self.sub, f.pkt.dst) == Some(cur) {
            return Some(Leg::Delivered {
                at: cur,
                pkt: f.pkt,
                path: std::mem::take(&mut f.path),
            });
        }
        if f.via_wire && !skip_decrement {
            if f.pkt.ip_ttl <= 1 {
                let path = std::mem::take(&mut f.path);
                return Some(self.icmp_expired(cur, &f.pkt, f.in_iface_addr, None, path));
            }
            f.pkt.ip_ttl -= 1;
        }
        let nh = match self.decide(cur, &f.pkt, &mut f.dst) {
            Some(nh) => nh,
            None => {
                let path = std::mem::take(&mut f.path);
                return Some(self.icmp_unreachable(cur, &f.pkt, f.in_iface_addr, path));
            }
        };
        if let Some(label) = nh.push {
            debug_assert!(f.pkt.stack.is_empty());
            let lse_ttl = if flags & walk::TTL_PROPAGATE != 0 {
                f.pkt.ip_ttl
            } else {
                255
            };
            f.pkt.stack.push(Lse::new(label, lse_ttl));
        }
        match self.cross(cur, nh.iface, &mut f.pkt) {
            Ok(arrival) => {
                f.cur = nh.next;
                f.in_iface_addr = Some(arrival);
                f.via_wire = true;
                if self.opts.record_paths {
                    f.path.push(f.cur);
                }
                None
            }
            Err(reason) => Some(f.drop_here(reason)),
        }
    }

    /// Crosses the wire out of `router`'s `iface`; returns the arrival
    /// interface address on the peer. Reads only the control plane's
    /// flat interface records — link id, delay and the peer's address
    /// are inlined there at plane-build time.
    fn cross(
        &mut self,
        router: RouterId,
        iface: u32,
        pkt: &mut Packet,
    ) -> Result<Addr, DropReason> {
        self.state.stats.crossings += 1;
        let wi = self.sub.cp.walk_ifaces(router)[iface as usize];
        if let Some(fl) = self.state.faults.flaps {
            if fl.is_down(wi.link, self.state.now_ms) {
                return Err(DropReason::LinkDown);
            }
        }
        if self.state.faults.loss > 0.0
            && self.state.rng.get().gen::<f64>() < self.state.faults.loss
        {
            return Err(DropReason::Loss);
        }
        pkt.elapsed_ms += wi.delay_ms;
        if self.state.faults.jitter_ms > 0.0 {
            pkt.elapsed_ms += self.state.rng.get().gen::<f64>() * self.state.faults.jitter_ms;
        }
        Ok(wi.peer_addr)
    }

    /// The initial TTL of an ICMP packet originated at `cur`: the
    /// control plane's honest vendor value, unless the fault plan's
    /// quoted-TTL spoof covers `cur` (`kind`: 0 = time-exceeded /
    /// unreachable, 1 = echo-reply).
    fn reply_init_ttl(&self, cur: RouterId, kind: u8, key: u64) -> u8 {
        let honest = if kind == 0 {
            self.sub.cp.te_init_ttl(cur)
        } else {
            self.sub.cp.er_init_ttl(cur)
        };
        match self.state.faults.ttl_spoof {
            Some(t) => t.initial_ttl(cur, kind, key, honest),
            None => honest,
        }
    }

    /// The ECMP salt at `cur` for `pkt`: the router id, perturbed per
    /// probe when the fault plan makes `cur` a non-Paris load balancer
    /// (the perturbation is zero for every honest router, so the flow
    /// hash is untouched on honest paths).
    fn ecmp_salt(&self, cur: RouterId, pkt: &Packet) -> u32 {
        match self.state.faults.non_paris {
            Some(n) => cur.0 ^ n.probe_salt(cur, probe_key(pkt)),
            None => cur.0,
        }
    }

    /// Whether `cur`'s AS hides the interior interface `dst` — the
    /// egress-hiding deception. Only router-owned, same-AS, non-loopback
    /// addresses are hidden: host targets and loopback pings stay
    /// honest, so ordinary traceroutes still complete.
    fn hides_egress(&self, cur: RouterId, dst: Addr) -> bool {
        let Some(eh) = self.state.faults.egress_hide else {
            return false;
        };
        let asn = self.sub.cp.router_as_raw(cur);
        if !eh.hides(asn) {
            return false;
        }
        let Some(owner) = self.sub.cp.owner_of(dst) else {
            return false;
        };
        self.sub.cp.router_as_raw(owner) == asn
            && self.sub.cp.router_flags(owner) & walk::IS_HOST == 0
            && self.sub.cp.loopback_addr(owner) != dst
    }

    /// Builds the time-exceeded leg for an expiry at `cur`.
    ///
    /// `downstream` carries the label and wire hop when the reply must
    /// first be label-switched to the end of the LSP.
    fn icmp_expired(
        &mut self,
        cur: RouterId,
        expired: &Packet,
        in_iface_addr: Option<Addr>,
        downstream: Option<(Label, u32, RouterId)>,
        path: Vec<RouterId>,
    ) -> Leg {
        let flags = self.sub.cp.router_flags(cur);
        if expired.payload.is_error() {
            // Never ICMP about ICMP errors.
            return Leg::Dropped {
                at: cur,
                reason: DropReason::ReplyLost,
                path,
            };
        }
        if flags & walk::REPLIES == 0
            || (flags & walk::IS_HOST == 0 && self.state.faults.is_persistently_silent(cur))
        {
            return Leg::Dropped {
                at: cur,
                reason: DropReason::Silent,
                path,
            };
        }
        if self.hides_egress(cur, expired.dst) {
            return Leg::Dropped {
                at: cur,
                reason: DropReason::Silent,
                path,
            };
        }
        if !self.state.allow_te(cur, flags & walk::MPLS != 0) {
            return Leg::Dropped {
                at: cur,
                reason: DropReason::RateLimited,
                path,
            };
        }
        if self.state.faults.icmp_loss > 0.0
            && self.state.rng.get().gen::<f64>() < self.state.faults.icmp_loss
        {
            return Leg::Dropped {
                at: cur,
                reason: DropReason::IcmpSuppressed,
                path,
            };
        }
        let (quoted_id, quoted_seq) = match expired.payload {
            IcmpPayload::EchoRequest { id, seq } => (id, seq),
            _ => (0, 0),
        };
        // RFC 4950 quote: a plain `Copy` of the inline stack.
        let mpls_ext = if flags & walk::RFC4950 != 0 && expired.is_labeled() {
            expired.stack
        } else {
            LabelStack::empty()
        };
        let mut reply = Packet {
            src: in_iface_addr.unwrap_or_else(|| self.sub.cp.loopback_addr(cur)),
            dst: expired.src,
            ip_ttl: self.reply_init_ttl(cur, 0, probe_key(expired)),
            flow: expired.flow,
            payload: IcmpPayload::TimeExceeded {
                quoted_id,
                quoted_seq,
                quoted_dst: expired.dst,
                mpls_ext,
            },
            stack: LabelStack::empty(),
            elapsed_ms: expired.elapsed_ms,
        };
        let first_hop = downstream.map(|(label, iface, next)| {
            reply.stack.push(Lse::new(label, 255));
            (iface, next)
        });
        Leg::Reply {
            reply,
            at: cur,
            first_hop,
            path,
        }
    }

    fn icmp_unreachable(
        &mut self,
        cur: RouterId,
        pkt: &Packet,
        in_iface_addr: Option<Addr>,
        path: Vec<RouterId>,
    ) -> Leg {
        let flags = self.sub.cp.router_flags(cur);
        if pkt.payload.is_error()
            || flags & walk::REPLIES == 0
            || (flags & walk::IS_HOST == 0 && self.state.faults.is_persistently_silent(cur))
        {
            return Leg::Dropped {
                at: cur,
                reason: DropReason::NoRoute,
                path,
            };
        }
        if !self.state.allow_te(cur, flags & walk::MPLS != 0) {
            return Leg::Dropped {
                at: cur,
                reason: DropReason::RateLimited,
                path,
            };
        }
        let (quoted_id, quoted_seq) = match pkt.payload {
            IcmpPayload::EchoRequest { id, seq } => (id, seq),
            _ => (0, 0),
        };
        let reply = Packet {
            src: in_iface_addr.unwrap_or_else(|| self.sub.cp.loopback_addr(cur)),
            dst: pkt.src,
            ip_ttl: self.reply_init_ttl(cur, 0, probe_key(pkt)),
            flow: pkt.flow,
            payload: IcmpPayload::DestUnreachable {
                quoted_id,
                quoted_seq,
            },
            stack: LabelStack::empty(),
            elapsed_ms: pkt.elapsed_ms,
        };
        Leg::Reply {
            reply,
            at: cur,
            first_hop: None,
            path,
        }
    }

    /// The IP forwarding decision at `cur` for `pkt` (stack empty).
    fn decide(&mut self, cur: RouterId, pkt: &Packet, dst: &mut DstCache) -> Option<NextHop> {
        let owner = dst.resolve(self.sub, pkt.dst);
        // Connected /31 neighbor? The one router whose connected scan
        // can succeed was precomputed with the destination (the far
        // side of the destination's link) — an O(1) compare per hop
        // instead of an O(degree) interface scan.
        if let Some((conn_at, iface, next)) = dst.conn {
            if conn_at == cur {
                return Some(NextHop {
                    iface,
                    next,
                    push: None,
                });
            }
        }
        let owner = owner?;
        if dst.dst_as_raw == self.sub.cp.router_as_raw(cur) {
            // RSVP-TE autoroute: destinations owned by a tunnel tail
            // enter the tunnel at its head.
            if let Some((iface, next, push)) = self.sub.cp.te_route(cur, owner) {
                return Some(NextHop { iface, next, push });
            }
            // The destination's slot in its own AS table — which is
            // exactly this AS — resolved once at plane-build time.
            let slot = dst.slot?;
            self.intra_hop(cur, slot, pkt)
        } else {
            let dst_idx = dst.dst_idx?;
            match self.sub.cp.ext_route(cur, dst_idx) {
                ExtRoute::Unreachable => None,
                ExtRoute::Direct { iface } => Some(NextHop {
                    iface,
                    next: self.sub.cp.walk_ifaces(cur)[iface as usize].peer,
                    push: None,
                }),
                ExtRoute::ViaEgress { egress } => {
                    // RSVP-TE autoroute towards the BGP next hop.
                    if let Some((iface, next, push)) = self.sub.cp.te_route(cur, egress) {
                        return Some(NextHop { iface, next, push });
                    }
                    // Otherwise route (and LDP-label-switch) towards
                    // the egress border's loopback; the egress is a
                    // border of this very AS, so its build-time
                    // own-AS slot is the slot to match here.
                    let slot = self.sub.cp.loopback_slot(egress)?;
                    self.intra_hop(cur, slot, pkt)
                }
            }
        }
    }

    fn intra_hop(&self, cur: RouterId, slot: u32, pkt: &Packet) -> Option<NextHop> {
        let entry = self.sub.cp.fib_entry(cur, slot)?;
        let &(iface, next) = pick(entry, pkt.flow, self.ecmp_salt(cur, pkt));
        let push = if self.sub.cp.router_flags(cur) & walk::MPLS != 0 {
            match self.sub.cp.bindings.advertised(next, slot) {
                Some(crate::ldp::LabelValue::Real(l)) => Some(l),
                Some(crate::ldp::LabelValue::ExplicitNull) => Some(Label::EXPLICIT_NULL),
                Some(crate::ldp::LabelValue::ImplicitNull) | None => None,
            }
        } else {
            None
        };
        Some(NextHop { iface, next, push })
    }
}

/// The per-probe identity the deceptive fault hashes key on: the echo
/// `(id, seq)` pair of the probe, or of the probe an ICMP error quotes
/// — so both legs of one probe's flight see the same key.
fn probe_key(pkt: &Packet) -> u64 {
    let (id, seq) = match pkt.payload {
        IcmpPayload::EchoRequest { id, seq } | IcmpPayload::EchoReply { id, seq } => (id, seq),
        IcmpPayload::TimeExceeded {
            quoted_id,
            quoted_seq,
            ..
        }
        | IcmpPayload::DestUnreachable {
            quoted_id,
            quoted_seq,
        } => (quoted_id, quoted_seq),
    };
    (u64::from(id) << 16) | u64::from(seq)
}

/// Deterministic per-flow ECMP choice.
fn pick<T>(options: &[T], flow: u16, salt: u32) -> &T {
    debug_assert!(!options.is_empty());
    if options.len() == 1 {
        return &options[0];
    }
    // FNV-1a over flow and salt.
    let mut h: u32 = 0x811c_9dc5;
    for b in flow.to_le_bytes().into_iter().chain(salt.to_le_bytes()) {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    &options[h as usize % options.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Asn;
    use crate::net::{LinkOpts, Network, NetworkBuilder, RelKind};
    use crate::router::RouterConfig;
    use crate::vendor::Vendor;

    /// The paper's Fig. 2 line: VP - CE1 |AS1| PE1 - P1 - P2 - P3 - PE2
    /// |AS2, MPLS| - CE2 |AS3|, with a host VP and a host target.
    fn fig2(pe_cfg: RouterConfig, p_cfg: RouterConfig) -> (Network, RouterId, Addr) {
        let mut b = NetworkBuilder::new();
        let vp = b.add_router("VP", Asn(1), RouterConfig::host());
        let ce1 = b.add_router("CE1", Asn(1), RouterConfig::ip_router(Vendor::CiscoIos));
        let pe1 = b.add_router("PE1", Asn(2), pe_cfg.clone());
        let p1 = b.add_router("P1", Asn(2), p_cfg.clone());
        let p2 = b.add_router("P2", Asn(2), p_cfg.clone());
        let p3 = b.add_router("P3", Asn(2), p_cfg);
        let pe2 = b.add_router("PE2", Asn(2), pe_cfg);
        let ce2 = b.add_router("CE2", Asn(3), RouterConfig::ip_router(Vendor::CiscoIos));
        for (x, y) in [
            (vp, ce1),
            (ce1, pe1),
            (pe1, p1),
            (p1, p2),
            (p2, p3),
            (p3, pe2),
            (pe2, ce2),
        ] {
            b.link(x, y, LinkOpts::symmetric(10, 1.0));
        }
        b.as_rel(Asn(2), Asn(1), RelKind::ProviderCustomer);
        b.as_rel(Asn(2), Asn(3), RelKind::ProviderCustomer);
        let net = b.build().unwrap();
        let target = net.router_by_name("CE2").unwrap().loopback;
        let vp = net.router_by_name("VP").unwrap().id;
        (net, vp, target)
    }

    fn probe(net: &Network, cp: &ControlPlane, vp: RouterId, dst: Addr, ttl: u8) -> SendOutcome {
        let mut eng = Engine::new(net, cp);
        let src = net.router(vp).loopback;
        eng.send(vp, Packet::echo_request(src, dst, ttl, 1, 1, ttl as u16))
    }

    #[test]
    fn visible_tunnel_reveals_all_hops() {
        // Default config: ttl-propagate on → every LSR replies, with
        // RFC4950 label quotes.
        let cfg = RouterConfig::mpls_router(Vendor::CiscoIos);
        let (net, vp, target) = fig2(cfg.clone(), cfg);
        let cp = ControlPlane::build(&net).unwrap();
        let names: Vec<String> = (1..=7)
            .map(|ttl| {
                let out = probe(&net, &cp, vp, target, ttl);
                let r = out.reply().expect("reply");
                let owner = net.owner(r.from).unwrap();
                net.router(owner).name.clone()
            })
            .collect();
        assert_eq!(names, ["CE1", "PE1", "P1", "P2", "P3", "PE2", "CE2"]);
        // Mid-LSP hops quote their labels.
        let out = probe(&net, &cp, vp, target, 4);
        let r = out.reply().unwrap();
        assert_eq!(r.mpls_ext.len(), 1);
        assert_eq!(r.mpls_ext[0].ttl, 1);
        // Fig 4a return TTLs: P1 247, P2 248, P3 251, PE2 250, CE2 249.
        let ttls: Vec<u8> = (1..=7)
            .map(|ttl| probe(&net, &cp, vp, target, ttl).reply().unwrap().ip_ttl)
            .collect();
        assert_eq!(ttls, [255, 254, 247, 248, 251, 250, 249]);
    }

    #[test]
    fn invisible_tunnel_hides_lsrs() {
        // no-ttl-propagate on the LERs (applied network-wide here, as in
        // the paper's "Backward Recursive" scenario).
        let cfg = RouterConfig::mpls_router(Vendor::CiscoIos).no_ttl_propagate();
        let (net, vp, target) = fig2(cfg.clone(), cfg);
        let cp = ControlPlane::build(&net).unwrap();
        let names: Vec<String> = (1..=4)
            .map(|ttl| {
                let out = probe(&net, &cp, vp, target, ttl);
                let owner = net.owner(out.reply().unwrap().from).unwrap();
                net.router(owner).name.clone()
            })
            .collect();
        // Fig 4b: CE1, PE1, PE2, CE2 — LSRs invisible.
        assert_eq!(names, ["CE1", "PE1", "PE2", "CE2"]);
        // Fig 4b return TTLs: [255, 254, 250, 250].
        let ttls: Vec<u8> = (1..=4)
            .map(|ttl| probe(&net, &cp, vp, target, ttl).reply().unwrap().ip_ttl)
            .collect();
        assert_eq!(ttls, [255, 254, 250, 250]);
    }

    #[test]
    fn totally_invisible_with_uhp() {
        // UHP + no-ttl-propagate: even the egress disappears (Fig 4d).
        let cfg = RouterConfig::mpls_router(Vendor::CiscoIos)
            .no_ttl_propagate()
            .uhp();
        let (net, vp, target) = fig2(cfg.clone(), cfg);
        let cp = ControlPlane::build(&net).unwrap();
        let names: Vec<String> = (1..=3)
            .map(|ttl| {
                let out = probe(&net, &cp, vp, target, ttl);
                let owner = net.owner(out.reply().unwrap().from).unwrap();
                net.router(owner).name.clone()
            })
            .collect();
        assert_eq!(names, ["CE1", "PE1", "CE2"]);
        let ttls: Vec<u8> = (1..=3)
            .map(|ttl| probe(&net, &cp, vp, target, ttl).reply().unwrap().ip_ttl)
            .collect();
        assert_eq!(ttls, [255, 254, 252]);
    }

    #[test]
    fn ping_round_trip_and_rtt() {
        let cfg = RouterConfig::mpls_router(Vendor::CiscoIos);
        let (net, vp, target) = fig2(cfg.clone(), cfg);
        let cp = ControlPlane::build(&net).unwrap();
        let out = probe(&net, &cp, vp, target, 64);
        let r = out.reply().unwrap();
        assert_eq!(r.kind, ReplyKind::EchoReply);
        assert_eq!(r.from, target);
        // 7 links each way at 1 ms.
        assert!((r.rtt_ms - 14.0).abs() < 1e-9);
        // Cisco echo-reply initial TTL 255; symmetric return path
        // CE2→PE2 (dec+push 254) →LSP (min 251)→ PE1 (250) → CE1 (249).
        assert_eq!(r.ip_ttl, 249);
    }

    #[test]
    fn unreachable_destination() {
        let cfg = RouterConfig::mpls_router(Vendor::CiscoIos);
        let (net, vp, _) = fig2(cfg.clone(), cfg);
        let cp = ControlPlane::build(&net).unwrap();
        let out = probe(&net, &cp, vp, Addr::new(9, 9, 9, 9), 64);
        match out {
            SendOutcome::Reply(r) => assert_eq!(r.kind, ReplyKind::DestUnreachable),
            SendOutcome::Lost { .. } => panic!("expected unreachable reply"),
        }
    }

    #[test]
    fn silent_router_yields_star() {
        let mut b = NetworkBuilder::new();
        let vp = b.add_router("VP", Asn(1), RouterConfig::host());
        let r1 = b.add_router(
            "mute",
            Asn(1),
            RouterConfig::ip_router(Vendor::CiscoIos).silent(),
        );
        let r2 = b.add_router("end", Asn(1), RouterConfig::ip_router(Vendor::CiscoIos));
        b.link(vp, r1, LinkOpts::default());
        b.link(r1, r2, LinkOpts::default());
        let net = b.build().unwrap();
        let cp = ControlPlane::build(&net).unwrap();
        let mut eng = Engine::new(&net, &cp);
        let src = net.router(vp).loopback;
        let dst = net.router(r2).loopback;
        let out = eng.send(vp, Packet::echo_request(src, dst, 1, 1, 1, 1));
        assert!(matches!(
            out,
            SendOutcome::Lost {
                reason: DropReason::Silent,
                ..
            }
        ));
        // But it still forwards.
        let out = eng.send(vp, Packet::echo_request(src, dst, 5, 1, 1, 2));
        assert!(out.reply().is_some());
    }

    #[test]
    fn loss_injection_drops_probes() {
        let cfg = RouterConfig::mpls_router(Vendor::CiscoIos);
        let (net, vp, target) = fig2(cfg.clone(), cfg);
        let cp = ControlPlane::build(&net).unwrap();
        let mut eng = Engine::with_faults(&net, &cp, FaultPlan::with_loss(0.5).unwrap(), 42);
        let src = net.router(vp).loopback;
        let mut lost = 0;
        for seq in 0..50 {
            let out = eng.send(vp, Packet::echo_request(src, target, 64, 1, 1, seq));
            if out.reply().is_none() {
                lost += 1;
            }
        }
        assert!(lost > 10, "expected substantial loss, got {lost}");
        assert!(eng.stats().lost > 0);
        assert_eq!(eng.stats().probes, 50);
    }

    #[test]
    fn te_rate_limiter_throttles_then_refills() {
        use crate::fault::RateLimit;
        let cfg = RouterConfig::mpls_router(Vendor::CiscoIos);
        let (net, vp, target) = fig2(cfg.clone(), cfg);
        let cp = ControlPlane::build(&net).unwrap();
        let plan = FaultPlan {
            te_limit: Some(RateLimit {
                per_sec: 1.0,
                burst: 2.0,
                mpls_only: true,
            }),
            ..FaultPlan::default()
        };
        let mut eng = Engine::with_faults(&net, &cp, plan, 0);
        let src = net.router(vp).loopback;
        // TTL 3 expires at P1 (an MPLS LSR): the first two expiries
        // drain its burst, the third is rate limited.
        for seq in 0..2 {
            let out = eng.send(vp, Packet::echo_request(src, target, 3, 1, 1, seq));
            assert!(out.reply().is_some(), "burst token {seq} must pass");
        }
        let out = eng.send(vp, Packet::echo_request(src, target, 3, 1, 1, 2));
        assert!(matches!(
            out,
            SendOutcome::Lost {
                reason: DropReason::RateLimited,
                ..
            }
        ));
        // TTL 2 expires at PE1 — its own bucket is untouched.
        let out = eng.send(vp, Packet::echo_request(src, target, 2, 1, 1, 3));
        assert!(out.reply().is_some());
        // Waiting in virtual time refills P1's bucket.
        eng.wait(2_000.0);
        let out = eng.send(vp, Packet::echo_request(src, target, 3, 1, 1, 4));
        assert!(out.reply().is_some(), "bucket must refill after waiting");
        // The mpls_only limiter never throttles the plain-IP CE1.
        for seq in 10..20 {
            let out = eng.send(vp, Packet::echo_request(src, target, 1, 1, 1, seq));
            assert!(out.reply().is_some());
        }
    }

    #[test]
    fn persistently_silent_router_forwards_but_never_replies() {
        use crate::fault::SilentSet;
        let cfg = RouterConfig::mpls_router(Vendor::CiscoIos);
        let (net, vp, target) = fig2(cfg.clone(), cfg);
        let cp = ControlPlane::build(&net).unwrap();
        // Find a salt under which P2 (and only P2, among the routers we
        // probe) is silent, to keep the assertion sharp.
        let p2 = net.router_by_name("P2").unwrap().id;
        let salt = (0u64..)
            .find(|&s| {
                let set = SilentSet {
                    share: 0.12,
                    salt: s,
                };
                set.contains(p2)
                    && !["CE1", "PE1", "P1", "P3", "PE2", "CE2"]
                        .iter()
                        .any(|n| set.contains(net.router_by_name(n).unwrap().id))
            })
            .unwrap();
        let plan = FaultPlan {
            silent: Some(SilentSet { share: 0.12, salt }),
            ..FaultPlan::default()
        };
        let mut eng = Engine::with_faults(&net, &cp, plan, 0);
        let src = net.router(vp).loopback;
        // TTL 4 expires at P2: persistently silent.
        let out = eng.send(vp, Packet::echo_request(src, target, 4, 1, 1, 1));
        assert!(matches!(
            out,
            SendOutcome::Lost {
                reason: DropReason::Silent,
                ..
            }
        ));
        // Deterministic: silent again, not probabilistically.
        let out = eng.send(vp, Packet::echo_request(src, target, 4, 1, 1, 2));
        assert!(out.reply().is_none());
        // Still forwards: the target (a host, exempt from silence)
        // answers through it.
        let out = eng.send(vp, Packet::echo_request(src, target, 64, 1, 1, 3));
        assert_eq!(out.reply().unwrap().kind, ReplyKind::EchoReply);
    }

    #[test]
    fn flapping_link_drops_in_its_down_window() {
        use crate::fault::FlapSchedule;
        let cfg = RouterConfig::mpls_router(Vendor::CiscoIos);
        let (net, vp, target) = fig2(cfg.clone(), cfg);
        let cp = ControlPlane::build(&net).unwrap();
        let plan = FaultPlan {
            flaps: Some(FlapSchedule {
                share: 1.0,
                salt: 3,
                period_ms: 1_000.0,
                // 10% duty cycle: a 7-hop round trip crosses 14 links,
                // so most probes still die somewhere, but not all.
                down_ms: 100.0,
            }),
            ..FaultPlan::default()
        };
        let mut eng = Engine::with_faults(&net, &cp, plan, 0);
        let src = net.router(vp).loopback;
        let mut down = 0usize;
        for seq in 0..40 {
            let out = eng.send(vp, Packet::echo_request(src, target, 64, 1, 1, seq));
            if matches!(
                out,
                SendOutcome::Lost {
                    reason: DropReason::LinkDown,
                    ..
                }
            ) {
                down += 1;
            }
        }
        assert!(down > 5, "a 50% duty cycle must drop probes, got {down}");
        assert!(down < 40, "links must come back up");
    }

    #[test]
    fn ground_truth_paths_recorded() {
        let cfg = RouterConfig::mpls_router(Vendor::CiscoIos);
        let (net, vp, target) = fig2(cfg.clone(), cfg);
        let cp = ControlPlane::build(&net).unwrap();
        let out = probe(&net, &cp, vp, target, 64);
        let r = out.reply().unwrap();
        let names: Vec<&str> = r
            .fwd_path
            .iter()
            .map(|&id| net.router(id).name.as_str())
            .collect();
        assert_eq!(names, ["VP", "CE1", "PE1", "P1", "P2", "P3", "PE2", "CE2"]);
        assert_eq!(r.ret_path.first(), Some(&r.fwd_path[7]));
        assert_eq!(r.ret_path.last(), Some(&vp));
    }

    #[test]
    fn walk_is_allocation_free_without_path_recording() {
        let cfg = RouterConfig::mpls_router(Vendor::CiscoIos);
        let (net, vp, target) = fig2(cfg.clone(), cfg);
        let cp = ControlPlane::build(&net).unwrap();
        let mut eng = Engine::new(&net, &cp);
        eng.set_record_paths(false);
        let src = net.router(vp).loopback;
        for ttl in 1..=7 {
            let out = eng.send(vp, Packet::echo_request(src, target, ttl, 1, 1, ttl as u16));
            assert!(out.reply().is_some());
        }
        assert_eq!(
            eng.stats().heap_allocs,
            0,
            "steady-state walk must not touch the heap"
        );
        // Replies still carry the replier and the RFC 4950 quote, even
        // though the path vectors stay empty.
        let out = eng.send(vp, Packet::echo_request(src, target, 4, 1, 1, 99));
        let r = out.reply().unwrap();
        assert!(r.fwd_path.is_empty());
        assert!(r.ret_path.is_empty());
        assert_eq!(net.router(r.replier).name, "P2");
        assert_eq!(r.mpls_ext.len(), 1);
        // Recording back on: paths return, and the alloc counter moves.
        eng.set_record_paths(true);
        let out = eng.send(vp, Packet::echo_request(src, target, 64, 1, 1, 100));
        let r = out.reply().unwrap();
        assert!(!r.fwd_path.is_empty());
        assert!(eng.stats().heap_allocs > 0);
    }

    #[test]
    fn flow_pick_is_deterministic() {
        let v = [1, 2, 3, 4];
        let a = pick(&v, 7, 13);
        let b = pick(&v, 7, 13);
        assert_eq!(a, b);
        // Different flows spread over options.
        let mut seen = std::collections::HashSet::new();
        for flow in 0..64 {
            seen.insert(*pick(&v, flow, 13));
        }
        assert!(seen.len() > 1);
    }

    #[test]
    fn batched_send_matches_scalar_per_packet() {
        let cfg = RouterConfig::mpls_router(Vendor::CiscoIos);
        let (net, vp, target) = fig2(cfg.clone(), cfg);
        let cp = ControlPlane::build(&net).unwrap();
        let src = net.router(vp).loopback;
        // A mixed burst: every traceroute TTL, a ping, and an
        // unroutable destination, several times over to exceed one
        // batch chunk.
        let mut pkts = Vec::new();
        for round in 0..12u16 {
            for ttl in 1..=7u8 {
                pkts.push(Packet::echo_request(
                    src,
                    target,
                    ttl,
                    1,
                    1,
                    round * 100 + ttl as u16,
                ));
            }
            pkts.push(Packet::echo_request(
                src,
                target,
                64,
                1,
                1,
                round * 100 + 90,
            ));
            pkts.push(Packet::echo_request(
                src,
                Addr::new(9, 9, 9, 9),
                64,
                1,
                1,
                round * 100 + 91,
            ));
        }
        let mut scalar_eng = Engine::new(&net, &cp);
        scalar_eng.set_record_paths(false);
        let scalar: Vec<SendOutcome> = pkts.iter().map(|&p| scalar_eng.send(vp, p)).collect();
        let mut batch_eng = Engine::new(&net, &cp);
        batch_eng.set_record_paths(false);
        let mut batched = Vec::new();
        batch_eng.send_batch(vp, &pkts, &mut batched);
        assert_eq!(scalar.len(), batched.len());
        for (i, (s, b)) in scalar.iter().zip(batched.iter()).enumerate() {
            assert_eq!(format!("{s:?}"), format!("{b:?}"), "packet {i} diverged");
        }
        let (s, b) = (scalar_eng.stats(), batch_eng.stats());
        assert_eq!(s.probes, b.probes);
        assert_eq!(s.crossings, b.crossings);
        assert_eq!(s.replies, b.replies);
        assert_eq!(s.lost, b.lost);
        assert_eq!(b.heap_allocs, 0, "batched walk must not touch the heap");
        assert_eq!(scalar_eng.state.now_ms, batch_eng.state.now_ms);
    }

    #[test]
    fn batched_send_falls_back_for_order_sensitive_faults() {
        let cfg = RouterConfig::mpls_router(Vendor::CiscoIos);
        let (net, vp, target) = fig2(cfg.clone(), cfg);
        let cp = ControlPlane::build(&net).unwrap();
        let src = net.router(vp).loopback;
        let plan = FaultPlan::with_loss(0.3).unwrap();
        assert!(!plan.batch_safe());
        let pkts: Vec<Packet> = (0..40u16)
            .map(|seq| Packet::echo_request(src, target, 64, 1, 1, seq))
            .collect();
        let mut scalar_eng = Engine::with_faults(&net, &cp, plan.clone(), 77);
        scalar_eng.set_record_paths(false);
        let scalar: Vec<SendOutcome> = pkts.iter().map(|&p| scalar_eng.send(vp, p)).collect();
        let mut batch_eng = Engine::with_faults(&net, &cp, plan, 77);
        batch_eng.set_record_paths(false);
        let mut batched = Vec::new();
        batch_eng.send_batch(vp, &pkts, &mut batched);
        for (s, b) in scalar.iter().zip(batched.iter()) {
            assert_eq!(format!("{s:?}"), format!("{b:?}"));
        }
        assert_eq!(scalar_eng.stats().lost, batch_eng.stats().lost);
    }

    #[test]
    fn ttl_spoofing_router_lies_deterministically() {
        use crate::fault::TtlSpoof;
        let cfg = RouterConfig::mpls_router(Vendor::CiscoIos);
        let (net, vp, target) = fig2(cfg.clone(), cfg);
        let cp = ControlPlane::build(&net).unwrap();
        let src = net.router(vp).loopback;
        let p2 = net.router_by_name("P2").unwrap().id;
        // Honest baseline: a TTL-4 probe expires at P2, whose
        // time-exceeded arrives with ip_ttl 248 (init 255, 7 hops back).
        let honest = {
            let mut eng = Engine::new(&net, &cp);
            eng.send(vp, Packet::echo_request(src, target, 4, 1, 1, 1))
                .reply()
                .unwrap()
                .ip_ttl
        };
        assert_eq!(honest, 248);
        // Pick a salt under which P2's spoofed TE init differs from the
        // honest 255 for the probe key used below ((id=1) << 16 | seq=1).
        let key = (1u64 << 16) | 1;
        let salt = (0u64..)
            .find(|&s| {
                let t = TtlSpoof {
                    share: 1.0,
                    salt: s,
                    per_probe: false,
                };
                t.initial_ttl(p2, 0, key, 255) != 255
            })
            .unwrap();
        let spoof = TtlSpoof {
            share: 1.0,
            salt,
            per_probe: false,
        };
        let plan = FaultPlan {
            ttl_spoof: Some(spoof),
            ..FaultPlan::default()
        };
        let mut eng = Engine::with_faults(&net, &cp, plan, 0);
        let lied = eng
            .send(vp, Packet::echo_request(src, target, 4, 1, 1, 1))
            .reply()
            .unwrap()
            .ip_ttl;
        // Snapping the observed TTL up to the initial-TTL menu (what the
        // campaign's fingerprint inference does) recovers the forged
        // initial, not the honest 255.
        let forged_init = spoof.initial_ttl(p2, 0, key, 255);
        let infer = |ttl: u8| {
            [32u8, 64, 128, 255]
                .into_iter()
                .find(|&m| m >= ttl)
                .unwrap()
        };
        assert_eq!(infer(honest), 255);
        assert_eq!(infer(lied), forged_init);
        assert_ne!(lied, honest, "the spoof must be observable");
        // Per-router mode: the same lie on every probe.
        let again = eng
            .send(vp, Packet::echo_request(src, target, 4, 1, 1, 2))
            .reply()
            .unwrap()
            .ip_ttl;
        assert_eq!(again, lied);
    }

    #[test]
    fn non_paris_lb_forks_same_flow_probes() {
        use crate::fault::NonParisLb;
        // A diamond: R1 load-balances two equal-cost paths to R3.
        let mut b = NetworkBuilder::new();
        let ip = || RouterConfig::ip_router(Vendor::CiscoIos);
        let vp = b.add_router("VP", Asn(1), RouterConfig::host());
        let r1 = b.add_router("R1", Asn(1), ip());
        let r2a = b.add_router("R2a", Asn(1), ip());
        let r2b = b.add_router("R2b", Asn(1), ip());
        let r3 = b.add_router("R3", Asn(1), ip());
        for (x, y) in [(vp, r1), (r1, r2a), (r1, r2b), (r2a, r3), (r2b, r3)] {
            b.link(x, y, LinkOpts::default());
        }
        let net = b.build().unwrap();
        let cp = ControlPlane::build(&net).unwrap();
        let src = net.router(vp).loopback;
        let dst = net.router(r3).loopback;
        let mid_router = |eng: &mut Engine, seq: u16| {
            let out = eng.send(vp, Packet::echo_request(src, dst, 2, 1, 1, seq));
            net.owner(out.reply().unwrap().from).unwrap()
        };
        // Paris-honest: one flow, one path — every probe meets the same
        // middle router.
        let mut honest = Engine::new(&net, &cp);
        let first = mid_router(&mut honest, 0);
        assert!((1..16).all(|seq| mid_router(&mut honest, seq) == first));
        // Non-Paris: the same flow forks per probe across both branches,
        // deterministically per seq.
        let plan = FaultPlan {
            non_paris: Some(NonParisLb {
                share: 1.0,
                salt: 0x1B4A,
            }),
            ..FaultPlan::default()
        };
        let mut forked = Engine::with_faults(&net, &cp, plan.clone(), 0);
        let mids: Vec<RouterId> = (0..16).map(|seq| mid_router(&mut forked, seq)).collect();
        let distinct: std::collections::HashSet<RouterId> = mids.iter().copied().collect();
        assert_eq!(distinct.len(), 2, "per-probe hashing must fork the flow");
        let mut rerun = Engine::with_faults(&net, &cp, plan, 99);
        let mids2: Vec<RouterId> = (0..16).map(|seq| mid_router(&mut rerun, seq)).collect();
        assert_eq!(mids, mids2, "forking is pure in the probe key");
    }

    #[test]
    fn egress_hiding_as_darkens_interior_interfaces() {
        use crate::fault::EgressHide;
        let cfg = RouterConfig::mpls_router(Vendor::CiscoIos);
        let (net, vp, target) = fig2(cfg.clone(), cfg);
        let cp = ControlPlane::build(&net).unwrap();
        let src = net.router(vp).loopback;
        let p2 = net.router_by_name("P2").unwrap().id;
        let iface_dst = net.router(p2).ifaces[0].addr;
        let plan = FaultPlan {
            egress_hide: Some(EgressHide {
                share: 1.0,
                salt: 0xE6E5,
            }),
            ..FaultPlan::default()
        };
        let mut eng = Engine::with_faults(&net, &cp, plan, 0);
        // A re-trace aimed at P2's interface: mid-path expiries inside
        // the hiding AS go dark...
        let out = eng.send(vp, Packet::echo_request(src, iface_dst, 3, 1, 1, 1));
        assert!(matches!(
            out,
            SendOutcome::Lost {
                reason: DropReason::Silent,
                ..
            }
        ));
        // ...and so does delivery at the interface itself.
        let out = eng.send(vp, Packet::echo_request(src, iface_dst, 64, 1, 1, 2));
        assert!(matches!(
            out,
            SendOutcome::Lost {
                reason: DropReason::Silent,
                ..
            }
        ));
        // Host- and loopback-bound probes stay honest: the ordinary
        // traceroute to the target still completes end to end.
        for ttl in 1..=7u8 {
            let out = eng.send(
                vp,
                Packet::echo_request(src, target, ttl, 1, 1, 10 + ttl as u16),
            );
            assert!(out.reply().is_some(), "honest path broke at ttl {ttl}");
        }
    }
}
