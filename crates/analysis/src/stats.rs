//! Small statistics toolkit for the experiment harness.

use std::collections::BTreeMap;

/// The arithmetic mean, `None` for empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Sample standard deviation, `None` for fewer than two values.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    Some(var.sqrt())
}

/// An empirical distribution over integers.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    counts: BTreeMap<i64, usize>,
    n: usize,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Builds from an iterator.
    #[allow(clippy::should_implement_trait)] // also usable via collect-free call
    pub fn from_iter<I: IntoIterator<Item = i64>>(it: I) -> Histogram {
        let mut h = Histogram::new();
        for x in it {
            h.push(x);
        }
        h
    }

    /// Adds one observation.
    pub fn push(&mut self, x: i64) {
        *self.counts.entry(x).or_insert(0) += 1;
        self.n += 1;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The count at `x`.
    pub fn count(&self, x: i64) -> usize {
        self.counts.get(&x).copied().unwrap_or(0)
    }

    /// `(value, probability)` pairs in increasing value order.
    pub fn pdf(&self) -> Vec<(i64, f64)> {
        self.counts
            .iter()
            .map(|(&v, &c)| (v, c as f64 / self.n as f64))
            .collect()
    }

    /// `(value, cumulative probability)` pairs.
    pub fn cdf(&self) -> Vec<(i64, f64)> {
        let mut acc = 0usize;
        self.counts
            .iter()
            .map(|(&v, &c)| {
                acc += c;
                (v, acc as f64 / self.n as f64)
            })
            .collect()
    }

    /// The lower median.
    pub fn median(&self) -> Option<i64> {
        if self.n == 0 {
            return None;
        }
        let target = (self.n - 1) / 2;
        let mut acc = 0usize;
        for (&v, &c) in &self.counts {
            acc += c;
            if acc > target {
                return Some(v);
            }
        }
        unreachable!("counts sum to n")
    }

    /// The mean.
    pub fn mean(&self) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        let sum: f64 = self.counts.iter().map(|(&v, &c)| v as f64 * c as f64).sum();
        Some(sum / self.n as f64)
    }

    /// The most frequent value (smallest on ties).
    pub fn mode(&self) -> Option<i64> {
        self.counts
            .iter()
            .max_by_key(|&(&v, &c)| (c, std::cmp::Reverse(v)))
            .map(|(&v, _)| v)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), by the nearest-rank rule.
    pub fn quantile(&self, q: f64) -> Option<i64> {
        if self.n == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * self.n as f64).ceil() as usize).clamp(1, self.n);
        let mut acc = 0usize;
        for (&v, &c) in &self.counts {
            acc += c;
            if acc >= rank {
                return Some(v);
            }
        }
        unreachable!("counts sum to n")
    }

    /// The value range `(min, max)`.
    pub fn range(&self) -> Option<(i64, i64)> {
        let min = *self.counts.keys().next()?;
        let max = *self.counts.keys().next_back()?;
        Some((min, max))
    }
}

/// A crude power-law tail check: fits `log(pdf) = a − k·log(x)` over the
/// positive support by least squares and returns the slope `k` (heavy
/// tails show `k` in roughly 1–3). Used only to describe distribution
/// *shape* (Fig. 1), never as a statistical claim.
pub fn power_law_slope(pdf: &[(i64, f64)]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = pdf
        .iter()
        .filter(|&&(x, p)| x > 0 && p > 0.0)
        .map(|&(x, p)| ((x as f64).ln(), p.ln()))
        .collect();
    if pts.len() < 3 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some(-(n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(stddev(&[1.0]), None);
        let s = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn histogram_basics() {
        let h = Histogram::from_iter([1, 2, 2, 3, 3, 3]);
        assert_eq!(h.len(), 6);
        assert_eq!(h.count(3), 3);
        assert_eq!(h.count(9), 0);
        assert_eq!(h.median(), Some(2));
        assert!((h.mean().unwrap() - 14.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.mode(), Some(3));
        assert_eq!(h.range(), Some((1, 3)));
        let pdf = h.pdf();
        assert!((pdf.iter().map(|&(_, p)| p).sum::<f64>() - 1.0).abs() < 1e-12);
        let cdf = h.cdf();
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let h = Histogram::from_iter(1..=100);
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(0.95), Some(95));
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(1.0), Some(100));
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn median_even_and_empty() {
        assert_eq!(Histogram::new().median(), None);
        let h = Histogram::from_iter([1, 2, 3, 4]);
        assert_eq!(h.median(), Some(2));
    }

    #[test]
    fn power_law_slope_recovers_exponent() {
        // pdf(x) ∝ x^-2.
        let mut pdf = Vec::new();
        let z: f64 = (1..=50).map(|x| (x as f64).powi(-2)).sum();
        for x in 1..=50i64 {
            pdf.push((x, (x as f64).powi(-2) / z));
        }
        let k = power_law_slope(&pdf).unwrap();
        assert!((k - 2.0).abs() < 0.05, "k = {k}");
        assert!(power_law_slope(&[(1, 1.0)]).is_none());
    }
}
