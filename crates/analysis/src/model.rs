//! Internet-model update (paper §7): correcting traces, graphs, RFA
//! distributions, and RTT profiles with revealed tunnel content.

use std::collections::{BTreeSet, HashMap};
use wormhole_core::{RevealedTunnel, RevelationOutcome};
use wormhole_net::Addr;
use wormhole_probe::Trace;
use wormhole_topo::{ItdkSnapshot, NodeInfo};

/// Splices revealed hops into a trace's address path: wherever the path
/// contains a revealed `(ingress, egress)` pair as consecutive
/// responsive hops, the tunnel's LSRs are inserted between them.
pub fn corrected_path(
    trace: &Trace,
    revelations: &HashMap<(Addr, Addr), RevelationOutcome>,
) -> Vec<Option<Addr>> {
    let path = trace.addr_path();
    let mut out: Vec<Option<Addr>> = Vec::with_capacity(path.len());
    let mut i = 0usize;
    while i < path.len() {
        out.push(path[i]);
        if let Some(a) = path[i] {
            // The next responsive hop (stars in between block splicing —
            // the pair was not adjacent in the measured view).
            if let Some(b) = path.get(i + 1).copied().flatten() {
                if let Some(t) = revelations.get(&(a, b)).and_then(RevelationOutcome::tunnel) {
                    out.extend(t.hops().into_iter().map(Some));
                }
            }
        }
        i += 1;
    }
    out
}

/// Corrected paths for a whole trace set.
pub fn corrected_paths(
    traces: &[Trace],
    revelations: &HashMap<(Addr, Addr), RevelationOutcome>,
) -> Vec<Vec<Option<Addr>>> {
    traces
        .iter()
        .map(|t| corrected_path(t, revelations))
        .collect()
}

/// Builds the *visible* (corrected) snapshot next to the *invisible*
/// (measured) one, with the same resolver.
pub fn before_after_snapshots<R>(
    traces: &[Trace],
    revelations: &HashMap<(Addr, Addr), RevelationOutcome>,
    mut resolve: R,
) -> (ItdkSnapshot, ItdkSnapshot)
where
    R: FnMut(Addr) -> NodeInfo + Copy,
{
    let raw: Vec<Vec<Option<Addr>>> = traces.iter().map(Trace::addr_path).collect();
    let before = ItdkSnapshot::build(&raw, &mut resolve);
    let fixed = corrected_paths(traces, revelations);
    let after = ItdkSnapshot::build(&fixed, resolve);
    (before, after)
}

/// Responsive path lengths before and after correction, per trace that
/// reached its destination (Fig. 11's two distributions).
pub fn trace_lengths(
    traces: &[Trace],
    revelations: &HashMap<(Addr, Addr), RevelationOutcome>,
) -> Vec<(usize, usize)> {
    traces
        .iter()
        .filter(|t| t.reached)
        .map(|t| {
            let before = t.responsive_count();
            let after = corrected_path(t, revelations)
                .iter()
                .filter(|h| h.is_some())
                .count();
            (before, after)
        })
        .collect()
}

/// One point of an RTT-versus-hop profile.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RttPoint {
    /// Hop number (1-based position in the rendered path).
    pub hop: usize,
    /// RTT in milliseconds.
    pub rtt_ms: f64,
}

/// The measured per-hop RTT profile of a trace (Fig. 6's "Invisible"
/// curve).
pub fn rtt_profile(trace: &Trace) -> Vec<RttPoint> {
    trace
        .hops
        .iter()
        .filter(|h| h.addr.is_some())
        .enumerate()
        .filter_map(|(i, h)| h.rtt_ms.map(|rtt_ms| RttPoint { hop: i + 1, rtt_ms }))
        .collect()
}

/// The corrected profile (Fig. 6's "Visible" curve): revealed hops are
/// inserted with the RTTs observed during revelation, decomposing the
/// tunnel's apparent delay jump.
pub fn corrected_rtt_profile(trace: &Trace, tunnel: &RevealedTunnel) -> Vec<RttPoint> {
    let mut out = Vec::new();
    let mut hop = 0usize;
    for h in trace.hops.iter().filter(|h| h.addr.is_some()) {
        hop += 1;
        if let Some(rtt_ms) = h.rtt_ms {
            out.push(RttPoint { hop, rtt_ms });
        }
        if h.addr == Some(tunnel.ingress) {
            for step in tunnel.steps.iter().rev() {
                for revealed in &step.new_hops {
                    hop += 1;
                    if let Some(rtt_ms) = revealed.rtt_ms {
                        out.push(RttPoint { hop, rtt_ms });
                    }
                }
            }
        }
    }
    out
}

/// Graph density over the candidate Ingress–Egress node set, before and
/// after revelation (the last two columns of Table 4).
pub fn density_before_after(
    before: &ItdkSnapshot,
    after: &ItdkSnapshot,
    pair_addrs: &BTreeSet<Addr>,
) -> (f64, f64) {
    let nodes_before: BTreeSet<usize> = pair_addrs
        .iter()
        .filter_map(|&a| before.node_of(a))
        .collect();
    let nodes_after: BTreeSet<usize> = pair_addrs
        .iter()
        .filter_map(|&a| after.node_of(a))
        .collect();
    (
        before.density_of(&nodes_before),
        after.density_of(&nodes_after),
    )
}

/// The corrected RFA of an egress hop once its forward tunnel is known
/// (Fig. 7b): the revealed hop count is added back to the forward
/// length.
pub fn corrected_rfa(rfa: i32, tunnel: &RevealedTunnel) -> i32 {
    rfa - tunnel.len() as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_core::{RevealMethod, RevealStep, RevealedHop};
    use wormhole_net::ReplyKind;
    use wormhole_probe::{HopOutcome, TraceHop};

    fn a(x: u8) -> Addr {
        Addr::new(10, 0, 0, x)
    }

    fn hop(ttl: u8, x: u8, rtt: f64) -> TraceHop {
        TraceHop {
            ttl,
            addr: Some(a(x)),
            reply_ip_ttl: Some(250),
            rtt_ms: Some(rtt),
            labels: Vec::new(),
            kind: Some(ReplyKind::TimeExceeded),
            outcome: HopOutcome::Replied,
            attempts: 1,
            truth: None,
        }
    }

    fn revealed(x: u8, rtt: f64) -> RevealedHop {
        RevealedHop {
            addr: a(x),
            labeled: false,
            rtt_ms: Some(rtt),
            truth: None,
        }
    }

    fn tunnel(ingress: u8, egress: u8, hops: &[u8]) -> RevealedTunnel {
        RevealedTunnel {
            ingress: a(ingress),
            egress: a(egress),
            target: a(99),
            steps: vec![RevealStep {
                target: a(egress),
                new_hops: hops.iter().map(|&h| revealed(h, 5.0)).collect(),
            }],
            extra_probes: 7,
            revisits: 0,
            stars: 0,
            retrace_mismatch: false,
        }
    }

    fn trace(hops: Vec<TraceHop>) -> Trace {
        Trace {
            src: a(100),
            dst: a(99),
            flow: 0,
            hops,
            reached: true,
            probes: 3,
            truncated: false,
        }
    }

    #[test]
    fn splice_inserts_revealed_hops() {
        let t = trace(vec![hop(1, 1, 1.0), hop(2, 2, 2.0), hop(3, 9, 50.0)]);
        let mut revs = HashMap::new();
        revs.insert(
            (a(2), a(9)),
            RevelationOutcome::complete(tunnel(2, 9, &[21, 22])),
        );
        let fixed = corrected_path(&t, &revs);
        let addrs: Vec<u8> = fixed.iter().map(|h| h.unwrap().octets()[3]).collect();
        assert_eq!(addrs, [1, 2, 21, 22, 9]);
    }

    #[test]
    fn stars_block_splicing() {
        let t = trace(vec![hop(1, 2, 1.0), TraceHop::star(2), hop(3, 9, 2.0)]);
        let mut revs = HashMap::new();
        revs.insert(
            (a(2), a(9)),
            RevelationOutcome::complete(tunnel(2, 9, &[21])),
        );
        let fixed = corrected_path(&t, &revs);
        assert_eq!(fixed.len(), 3);
    }

    #[test]
    fn lengths_before_after() {
        let t = trace(vec![hop(1, 1, 1.0), hop(2, 2, 2.0), hop(3, 9, 3.0)]);
        let mut revs = HashMap::new();
        revs.insert(
            (a(2), a(9)),
            RevelationOutcome::complete(tunnel(2, 9, &[21, 22, 23])),
        );
        let lens = trace_lengths(&[t], &revs);
        assert_eq!(lens, vec![(3, 6)]);
    }

    #[test]
    fn rtt_profiles() {
        let t = trace(vec![hop(1, 1, 1.0), hop(2, 2, 2.0), hop(3, 9, 52.0)]);
        let before = rtt_profile(&t);
        assert_eq!(before.len(), 3);
        assert_eq!(before[2].hop, 3);
        let tun = tunnel(2, 9, &[21, 22]);
        let after = corrected_rtt_profile(&t, &tun);
        assert_eq!(after.len(), 5);
        // Revealed hops slot in after the ingress (hop 2).
        assert_eq!(after[2].hop, 3);
        assert_eq!(after[2].rtt_ms, 5.0);
        assert_eq!(after[4].hop, 5);
        assert_eq!(after[4].rtt_ms, 52.0);
        let _ = RevealMethod::Dpr;
    }

    #[test]
    fn snapshots_and_density() {
        let t = trace(vec![hop(1, 1, 1.0), hop(2, 2, 2.0), hop(3, 9, 3.0)]);
        let mut revs = HashMap::new();
        revs.insert(
            (a(2), a(9)),
            RevelationOutcome::complete(tunnel(2, 9, &[21])),
        );
        let resolve = |addr: Addr| NodeInfo {
            key: addr.0 as u64,
            asn: None,
        };
        let (before, after) = before_after_snapshots(&[t], &revs, resolve);
        assert_eq!(before.num_nodes(), 3);
        assert_eq!(after.num_nodes(), 4);
        let pair: BTreeSet<Addr> = [a(2), a(9)].into_iter().collect();
        let (db, da) = density_before_after(&before, &after, &pair);
        assert!(db > da, "direct edge removed: {db} > {da}");
    }

    #[test]
    fn rfa_correction() {
        let tun = tunnel(2, 9, &[21, 22, 23]);
        assert_eq!(corrected_rfa(3, &tun), 0);
        assert_eq!(corrected_rfa(5, &tun), 2);
    }
}
