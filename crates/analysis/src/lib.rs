//! `wormhole-analysis`: statistics and Internet-model analysis.
//!
//! * [`stats`] — histograms, PDFs/CDFs, quantiles, a power-law slope
//!   descriptor;
//! * [`graph`] — degree distributions, density, clustering, BFS path
//!   lengths over ITDK snapshots;
//! * [`model`] — the §7 model update: trace splicing, before/after
//!   snapshots, Fig. 6 RTT decomposition, Fig. 7b RFA correction,
//!   Table 4 density correction.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod graph;
pub mod model;
pub mod stats;

pub use graph::{
    bfs_distances, clustering_coefficient, degree_histogram, degree_histogram_of, density,
    path_length_stats,
};
pub use model::{
    before_after_snapshots, corrected_path, corrected_paths, corrected_rfa, corrected_rtt_profile,
    density_before_after, rtt_profile, trace_lengths, RttPoint,
};
pub use stats::{mean, power_law_slope, stddev, Histogram};
