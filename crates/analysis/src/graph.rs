//! Graph metrics over ITDK-style snapshots.
//!
//! The paper's §7 revisits three properties biased by invisible tunnels:
//! node degree distribution (Fig. 1, Fig. 10), graph density (Table 4),
//! and path lengths (Fig. 11). Clustering is included because the
//! introduction names it among the shifted metrics.

use crate::stats::Histogram;
use std::collections::BTreeSet;
use wormhole_topo::ItdkSnapshot;

/// The degree distribution of a snapshot as a histogram.
pub fn degree_histogram(snap: &ItdkSnapshot) -> Histogram {
    Histogram::from_iter(snap.degrees().into_iter().map(|d| d as i64))
}

/// The degree distribution restricted to a node subset.
pub fn degree_histogram_of(snap: &ItdkSnapshot, nodes: &BTreeSet<usize>) -> Histogram {
    Histogram::from_iter(nodes.iter().map(|&n| snap.degree(n) as i64))
}

/// Whole-graph density `2E / V(V−1)`.
pub fn density(snap: &ItdkSnapshot) -> f64 {
    let v = snap.num_nodes();
    if v < 2 {
        return 0.0;
    }
    2.0 * snap.num_links() as f64 / (v as f64 * (v - 1) as f64)
}

/// The global clustering coefficient (transitivity): `3·triangles /
/// connected triples`.
pub fn clustering_coefficient(snap: &ItdkSnapshot) -> f64 {
    let mut triangles = 0usize;
    let mut triples = 0usize;
    for v in 0..snap.num_nodes() {
        let nbrs: Vec<usize> = snap.neighbors(v).collect();
        let d = nbrs.len();
        triples += d.saturating_sub(1) * d / 2;
        for i in 0..nbrs.len() {
            for j in i + 1..nbrs.len() {
                let (a, b) = (nbrs[i], nbrs[j]);
                if snap.neighbors(a).any(|x| x == b) {
                    triangles += 1;
                }
            }
        }
    }
    if triples == 0 {
        0.0
    } else {
        // Each triangle is counted once per corner: 3 times total.
        triangles as f64 / triples as f64
    }
}

/// Shortest-path lengths (BFS) from `src` to every reachable node.
pub fn bfs_distances(snap: &ItdkSnapshot, src: usize) -> Vec<Option<usize>> {
    let mut dist = vec![None; snap.num_nodes()];
    dist[src] = Some(0);
    let mut queue = std::collections::VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        let du = dist[u].expect("visited");
        for v in snap.neighbors(u) {
            if dist[v].is_none() {
                dist[v] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Average shortest-path length and diameter over a (sampled) node set.
/// Unreachable pairs are ignored.
pub fn path_length_stats(snap: &ItdkSnapshot, sources: &[usize]) -> Option<(f64, usize)> {
    let mut total = 0usize;
    let mut count = 0usize;
    let mut diameter = 0usize;
    for &s in sources {
        for (v, d) in bfs_distances(snap, s).into_iter().enumerate() {
            if v == s {
                continue;
            }
            if let Some(d) = d {
                total += d;
                count += 1;
                diameter = diameter.max(d);
            }
        }
    }
    if count == 0 {
        None
    } else {
        Some((total as f64 / count as f64, diameter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_net::Addr;
    use wormhole_topo::NodeInfo;

    fn a(x: u8) -> Addr {
        Addr::new(10, 0, 0, x)
    }

    fn ident(addr: Addr) -> NodeInfo {
        NodeInfo {
            key: addr.0 as u64,
            asn: None,
        }
    }

    fn line(n: u8) -> ItdkSnapshot {
        let path: Vec<Option<Addr>> = (1..=n).map(|x| Some(a(x))).collect();
        ItdkSnapshot::build(&[path], ident)
    }

    #[test]
    fn degree_histogram_of_line() {
        let snap = line(4);
        let h = degree_histogram(&snap);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(2), 2);
    }

    #[test]
    fn density_of_line_and_triangle() {
        let snap = line(4);
        assert!((density(&snap) - 0.5).abs() < 1e-12);
        let tri = ItdkSnapshot::build(
            &[vec![Some(a(1)), Some(a(2)), Some(a(3)), Some(a(1))]],
            ident,
        );
        assert!((density(&tri) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering() {
        let tri = ItdkSnapshot::build(
            &[vec![Some(a(1)), Some(a(2)), Some(a(3)), Some(a(1))]],
            ident,
        );
        assert!((clustering_coefficient(&tri) - 1.0).abs() < 1e-12);
        let snap = line(4);
        assert_eq!(clustering_coefficient(&snap), 0.0);
    }

    #[test]
    fn bfs_and_path_stats() {
        let snap = line(5);
        let d = bfs_distances(&snap, 0);
        assert_eq!(d[4], Some(4));
        let (avg, diam) = path_length_stats(&snap, &[0, 4]).unwrap();
        assert_eq!(diam, 4);
        assert!((avg - 2.5).abs() < 1e-12);
        // Disconnected pieces ignored.
        let snap2 = ItdkSnapshot::build(
            &[vec![Some(a(1)), Some(a(2))], vec![Some(a(3)), Some(a(4))]],
            ident,
        );
        let d = bfs_distances(&snap2, 0);
        assert_eq!(d.iter().filter(|x| x.is_some()).count(), 2);
    }

    #[test]
    fn degree_subset() {
        let snap = line(4);
        let ends: BTreeSet<usize> = [0, 3].into_iter().collect();
        let h = degree_histogram_of(&snap, &ends);
        assert_eq!(h.len(), 2);
        assert_eq!(h.count(1), 2);
    }
}
