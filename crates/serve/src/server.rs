//! The resident campaign server: one warm substrate per scale, a
//! thread per connection, campaigns streamed as frames.
//!
//! The first request at a scale pays the full Internet build; every
//! later request at that scale reuses the warm [`Internet`] behind an
//! `Arc` — concurrent sessions run campaigns over the *same* substrate
//! with no rebuild, which is the entire point of staying resident. The
//! `warm` flag on every campaign response makes that observable (and
//! testable) from outside.

use crate::history::History;
use crate::proto::{json_escape, num_field, read_frame, str_field, write_frame};
use std::io::{self, BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use wormhole_core::Scheduling;
use wormhole_experiments::{campaign_config_for, campaign_over, internet_for, Scale};
use wormhole_net::FaultScenario;
use wormhole_probe::{trace_jsonl, Session, TraceSink, TracerouteOpts};
use wormhole_topo::Internet;

/// How a server instance is configured.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Filesystem path of the Unix socket to listen on.
    pub socket: PathBuf,
    /// How many recent reports the history buffer retains.
    pub history: usize,
    /// The Internet-generation seed every scale uses (the batch CLI
    /// default, so serve reports match `wormhole-cli campaign`).
    pub seed: u64,
}

impl ServeConfig {
    /// A config listening on `socket` with the defaults the batch CLI
    /// uses (seed 8) and a 16-entry history.
    pub fn at(socket: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            socket: socket.into(),
            history: 16,
            seed: 8,
        }
    }
}

/// Every scale the store holds a slot for, in protocol-name order.
const SCALES: [(&str, Scale); 4] = [
    ("quick", Scale::Quick),
    ("paper", Scale::Paper),
    ("tenfold", Scale::Tenfold),
    ("thousandfold", Scale::ThousandFold),
];

fn scale_by_name(name: &str) -> Option<(usize, Scale)> {
    SCALES
        .iter()
        .position(|&(n, _)| n == name)
        .map(|i| (i, SCALES[i].1))
}

/// The resident server. Create with [`Server::new`], run the accept
/// loop with [`Server::run`] (or [`Server::spawn`] for tests).
pub struct Server {
    cfg: ServeConfig,
    /// One warm-substrate slot per scale. Per-scale locks: building
    /// the thousandfold Internet must not block a quick campaign.
    store: [Mutex<Option<Arc<Internet>>>; 4],
    history: Mutex<History>,
    shutdown: AtomicBool,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("cfg", &self.cfg).finish()
    }
}

/// A spawned server: join handle plus the socket path clients connect
/// to. Dropping it does *not* stop the server — send a `shutdown`
/// request (see [`Client::shutdown`]).
#[derive(Debug)]
pub struct ServerHandle {
    /// The accept-loop thread.
    pub thread: std::thread::JoinHandle<io::Result<()>>,
    /// The socket the server listens on.
    pub socket: PathBuf,
}

impl Server {
    /// A server with no warm substrates yet.
    pub fn new(cfg: ServeConfig) -> Server {
        let history = Mutex::new(History::new(cfg.history));
        Server {
            cfg,
            store: Default::default(),
            history,
            shutdown: AtomicBool::new(false),
        }
    }

    /// The warm substrate for a scale, building it on first use.
    /// Returns `(substrate, warm)` — `warm` is true when this request
    /// found the substrate already built. The per-scale lock is held
    /// across the build, so concurrent first requests at one scale
    /// build exactly once (the loser of the race reports `warm`).
    pub fn substrate(&self, idx: usize, scale: Scale) -> (Arc<Internet>, bool) {
        let mut slot = self.store[idx].lock().expect("store lock poisoned");
        match slot.as_ref() {
            Some(warm) => (Arc::clone(warm), true),
            None => {
                let built = Arc::new(internet_for(scale, self.cfg.seed));
                *slot = Some(Arc::clone(&built));
                (built, false)
            }
        }
    }

    /// Binds the socket and serves until a `shutdown` request arrives.
    /// Each connection gets its own thread; the substrate store and
    /// history are shared across all of them.
    pub fn run(self: Arc<Self>) -> io::Result<()> {
        // A stale socket file from a previous run would fail the bind.
        let _ = std::fs::remove_file(&self.cfg.socket);
        let listener = UnixListener::bind(&self.cfg.socket)?;
        for conn in listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let conn = conn?;
            let srv = Arc::clone(&self);
            std::thread::spawn(move || srv.serve_connection(conn));
        }
        let _ = std::fs::remove_file(&self.cfg.socket);
        Ok(())
    }

    /// Spawns [`Server::run`] on a background thread and waits until
    /// the socket is accepting connections.
    pub fn spawn(cfg: ServeConfig) -> ServerHandle {
        let socket = cfg.socket.clone();
        let server = Arc::new(Server::new(cfg));
        let thread = std::thread::spawn(move || server.run());
        // The listener binds before the first accept; poll until the
        // socket file connects rather than racing it.
        for _ in 0..200 {
            if UnixStream::connect(&socket).is_ok() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        ServerHandle { thread, socket }
    }

    /// One connection's request loop: frames in, frame sequences out,
    /// until the peer closes or asks for shutdown.
    fn serve_connection(&self, conn: UnixStream) -> io::Result<()> {
        let mut reader = BufReader::new(conn.try_clone()?);
        let mut writer = BufWriter::new(conn);
        while let Some(req) = read_frame(&mut reader)? {
            let keep_going = self.dispatch(&req, &mut writer)?;
            writer.flush()?;
            if !keep_going {
                break;
            }
        }
        Ok(())
    }

    /// Handles one request; returns false when the connection (and for
    /// `shutdown`, the whole server) should wind down.
    fn dispatch(&self, req: &str, w: &mut impl Write) -> io::Result<bool> {
        match str_field(req, "cmd").as_deref() {
            Some("ping") => {
                let served = self.history.lock().expect("history lock").served();
                write_frame(w, &format!("{{\"type\":\"pong\",\"served\":{served}}}"))?;
                Ok(true)
            }
            Some("campaign") => {
                self.run_campaign(req, w)?;
                Ok(true)
            }
            Some("trace") => {
                self.run_trace(req, w)?;
                Ok(true)
            }
            Some("lint") => {
                self.run_lint(req, w)?;
                Ok(true)
            }
            Some("history") => {
                let history = self.history.lock().expect("history lock");
                for e in history.entries() {
                    write_frame(
                        w,
                        &format!(
                            "{{\"type\":\"history-entry\",\"seq\":{},\"request\":\"{}\",\"report\":\"{}\"}}",
                            e.seq,
                            json_escape(&e.request),
                            json_escape(&e.report)
                        ),
                    )?;
                }
                write_frame(
                    w,
                    &format!(
                        "{{\"type\":\"history-end\",\"served\":{},\"retained\":{}}}",
                        history.served(),
                        history.len()
                    ),
                )?;
                Ok(true)
            }
            Some("shutdown") => {
                write_frame(w, "{\"type\":\"bye\"}")?;
                w.flush()?;
                self.shutdown.store(true, Ordering::SeqCst);
                // Wake the accept loop so it observes the flag.
                let _ = UnixStream::connect(&self.cfg.socket);
                Ok(false)
            }
            other => {
                write_frame(
                    w,
                    &format!(
                        "{{\"type\":\"error\",\"error\":\"unknown cmd {}\"}}",
                        json_escape(other.unwrap_or("<none>"))
                    ),
                )?;
                Ok(true)
            }
        }
    }

    /// `campaign`: stream one §4 campaign over the scale's warm
    /// substrate. Frames: `start` (carries the `warm` flag), then one
    /// frame per merged trace plus engine stats (suppress with
    /// `"stream":false`), then the `report` frame with the canonical
    /// byte-stable report text.
    fn run_campaign(&self, req: &str, w: &mut impl Write) -> io::Result<()> {
        let scale_name = str_field(req, "scale").unwrap_or_else(|| "quick".into());
        let Some((idx, scale)) = scale_by_name(&scale_name) else {
            return write_frame(
                w,
                &format!(
                    "{{\"type\":\"error\",\"error\":\"unknown scale {}\"}}",
                    json_escape(&scale_name)
                ),
            );
        };
        let jobs = num_field(req, "jobs").map_or(1, |n| n as usize);
        let faults = match str_field(req, "faults") {
            Some(name) => match FaultScenario::parse(&name) {
                Some(sc) => sc,
                None => {
                    return write_frame(
                        w,
                        &format!(
                            "{{\"type\":\"error\",\"error\":\"unknown fault scenario {}\"}}",
                            json_escape(&name)
                        ),
                    );
                }
            },
            None => FaultScenario::Clean,
        };
        let scheduling = match str_field(req, "scheduling").as_deref() {
            Some("stealing") => Scheduling::Stealing,
            _ => Scheduling::VpBatches,
        };
        let stream = crate::proto::bool_field(req, "stream").unwrap_or(true);
        let (internet, warm) = self.substrate(idx, scale);
        write_frame(
            w,
            &format!("{{\"type\":\"start\",\"scale\":\"{scale_name}\",\"warm\":{warm}}}"),
        )?;
        w.flush()?;
        let cfg = campaign_config_for(scale, jobs, faults, scheduling);
        let result = if stream {
            let mut sink = FrameSink { out: w };
            campaign_over(&internet, &cfg, &mut sink)
        } else {
            campaign_over(&internet, &cfg, &mut wormhole_probe::NullSink)
        };
        let report = result.report().text().to_string();
        write_frame(
            w,
            &format!(
                "{{\"type\":\"report\",\"warm\":{warm},\"traces\":{},\"probes\":{},\
                 \"snapshot_checksum\":{},\"analysis_seconds\":{:.6},\"report\":\"{}\"}}",
                result.traces.len(),
                result.probes,
                result.snapshot_checksum,
                result.timings.analysis_seconds,
                json_escape(&report)
            ),
        )?;
        self.history
            .lock()
            .expect("history lock")
            .push(req.to_string(), report);
        Ok(())
    }

    /// `trace`: one traceroute over the warm substrate, from vantage
    /// point `vp` (default 0) to `dst`.
    fn run_trace(&self, req: &str, w: &mut impl Write) -> io::Result<()> {
        let scale_name = str_field(req, "scale").unwrap_or_else(|| "quick".into());
        let Some((idx, scale)) = scale_by_name(&scale_name) else {
            return write_frame(
                w,
                &format!(
                    "{{\"type\":\"error\",\"error\":\"unknown scale {}\"}}",
                    json_escape(&scale_name)
                ),
            );
        };
        let Some(dst) = str_field(req, "dst").and_then(|d| d.parse().ok()) else {
            return write_frame(
                w,
                "{\"type\":\"error\",\"error\":\"trace needs a dst address\"}",
            );
        };
        let vp = num_field(req, "vp").map_or(0, |n| n as usize);
        let (internet, warm) = self.substrate(idx, scale);
        if vp >= internet.vps.len() {
            return write_frame(
                w,
                &format!(
                    "{{\"type\":\"error\",\"error\":\"vp {vp} out of range ({} vantage points)\"}}",
                    internet.vps.len()
                ),
            );
        }
        let mut sess = Session::new(&internet.net, &internet.cp, internet.vps[vp]);
        sess.set_opts(TracerouteOpts::default());
        let trace = sess.traceroute(dst);
        write_frame(w, &trace_jsonl(vp, &trace))?;
        write_frame(
            w,
            &format!(
                "{{\"type\":\"done\",\"warm\":{warm},\"probes\":{}}}",
                sess.stats.probes
            ),
        )
    }

    /// `lint`: static analysis of the scale's warm substrate.
    fn run_lint(&self, req: &str, w: &mut impl Write) -> io::Result<()> {
        let scale_name = str_field(req, "scale").unwrap_or_else(|| "quick".into());
        let Some((idx, scale)) = scale_by_name(&scale_name) else {
            return write_frame(
                w,
                &format!(
                    "{{\"type\":\"error\",\"error\":\"unknown scale {}\"}}",
                    json_escape(&scale_name)
                ),
            );
        };
        let (internet, warm) = self.substrate(idx, scale);
        let diags = wormhole_lint::check_internet(&internet);
        let (errors, warns, infos) = wormhole_lint::count(&diags);
        write_frame(
            w,
            &format!(
                "{{\"type\":\"lint\",\"warm\":{warm},\"errors\":{errors},\"warnings\":{warns},\
                 \"notes\":{infos},\"report\":\"{}\"}}",
                json_escape(&wormhole_lint::render(&diags))
            ),
        )
    }
}

/// Streams campaign traces as protocol frames: the serve-side twin of
/// the CLI's `JsonlSink` — both emit [`trace_jsonl`] lines, so a serve
/// session and `wormhole-cli campaign --emit jsonl` agree byte for
/// byte on every trace line.
struct FrameSink<'a, W: Write> {
    out: &'a mut W,
}

impl<W: Write> TraceSink for FrameSink<'_, W> {
    fn on_trace(&mut self, vp: usize, trace: &wormhole_probe::Trace) {
        let _ = write_frame(self.out, &trace_jsonl(vp, trace));
    }

    fn on_stats(&mut self, delta: &wormhole_net::EngineStats) {
        let _ = write_frame(self.out, &wormhole_probe::sink::stats_jsonl(delta));
    }

    fn on_phase(&mut self, phase: &str) {
        let _ = write_frame(
            self.out,
            &format!("{{\"type\":\"phase\",\"phase\":\"{phase}\"}}"),
        );
    }
}

/// A blocking protocol client: one frame out, frames in until the
/// response's terminal frame.
#[derive(Debug)]
pub struct Client {
    stream: UnixStream,
}

/// Response frame types that end a request's frame sequence.
fn is_terminal(frame: &str) -> bool {
    matches!(
        str_field(frame, "type").as_deref(),
        Some("report" | "done" | "error" | "pong" | "bye" | "history-end" | "lint")
    )
}

impl Client {
    /// Connects to a server socket.
    pub fn connect(socket: impl AsRef<std::path::Path>) -> io::Result<Client> {
        Ok(Client {
            stream: UnixStream::connect(socket)?,
        })
    }

    /// Sends one request frame and collects every response frame up to
    /// and including the terminal one.
    pub fn request(&mut self, req: &str) -> io::Result<Vec<String>> {
        write_frame(&mut self.stream, req)?;
        self.stream.flush()?;
        let mut frames = Vec::new();
        loop {
            match read_frame(&mut self.stream)? {
                None => break,
                Some(f) => {
                    let done = is_terminal(&f);
                    frames.push(f);
                    if done {
                        break;
                    }
                }
            }
        }
        Ok(frames)
    }

    /// Asks the server to exit its accept loop.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.request("{\"cmd\":\"shutdown\"}").map(|_| ())
    }
}
