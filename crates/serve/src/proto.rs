//! The wire protocol: length-prefixed JSON frames over a local stream.
//!
//! Every message — request or response — is one UTF-8 JSON text
//! prefixed by its byte length as a 4-byte big-endian integer. Framing
//! is independent of content, so a reader never needs to scan for
//! delimiters inside JSON, and a streaming campaign response is just a
//! sequence of frames ending in a `"report"` (or `"error"`) frame.
//!
//! Requests are flat JSON objects; the parser here is the same
//! hand-rolled field extraction the bench harness uses (the workspace
//! is dependency-free, and the protocol's own emitter never produces
//! strings needing escapes in the fields we extract).

use std::io::{self, Read, Write};

/// Refuse frames above this size: a length prefix this large means a
/// corrupt stream or a hostile peer, not a real request.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Writes one frame: 4-byte big-endian length, then the payload bytes.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload.as_bytes())
}

/// Reads one frame. `Ok(None)` on a clean end-of-stream (the peer
/// closed between frames); an error on a truncated frame or an
/// oversized length prefix.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Escapes `s` for embedding in a JSON string literal (the report
/// frames carry multi-line report text).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`json_escape`] over a string-field value.
pub fn json_unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(c) => out.push(c),
            None => {}
        }
    }
    out
}

/// The text following `"key":` and any whitespace around the colon —
/// clients are not required to send compact JSON. Occurrences of
/// `"key"` not followed by a colon (i.e. as a string *value*) are
/// skipped.
fn after_key<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\"");
    let mut from = 0;
    while let Some(at) = line[from..].find(&pat) {
        let rest = line[from + at + pat.len()..].trim_start();
        if let Some(value) = rest.strip_prefix(':') {
            return Some(value.trim_start());
        }
        from += at + pat.len();
    }
    None
}

/// The quoted string following `"key":` in a flat JSON object. Handles
/// escaped content (the value runs to the first unescaped quote).
pub fn str_field(line: &str, key: &str) -> Option<String> {
    let rest = after_key(line, key)?.strip_prefix('"')?;
    let mut end = None;
    let bytes = rest.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                end = Some(i);
                break;
            }
            _ => i += 1,
        }
    }
    Some(json_unescape(&rest[..end?]))
}

/// The number following `"key":` in a flat JSON object.
pub fn num_field(line: &str, key: &str) -> Option<f64> {
    let rest = after_key(line, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The boolean following `"key":` in a flat JSON object.
pub fn bool_field(line: &str, key: &str) -> Option<bool> {
    let rest = after_key(line, key)?;
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"cmd\":\"ping\"}").unwrap();
        write_frame(&mut buf, "second").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("{\"cmd\":\"ping\"}")
        );
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("second"));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn truncated_and_oversized_frames_error() {
        let mut r = Cursor::new(vec![0, 0, 0, 9, b'x']);
        assert!(read_frame(&mut r).is_err());
        let mut r = Cursor::new((MAX_FRAME + 1).to_be_bytes().to_vec());
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn escaping_round_trips() {
        let text = "line one\nline \"two\"\t\\slash\u{1}";
        assert_eq!(json_unescape(&json_escape(text)), text);
        let frame = format!(
            "{{\"type\":\"report\",\"report\":\"{}\"}}",
            json_escape(text)
        );
        assert_eq!(str_field(&frame, "report").as_deref(), Some(text));
    }

    #[test]
    fn field_extraction() {
        let line = "{\"cmd\":\"campaign\",\"scale\":\"quick\",\"jobs\":4,\"warm\":true}";
        assert_eq!(str_field(line, "cmd").as_deref(), Some("campaign"));
        assert_eq!(str_field(line, "scale").as_deref(), Some("quick"));
        assert_eq!(num_field(line, "jobs"), Some(4.0));
        assert_eq!(bool_field(line, "warm"), Some(true));
        assert_eq!(str_field(line, "missing"), None);
    }

    #[test]
    fn field_extraction_tolerates_whitespace() {
        // What a default serializer emits: spaces after colons.
        let line = "{\"cmd\": \"trace\", \"jobs\" : 2, \"warm\": false}";
        assert_eq!(str_field(line, "cmd").as_deref(), Some("trace"));
        assert_eq!(num_field(line, "jobs"), Some(2.0));
        assert_eq!(bool_field(line, "warm"), Some(false));
    }
}
