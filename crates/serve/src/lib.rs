//! `wormhole-serve`: a resident campaign service over warm substrates.
//!
//! Building a synthetic Internet dominates the cost of every one-shot
//! campaign run — at the thousandfold scale the substrate build takes
//! multiples of the campaign itself. This crate keeps a long-lived
//! process holding one built [`wormhole_topo::Internet`] per scale and
//! serves campaign, trace, and lint requests over a length-prefixed
//! JSON protocol on a local Unix socket:
//!
//! * [`proto`] — the framing (4-byte big-endian length + JSON text)
//!   and the flat-object field extractors;
//! * [`history`] — a bounded circular buffer of recent campaign
//!   reports;
//! * [`server`] — the accept loop, the per-scale warm-substrate store,
//!   the streaming campaign handler, and a blocking [`Client`].
//!
//! Campaign responses stream incrementally — one frame per merged
//! trace, emitted through the same [`wormhole_probe::TraceSink`] path
//! as `wormhole-cli campaign --emit jsonl` — and end with the
//! canonical byte-stable report, so a serve session and a batch CLI
//! run agree byte for byte. Every response carries a `warm` flag
//! proving whether the substrate was reused or built for this request.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod history;
pub mod proto;
pub mod server;

pub use history::{History, HistoryEntry};
pub use proto::{read_frame, write_frame};
pub use server::{Client, ServeConfig, Server, ServerHandle};
