//! A bounded circular buffer of recently served campaign reports.
//!
//! The server keeps the last `cap` reports so a client can ask "what
//! ran here recently" without re-running anything. Old entries are
//! evicted front-first; sequence numbers keep growing, so a client can
//! tell eviction apart from an empty server.

use std::collections::VecDeque;

/// One served campaign, reduced to what the `history` request returns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistoryEntry {
    /// Monotone sequence number, 0-based over the server's lifetime.
    pub seq: u64,
    /// The request line that produced the report.
    pub request: String,
    /// The canonical report text.
    pub report: String,
}

/// The bounded report history.
#[derive(Debug)]
pub struct History {
    cap: usize,
    next_seq: u64,
    entries: VecDeque<HistoryEntry>,
}

impl History {
    /// An empty history holding at most `cap` entries (`cap == 0`
    /// disables recording entirely).
    pub fn new(cap: usize) -> History {
        History {
            cap,
            next_seq: 0,
            entries: VecDeque::with_capacity(cap.min(64)),
        }
    }

    /// Records a served report, evicting the oldest entry when full.
    /// Returns the sequence number assigned (also counted when
    /// recording is disabled, so seq numbers always mean "campaigns
    /// served").
    pub fn push(&mut self, request: String, report: String) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.cap == 0 {
            return seq;
        }
        if self.entries.len() == self.cap {
            self.entries.pop_front();
        }
        self.entries.push_back(HistoryEntry {
            seq,
            request,
            report,
        });
        seq
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &HistoryEntry> {
        self.entries.iter()
    }

    /// Total campaigns ever recorded (≥ the retained count).
    pub fn served(&self) -> u64 {
        self.next_seq
    }

    /// How many entries are currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_front_first_and_keeps_sequence() {
        let mut h = History::new(2);
        assert!(h.is_empty());
        assert_eq!(h.push("a".into(), "ra".into()), 0);
        assert_eq!(h.push("b".into(), "rb".into()), 1);
        assert_eq!(h.push("c".into(), "rc".into()), 2);
        let kept: Vec<_> = h.entries().map(|e| (e.seq, e.request.as_str())).collect();
        assert_eq!(kept, [(1, "b"), (2, "c")]);
        assert_eq!(h.served(), 3);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn zero_capacity_counts_but_never_retains() {
        let mut h = History::new(0);
        assert_eq!(h.push("a".into(), "r".into()), 0);
        assert_eq!(h.push("b".into(), "r".into()), 1);
        assert!(h.is_empty());
        assert_eq!(h.served(), 2);
    }
}
