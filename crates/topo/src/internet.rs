//! Synthetic-Internet generation.
//!
//! The paper's campaign ran against the real Internet from PlanetLab.
//! Our substitute is a generated inter-domain topology: the ten persona
//! transit ASes of Tables 4–5 (PoP-structured, MPLS configured per
//! persona), stub ASes multihomed to them, and vantage-point hosts in a
//! subset of the stubs. Everything is seeded and deterministic.

use crate::persona::{paper_personas, AsPersona, PopMesh, VendorMix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wormhole_net::{
    Asn, ControlPlane, LinkOpts, Network, NetworkBuilder, PoppingMode, RelKind, RouterConfig,
    RouterId, Vendor,
};

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct InternetConfig {
    /// RNG seed; same seed ⇒ same Internet.
    pub seed: u64,
    /// Transit-AS personas.
    pub personas: Vec<AsPersona>,
    /// Number of stub ASes.
    pub n_stubs: usize,
    /// Number of vantage points (each in its own stub).
    pub n_vps: usize,
    /// Probability that two non-adjacent personas peer.
    pub peer_prob: f64,
    /// Fraction of persona core routers that never answer probes.
    pub silent_share: f64,
    /// Number of leading personas forming a tier-1 peer clique, with
    /// every later persona their customer. `0` keeps the flat peer
    /// chain. Valley-free routing crosses at most one peer edge, so a
    /// flat mesh strands most AS pairs once the mesh outgrows its
    /// chord density; the hierarchy keeps every AS reachable from
    /// every stub at any scale (up to a tier-1, across the clique,
    /// down to the destination).
    pub tier1: usize,
}

impl Default for InternetConfig {
    fn default() -> InternetConfig {
        InternetConfig {
            seed: 1717,
            personas: paper_personas(),
            n_stubs: 40,
            n_vps: 10,
            peer_prob: 0.5,
            silent_share: 0.02,
            tier1: 0,
        }
    }
}

impl InternetConfig {
    /// A small three-persona Internet for fast tests (Tinet, Level3 and
    /// DTAG: invisible deployments with multi-LSR tunnels and a rich
    /// signature mix).
    pub fn small(seed: u64) -> InternetConfig {
        let personas: Vec<AsPersona> = paper_personas().into_iter().skip(2).take(3).collect();
        InternetConfig {
            seed,
            personas,
            n_stubs: 8,
            n_vps: 3,
            peer_prob: 1.0,
            silent_share: 0.0,
            tier1: 0,
        }
    }

    /// A tenfold Internet: the ten paper personas plus ninety transit
    /// ASes drawn from the §1–2 operator-survey priors
    /// ([`crate::persona::random_persona`]) — one hundred transit ASes
    /// in total, the scale target for the sharded campaign executor.
    /// Peering probability is lowered so interconnect density stays
    /// near the default Internet's per-AS average.
    pub fn tenfold(seed: u64) -> InternetConfig {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7E_2F01D);
        let mut personas = paper_personas();
        personas.extend(
            (0..90).map(|i| crate::persona::random_persona(Asn(21_000 + i), "survey", &mut rng)),
        );
        InternetConfig {
            seed,
            personas,
            n_stubs: 120,
            n_vps: 10,
            peer_prob: 0.04,
            silent_share: 0.02,
            tier1: 0,
        }
    }

    /// A thousandfold Internet: the ten paper personas plus 990
    /// survey-prior transit ASes — a thousand transit ASes riding the
    /// extended address plan (`NetworkBuilder` packs four ASes per
    /// second octet past slot 245). Survey personas are shrunken to at
    /// most four PoPs with two edges each (~12 routers): at this scale
    /// the campaign measures breadth across ASes, not depth within
    /// them, and the full survey sizes would make the substrate an
    /// order of magnitude bigger than the address space needs to prove.
    /// Peering probability keeps the per-AS interconnect average near
    /// the tenfold Internet's, and the ten paper personas form a
    /// tier-1 clique providing transit to the survey ASes (`tier1`):
    /// at a thousand ASes a flat peer mesh strands almost every pair
    /// under the valley-free one-peer-hop rule, while a provider
    /// hierarchy keeps the whole survey reachable from every VP.
    pub fn thousandfold(seed: u64) -> InternetConfig {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7E_2F01D7);
        let mut personas = paper_personas();
        personas.extend((0..990).map(|i| {
            let mut p = crate::persona::random_persona(Asn(21_000 + i), "survey", &mut rng);
            p.pops = p.pops.min(4);
            p.edges_per_pop = p.edges_per_pop.min(2);
            p
        }));
        InternetConfig {
            seed,
            personas,
            n_stubs: 150,
            n_vps: 10,
            peer_prob: 0.0004,
            silent_share: 0.02,
            tier1: 10,
        }
    }
}

/// A generated Internet with its control plane and vantage points.
#[derive(Debug)]
pub struct Internet {
    /// The network.
    pub net: Network,
    /// The computed control plane.
    pub cp: ControlPlane,
    /// Vantage-point host routers.
    pub vps: Vec<RouterId>,
    /// The persona ASes (index-aligned with `config.personas`).
    pub personas: Vec<AsPersona>,
    /// The stub AS numbers.
    pub stub_asns: Vec<Asn>,
}

impl Internet {
    /// The persona describing `asn`, if it is a transit AS.
    pub fn persona_of(&self, asn: Asn) -> Option<&AsPersona> {
        self.personas.iter().find(|p| p.asn == asn)
    }
}

fn sample_vendor(mix: VendorMix, rng: &mut StdRng) -> Vendor {
    let x: f64 = rng.gen();
    let mut acc = 0.0;
    for &(v, w) in mix {
        acc += w;
        if x < acc {
            return v;
        }
    }
    mix.last().expect("non-empty mix").0
}

fn persona_router_config(p: &AsPersona, mix: VendorMix, rng: &mut StdRng) -> RouterConfig {
    let vendor = sample_vendor(mix, rng);
    let mut cfg = if p.mpls {
        RouterConfig::mpls_router(vendor)
    } else {
        RouterConfig::ip_router(vendor)
    };
    cfg.ttl_propagate = rng.gen::<f64>() < p.propagate_share;
    if p.uhp {
        cfg.popping = PoppingMode::Uhp;
    }
    if let Some(policy) = p.ldp_override {
        cfg.ldp_policy = policy;
    }
    cfg
}

struct PersonaRouters {
    edges: Vec<RouterId>,
}

fn build_persona(
    b: &mut NetworkBuilder,
    p: &AsPersona,
    rng: &mut StdRng,
    silent_share: f64,
) -> PersonaRouters {
    let mut cores = Vec::with_capacity(p.pops);
    let mut edges = Vec::new();
    for pop in 0..p.pops {
        let mut cfg = persona_router_config(p, p.core_vendors, rng);
        if rng.gen::<f64>() < silent_share {
            cfg = cfg.silent();
        }
        let core = b.add_router(&format!("{}-C{pop}", p.name), p.asn, cfg);
        cores.push(core);
        for e in 0..p.edges_per_pop {
            let cfg = persona_router_config(p, p.edge_vendors, rng);
            let pe = b.add_router(&format!("{}-E{pop}.{e}", p.asn.0), p.asn, cfg);
            b.link(core, pe, LinkOpts::symmetric(10, 0.5));
            edges.push(pe);
        }
    }
    // Backbone between PoP cores.
    let interpop = LinkOpts::symmetric(10, p.interpop_delay_ms);
    for i in 0..p.pops.saturating_sub(1) {
        b.link(cores[i], cores[i + 1], interpop);
    }
    match p.mesh {
        PopMesh::Chain => {}
        PopMesh::Ring => {
            if p.pops > 2 {
                b.link(cores[p.pops - 1], cores[0], interpop);
            }
        }
        PopMesh::Chords(prob) => {
            if p.pops > 2 {
                b.link(cores[p.pops - 1], cores[0], interpop);
            }
            for i in 0..p.pops {
                for j in i + 2..p.pops {
                    if (i, j) == (0, p.pops - 1) {
                        continue; // the ring's wrap link
                    }
                    if rng.gen::<f64>() < prob {
                        b.link(cores[i], cores[j], interpop);
                    }
                }
            }
        }
    }
    PersonaRouters { edges }
}

/// A generated topology before its control plane is computed.
///
/// [`generate`] builds the plane immediately; the substrate cache
/// ([`crate::cache`]) regenerates the (cheap, deterministic) topology
/// and then restores the (expensive) plane tables from disk instead.
pub(crate) struct Topology {
    pub(crate) net: Network,
    pub(crate) vps: Vec<RouterId>,
    pub(crate) stub_asns: Vec<Asn>,
}

/// Generates the network topology from `config` without computing the
/// control plane.
pub(crate) fn generate_topology(config: &InternetConfig) -> Topology {
    assert!(!config.personas.is_empty(), "need at least one persona");
    assert!(
        config.n_vps <= config.n_stubs,
        "each vantage point lives in its own stub"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = NetworkBuilder::new();

    // Transit ASes.
    let persona_routers: Vec<PersonaRouters> = config
        .personas
        .iter()
        .map(|p| build_persona(&mut b, p, &mut rng, config.silent_share))
        .collect();

    // Transit AS-level structure. Flat (`tier1 == 0`): a peer chain
    // guarantees connectivity, chords densify. Hierarchical: the first
    // `tier1` personas form a peer clique and every later persona is
    // their customer, so a valley-free path (up, one peer edge, down)
    // exists between any two ASes at any scale; sparse lateral peer
    // chords among the customers add path diversity.
    let n = config.personas.len();
    let t = config.tier1.min(n);
    let mut peerings: Vec<(usize, usize)> = Vec::new();
    let mut transit_customers: Vec<(usize, usize)> = Vec::new(); // (provider, customer)
    if t == 0 {
        peerings.extend((0..n.saturating_sub(1)).map(|i| (i, i + 1)));
        for i in 0..n {
            for j in i + 2..n {
                if rng.gen::<f64>() < config.peer_prob {
                    peerings.push((i, j));
                }
            }
        }
    } else {
        for i in 0..t {
            for j in i + 1..t {
                peerings.push((i, j));
            }
        }
        for c in t..n {
            let n_providers = 1 + usize::from(rng.gen::<f64>() < 0.3);
            let mut chosen: Vec<usize> = Vec::new();
            while chosen.len() < n_providers {
                let p = rng.gen_range(0..t);
                if !chosen.contains(&p) {
                    chosen.push(p);
                }
            }
            for p in chosen {
                transit_customers.push((p, c));
            }
        }
        for i in t..n {
            for j in i + 2..n {
                if rng.gen::<f64>() < config.peer_prob {
                    peerings.push((i, j));
                }
            }
        }
    }
    for &(i, j) in &peerings {
        b.as_rel(
            config.personas[i].asn,
            config.personas[j].asn,
            RelKind::Peer,
        );
        // One or two physical interconnects per peering.
        let links = 1 + rng.gen_range(0..2usize);
        for _ in 0..links {
            let ei = persona_routers[i].edges[rng.gen_range(0..persona_routers[i].edges.len())];
            let ej = persona_routers[j].edges[rng.gen_range(0..persona_routers[j].edges.len())];
            b.link(ei, ej, LinkOpts::symmetric(10, 2.0));
        }
    }
    for &(p, c) in &transit_customers {
        b.as_rel(
            config.personas[p].asn,
            config.personas[c].asn,
            RelKind::ProviderCustomer,
        );
        let links = 1 + rng.gen_range(0..2usize);
        for _ in 0..links {
            let ep = persona_routers[p].edges[rng.gen_range(0..persona_routers[p].edges.len())];
            let ec = persona_routers[c].edges[rng.gen_range(0..persona_routers[c].edges.len())];
            b.link(ep, ec, LinkOpts::symmetric(10, 2.0));
        }
    }

    // Stub ASes, multihomed customers of the transit personas.
    let mut stub_asns = Vec::with_capacity(config.n_stubs);
    let mut stub_gateways = Vec::with_capacity(config.n_stubs);
    for s in 0..config.n_stubs {
        let asn = Asn(60000 + s as u32);
        stub_asns.push(asn);
        let gw = b.add_router(
            &format!("stub{s}-gw"),
            asn,
            RouterConfig::ip_router(Vendor::CiscoIos),
        );
        stub_gateways.push(gw);
        // Optionally a second internal router.
        if rng.gen::<f64>() < 0.5 {
            let r2 = b.add_router(
                &format!("stub{s}-r1"),
                asn,
                RouterConfig::ip_router(if rng.gen::<f64>() < 0.5 {
                    Vendor::BrocadeLinux
                } else {
                    Vendor::CiscoIos
                }),
            );
            b.link(gw, r2, LinkOpts::symmetric(10, 0.5));
        }
        // One or two providers.
        let n_providers = 1 + usize::from(rng.gen::<f64>() < 0.4);
        let mut provider_idx: Vec<usize> = Vec::new();
        while provider_idx.len() < n_providers {
            let p = rng.gen_range(0..n);
            if !provider_idx.contains(&p) {
                provider_idx.push(p);
            }
        }
        for p in provider_idx {
            b.as_rel(config.personas[p].asn, asn, RelKind::ProviderCustomer);
            let pe = persona_routers[p].edges[rng.gen_range(0..persona_routers[p].edges.len())];
            b.link(pe, gw, LinkOpts::symmetric(10, 1.0));
        }
    }

    // Vantage points: hosts behind the first `n_vps` stub gateways.
    let mut vps = Vec::with_capacity(config.n_vps);
    for (i, &gw) in stub_gateways.iter().take(config.n_vps).enumerate() {
        let vp = b.add_router(&format!("VP{i}"), stub_asns[i], RouterConfig::host());
        b.link(vp, gw, LinkOpts::symmetric(10, 0.2));
        vps.push(vp);
    }

    let net = b.build().expect("generated network is well-formed");
    Topology {
        net,
        vps,
        stub_asns,
    }
}

/// Generates an Internet from `config`.
pub fn generate(config: &InternetConfig) -> Internet {
    let topo = generate_topology(config);
    let cp = ControlPlane::build(&topo.net).expect("generated network has a control plane");
    Internet {
        net: topo.net,
        cp,
        vps: topo.vps,
        personas: config.personas.clone(),
        stub_asns: topo.stub_asns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_net::{Engine, Packet};

    #[test]
    fn small_internet_builds_and_routes() {
        let internet = generate(&InternetConfig::small(7));
        assert_eq!(internet.vps.len(), 3);
        assert!(internet.net.num_routers() > 50);
        // Every VP can ping every persona edge loopback.
        let mut eng = Engine::new(&internet.net, &internet.cp);
        let vp = internet.vps[0];
        let src = internet.net.router(vp).loopback;
        let mut ok = 0;
        let mut total = 0;
        for asn in internet.personas.iter().map(|p| p.asn) {
            for &rid in internet.net.as_members(asn).iter().take(5) {
                total += 1;
                let dst = internet.net.router(rid).loopback;
                let out = eng.send(vp, Packet::echo_request(src, dst, 64, 3, 1, 1));
                if out.reply().is_some() {
                    ok += 1;
                }
            }
        }
        assert_eq!(ok, total, "all persona routers reachable");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(&InternetConfig::small(42));
        let b = generate(&InternetConfig::small(42));
        assert_eq!(a.net.num_routers(), b.net.num_routers());
        assert_eq!(a.net.num_links(), b.net.num_links());
        for (ra, rb) in a.net.routers().iter().zip(b.net.routers()) {
            assert_eq!(ra.name, rb.name);
            assert_eq!(ra.loopback, rb.loopback);
            assert_eq!(ra.config.vendor, rb.config.vendor);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&InternetConfig::small(1));
        let b = generate(&InternetConfig::small(2));
        // Vendor sampling should differ somewhere.
        let differs = a
            .net
            .routers()
            .iter()
            .zip(b.net.routers())
            .take(40)
            .any(|(x, y)| x.config.vendor != y.config.vendor || x.name != y.name);
        assert!(differs || a.net.num_links() != b.net.num_links());
    }

    #[test]
    fn tenfold_internet_builds() {
        let t0 = std::time::Instant::now();
        let cfg = InternetConfig::tenfold(8);
        assert_eq!(cfg.personas.len(), 100);
        let internet = generate(&cfg);
        assert_eq!(internet.vps.len(), 10);
        assert!(
            internet.net.num_routers() > 2_000,
            "tenfold Internet should be an order of magnitude beyond paper scale, got {}",
            internet.net.num_routers()
        );
        // Paper personas keep their identities at the larger scale.
        assert!(internet.persona_of(Asn(3320)).is_some());
        assert!(internet.persona_of(Asn(21_000)).is_some());
        eprintln!(
            "tenfold: {} routers, {} links in {:?}",
            internet.net.num_routers(),
            internet.net.num_links(),
            t0.elapsed()
        );
    }

    #[test]
    #[ignore = "thousand-AS build is fast in release but slow under debug; run explicitly or via the bench"]
    fn thousandfold_internet_builds() {
        let t0 = std::time::Instant::now();
        let cfg = InternetConfig::thousandfold(8);
        assert_eq!(cfg.personas.len(), 1000);
        let internet = generate(&cfg);
        assert_eq!(internet.vps.len(), 10);
        assert!(
            internet.net.num_routers() > 10_000,
            "thousandfold Internet should cross ten thousand routers, got {}",
            internet.net.num_routers()
        );
        assert!(internet.persona_of(Asn(3320)).is_some());
        assert!(internet.persona_of(Asn(21_989)).is_some());
        eprintln!(
            "thousandfold: {} routers, {} links in {:?}",
            internet.net.num_routers(),
            internet.net.num_links(),
            t0.elapsed()
        );
    }

    #[test]
    fn full_paper_internet_builds() {
        let internet = generate(&InternetConfig {
            n_stubs: 12,
            n_vps: 4,
            ..InternetConfig::default()
        });
        assert_eq!(internet.personas.len(), 10);
        assert!(internet.persona_of(Asn(3320)).is_some());
        assert!(internet.persona_of(Asn(64000)).is_none());
        // BT persona routers are UHP.
        let bt = internet.net.as_members(Asn(2856));
        assert!(!bt.is_empty());
        assert!(bt
            .iter()
            .all(|&r| internet.net.router(r).config.popping == PoppingMode::Uhp));
    }
}
