//! Operator-survey constants (paper §1–2).
//!
//! The paper surveyed 50 operators (Aug 28 – Sep 12, 2017). These
//! percentages parameterise the synthetic-Internet generator so that the
//! deployed configuration mix matches what the paper reports.

/// Share of surveyed operators deploying MPLS at all.
pub const MPLS_DEPLOYED: f64 = 0.87;

/// Share of operators using the `no-ttl-propagate` option (invisible
/// tunnels).
pub const NO_TTL_PROPAGATE: f64 = 0.48;

/// Share of operators deploying UHP.
pub const UHP_DEPLOYED: f64 = 0.10;

/// Label distribution protocol mix.
pub mod labeling {
    /// LDP only.
    pub const LDP_ONLY: f64 = 0.50;
    /// RSVP-TE only.
    pub const RSVP_TE_ONLY: f64 = 0.08;
    /// LDP and RSVP-TE together.
    pub const LDP_AND_RSVP_TE: f64 = 0.42;
}

/// Router hardware mix.
pub mod hardware {
    /// Mostly Cisco.
    pub const CISCO: f64 = 0.58;
    /// Mostly Juniper.
    pub const JUNIPER: f64 = 0.28;
    /// A mix of technologies.
    pub const MIXED: f64 = 0.25;
}

/// The HDN degree threshold of §4 (ASR9000-class PE: 20 linecards × 16
/// interfaces bounds a plausible physical degree well above 128).
pub const HDN_DEGREE_THRESHOLD: usize = 128;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_are_probabilities() {
        for v in [
            MPLS_DEPLOYED,
            NO_TTL_PROPAGATE,
            UHP_DEPLOYED,
            labeling::LDP_ONLY,
            labeling::RSVP_TE_ONLY,
            labeling::LDP_AND_RSVP_TE,
            hardware::CISCO,
            hardware::JUNIPER,
            hardware::MIXED,
        ] {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn labeling_mix_sums_to_one() {
        let total = labeling::LDP_ONLY + labeling::RSVP_TE_ONLY + labeling::LDP_AND_RSVP_TE;
        assert!((total - 1.0).abs() < 1e-9);
    }
}
