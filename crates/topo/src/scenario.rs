//! Hand-built scenario topologies, foremost the paper's GNS3 testbed.
//!
//! Fig. 2 of the paper: a vantage point behind CE1 in AS1, a transit
//! AS2 running MPLS/LDP over the line PE1 – P1 – P2 – P3 – PE2, and the
//! target CE2 in AS3. §3.3 evaluates four configurations of AS2 on this
//! topology; [`Fig2Config`] reproduces them.

use wormhole_net::{
    Addr, Asn, ControlPlane, LdpPolicy, LinkOpts, Network, NetworkBuilder, PoppingMode, RelKind,
    RouterConfig, RouterId, Vendor,
};

/// The four §3.3 emulation configurations of the transit AS.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Fig2Config {
    /// PHP, `ttl-propagate`, LDP on all prefixes: explicit tunnels
    /// (Fig. 4a).
    Default,
    /// Like `Default` but `no mpls ip propagate-ttl`: invisible tunnels,
    /// revealed one LSR at a time by BRPR (Fig. 4b).
    BackwardRecursive,
    /// `no-ttl-propagate` + LDP restricted to host routes
    /// (`mpls ldp label allocate global host-routes`, the Juniper
    /// default): DPR reveals the path in one probe (Fig. 4c).
    ExplicitRoute,
    /// `no-ttl-propagate` + UHP (`mpls ldp explicit-null`): totally
    /// invisible (Fig. 4d).
    TotallyInvisible,
}

impl Fig2Config {
    /// All four configurations, in paper order.
    pub const ALL: [Fig2Config; 4] = [
        Fig2Config::Default,
        Fig2Config::BackwardRecursive,
        Fig2Config::ExplicitRoute,
        Fig2Config::TotallyInvisible,
    ];

    /// The configuration name used in §3.3.
    pub fn name(self) -> &'static str {
        match self {
            Fig2Config::Default => "Default",
            Fig2Config::BackwardRecursive => "Backward Recursive",
            Fig2Config::ExplicitRoute => "Explicit Route",
            Fig2Config::TotallyInvisible => "Totally Invisible",
        }
    }
}

/// Knobs for building Fig. 2 variants beyond the four §3.3 presets
/// (vendor swaps for RTLA validation, min-rule ablation, …).
#[derive(Clone, Debug)]
pub struct Fig2Opts {
    /// Vendor of the LERs (PE1/PE2).
    pub ler_vendor: Vendor,
    /// Vendor of the LSRs (P1..P3).
    pub lsr_vendor: Vendor,
    /// `ttl-propagate` on the MPLS routers.
    pub ttl_propagate: bool,
    /// LDP advertising policy inside AS2.
    pub ldp_policy: LdpPolicy,
    /// UHP instead of PHP.
    pub uhp: bool,
    /// Disable the RFC 3443 min rule on tunnel exit (ablation).
    pub min_on_exit: bool,
    /// Disable RFC 4950 label quoting (old OSes).
    pub rfc4950: bool,
}

impl Fig2Opts {
    /// The §3.3 preset for `config`, with Cisco hardware everywhere.
    pub fn preset(config: Fig2Config) -> Fig2Opts {
        let base = Fig2Opts {
            ler_vendor: Vendor::CiscoIos,
            lsr_vendor: Vendor::CiscoIos,
            ttl_propagate: true,
            ldp_policy: LdpPolicy::AllPrefixes,
            uhp: false,
            min_on_exit: true,
            rfc4950: true,
        };
        match config {
            Fig2Config::Default => base,
            Fig2Config::BackwardRecursive => Fig2Opts {
                ttl_propagate: false,
                ..base
            },
            Fig2Config::ExplicitRoute => Fig2Opts {
                ttl_propagate: false,
                ldp_policy: LdpPolicy::LoopbackOnly,
                ..base
            },
            Fig2Config::TotallyInvisible => Fig2Opts {
                ttl_propagate: false,
                uhp: true,
                ..base
            },
        }
    }

    /// The same preset with Juniper LERs (signature `<255, 64>`), the
    /// setup RTLA requires.
    pub fn preset_juniper_ler(config: Fig2Config) -> Fig2Opts {
        Fig2Opts {
            ler_vendor: Vendor::JuniperJunos,
            ..Fig2Opts::preset(config)
        }
    }
}

/// A built scenario: network, control plane, and the named endpoints a
/// test or example needs.
#[derive(Debug)]
pub struct Scenario {
    /// The network.
    pub net: Network,
    /// Its computed control plane.
    pub cp: ControlPlane,
    /// The vantage point (host behind CE1).
    pub vp: RouterId,
    /// The traceroute target used by the paper (CE2's loopback).
    pub target: Addr,
}

impl Scenario {
    /// The router named `name` (panics if absent — scenario names are
    /// static).
    pub fn router(&self, name: &str) -> RouterId {
        self.net
            .router_by_name(name)
            .unwrap_or_else(|| panic!("no router named {name}"))
            .id
    }

    /// The address of `name`'s interface facing the vantage point (the
    /// "left" interface in the paper's notation, i.e. the one traceroute
    /// reveals).
    pub fn left_addr(&self, name: &str) -> Addr {
        let id = self.router(name);
        let r = self.net.router(id);
        // The paper's line is built left-to-right; the first interface
        // of each router faces left (towards the VP).
        r.ifaces[0].addr
    }

    /// The loopback address of `name`.
    pub fn loopback(&self, name: &str) -> Addr {
        self.net.router(self.router(name)).loopback
    }
}

/// Builds the Fig. 2 testbed under one of the four §3.3 presets.
pub fn gns3_fig2(config: Fig2Config) -> Scenario {
    gns3_fig2_with(Fig2Opts::preset(config))
}

/// Builds the Fig. 2 testbed as an *RSVP-TE-only* deployment: no LDP,
/// two pinned tunnels PE1→PE2 and PE2→PE1 through P1–P3, entered by
/// autoroute. With UHP this is the paper's §8 "truly invisible"
/// configuration that defeats all four techniques.
pub fn gns3_fig2_te(popping: PoppingMode, ttl_propagate: bool) -> Scenario {
    let mut mpls = RouterConfig::mpls_router(Vendor::CiscoIos).ldp(LdpPolicy::None);
    mpls.ttl_propagate = ttl_propagate;
    mpls.popping = popping;
    let mut b = NetworkBuilder::new();
    let vp = b.add_router("VP", Asn(1), RouterConfig::host());
    let ce1 = b.add_router("CE1", Asn(1), RouterConfig::ip_router(Vendor::CiscoIos));
    let pe1 = b.add_router("PE1", Asn(2), mpls.clone());
    let p1 = b.add_router("P1", Asn(2), mpls.clone());
    let p2 = b.add_router("P2", Asn(2), mpls.clone());
    let p3 = b.add_router("P3", Asn(2), mpls.clone());
    let pe2 = b.add_router("PE2", Asn(2), mpls);
    let ce2 = b.add_router("CE2", Asn(3), RouterConfig::ip_router(Vendor::CiscoIos));
    for (x, y) in [
        (vp, ce1),
        (ce1, pe1),
        (pe1, p1),
        (p1, p2),
        (p2, p3),
        (p3, pe2),
        (pe2, ce2),
    ] {
        b.link(x, y, LinkOpts::symmetric(10, 1.0));
    }
    b.as_rel(Asn(2), Asn(1), RelKind::ProviderCustomer);
    b.as_rel(Asn(2), Asn(3), RelKind::ProviderCustomer);
    b.te_tunnel(vec![pe1, p1, p2, p3, pe2], popping);
    b.te_tunnel(vec![pe2, p3, p2, p1, pe1], popping);
    let net = b.build().expect("fig2-te builds");
    let cp = ControlPlane::build(&net).expect("fig2-te control plane");
    let target = net.router_by_name("CE2").unwrap().loopback;
    let vp = net.router_by_name("VP").unwrap().id;
    Scenario {
        net,
        cp,
        vp,
        target,
    }
}

/// Builds the Fig. 2 testbed with explicit options.
pub fn gns3_fig2_with(opts: Fig2Opts) -> Scenario {
    let mut ler = RouterConfig::mpls_router(opts.ler_vendor).ldp(opts.ldp_policy);
    let mut lsr = RouterConfig::mpls_router(opts.lsr_vendor).ldp(opts.ldp_policy);
    for cfg in [&mut ler, &mut lsr] {
        cfg.ttl_propagate = opts.ttl_propagate;
        cfg.min_on_exit = opts.min_on_exit;
        cfg.rfc4950 = opts.rfc4950;
        if opts.uhp {
            cfg.popping = wormhole_net::PoppingMode::Uhp;
        }
    }
    let mut b = NetworkBuilder::new();
    let vp = b.add_router("VP", Asn(1), RouterConfig::host());
    let ce1 = b.add_router("CE1", Asn(1), RouterConfig::ip_router(Vendor::CiscoIos));
    let pe1 = b.add_router("PE1", Asn(2), ler.clone());
    let p1 = b.add_router("P1", Asn(2), lsr.clone());
    let p2 = b.add_router("P2", Asn(2), lsr.clone());
    let p3 = b.add_router("P3", Asn(2), lsr);
    let pe2 = b.add_router("PE2", Asn(2), ler);
    let ce2 = b.add_router("CE2", Asn(3), RouterConfig::ip_router(Vendor::CiscoIos));
    for (x, y) in [
        (vp, ce1),
        (ce1, pe1),
        (pe1, p1),
        (p1, p2),
        (p2, p3),
        (p3, pe2),
        (pe2, ce2),
    ] {
        b.link(x, y, LinkOpts::symmetric(10, 1.0));
    }
    b.as_rel(Asn(2), Asn(1), RelKind::ProviderCustomer);
    b.as_rel(Asn(2), Asn(3), RelKind::ProviderCustomer);
    let net = b.build().expect("fig2 builds");
    let cp = ControlPlane::build(&net).expect("fig2 control plane");
    let target = net.router_by_name("CE2").unwrap().loopback;
    let vp = net.router_by_name("VP").unwrap().id;
    Scenario {
        net,
        cp,
        vp,
        target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_net::{Engine, Packet};

    #[test]
    fn builds_all_presets() {
        for config in Fig2Config::ALL {
            let s = gns3_fig2(config);
            assert_eq!(s.net.num_routers(), 8);
            assert_eq!(s.net.num_links(), 7);
            assert_eq!(s.net.as_members(Asn(2)).len(), 5);
        }
    }

    #[test]
    fn names_resolve() {
        let s = gns3_fig2(Fig2Config::Default);
        for name in ["VP", "CE1", "PE1", "P1", "P2", "P3", "PE2", "CE2"] {
            let _ = s.router(name);
        }
        assert_ne!(s.left_addr("PE2"), s.loopback("PE2"));
    }

    #[test]
    fn default_config_is_explicit() {
        let s = gns3_fig2(Fig2Config::Default);
        let mut eng = Engine::new(&s.net, &s.cp);
        let src = s.net.router(s.vp).loopback;
        // TTL 4 probe expires at P2 and quotes its label.
        let out = eng.send(s.vp, Packet::echo_request(src, s.target, 4, 1, 1, 1));
        let r = out.reply().expect("reply");
        assert_eq!(r.from, s.left_addr("P2"));
        assert_eq!(r.mpls_ext.len(), 1);
    }

    #[test]
    fn totally_invisible_hides_everything() {
        let s = gns3_fig2(Fig2Config::TotallyInvisible);
        let mut eng = Engine::new(&s.net, &s.cp);
        let src = s.net.router(s.vp).loopback;
        let out = eng.send(s.vp, Packet::echo_request(src, s.target, 3, 1, 1, 1));
        let r = out.reply().expect("reply");
        // Hop 3 is already CE2 (Fig. 4d): PE2 does not appear.
        assert_eq!(s.net.owner(r.from), Some(s.router("CE2")));
    }

    #[test]
    fn te_scenario_builds_with_both_tunnels() {
        let s = gns3_fig2_te(PoppingMode::Php, false);
        assert_eq!(s.net.te_tunnels().len(), 2);
        assert_eq!(s.net.te_tunnels()[0].interior_len(), 3);
    }

    #[test]
    fn juniper_preset_changes_signature() {
        let s = gns3_fig2_with(Fig2Opts::preset_juniper_ler(Fig2Config::BackwardRecursive));
        let pe2 = s.net.router(s.router("PE2"));
        assert_eq!(pe2.config.vendor, Vendor::JuniperJunos);
        // Juniper LER preset keeps the requested LDP policy.
        assert_eq!(pe2.config.ldp_policy, LdpPolicy::AllPrefixes);
    }
}
