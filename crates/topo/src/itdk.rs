//! ITDK-style router-level snapshots.
//!
//! CAIDA's Internet Topology Data Kit aggregates traceroute paths into a
//! router-level graph (alias resolution) with node-to-AS annotations.
//! The paper's campaign is *driven* by such a snapshot: high-degree
//! nodes (degree ≥ 128) mark suspected tunnel endpoints, and the target
//! list is built from their one- and two-hop neighborhoods (§4).
//!
//! Aggregation is incremental: an [`ItdkBuilder`] accepts one IP path
//! at a time ([`ItdkBuilder::ingest`]) and updates the node/link/address
//! tables in O(new hops), so a campaign can feed it trace-by-trace as
//! shard merges complete instead of materializing every path and
//! rebuilding from scratch. [`ItdkBuilder::finish`] then *canonicalizes*
//! the accumulated graph — nodes renumbered in ascending resolver-key
//! order, per-node address lists sorted — so the finished
//! [`ItdkSnapshot`] is byte-identical regardless of the order paths were
//! ingested in. [`ItdkSnapshot::build`] is the batch convenience wrapper
//! over the same builder.
//!
//! Alias resolution is delegated to a caller-supplied resolver (tests
//! and campaigns use simulator ground truth; an imperfect resolver can
//! be injected to study its effect).

use std::collections::{BTreeSet, HashMap};
use wormhole_net::{Addr, Asn};

/// An alias-resolved node key plus its AS annotation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct NodeInfo {
    /// Stable router key (e.g. the simulator's router id).
    pub key: u64,
    /// The node's AS, when known.
    pub asn: Option<Asn>,
}

/// Incrementally aggregates IP paths into a router-level graph.
///
/// Ingest order is observable only through the builder's *internal*
/// node numbering; [`ItdkBuilder::finish`] erases it by renumbering
/// nodes canonically, so two builders fed the same path *set* in any
/// order finish into equal snapshots. The live accessors
/// ([`ItdkBuilder::num_nodes`] etc.) expose the running totals a
/// campaign records as per-phase deltas, and
/// [`ItdkBuilder::checksum`] fingerprints the accumulated graph
/// order-independently without finishing it.
#[derive(Debug, Clone, Default)]
pub struct ItdkBuilder {
    keys: Vec<u64>,
    asns: Vec<Option<Asn>>,
    addrs: Vec<Vec<Addr>>,
    addr_to_node: HashMap<Addr, usize>,
    key_to_node: HashMap<u64, usize>,
    adj: Vec<BTreeSet<usize>>,
    links: usize,
    ingested: u64,
}

impl ItdkBuilder {
    /// An empty builder.
    pub fn new() -> ItdkBuilder {
        ItdkBuilder::default()
    }

    /// Ingests one IP path. Hops are addresses; `None` marks a
    /// non-responding hop, which (as in the paper's cleaned dataset)
    /// breaks adjacency instead of creating a pseudo-node. `resolve`
    /// maps an address to its node.
    pub fn ingest<R>(&mut self, path: &[Option<Addr>], mut resolve: R)
    where
        R: FnMut(Addr) -> NodeInfo,
    {
        let mut prev: Option<usize> = None;
        for hop in path {
            let Some(addr) = hop else {
                prev = None;
                continue;
            };
            let node = self.intern(*addr, &mut resolve);
            if let Some(p) = prev {
                if p != node && self.adj[p].insert(node) {
                    self.adj[node].insert(p);
                    self.links += 1;
                }
            }
            prev = Some(node);
        }
        self.ingested += 1;
    }

    fn intern<R>(&mut self, addr: Addr, resolve: &mut R) -> usize
    where
        R: FnMut(Addr) -> NodeInfo,
    {
        if let Some(&n) = self.addr_to_node.get(&addr) {
            return n;
        }
        let info = resolve(addr);
        let node = *self.key_to_node.entry(info.key).or_insert_with(|| {
            self.keys.push(info.key);
            self.asns.push(info.asn);
            self.addrs.push(Vec::new());
            self.adj.push(BTreeSet::new());
            self.keys.len() - 1
        });
        self.addr_to_node.insert(addr, node);
        self.addrs[node].push(addr);
        node
    }

    /// Paths ingested so far.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Nodes accumulated so far.
    pub fn num_nodes(&self) -> usize {
        self.keys.len()
    }

    /// Undirected links accumulated so far.
    pub fn num_links(&self) -> usize {
        self.links
    }

    /// Distinct addresses interned so far.
    pub fn num_addresses(&self) -> usize {
        self.addr_to_node.len()
    }

    /// An order-independent fingerprint of the accumulated graph:
    /// FNV-1a over nodes in ascending key order (key, AS, sorted
    /// addresses) and links as ascending `(key, key)` pairs. Equal for
    /// any ingest order of the same path set, and equal to the
    /// [`ItdkSnapshot::checksum`] of the finished snapshot — the
    /// incremental-aggregation audit (lint rule `A310`) compares it
    /// against a batch-rebuild oracle.
    pub fn checksum(&self) -> u64 {
        let mut order: Vec<usize> = (0..self.keys.len()).collect();
        order.sort_by_key(|&n| self.keys[n]);
        let mut h = Fnv::new();
        for &n in &order {
            h.word(self.keys[n]);
            h.word(match self.asns[n] {
                Some(a) => 1 | (u64::from(a.0) << 1),
                None => 0,
            });
            let mut addrs = self.addrs[n].clone();
            addrs.sort_unstable();
            h.word(addrs.len() as u64);
            for a in addrs {
                h.word(u64::from(a.0));
            }
            let mut nkeys: Vec<u64> = self.adj[n]
                .iter()
                .map(|&m| self.keys[m])
                .filter(|&k| k > self.keys[n])
                .collect();
            nkeys.sort_unstable();
            for k in nkeys {
                h.word(self.keys[n]);
                h.word(k);
            }
        }
        h.finish()
    }

    /// Finishes into a canonical snapshot *without* consuming the
    /// builder, so a campaign can take the bootstrap snapshot at a
    /// phase boundary and keep ingesting later-phase traces.
    pub fn snapshot(&self) -> ItdkSnapshot {
        self.clone().finish()
    }

    /// Finishes into the canonical snapshot: nodes renumbered in
    /// ascending resolver-key order, per-node address lists sorted,
    /// adjacency re-indexed. Byte-identical for any ingest order of the
    /// same path set — and therefore byte-identical to
    /// [`ItdkSnapshot::build`] over those paths in any order.
    pub fn finish(self) -> ItdkSnapshot {
        let n = self.keys.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| self.keys[i]);
        // old index -> canonical index
        let mut rank = vec![0usize; n];
        for (new, &old) in order.iter().enumerate() {
            rank[old] = new;
        }
        let mut keys = Vec::with_capacity(n);
        let mut asns = Vec::with_capacity(n);
        let mut addrs: Vec<Vec<Addr>> = Vec::with_capacity(n);
        let mut adj: Vec<BTreeSet<usize>> = Vec::with_capacity(n);
        for &old in &order {
            keys.push(self.keys[old]);
            asns.push(self.asns[old]);
            let mut a = self.addrs[old].clone();
            a.sort_unstable();
            addrs.push(a);
            adj.push(self.adj[old].iter().map(|&m| rank[m]).collect());
        }
        let addr_to_node = self
            .addr_to_node
            .into_iter()
            .map(|(a, old)| (a, rank[old]))
            .collect();
        let key_to_node = keys.iter().enumerate().map(|(i, &k)| (k, i)).collect();
        ItdkSnapshot {
            keys,
            asns,
            addrs,
            addr_to_node,
            key_to_node,
            adj,
        }
    }
}

/// Deterministic FNV-1a 64 over 8-byte words (no std hasher
/// randomization — checksums must be comparable across processes).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// A router-level topology snapshot in canonical form (see
/// [`ItdkBuilder::finish`] for the canonicalization rules).
#[derive(Debug, Clone, Default)]
pub struct ItdkSnapshot {
    keys: Vec<u64>,
    asns: Vec<Option<Asn>>,
    addrs: Vec<Vec<Addr>>,
    addr_to_node: HashMap<Addr, usize>,
    key_to_node: HashMap<u64, usize>,
    adj: Vec<BTreeSet<usize>>,
}

impl ItdkSnapshot {
    /// Aggregates IP paths into a router-level graph: the batch wrapper
    /// over [`ItdkBuilder`] — ingest every path, then
    /// [`ItdkBuilder::finish`]. Because the finished snapshot is
    /// canonical, the result does not depend on the order of `paths`.
    pub fn build<R>(paths: &[Vec<Option<Addr>>], mut resolve: R) -> ItdkSnapshot
    where
        R: FnMut(Addr) -> NodeInfo,
    {
        let mut b = ItdkBuilder::new();
        for path in paths {
            b.ingest(path, &mut resolve);
        }
        b.finish()
    }

    /// The order-independent graph fingerprint; equal to the
    /// [`ItdkBuilder::checksum`] of any builder that accumulated the
    /// same paths.
    pub fn checksum(&self) -> u64 {
        let mut b = Fnv::new();
        for n in 0..self.keys.len() {
            b.word(self.keys[n]);
            b.word(match self.asns[n] {
                Some(a) => 1 | (u64::from(a.0) << 1),
                None => 0,
            });
            b.word(self.addrs[n].len() as u64);
            for a in &self.addrs[n] {
                b.word(u64::from(a.0));
            }
            for &m in &self.adj[n] {
                if self.keys[m] > self.keys[n] {
                    b.word(self.keys[n]);
                    b.word(self.keys[m]);
                }
            }
        }
        b.finish()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.keys.len()
    }

    /// Number of (undirected) links.
    pub fn num_links(&self) -> usize {
        self.adj.iter().map(|s| s.len()).sum::<usize>() / 2
    }

    /// Number of distinct addresses interned.
    pub fn num_addresses(&self) -> usize {
        self.addr_to_node.len()
    }

    /// The node a previously-seen address belongs to.
    pub fn node_of(&self, addr: Addr) -> Option<usize> {
        self.addr_to_node.get(&addr).copied()
    }

    /// The node carrying resolver key `key`, if any. Canonical indices
    /// change as snapshots grow across phases; keys never do, so
    /// incremental consumers correlate successive snapshots by key.
    pub fn node_by_key(&self, key: u64) -> Option<usize> {
        self.key_to_node.get(&key).copied()
    }

    /// The resolver key of `node`.
    pub fn key(&self, node: usize) -> u64 {
        self.keys[node]
    }

    /// The AS annotation of `node`.
    pub fn asn(&self, node: usize) -> Option<Asn> {
        self.asns[node]
    }

    /// The addresses observed for `node`.
    pub fn addresses(&self, node: usize) -> &[Addr] {
        &self.addrs[node]
    }

    /// The degree of `node`.
    pub fn degree(&self, node: usize) -> usize {
        self.adj[node].len()
    }

    /// Neighbor nodes of `node`.
    pub fn neighbors(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[node].iter().copied()
    }

    /// All node degrees.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.num_nodes()).map(|n| self.degree(n)).collect()
    }

    /// High-degree nodes under the paper's §4 rule: `degree ≥ threshold`.
    pub fn hdns(&self, threshold: usize) -> Vec<usize> {
        (0..self.num_nodes())
            .filter(|&n| self.degree(n) >= threshold)
            .collect()
    }

    /// The paper's target construction: set A (neighbors of the given
    /// HDNs) and set B (neighbors of neighbors), as node sets.
    pub fn hdn_neighborhoods(&self, hdns: &[usize]) -> (BTreeSet<usize>, BTreeSet<usize>) {
        let mut set_a = BTreeSet::new();
        for &h in hdns {
            set_a.extend(self.neighbors(h));
        }
        let mut set_b = BTreeSet::new();
        for &n in &set_a {
            set_b.extend(self.neighbors(n));
        }
        (set_a, set_b)
    }

    /// Graph density `2E / V(V-1)` over a node subset (Table 4's metric,
    /// computed on Ingress–Egress candidates). Returns 0 for fewer than
    /// two nodes.
    pub fn density_of(&self, nodes: &BTreeSet<usize>) -> f64 {
        let v = nodes.len();
        if v < 2 {
            return 0.0;
        }
        let mut e = 0usize;
        for &n in nodes {
            for m in self.neighbors(n) {
                if m > n && nodes.contains(&m) {
                    e += 1;
                }
            }
        }
        2.0 * e as f64 / (v as f64 * (v as f64 - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(x: u8) -> Addr {
        Addr::new(10, 0, 0, x)
    }

    /// Identity resolver: every address its own node, AS by last octet
    /// parity.
    fn ident(addr: Addr) -> NodeInfo {
        NodeInfo {
            key: addr.0 as u64,
            asn: Some(Asn(u32::from(addr.octets()[3] % 2))),
        }
    }

    #[test]
    fn builds_graph_from_paths() {
        let paths = vec![
            vec![Some(a(1)), Some(a(2)), Some(a(3))],
            vec![Some(a(1)), Some(a(2)), Some(a(4))],
        ];
        let snap = ItdkSnapshot::build(&paths, ident);
        assert_eq!(snap.num_nodes(), 4);
        assert_eq!(snap.num_links(), 3);
        let n2 = snap.node_of(a(2)).unwrap();
        assert_eq!(snap.degree(n2), 3);
    }

    #[test]
    fn stars_break_adjacency() {
        let paths = vec![vec![Some(a(1)), None, Some(a(3))]];
        let snap = ItdkSnapshot::build(&paths, ident);
        assert_eq!(snap.num_nodes(), 2);
        assert_eq!(snap.num_links(), 0);
    }

    #[test]
    fn alias_resolution_merges_addresses() {
        // Resolver maps both addresses to one router key.
        let paths = vec![vec![Some(a(1)), Some(a(2))], vec![Some(a(3)), Some(a(4))]];
        let resolve = |addr: Addr| NodeInfo {
            key: u64::from(addr.octets()[3].is_multiple_of(2)), // odd→0, even→1
            asn: None,
        };
        let snap = ItdkSnapshot::build(&paths, resolve);
        assert_eq!(snap.num_nodes(), 2);
        let n = snap.node_of(a(2)).unwrap();
        assert_eq!(snap.node_of(a(4)), Some(n));
        assert_eq!(snap.addresses(n).len(), 2);
    }

    #[test]
    fn self_adjacency_suppressed() {
        // Two consecutive addresses of the same router: no self-loop.
        let resolve = |_addr: Addr| NodeInfo { key: 7, asn: None };
        let paths = vec![vec![Some(a(1)), Some(a(2))]];
        let snap = ItdkSnapshot::build(&paths, resolve);
        assert_eq!(snap.num_nodes(), 1);
        assert_eq!(snap.num_links(), 0);
    }

    #[test]
    fn hdn_extraction_and_neighborhoods() {
        // Star: hub connected to 5 leaves.
        let mut paths = Vec::new();
        for leaf in 1..=5 {
            paths.push(vec![Some(a(0)), Some(a(leaf))]);
        }
        let snap = ItdkSnapshot::build(&paths, ident);
        let hub = snap.node_of(a(0)).unwrap();
        assert_eq!(snap.node_by_key(snap.key(hub)), Some(hub));
        assert_eq!(snap.node_by_key(u64::MAX), None);
        assert_eq!(snap.hdns(5), vec![hub]);
        assert!(snap.hdns(6).is_empty());
        let (set_a, set_b) = snap.hdn_neighborhoods(&[hub]);
        assert_eq!(set_a.len(), 5);
        assert!(set_b.contains(&hub));
    }

    #[test]
    fn density() {
        // Triangle: density 1.
        let paths = vec![vec![Some(a(1)), Some(a(2)), Some(a(3)), Some(a(1))]];
        let snap = ItdkSnapshot::build(&paths, ident);
        let all: BTreeSet<usize> = (0..3).collect();
        assert!((snap.density_of(&all) - 1.0).abs() < 1e-9);
        let two: BTreeSet<usize> = (0..2).collect();
        assert!((snap.density_of(&two) - 1.0).abs() < 1e-9);
        assert_eq!(snap.density_of(&BTreeSet::new()), 0.0);
    }

    /// Structural equality of two snapshots, field by field. Snapshots
    /// are canonical, so equal graphs must compare equal here.
    fn assert_identical(x: &ItdkSnapshot, y: &ItdkSnapshot) {
        assert_eq!(x.keys, y.keys);
        assert_eq!(x.asns, y.asns);
        assert_eq!(x.addrs, y.addrs);
        assert_eq!(x.adj, y.adj);
        assert_eq!(x.addr_to_node, y.addr_to_node);
        assert_eq!(x.key_to_node, y.key_to_node);
        assert_eq!(x.checksum(), y.checksum());
    }

    #[test]
    fn finish_is_ingest_order_independent() {
        let paths = vec![
            vec![Some(a(9)), Some(a(2)), Some(a(3))],
            vec![Some(a(1)), None, Some(a(4))],
            vec![Some(a(4)), Some(a(2)), Some(a(9))],
            vec![Some(a(7))],
        ];
        let forward = ItdkSnapshot::build(&paths, ident);
        let mut rev = paths.clone();
        rev.reverse();
        let backward = ItdkSnapshot::build(&rev, ident);
        assert_identical(&forward, &backward);
        // A rotation too, and the builder's live counters agree with
        // the finished snapshot.
        let mut b = ItdkBuilder::new();
        for p in paths.iter().cycle().skip(2).take(paths.len()) {
            b.ingest(p, ident);
        }
        assert_eq!(b.ingested(), paths.len() as u64);
        assert_eq!(b.num_nodes(), forward.num_nodes());
        assert_eq!(b.num_links(), forward.num_links());
        assert_eq!(b.num_addresses(), forward.num_addresses());
        assert_eq!(b.checksum(), forward.checksum());
        assert_identical(&b.finish(), &forward);
    }

    #[test]
    fn snapshot_keeps_builder_usable() {
        let mut b = ItdkBuilder::new();
        b.ingest(&[Some(a(1)), Some(a(2))], ident);
        let mid = b.snapshot();
        assert_eq!(mid.num_nodes(), 2);
        b.ingest(&[Some(a(2)), Some(a(3))], ident);
        let done = b.finish();
        assert_eq!(done.num_nodes(), 3);
        assert_eq!(done.num_links(), 2);
        // The mid-flight snapshot equals a batch build of the prefix.
        let prefix = ItdkSnapshot::build(&[vec![Some(a(1)), Some(a(2))]], ident);
        assert_identical(&mid, &prefix);
    }

    #[test]
    fn checksum_tracks_graph_shape() {
        let base = ItdkSnapshot::build(&[vec![Some(a(1)), Some(a(2))]], ident);
        let more = ItdkSnapshot::build(&[vec![Some(a(1)), Some(a(2)), Some(a(3))]], ident);
        assert_ne!(base.checksum(), more.checksum());
        // Alias membership matters, not just counts.
        let merged = ItdkSnapshot::build(&[vec![Some(a(1)), Some(a(2))]], |addr| NodeInfo {
            key: u64::from(addr.octets()[3] % 2),
            asn: None,
        });
        assert_ne!(base.checksum(), merged.checksum());
    }
}
