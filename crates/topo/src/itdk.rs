//! ITDK-style router-level snapshots.
//!
//! CAIDA's Internet Topology Data Kit aggregates traceroute paths into a
//! router-level graph (alias resolution) with node-to-AS annotations.
//! The paper's campaign is *driven* by such a snapshot: high-degree
//! nodes (degree ≥ 128) mark suspected tunnel endpoints, and the target
//! list is built from their one- and two-hop neighborhoods (§4).
//!
//! [`ItdkSnapshot::build`] performs the same aggregation over the IP
//! paths our probing produces. Alias resolution is delegated to a
//! caller-supplied resolver (tests and campaigns use simulator ground
//! truth; an imperfect resolver can be injected to study its effect).

use std::collections::{BTreeSet, HashMap};
use wormhole_net::{Addr, Asn};

/// An alias-resolved node key plus its AS annotation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct NodeInfo {
    /// Stable router key (e.g. the simulator's router id).
    pub key: u64,
    /// The node's AS, when known.
    pub asn: Option<Asn>,
}

/// A router-level topology snapshot.
#[derive(Debug, Clone, Default)]
pub struct ItdkSnapshot {
    keys: Vec<u64>,
    asns: Vec<Option<Asn>>,
    addrs: Vec<Vec<Addr>>,
    addr_to_node: HashMap<Addr, usize>,
    key_to_node: HashMap<u64, usize>,
    adj: Vec<BTreeSet<usize>>,
}

impl ItdkSnapshot {
    /// Aggregates IP paths into a router-level graph.
    ///
    /// `paths` are hop sequences; `None` marks a non-responding hop,
    /// which (as in the paper's cleaned dataset) breaks adjacency
    /// instead of creating a pseudo-node. `resolve` maps an address to
    /// its node.
    pub fn build<R>(paths: &[Vec<Option<Addr>>], mut resolve: R) -> ItdkSnapshot
    where
        R: FnMut(Addr) -> NodeInfo,
    {
        let mut snap = ItdkSnapshot::default();
        for path in paths {
            let mut prev: Option<usize> = None;
            for hop in path {
                let Some(addr) = hop else {
                    prev = None;
                    continue;
                };
                let node = snap.intern(*addr, &mut resolve);
                if let Some(p) = prev {
                    if p != node {
                        snap.adj[p].insert(node);
                        snap.adj[node].insert(p);
                    }
                }
                prev = Some(node);
            }
        }
        snap
    }

    fn intern<R>(&mut self, addr: Addr, resolve: &mut R) -> usize
    where
        R: FnMut(Addr) -> NodeInfo,
    {
        if let Some(&n) = self.addr_to_node.get(&addr) {
            return n;
        }
        let info = resolve(addr);
        let node = *self.key_to_node.entry(info.key).or_insert_with(|| {
            self.keys.push(info.key);
            self.asns.push(info.asn);
            self.addrs.push(Vec::new());
            self.adj.push(BTreeSet::new());
            self.keys.len() - 1
        });
        self.addr_to_node.insert(addr, node);
        self.addrs[node].push(addr);
        node
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.keys.len()
    }

    /// Number of (undirected) links.
    pub fn num_links(&self) -> usize {
        self.adj.iter().map(|s| s.len()).sum::<usize>() / 2
    }

    /// Number of distinct addresses interned.
    pub fn num_addresses(&self) -> usize {
        self.addr_to_node.len()
    }

    /// The node a previously-seen address belongs to.
    pub fn node_of(&self, addr: Addr) -> Option<usize> {
        self.addr_to_node.get(&addr).copied()
    }

    /// The resolver key of `node`.
    pub fn key(&self, node: usize) -> u64 {
        self.keys[node]
    }

    /// The AS annotation of `node`.
    pub fn asn(&self, node: usize) -> Option<Asn> {
        self.asns[node]
    }

    /// The addresses observed for `node`.
    pub fn addresses(&self, node: usize) -> &[Addr] {
        &self.addrs[node]
    }

    /// The degree of `node`.
    pub fn degree(&self, node: usize) -> usize {
        self.adj[node].len()
    }

    /// Neighbor nodes of `node`.
    pub fn neighbors(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[node].iter().copied()
    }

    /// All node degrees.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.num_nodes()).map(|n| self.degree(n)).collect()
    }

    /// High-degree nodes under the paper's §4 rule: `degree ≥ threshold`.
    pub fn hdns(&self, threshold: usize) -> Vec<usize> {
        (0..self.num_nodes())
            .filter(|&n| self.degree(n) >= threshold)
            .collect()
    }

    /// The paper's target construction: set A (neighbors of the given
    /// HDNs) and set B (neighbors of neighbors), as node sets.
    pub fn hdn_neighborhoods(&self, hdns: &[usize]) -> (BTreeSet<usize>, BTreeSet<usize>) {
        let mut set_a = BTreeSet::new();
        for &h in hdns {
            set_a.extend(self.neighbors(h));
        }
        let mut set_b = BTreeSet::new();
        for &n in &set_a {
            set_b.extend(self.neighbors(n));
        }
        (set_a, set_b)
    }

    /// Graph density `2E / V(V-1)` over a node subset (Table 4's metric,
    /// computed on Ingress–Egress candidates). Returns 0 for fewer than
    /// two nodes.
    pub fn density_of(&self, nodes: &BTreeSet<usize>) -> f64 {
        let v = nodes.len();
        if v < 2 {
            return 0.0;
        }
        let mut e = 0usize;
        for &n in nodes {
            for m in self.neighbors(n) {
                if m > n && nodes.contains(&m) {
                    e += 1;
                }
            }
        }
        2.0 * e as f64 / (v as f64 * (v as f64 - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(x: u8) -> Addr {
        Addr::new(10, 0, 0, x)
    }

    /// Identity resolver: every address its own node, AS by last octet
    /// parity.
    fn ident(addr: Addr) -> NodeInfo {
        NodeInfo {
            key: addr.0 as u64,
            asn: Some(Asn(u32::from(addr.octets()[3] % 2))),
        }
    }

    #[test]
    fn builds_graph_from_paths() {
        let paths = vec![
            vec![Some(a(1)), Some(a(2)), Some(a(3))],
            vec![Some(a(1)), Some(a(2)), Some(a(4))],
        ];
        let snap = ItdkSnapshot::build(&paths, ident);
        assert_eq!(snap.num_nodes(), 4);
        assert_eq!(snap.num_links(), 3);
        let n2 = snap.node_of(a(2)).unwrap();
        assert_eq!(snap.degree(n2), 3);
    }

    #[test]
    fn stars_break_adjacency() {
        let paths = vec![vec![Some(a(1)), None, Some(a(3))]];
        let snap = ItdkSnapshot::build(&paths, ident);
        assert_eq!(snap.num_nodes(), 2);
        assert_eq!(snap.num_links(), 0);
    }

    #[test]
    fn alias_resolution_merges_addresses() {
        // Resolver maps both addresses to one router key.
        let paths = vec![vec![Some(a(1)), Some(a(2))], vec![Some(a(3)), Some(a(4))]];
        let resolve = |addr: Addr| NodeInfo {
            key: u64::from(addr.octets()[3].is_multiple_of(2)), // odd→0, even→1
            asn: None,
        };
        let snap = ItdkSnapshot::build(&paths, resolve);
        assert_eq!(snap.num_nodes(), 2);
        let n = snap.node_of(a(2)).unwrap();
        assert_eq!(snap.node_of(a(4)), Some(n));
        assert_eq!(snap.addresses(n).len(), 2);
    }

    #[test]
    fn self_adjacency_suppressed() {
        // Two consecutive addresses of the same router: no self-loop.
        let resolve = |_addr: Addr| NodeInfo { key: 7, asn: None };
        let paths = vec![vec![Some(a(1)), Some(a(2))]];
        let snap = ItdkSnapshot::build(&paths, resolve);
        assert_eq!(snap.num_nodes(), 1);
        assert_eq!(snap.num_links(), 0);
    }

    #[test]
    fn hdn_extraction_and_neighborhoods() {
        // Star: hub connected to 5 leaves.
        let mut paths = Vec::new();
        for leaf in 1..=5 {
            paths.push(vec![Some(a(0)), Some(a(leaf))]);
        }
        let snap = ItdkSnapshot::build(&paths, ident);
        let hub = snap.node_of(a(0)).unwrap();
        assert_eq!(snap.hdns(5), vec![hub]);
        assert!(snap.hdns(6).is_empty());
        let (set_a, set_b) = snap.hdn_neighborhoods(&[hub]);
        assert_eq!(set_a.len(), 5);
        assert!(set_b.contains(&hub));
    }

    #[test]
    fn density() {
        // Triangle: density 1.
        let paths = vec![vec![Some(a(1)), Some(a(2)), Some(a(3)), Some(a(1))]];
        let snap = ItdkSnapshot::build(&paths, ident);
        let all: BTreeSet<usize> = (0..3).collect();
        assert!((snap.density_of(&all) - 1.0).abs() < 1e-9);
        let two: BTreeSet<usize> = (0..2).collect();
        assert!((snap.density_of(&two) - 1.0).abs() < 1e-9);
        assert_eq!(snap.density_of(&BTreeSet::new()), 0.0);
    }
}
