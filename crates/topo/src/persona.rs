//! Per-AS MPLS deployment personas.
//!
//! Tables 4 and 5 of the paper profile ten ASes with very different
//! deployments (hardware mix, LDP policy, TTL policy, tunnel lengths).
//! A [`AsPersona`] captures those knobs; [`paper_personas`] instantiates
//! one persona per paper AS, tuned so the campaign reproduces each row's
//! qualitative behaviour (which technique dominates, roughly how long
//! the tunnels are, whether anything is revealed at all).

use rand::rngs::StdRng;
use rand::Rng;
use wormhole_net::{Asn, LdpPolicy, Vendor};

/// How the PoP-level backbone of a transit AS is wired; denser meshes
/// yield shorter LSPs.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum PopMesh {
    /// PoPs on a line: longest tunnels.
    Chain,
    /// PoPs on a ring.
    Ring,
    /// Ring plus random chords with the given probability per PoP pair.
    Chords(f64),
}

/// A weighted vendor mix.
pub type VendorMix = &'static [(Vendor, f64)];

/// The deployment profile of one transit AS.
#[derive(Clone, Debug)]
pub struct AsPersona {
    /// Display name (operator).
    pub name: &'static str,
    /// The AS number used in tables (the paper's real ASN).
    pub asn: Asn,
    /// Number of PoPs.
    pub pops: usize,
    /// Edge (PE) routers per PoP.
    pub edges_per_pop: usize,
    /// Backbone shape.
    pub mesh: PopMesh,
    /// Vendor mix of edge routers (LERs).
    pub edge_vendors: VendorMix,
    /// Vendor mix of core routers (LSRs).
    pub core_vendors: VendorMix,
    /// Whether the AS runs MPLS at all.
    pub mpls: bool,
    /// Fraction of routers with `ttl-propagate` *enabled* (1.0 ⇒ fully
    /// visible tunnels, 0.0 ⇒ fully invisible).
    pub propagate_share: f64,
    /// UHP instead of PHP.
    pub uhp: bool,
    /// Override the per-vendor LDP default policy for the whole AS.
    pub ldp_override: Option<LdpPolicy>,
    /// One-way delay of inter-PoP links in milliseconds (intra-PoP links
    /// are 0.5 ms).
    pub interpop_delay_ms: f64,
}

impl AsPersona {
    /// Total router count (cores + edges).
    pub fn router_count(&self) -> usize {
        self.pops * (1 + self.edges_per_pop)
    }
}

const CISCO: VendorMix = &[(Vendor::CiscoIos, 1.0)];
const JUNIPER: VendorMix = &[(Vendor::JuniperJunos, 1.0)];
const MOSTLY_CISCO: VendorMix = &[(Vendor::CiscoIos, 0.75), (Vendor::JuniperJunos, 0.25)];
const MOSTLY_JUNIPER: VendorMix = &[(Vendor::JuniperJunos, 0.75), (Vendor::CiscoIos, 0.25)];
const MIXED: VendorMix = &[
    (Vendor::CiscoIos, 0.45),
    (Vendor::JuniperJunos, 0.35),
    (Vendor::BrocadeLinux, 0.15),
    (Vendor::JuniperJunosE, 0.05),
];

/// The ten ASes of paper Tables 4–5, as deployment personas.
///
/// Each persona is tuned from the published TTL-signature mix, the
/// dominant revelation technique and the median tunnel lengths:
///
/// * **Telia 1299** — Juniper-heavy, densely meshed ⇒ one-LSR tunnels
///   ("DPR or BRPR" 77 % in Table 5);
/// * **China Telecom 4134** — Cisco, tunnels mostly *visible*
///   (`%Rev.` only 2.8 in Table 4);
/// * **Tinet 3257** — essentially all Juniper, invisible, DPR;
/// * **Level3 3549** — Juniper edge over a `<64,64>` core, long LSPs
///   and long-haul delays (Fig. 6);
/// * **DTAG 3320** — Cisco/Juniper mix, PoP full-mesh artefact of
///   Fig. 10b;
/// * **Telecom Italia 6762** — Cisco edges with LDP on all prefixes ⇒
///   BRPR;
/// * **Qwest 209** — mixed hardware, host-routes LDP ⇒ DPR;
/// * **Bharti 9498** — Juniper, DPR;
/// * **PCCW 3491** — Cisco with LDP on all prefixes ⇒ BRPR;
/// * **BT 2856** — UHP: totally invisible, nothing revealed.
pub fn paper_personas() -> Vec<AsPersona> {
    vec![
        AsPersona {
            name: "Telia",
            asn: Asn(1299),
            pops: 9,
            edges_per_pop: 3,
            mesh: PopMesh::Chords(0.55),
            edge_vendors: &[(Vendor::JuniperJunos, 0.75), (Vendor::CiscoIos, 0.25)],
            core_vendors: &[(Vendor::JuniperJunos, 0.75), (Vendor::CiscoIos, 0.25)],
            mpls: true,
            propagate_share: 0.0,
            uhp: false,
            ldp_override: Some(LdpPolicy::LoopbackOnly),
            interpop_delay_ms: 3.0,
        },
        AsPersona {
            name: "China Telecom",
            asn: Asn(4134),
            pops: 10,
            edges_per_pop: 3,
            mesh: PopMesh::Chords(0.35),
            edge_vendors: &[(Vendor::CiscoIos, 0.75), (Vendor::JuniperJunosE, 0.25)],
            core_vendors: CISCO,
            mpls: true,
            propagate_share: 0.85,
            uhp: false,
            ldp_override: None,
            interpop_delay_ms: 4.0,
        },
        AsPersona {
            name: "Tinet",
            asn: Asn(3257),
            pops: 10,
            edges_per_pop: 3,
            mesh: PopMesh::Ring,
            edge_vendors: JUNIPER,
            core_vendors: JUNIPER,
            mpls: true,
            propagate_share: 0.0,
            uhp: false,
            ldp_override: Some(LdpPolicy::LoopbackOnly),
            interpop_delay_ms: 4.0,
        },
        AsPersona {
            name: "Level3",
            asn: Asn(3549),
            pops: 12,
            edges_per_pop: 3,
            mesh: PopMesh::Chain,
            edge_vendors: &[(Vendor::JuniperJunos, 0.8), (Vendor::CiscoIos, 0.2)],
            core_vendors: &[(Vendor::BrocadeLinux, 0.85), (Vendor::JuniperJunos, 0.15)],
            mpls: true,
            propagate_share: 0.0,
            uhp: false,
            ldp_override: Some(LdpPolicy::LoopbackOnly),
            interpop_delay_ms: 8.0,
        },
        AsPersona {
            name: "Deutsche Telekom",
            asn: Asn(3320),
            pops: 8,
            edges_per_pop: 4,
            mesh: PopMesh::Chords(0.4),
            edge_vendors: &[(Vendor::CiscoIos, 0.5), (Vendor::JuniperJunos, 0.5)],
            core_vendors: &[(Vendor::CiscoIos, 0.6), (Vendor::JuniperJunos, 0.4)],
            mpls: true,
            propagate_share: 0.0,
            uhp: false,
            ldp_override: Some(LdpPolicy::LoopbackOnly),
            interpop_delay_ms: 2.0,
        },
        AsPersona {
            name: "Telecom Italia",
            asn: Asn(6762),
            pops: 7,
            edges_per_pop: 3,
            mesh: PopMesh::Chords(0.4),
            edge_vendors: &[(Vendor::CiscoIos, 0.45), (Vendor::JuniperJunos, 0.55)],
            core_vendors: &[(Vendor::CiscoIos, 0.6), (Vendor::JuniperJunos, 0.4)],
            mpls: true,
            propagate_share: 0.0,
            uhp: false,
            ldp_override: Some(LdpPolicy::AllPrefixes),
            interpop_delay_ms: 2.0,
        },
        AsPersona {
            name: "Qwest",
            asn: Asn(209),
            pops: 8,
            edges_per_pop: 2,
            mesh: PopMesh::Ring,
            edge_vendors: &[(Vendor::CiscoIos, 0.35), (Vendor::JuniperJunos, 0.65)],
            core_vendors: &[(Vendor::CiscoIos, 0.5), (Vendor::JuniperJunos, 0.5)],
            mpls: true,
            propagate_share: 0.0,
            uhp: false,
            ldp_override: Some(LdpPolicy::LoopbackOnly),
            interpop_delay_ms: 5.0,
        },
        AsPersona {
            name: "Bharti Airtel",
            asn: Asn(9498),
            pops: 9,
            edges_per_pop: 2,
            mesh: PopMesh::Ring,
            edge_vendors: &[(Vendor::JuniperJunos, 0.85), (Vendor::CiscoIos, 0.15)],
            core_vendors: JUNIPER,
            mpls: true,
            propagate_share: 0.0,
            uhp: false,
            ldp_override: Some(LdpPolicy::LoopbackOnly),
            interpop_delay_ms: 5.0,
        },
        AsPersona {
            name: "PCCW Global",
            asn: Asn(3491),
            pops: 6,
            edges_per_pop: 3,
            mesh: PopMesh::Chords(0.4),
            edge_vendors: &[(Vendor::CiscoIos, 0.95), (Vendor::JuniperJunos, 0.05)],
            core_vendors: CISCO,
            mpls: true,
            propagate_share: 0.0,
            uhp: false,
            ldp_override: Some(LdpPolicy::AllPrefixes),
            interpop_delay_ms: 4.0,
        },
        AsPersona {
            name: "British Telecom",
            asn: Asn(2856),
            pops: 8,
            edges_per_pop: 3,
            mesh: PopMesh::Chords(0.4),
            edge_vendors: &[(Vendor::CiscoIos, 0.7), (Vendor::JuniperJunos, 0.3)],
            core_vendors: &[(Vendor::CiscoIos, 0.7), (Vendor::JuniperJunos, 0.3)],
            mpls: true,
            propagate_share: 0.0,
            uhp: true,
            ldp_override: None,
            interpop_delay_ms: 2.0,
        },
    ]
}

/// Draws a plausible transit-AS persona from the paper's operator
/// survey (§1–2): 87 % deploy MPLS, 48 % disable TTL propagation, 10 %
/// run UHP, hardware split 58 % Cisco / 28 % Juniper with a 25 % mixed
/// share. Use together with [`crate::internet::generate`] to scale
/// campaigns beyond the ten named personas.
pub fn random_persona(asn: Asn, name: &'static str, rng: &mut StdRng) -> AsPersona {
    let mpls = rng.gen::<f64>() < crate::survey::MPLS_DEPLOYED;
    let propagate_share = if rng.gen::<f64>() < crate::survey::NO_TTL_PROPAGATE {
        // "Invisible" deployment, possibly with a few propagating LERs.
        rng.gen::<f64>() * 0.15
    } else {
        0.85 + rng.gen::<f64>() * 0.15
    };
    let uhp = rng.gen::<f64>() < crate::survey::UHP_DEPLOYED;
    let hw: f64 = rng.gen();
    let (edge_vendors, core_vendors, cisco_shop): (VendorMix, VendorMix, bool) =
        if hw < crate::survey::hardware::MIXED {
            (MIXED, MIXED, false)
        } else if hw < crate::survey::hardware::MIXED + crate::survey::hardware::CISCO * 0.75 {
            (MOSTLY_CISCO, CISCO, true)
        } else {
            (MOSTLY_JUNIPER, JUNIPER, false)
        };
    // Vendor defaults decide the LDP policy for most; a third of Cisco
    // shops filter to host routes (the §3.3 observation).
    let ldp_override = if cisco_shop && rng.gen::<f64>() < 0.35 {
        Some(LdpPolicy::LoopbackOnly)
    } else {
        None
    };
    let mesh = match rng.gen_range(0..3u8) {
        0 => PopMesh::Chain,
        1 => PopMesh::Ring,
        _ => PopMesh::Chords(0.2 + rng.gen::<f64>() * 0.4),
    };
    AsPersona {
        name,
        asn,
        pops: rng.gen_range(5..=12),
        edges_per_pop: rng.gen_range(2..=4),
        mesh,
        edge_vendors,
        core_vendors,
        mpls,
        propagate_share,
        uhp,
        ldp_override,
        interpop_delay_ms: 1.0 + rng.gen::<f64>() * 8.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_paper_personas() {
        let p = paper_personas();
        assert_eq!(p.len(), 10);
        let asns: Vec<u32> = p.iter().map(|a| a.asn.0).collect();
        for asn in [1299, 4134, 3257, 3549, 3320, 6762, 209, 9498, 3491, 2856] {
            assert!(asns.contains(&asn), "missing AS{asn}");
        }
    }

    #[test]
    fn vendor_mixes_are_distributions() {
        for p in paper_personas() {
            for mix in [p.edge_vendors, p.core_vendors] {
                let total: f64 = mix.iter().map(|&(_, w)| w).sum();
                assert!(
                    (total - 1.0).abs() < 1e-9,
                    "{}: mix sums to {total}",
                    p.name
                );
            }
            assert!((0.0..=1.0).contains(&p.propagate_share));
            assert!(p.router_count() >= 10);
        }
    }

    #[test]
    fn random_personas_follow_survey_priors() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        let personas: Vec<AsPersona> = (0..400)
            .map(|i| random_persona(Asn(10_000 + i), "rand", &mut rng))
            .collect();
        let mpls = personas.iter().filter(|p| p.mpls).count() as f64 / 400.0;
        assert!((mpls - crate::survey::MPLS_DEPLOYED).abs() < 0.08);
        let invisible = personas.iter().filter(|p| p.propagate_share < 0.5).count() as f64 / 400.0;
        assert!((invisible - crate::survey::NO_TTL_PROPAGATE).abs() < 0.08);
        let uhp = personas.iter().filter(|p| p.uhp).count() as f64 / 400.0;
        assert!((uhp - crate::survey::UHP_DEPLOYED).abs() < 0.05);
        for p in &personas {
            assert!(p.router_count() >= 10);
            let total: f64 = p.edge_vendors.iter().map(|&(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn bt_is_the_uhp_persona() {
        let p = paper_personas();
        let bt = p.iter().find(|a| a.asn == Asn(2856)).unwrap();
        assert!(bt.uhp);
        assert_eq!(bt.propagate_share, 0.0);
    }
}
