//! `wormhole-topo`: topology generation for the wormhole reproduction.
//!
//! * [`scenario`] — the paper's GNS3 Fig. 2 testbed under all four §3.3
//!   configurations (plus vendor/knob variants);
//! * [`persona`] — per-AS MPLS deployment personas mirroring the ten
//!   ASes of Tables 4–5;
//! * [`internet`] — a seeded synthetic-Internet generator (transit
//!   personas, stubs, vantage points);
//! * [`ground_truth`] — oracle queries used only for validation;
//! * [`itdk`] — ITDK-style router-level snapshots with HDN extraction;
//! * [`survey`] — the operator-survey constants of §1–2;
//! * [`cache`] — an on-disk substrate cache keyed by a config
//!   checksum, so repeated and multi-process invocations skip the
//!   control-plane build.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod ground_truth;
pub mod internet;
pub mod itdk;
pub mod persona;
pub mod scenario;
pub mod survey;

pub use cache::{cache_file, config_checksum, generate_cached, CacheError, CacheStatus};
pub use ground_truth::GroundTruth;
pub use internet::{generate, Internet, InternetConfig};
pub use itdk::{ItdkBuilder, ItdkSnapshot, NodeInfo};
pub use persona::{paper_personas, random_persona, AsPersona, PopMesh};
pub use scenario::{gns3_fig2, gns3_fig2_te, gns3_fig2_with, Fig2Config, Fig2Opts, Scenario};
