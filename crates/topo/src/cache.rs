//! On-disk substrate cache.
//!
//! Building a synthetic Internet has two unequal halves: topology
//! generation (seeded RNG walk over [`InternetConfig`], cheap) and
//! control-plane computation (BGP decision process plus the hot-potato
//! external-route scan, the dominant cost at thousandfold scale). The
//! cache persists only the expensive half — the [`ControlPlane`]'s
//! BGP tables and packed external routes, exactly the
//! [`ControlPlane::cache_payload`] bytes — and regenerates the
//! topology deterministically on every load.
//!
//! # File format (version 1)
//!
//! ```text
//! magic      b"WHSC"                      4 bytes
//! version    u32                          4 bytes
//! config     u64 config checksum          8 bytes
//! payload    length-prefixed Vec<u8>      8 + n bytes
//! checksum   u64 FNV-1a of payload        8 bytes
//! ```
//!
//! All integers little-endian via [`wormhole_net::wire`]. The config
//! checksum covers every [`InternetConfig`] field including the full
//! persona list, so any change to the generator inputs produces a
//! different checksum (and, since files are named by checksum, a
//! different file). A file whose recorded config checksum disagrees
//! with the requesting config is *stale*; a file whose payload bytes
//! fail their own checksum is *corrupt*. Both are typed errors, never
//! silent rebuilds — callers decide whether to fall back.

use crate::internet::{generate_topology, Internet, InternetConfig};
use crate::persona::{AsPersona, PopMesh};
use std::path::{Path, PathBuf};
use wormhole_net::wire::{checksum, Reader, Wire, WireError};
use wormhole_net::{CachePayloadError, ControlPlane, LdpPolicy, Vendor};

const MAGIC: [u8; 4] = *b"WHSC";
const VERSION: u32 = 1;

/// Why a cache file could not be used.
#[derive(Debug)]
pub enum CacheError {
    /// Filesystem failure reading or writing the cache file.
    Io(std::io::Error),
    /// The file does not start with the `WHSC` magic.
    BadMagic,
    /// The file was written by an incompatible format version.
    Version(u32),
    /// The file's recorded config checksum disagrees with the config
    /// requesting it — the cache is stale.
    StaleConfig {
        /// Checksum of the requesting config.
        expected: u64,
        /// Checksum recorded in the file.
        found: u64,
    },
    /// The payload bytes fail their own checksum — the file is corrupt.
    CorruptPayload,
    /// The file framing did not decode.
    Decode(WireError),
    /// The payload decoded but the plane could not be restored over
    /// the regenerated topology.
    Payload(CachePayloadError),
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Io(e) => write!(f, "substrate cache i/o: {e}"),
            CacheError::BadMagic => write!(f, "substrate cache: bad magic (not a WHSC file)"),
            CacheError::Version(v) => {
                write!(f, "substrate cache: unsupported format version {v}")
            }
            CacheError::StaleConfig { expected, found } => write!(
                f,
                "substrate cache: stale (config checksum {found:#018x}, expected {expected:#018x})"
            ),
            CacheError::CorruptPayload => {
                write!(
                    f,
                    "substrate cache: payload checksum mismatch (corrupt file)"
                )
            }
            CacheError::Decode(e) => write!(f, "substrate cache framing: {e}"),
            CacheError::Payload(e) => write!(f, "substrate cache: {e}"),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<std::io::Error> for CacheError {
    fn from(e: std::io::Error) -> CacheError {
        CacheError::Io(e)
    }
}

fn put_vendor(v: Vendor, out: &mut Vec<u8>) {
    let tag: u8 = match v {
        Vendor::CiscoIos => 0,
        Vendor::JuniperJunos => 1,
        Vendor::JuniperJunosE => 2,
        Vendor::BrocadeLinux => 3,
    };
    tag.put(out);
}

fn put_persona(p: &AsPersona, out: &mut Vec<u8>) {
    p.name.to_owned().put(out);
    p.asn.0.put(out);
    p.pops.put(out);
    p.edges_per_pop.put(out);
    match p.mesh {
        PopMesh::Chain => 0u8.put(out),
        PopMesh::Ring => 1u8.put(out),
        PopMesh::Chords(prob) => {
            2u8.put(out);
            prob.put(out);
        }
    }
    for mix in [p.edge_vendors, p.core_vendors] {
        mix.len().put(out);
        for &(v, w) in mix {
            put_vendor(v, out);
            w.put(out);
        }
    }
    p.mpls.put(out);
    p.propagate_share.put(out);
    p.uhp.put(out);
    match p.ldp_override {
        None => 0u8.put(out),
        Some(LdpPolicy::AllPrefixes) => 1u8.put(out),
        Some(LdpPolicy::LoopbackOnly) => 2u8.put(out),
        Some(LdpPolicy::None) => 3u8.put(out),
    }
    p.interpop_delay_ms.put(out);
}

/// Checksum over every [`InternetConfig`] field (including the full
/// persona list). Two configs generate the same Internet iff their
/// checksums agree; the cache file name and the stale check both key
/// on this value.
pub fn config_checksum(config: &InternetConfig) -> u64 {
    let mut bytes = Vec::new();
    // Version salt: bump VERSION to invalidate old checksums too.
    VERSION.put(&mut bytes);
    config.seed.put(&mut bytes);
    config.personas.len().put(&mut bytes);
    for p in &config.personas {
        put_persona(p, &mut bytes);
    }
    config.n_stubs.put(&mut bytes);
    config.n_vps.put(&mut bytes);
    config.peer_prob.put(&mut bytes);
    config.silent_share.put(&mut bytes);
    config.tier1.put(&mut bytes);
    checksum(&bytes)
}

/// The cache file path for `config` under `dir`:
/// `substrate-<config checksum>.whsc`.
pub fn cache_file(dir: &Path, config: &InternetConfig) -> PathBuf {
    dir.join(format!("substrate-{:016x}.whsc", config_checksum(config)))
}

/// Serializes `cp` for `config` into `path`, atomically (write to a
/// sibling temp file, then rename).
pub fn save(path: &Path, config: &InternetConfig, cp: &ControlPlane) -> Result<(), CacheError> {
    let payload = cp.cache_payload();
    let mut out = Vec::with_capacity(payload.len() + 32);
    out.extend_from_slice(&MAGIC);
    VERSION.put(&mut out);
    config_checksum(config).put(&mut out);
    checksum(&payload).put(&mut out);
    payload.put(&mut out);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let tmp = path.with_extension("whsc.tmp");
    std::fs::write(&tmp, &out)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads and validates the cache file at `path`, returning the raw
/// plane payload. Checks magic, version, config checksum (stale
/// detection) and payload checksum (corruption detection) — but does
/// not touch a network, so workers can validate before generating.
pub fn read_payload(path: &Path, config: &InternetConfig) -> Result<Vec<u8>, CacheError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        return Err(CacheError::BadMagic);
    }
    let mut r = Reader::new(&bytes[MAGIC.len()..]);
    let version = u32::take(&mut r).map_err(CacheError::Decode)?;
    if version != VERSION {
        return Err(CacheError::Version(version));
    }
    let found = u64::take(&mut r).map_err(CacheError::Decode)?;
    let expected = config_checksum(config);
    if found != expected {
        return Err(CacheError::StaleConfig { expected, found });
    }
    let payload_sum = u64::take(&mut r).map_err(CacheError::Decode)?;
    let payload: Vec<u8> = Vec::take(&mut r).map_err(CacheError::Decode)?;
    if !r.is_empty() {
        return Err(CacheError::Decode(WireError::Corrupt("trailing bytes")));
    }
    if checksum(&payload) != payload_sum {
        return Err(CacheError::CorruptPayload);
    }
    Ok(payload)
}

/// Whether the generation was served from disk or computed cold.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CacheStatus {
    /// Plane computed from scratch (and saved to the cache).
    Cold,
    /// Plane restored from a verified cache file.
    Warm,
}

/// Generates an Internet from `config`, restoring the control plane
/// from the cache under `dir` when a file for this config exists, and
/// computing + saving it otherwise. The topology itself is always
/// regenerated (deterministic and cheap). An existing-but-unusable
/// file (corrupt, stale, wrong version) is a typed error, not a
/// silent rebuild.
pub fn generate_cached(
    config: &InternetConfig,
    dir: &Path,
) -> Result<(Internet, CacheStatus), CacheError> {
    let path = cache_file(dir, config);
    let payload = if path.exists() {
        Some(read_payload(&path, config)?)
    } else {
        None
    };
    let topo = generate_topology(config);
    let (cp, status) = match payload {
        Some(p) => (
            ControlPlane::from_cache_payload(&topo.net, 1, &p).map_err(CacheError::Payload)?,
            CacheStatus::Warm,
        ),
        None => {
            let cp = ControlPlane::build(&topo.net)
                .map_err(CachePayloadError::Assemble)
                .map_err(CacheError::Payload)?;
            save(&path, config, &cp)?;
            (cp, CacheStatus::Cold)
        }
    };
    Ok((
        Internet {
            net: topo.net,
            cp,
            vps: topo.vps,
            personas: config.personas.clone(),
            stub_asns: topo.stub_asns,
        },
        status,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("wormhole-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn checksum_is_sensitive_to_every_field() {
        let base = InternetConfig::small(7);
        let c0 = config_checksum(&base);
        assert_eq!(c0, config_checksum(&InternetConfig::small(7)));
        let mut seed = base.clone();
        seed.seed ^= 1;
        let mut stubs = base.clone();
        stubs.n_stubs += 1;
        let mut vps = base.clone();
        vps.n_vps -= 1;
        let mut peer = base.clone();
        peer.peer_prob *= 0.5;
        let mut silent = base.clone();
        silent.silent_share += 0.01;
        let mut tier = base.clone();
        tier.tier1 = 1;
        let mut personas = base.clone();
        personas.personas[0].pops += 1;
        for (what, cfg) in [
            ("seed", seed),
            ("n_stubs", stubs),
            ("n_vps", vps),
            ("peer_prob", peer),
            ("silent_share", silent),
            ("tier1", tier),
            ("personas", personas),
        ] {
            assert_ne!(c0, config_checksum(&cfg), "{what} not in checksum");
        }
    }

    #[test]
    fn cold_then_warm_round_trip() {
        let dir = tmp_dir("roundtrip");
        let cfg = InternetConfig::small(11);
        let (cold, s0) = generate_cached(&cfg, &dir).unwrap();
        assert_eq!(s0, CacheStatus::Cold);
        assert!(cache_file(&dir, &cfg).exists());
        let (warm, s1) = generate_cached(&cfg, &dir).unwrap();
        assert_eq!(s1, CacheStatus::Warm);
        assert_eq!(cold.net.num_routers(), warm.net.num_routers());
        assert_eq!(cold.vps, warm.vps);
        assert_eq!(cold.cp.cache_payload(), warm.cp.cache_payload());
        // And both match an uncached build.
        let plain = crate::internet::generate(&cfg);
        assert_eq!(plain.cp.cache_payload(), warm.cp.cache_payload());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_file_is_a_typed_error() {
        let dir = tmp_dir("corrupt");
        let cfg = InternetConfig::small(13);
        generate_cached(&cfg, &dir).unwrap();
        let path = cache_file(&dir, &cfg);
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 10] ^= 0xFF; // flip a payload byte, not the framing
        std::fs::write(&path, &bytes).unwrap();
        match generate_cached(&cfg, &dir) {
            Err(CacheError::CorruptPayload) => {}
            other => panic!("expected CorruptPayload, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_file_is_a_typed_error() {
        let dir = tmp_dir("stale");
        let cfg = InternetConfig::small(17);
        generate_cached(&cfg, &dir).unwrap();
        // A different config reading the same *file* sees StaleConfig.
        let mut other = cfg.clone();
        other.seed ^= 0xDEAD;
        match read_payload(&cache_file(&dir, &cfg), &other) {
            Err(CacheError::StaleConfig { .. }) => {}
            o => panic!("expected StaleConfig, got {o:?}"),
        }
        // Garbage leading bytes are BadMagic.
        let path = cache_file(&dir, &cfg);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        match read_payload(&path, &cfg) {
            Err(CacheError::BadMagic) => {}
            o => panic!("expected BadMagic, got {o:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
