//! Ground-truth queries against the simulator.
//!
//! Validation (and only validation — never the techniques themselves)
//! may ask the simulator what actually happened: the true router-level
//! forward path of a probe, and the true content of the LSP between an
//! ingress and an egress.

use wormhole_net::{Addr, Asn, ControlPlane, Engine, Network, Packet, RouterId};

/// Ground-truth oracle over a network.
pub struct GroundTruth<'a> {
    net: &'a Network,
    cp: &'a ControlPlane,
}

impl<'a> GroundTruth<'a> {
    /// Creates an oracle.
    pub fn new(net: &'a Network, cp: &'a ControlPlane) -> GroundTruth<'a> {
        GroundTruth { net, cp }
    }

    /// The true router-level forward path of a probe from `vp` to `dst`
    /// (including `vp` and the delivering router), or `None` when the
    /// destination is unreachable.
    pub fn forward_path(&self, vp: RouterId, dst: Addr, flow: u16) -> Option<Vec<RouterId>> {
        let mut eng = Engine::new(self.net, self.cp);
        let src = self.net.router(vp).loopback;
        let out = eng.send(vp, Packet::echo_request(src, dst, 255, flow, 0xBEEF, 1));
        let reply = out.reply()?;
        if reply.kind != wormhole_net::ReplyKind::EchoReply {
            return None;
        }
        Some(reply.fwd_path.clone())
    }

    /// The routers of `asn` strictly between `ingress` and `egress` on
    /// the true forward path of a probe from `vp` to `dst` — the hidden
    /// hops a revelation technique should recover.
    pub fn hidden_hops(
        &self,
        vp: RouterId,
        dst: Addr,
        ingress: RouterId,
        egress: RouterId,
        flow: u16,
    ) -> Option<Vec<RouterId>> {
        let path = self.forward_path(vp, dst, flow)?;
        let i = path.iter().position(|&r| r == ingress)?;
        let j = path.iter().position(|&r| r == egress)?;
        if i + 1 > j {
            return Some(Vec::new());
        }
        Some(path[i + 1..j].to_vec())
    }

    /// The AS crossing of the true path: the consecutive `(asn, length)`
    /// runs of the forward path.
    pub fn as_runs(&self, path: &[RouterId]) -> Vec<(Asn, usize)> {
        let mut runs: Vec<(Asn, usize)> = Vec::new();
        for &r in path {
            let asn = self.net.router(r).asn;
            match runs.last_mut() {
                Some((a, n)) if *a == asn => *n += 1,
                _ => runs.push((asn, 1)),
            }
        }
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{gns3_fig2, Fig2Config};

    #[test]
    fn forward_path_matches_topology() {
        let s = gns3_fig2(Fig2Config::BackwardRecursive);
        let gt = GroundTruth::new(&s.net, &s.cp);
        let path = gt.forward_path(s.vp, s.target, 1).unwrap();
        let names: Vec<&str> = path
            .iter()
            .map(|&r| s.net.router(r).name.as_str())
            .collect();
        assert_eq!(names, ["VP", "CE1", "PE1", "P1", "P2", "P3", "PE2", "CE2"]);
    }

    #[test]
    fn hidden_hops_are_the_lsrs() {
        let s = gns3_fig2(Fig2Config::BackwardRecursive);
        let gt = GroundTruth::new(&s.net, &s.cp);
        let hidden = gt
            .hidden_hops(s.vp, s.target, s.router("PE1"), s.router("PE2"), 1)
            .unwrap();
        let names: Vec<&str> = hidden
            .iter()
            .map(|&r| s.net.router(r).name.as_str())
            .collect();
        assert_eq!(names, ["P1", "P2", "P3"]);
    }

    #[test]
    fn as_runs_split_per_as() {
        let s = gns3_fig2(Fig2Config::Default);
        let gt = GroundTruth::new(&s.net, &s.cp);
        let path = gt.forward_path(s.vp, s.target, 1).unwrap();
        let runs = gt.as_runs(&path);
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].1, 2); // VP + CE1
        assert_eq!(runs[1].1, 5); // PE1..PE2
        assert_eq!(runs[2].1, 1); // CE2
    }

    #[test]
    fn unreachable_is_none() {
        let s = gns3_fig2(Fig2Config::Default);
        let gt = GroundTruth::new(&s.net, &s.cp);
        assert!(gt.forward_path(s.vp, Addr::new(9, 9, 9, 9), 1).is_none());
    }
}
