//! The §4 measurement campaign, end to end.
//!
//! 1. **Bootstrap**: traceroute from every vantage point to build an
//!    ITDK-style router-level snapshot (the paper downloads CAIDA's).
//! 2. **HDN extraction**: nodes with degree ≥ threshold are suspected
//!    tunnel endpoints. (The paper uses 128 against the full Internet;
//!    the default here is scaled to the synthetic topology's size.)
//! 3. **Target construction**: the HDNs' neighbors (set A) and their
//!    neighbors (set B); the union, split across vantage-point teams.
//! 4. **Probing**: Paris traceroute to every target (start TTL 2), plus
//!    echo-request pings of every discovered address for TTL
//!    fingerprinting.
//! 5. **Revelation**: for every trace ending `X, Y, D` with `X`,`Y`
//!    HDN-owned addresses in the same AS, run the DPR/BRPR recursion of
//!    [`crate::reveal`] on the unique `(X, Y)` pairs.

use crate::fingerprint::FingerprintTable;
use crate::reveal::{reveal_between, RevealOpts, RevealOutcome};
use std::collections::{BTreeSet, HashMap, HashSet};
use wormhole_net::{Addr, Asn, ControlPlane, FaultPlan, Network, ReplyKind, RouterId};
use wormhole_probe::{Session, Trace, TracerouteOpts};
use wormhole_topo::{ItdkSnapshot, NodeInfo};

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// HDN degree threshold (paper: 128 at Internet scale; default 12
    /// for the synthetic topologies, same role: flag routers whose
    /// apparent degree outruns plausible physical fan-out).
    pub hdn_threshold: usize,
    /// How HDN membership gates candidate pairs. The paper requires
    /// *both* endpoints at Internet scale; at simulator scale egress
    /// degrees stay diluted, so the default keeps the HDN trigger on at
    /// least one endpoint.
    pub hdn_rule: HdnRule,
    /// Revelation recursion options.
    pub reveal: RevealOpts,
    /// Traceroute options (default: the §4 campaign preset).
    pub trace_opts: TracerouteOpts,
    /// Ping every discovered address for the echo-reply half of the
    /// signature.
    pub fingerprint: bool,
    /// Fault injection for every session.
    pub faults: FaultPlan,
    /// Seed for fault randomness.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            hdn_threshold: 12,
            hdn_rule: HdnRule::Either,
            reveal: RevealOpts::default(),
            trace_opts: TracerouteOpts::campaign(),
            fingerprint: true,
            faults: FaultPlan::none(),
            seed: 0,
        }
    }
}

/// How candidate pairs are gated on HDN membership.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum HdnRule {
    /// Both endpoints must be HDN nodes (the paper's §4 rule).
    Both,
    /// At least one endpoint must be an HDN node (scale adaptation).
    Either,
    /// No gating: every same-AS adjacent pair is a candidate.
    None,
}

/// A candidate Ingress–Egress pair observed at the end of a trace.
#[derive(Clone, Debug)]
pub struct CandidatePair {
    /// Suspected ingress LER address (`X`).
    pub ingress: Addr,
    /// Suspected egress LER address (`Y`).
    pub egress: Addr,
    /// The trace destination (`D`).
    pub target: Addr,
    /// The AS both endpoints map to.
    pub asn: Asn,
    /// Index of the vantage point that saw the pair.
    pub vp_index: usize,
    /// Index of the trace in [`CampaignResult::traces`].
    pub trace_index: usize,
}

/// Everything a campaign produced.
#[derive(Debug)]
pub struct CampaignResult {
    /// The bootstrap router-level snapshot (invisible view).
    pub snapshot: ItdkSnapshot,
    /// HDN node indices in `snapshot`.
    pub hdns: Vec<usize>,
    /// The measurement targets (set A ∪ B addresses).
    pub targets: Vec<Addr>,
    /// All campaign traces (bootstrap traces are not kept).
    pub traces: Vec<Trace>,
    /// TTL signatures of every pinged/observed address.
    pub fingerprints: FingerprintTable,
    /// Raw observed time-exceeded reply TTL per address, with the
    /// vantage point that observed it (first observation wins; the
    /// paired ping is issued from the same vantage point so the RTLA
    /// gap compares like with like).
    pub te_obs: HashMap<Addr, (usize, u8)>,
    /// Raw observed echo-reply TTL per address.
    pub er_obs: HashMap<Addr, u8>,
    /// Candidate pairs, one entry per observing trace.
    pub candidates: Vec<CandidatePair>,
    /// Revelation outcome per unique `(ingress, egress)` pair.
    pub revelations: HashMap<(Addr, Addr), RevealOutcome>,
    /// Total probe packets spent (bootstrap + campaign + revelation +
    /// fingerprinting).
    pub probes: u64,
}

impl CampaignResult {
    /// The revealed tunnels (unique pairs with at least one hop).
    pub fn tunnels(&self) -> impl Iterator<Item = &crate::reveal::RevealedTunnel> + '_ {
        self.revelations.values().filter_map(RevealOutcome::tunnel)
    }

    /// Unique candidate `(ingress, egress)` pairs.
    pub fn unique_pairs(&self) -> BTreeSet<(Addr, Addr)> {
        self.candidates
            .iter()
            .map(|c| (c.ingress, c.egress))
            .collect()
    }
}

/// A campaign bound to a network and its vantage points.
pub struct Campaign<'a> {
    net: &'a Network,
    cp: &'a ControlPlane,
    vps: Vec<RouterId>,
    cfg: CampaignConfig,
}

impl<'a> Campaign<'a> {
    /// Creates a campaign.
    ///
    /// # Panics
    /// Panics without vantage points and, under `debug_assertions`,
    /// when the network fails static analysis with `Error`-level
    /// diagnostics (lint before simulate).
    pub fn new(
        net: &'a Network,
        cp: &'a ControlPlane,
        vps: Vec<RouterId>,
        cfg: CampaignConfig,
    ) -> Campaign<'a> {
        assert!(!vps.is_empty(), "need at least one vantage point");
        #[cfg(debug_assertions)]
        wormhole_lint::deny_errors("Campaign", &wormhole_lint::check_full(net, cp));
        Campaign { net, cp, vps, cfg }
    }

    fn sessions(&self) -> Vec<Session<'a>> {
        self.vps
            .iter()
            .enumerate()
            .map(|(i, &vp)| {
                let mut s = Session::with_faults(
                    self.net,
                    self.cp,
                    vp,
                    self.cfg.faults.clone(),
                    self.cfg.seed.wrapping_add(i as u64),
                );
                s.set_opts(self.cfg.trace_opts.clone());
                s
            })
            .collect()
    }

    /// Ground-truth alias resolution + node-to-AS mapping (the CAIDA /
    /// Team Cymru stand-in).
    fn resolve(&self, addr: Addr) -> NodeInfo {
        match self.net.owner(addr) {
            Some(r) => NodeInfo {
                key: u64::from(r.0),
                asn: Some(self.net.router(r).asn),
            },
            None => NodeInfo {
                key: 0xFFFF_0000_0000_0000 | u64::from(addr.0),
                asn: None,
            },
        }
    }

    /// The bootstrap target list: every non-host router loopback plus
    /// the interface addresses of inter-AS borders (transit traffic in
    /// the paper's dataset enters and leaves through exactly those).
    fn bootstrap_targets(&self) -> Vec<Addr> {
        let mut out = Vec::new();
        for r in self.net.routers() {
            if r.config.is_host {
                continue;
            }
            out.push(r.loopback);
            for iface in &r.ifaces {
                if self.net.link(iface.link).inter_as {
                    out.push(iface.addr);
                }
            }
        }
        out
    }

    /// Runs the full campaign.
    pub fn run(&self) -> CampaignResult {
        let mut sessions = self.sessions();

        // Phase 1: bootstrap snapshot. Every VP traces a share of the
        // loopbacks — and every VP traces the borders-heavy transit
        // space by design of the topology.
        let boot_targets = self.bootstrap_targets();
        let mut paths: Vec<Vec<Option<Addr>>> = Vec::new();
        let teams = 3usize.min(sessions.len());
        for (i, &t) in boot_targets.iter().enumerate() {
            // Several teams per target give the ingress diversity HDN
            // detection needs.
            for k in 0..teams {
                let vp = (i + k * (sessions.len() / teams).max(1)) % sessions.len();
                let trace = sessions[vp].traceroute(t);
                paths.push(trace.addr_path());
            }
        }
        let snapshot = ItdkSnapshot::build(&paths, |a| self.resolve(a));

        // Phase 2–3: HDNs and targets.
        let hdns = snapshot.hdns(self.cfg.hdn_threshold);
        let (set_a, set_b) = snapshot.hdn_neighborhoods(&hdns);
        let mut target_set: BTreeSet<Addr> = BTreeSet::new();
        for &node in set_a.union(&set_b) {
            target_set.extend(snapshot.addresses(node).iter().copied());
        }
        let targets: Vec<Addr> = target_set.into_iter().collect();
        let hdn_nodes: HashSet<usize> = hdns.iter().copied().collect();

        // Phase 4: probe each target from its team's vantage point.
        let mut traces = Vec::with_capacity(targets.len());
        let mut fingerprints = FingerprintTable::new();
        let mut discovered: BTreeSet<Addr> = BTreeSet::new();
        let mut te_obs: HashMap<Addr, (usize, u8)> = HashMap::new();
        let mut er_obs: HashMap<Addr, u8> = HashMap::new();
        for (i, &t) in targets.iter().enumerate() {
            let vp = i % sessions.len();
            let trace = sessions[vp].traceroute(t);
            for hop in &trace.hops {
                if let (Some(addr), Some(ttl)) = (hop.addr, hop.reply_ip_ttl) {
                    if hop.kind == Some(ReplyKind::TimeExceeded) {
                        fingerprints.observe_te(addr, ttl);
                        te_obs.entry(addr).or_insert((vp, ttl));
                    }
                    discovered.insert(addr);
                }
            }
            traces.push((vp, trace));
        }

        // Fingerprint pings (echo-reply initial TTLs), issued from the
        // vantage point that observed the address where possible so the
        // RTLA gap compares replies over the same return path.
        if self.cfg.fingerprint {
            for (i, &addr) in discovered.iter().enumerate() {
                let vp = te_obs
                    .get(&addr)
                    .map(|&(vp, _)| vp)
                    .unwrap_or(i % sessions.len());
                if let Some(r) = sessions[vp].ping(addr) {
                    fingerprints.observe_er(addr, r.reply_ip_ttl);
                    er_obs.insert(addr, r.reply_ip_ttl);
                }
            }
        }

        // Phase 5: candidate pairs and revelation. The paper inspects
        // the last three hops `X, Y, D`; we scan every consecutive
        // same-AS HDN pair along the trace — the same rule applied at
        // every position, which also catches the pair when the target
        // *is* the egress (a set-A target) or lies several hops past it.
        let mut candidates = Vec::new();
        let mut revelations: HashMap<(Addr, Addr), RevealOutcome> = HashMap::new();
        for (trace_index, (vp, trace)) in traces.iter().enumerate() {
            let resp: Vec<(Addr, Option<usize>)> = trace
                .hops
                .iter()
                .filter_map(|h| h.addr)
                .map(|a| (a, snapshot.node_of(a)))
                .collect();
            for i in 0..resp.len().saturating_sub(1) {
                let (x, node_x) = resp[i];
                let (y, node_y) = resp[i + 1];
                let d = resp.get(i + 2).map(|&(a, _)| a).unwrap_or(trace.dst);
                if x == y || y == d {
                    continue;
                }
                let (Some(asn_x), Some(asn_y)) = (self.net.owner_asn(x), self.net.owner_asn(y))
                else {
                    continue;
                };
                if asn_x != asn_y {
                    continue;
                }
                let x_hdn = node_x.is_some_and(|n| hdn_nodes.contains(&n));
                let y_hdn = node_y.is_some_and(|n| hdn_nodes.contains(&n));
                let pass = match self.cfg.hdn_rule {
                    HdnRule::Both => x_hdn && y_hdn,
                    HdnRule::Either => x_hdn || y_hdn,
                    HdnRule::None => true,
                };
                if !pass {
                    continue;
                }
                candidates.push(CandidatePair {
                    ingress: x,
                    egress: y,
                    target: d,
                    asn: asn_x,
                    vp_index: *vp,
                    trace_index,
                });
                if let std::collections::hash_map::Entry::Vacant(e) = revelations.entry((x, y)) {
                    let out = reveal_between(&mut sessions[*vp], x, y, d, &self.cfg.reveal);
                    // Fingerprint newly revealed addresses too.
                    if let Some(t) = out.tunnel() {
                        for step in &t.steps {
                            for h in &step.new_hops {
                                if discovered.insert(h.addr) && self.cfg.fingerprint {
                                    if let Some(r) = sessions[*vp].ping(h.addr) {
                                        fingerprints.observe_er(h.addr, r.reply_ip_ttl);
                                    }
                                }
                            }
                        }
                    }
                    e.insert(out);
                }
            }
        }

        let probes = sessions.iter().map(|s| s.stats.probes).sum();
        CampaignResult {
            snapshot,
            hdns,
            targets,
            traces: traces.into_iter().map(|(_, t)| t).collect(),
            fingerprints,
            te_obs,
            er_obs,
            candidates,
            revelations,
            probes,
        }
    }
}

/// Reduces a campaign result to the neutral snapshot consumed by the
/// `wormhole-lint` result auditor (`A3xx` rules).
pub fn audit_input(result: &CampaignResult) -> wormhole_lint::CampaignAudit {
    let signatures = result
        .fingerprints
        .iter()
        .map(|(addr, sig)| (addr, sig.te, sig.er))
        .collect();
    let tunnels = result
        .tunnels()
        .map(|t| {
            // The RTLA gap at the egress, when both raw reply TTLs were
            // observed and its signature is the `<255, 64>` pair.
            let rtl = match (result.te_obs.get(&t.egress), result.er_obs.get(&t.egress)) {
                (Some(&(_, te)), Some(&er)) => crate::rtla::return_tunnel_length(
                    result.fingerprints.signature(t.egress),
                    te,
                    er,
                ),
                _ => None,
            };
            wormhole_lint::TunnelAudit {
                ingress: t.ingress,
                egress: t.egress,
                hops: t.hops(),
                rtl,
            }
        })
        .collect();
    let candidates = result
        .candidates
        .iter()
        .map(|c| (c.ingress, c.egress, c.trace_index))
        .collect();
    wormhole_lint::CampaignAudit {
        signatures,
        tunnels,
        candidates,
        num_traces: result.traces.len(),
        probes: result.probes,
    }
}

/// Audits a campaign result against the network it ran on, returning
/// the `A3xx` diagnostics.
pub fn audit_campaign(net: &Network, result: &CampaignResult) -> Vec<wormhole_lint::Diagnostic> {
    wormhole_lint::audit(net, &audit_input(result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_topo::{generate, InternetConfig};

    #[test]
    fn campaign_reveals_tunnels_in_small_internet() {
        let internet = generate(&InternetConfig::small(11));
        let cfg = CampaignConfig {
            hdn_threshold: 6,
            ..CampaignConfig::default()
        };
        let campaign = Campaign::new(&internet.net, &internet.cp, internet.vps.clone(), cfg);
        let result = campaign.run();
        assert!(result.snapshot.num_nodes() > 30);
        assert!(!result.hdns.is_empty(), "expected HDNs in invisible view");
        assert!(!result.targets.is_empty());
        assert!(!result.candidates.is_empty(), "expected candidate pairs");
        let tunnels: Vec<_> = result.tunnels().collect();
        assert!(!tunnels.is_empty(), "expected revealed tunnels");
        // Revealed hops are real routers of the same AS as the pair.
        for t in &tunnels {
            let asn = internet.net.owner_asn(t.ingress).unwrap();
            for hop in t.hops() {
                assert_eq!(internet.net.owner_asn(hop), Some(asn));
            }
        }
        assert!(result.probes > 0);
    }

    #[test]
    fn fingerprints_cover_discovered_space() {
        let internet = generate(&InternetConfig::small(13));
        let cfg = CampaignConfig {
            hdn_threshold: 6,
            ..CampaignConfig::default()
        };
        let campaign = Campaign::new(&internet.net, &internet.cp, internet.vps.clone(), cfg);
        let result = campaign.run();
        assert!(!result.fingerprints.is_empty());
        // At least one complete pair signature should exist.
        let complete = result
            .fingerprints
            .iter()
            .filter(|(_, s)| s.pair().is_some())
            .count();
        assert!(complete > 0);
    }

    #[test]
    fn campaign_results_audit_clean() {
        let internet = generate(&InternetConfig::small(11));
        let cfg = CampaignConfig {
            hdn_threshold: 6,
            ..CampaignConfig::default()
        };
        let campaign = Campaign::new(&internet.net, &internet.cp, internet.vps.clone(), cfg);
        let result = campaign.run();
        let diags = audit_campaign(&internet.net, &result);
        assert!(
            !wormhole_lint::has_errors(&diags),
            "{}",
            wormhole_lint::render(&diags)
        );
    }

    #[test]
    #[should_panic]
    fn needs_vantage_points() {
        let internet = generate(&InternetConfig::small(5));
        let _ = Campaign::new(
            &internet.net,
            &internet.cp,
            Vec::new(),
            CampaignConfig::default(),
        );
    }
}
