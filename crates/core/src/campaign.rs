//! The §4 measurement campaign, end to end.
//!
//! 1. **Bootstrap**: traceroute from every vantage point to build an
//!    ITDK-style router-level snapshot (the paper downloads CAIDA's).
//! 2. **HDN extraction**: nodes with degree ≥ threshold are suspected
//!    tunnel endpoints. (The paper uses 128 against the full Internet;
//!    the default here is scaled to the synthetic topology's size.)
//! 3. **Target construction**: the HDNs' neighbors (set A) and their
//!    neighbors (set B); the union, split across vantage-point teams.
//! 4. **Probing**: Paris traceroute to every target (start TTL 2), plus
//!    echo-request pings of every discovered address for TTL
//!    fingerprinting.
//! 5. **Revelation**: for every trace ending `X, Y, D` with `X`,`Y`
//!    HDN-owned addresses in the same AS, run the DPR/BRPR recursion of
//!    [`crate::reveal`] on the unique `(X, Y)` pairs.
//!
//! # Execution model
//!
//! The campaign runs over an immutable, shared substrate
//! ([`SubstrateRef`]: network + control plane + prefix tries) and one
//! mutable [`Session`] per vantage point. Probing phases are sharded
//! across up to [`CampaignConfig::jobs`] worker threads by the
//! executor in [`crate::shard`]; every phase assigns work per VP from
//! the merged output of the previous phase and merges its result
//! shards back in a fixed global order, so the same `(seed, topology)`
//! produces **byte-identical** results ([`CampaignResult::report`]) at
//! any thread count. Each VP's fault RNG stream is derived from
//! `(seed, vp_index)` via [`wormhole_net::worker_seed`].

use crate::distributed::{DistDispatcher, DistError, DistSummary, DistributedOpts};
use crate::fingerprint::FingerprintTable;
use crate::reveal::{reveal_between, AbandonReason, RevealOpts, RevelationOutcome};
use crate::shard;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt::Write as _;
use std::time::Instant;
use wormhole_net::wire::Wire;
use wormhole_net::{
    trace_seed, Addr, Asn, ControlPlane, EngineStats, FaultPlan, Network, ProbeState, ReplyKind,
    RouterId, SubstrateRef, BATCH_WIDTH,
};
use wormhole_probe::{NullSink, PingResult, Session, Trace, TraceSink, TracerouteOpts};
use wormhole_topo::{ItdkBuilder, ItdkSnapshot, NodeInfo};

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// HDN degree threshold (paper: 128 at Internet scale; default 12
    /// for the synthetic topologies, same role: flag routers whose
    /// apparent degree outruns plausible physical fan-out).
    pub hdn_threshold: usize,
    /// How HDN membership gates candidate pairs. The paper requires
    /// *both* endpoints at Internet scale; at simulator scale egress
    /// degrees stay diluted, so the default keeps the HDN trigger on at
    /// least one endpoint.
    pub hdn_rule: HdnRule,
    /// Revelation recursion options.
    pub reveal: RevealOpts,
    /// Traceroute options (default: the §4 campaign preset).
    pub trace_opts: TracerouteOpts,
    /// Ping every discovered address for the echo-reply half of the
    /// signature.
    pub fingerprint: bool,
    /// Fault injection for every session.
    pub faults: FaultPlan,
    /// Seed for fault randomness; each vantage-point worker derives its
    /// own stream from `(seed, vp_index)`.
    pub seed: u64,
    /// Worker threads for the probing phases: `1` runs serially, `0`
    /// uses the machine's available parallelism. Results are identical
    /// for every value.
    pub jobs: usize,
    /// How probing work is distributed over the worker threads; see
    /// [`Scheduling`]. Either choice is deterministic in `jobs`; the two
    /// differ from each other (different RNG stream granularity).
    pub scheduling: Scheduling,
    /// Probes advanced together by the engine's batched SoA walk during
    /// the [`Scheduling::VpBatches`] probing phases, and the task-claim
    /// chunk size of the [`Scheduling::Stealing`] executor. `0` or `1`
    /// runs the scalar walk (and per-task steals). Results are
    /// byte-identical at every value — the batched walk is an execution
    /// strategy, not a semantic switch — so this defaults to the
    /// engine's native [`wormhole_net::BATCH_WIDTH`].
    pub batch_width: usize,
    /// Which engine walk the [`Scheduling::VpBatches`] probing phases
    /// drive; see [`WalkMode`]. Byte-identical at every setting — the
    /// batched SoA walk is an execution strategy, not a semantic
    /// switch — so the default picks per substrate size.
    pub walk_mode: WalkMode,
    /// Run the lint-before-simulate gate (deny `Error`-level static
    /// analysis findings, including the `D5xx` dense-plane verifier
    /// over the flat tables the walk runs on — so a plane built with
    /// `build_with_jobs` is checked against serial semantics before
    /// any probing) regardless of build profile. Defaults to on in
    /// debug builds only, preserving release-build throughput unless
    /// explicitly requested.
    pub lint_gate: bool,
    /// Chaos hook: panic inside this vantage point's phase-4 probing
    /// batch, exercising the campaign's worker-panic isolation. The
    /// affected VP's shard is marked degraded and later phases skip it;
    /// everything else completes normally. Test/CI use only.
    pub chaos_panic_vp: Option<usize>,
    /// Run the revelation-veracity screening pass: grade every
    /// revelation Corroborated/Unverified/Contradicted from independent
    /// evidence (quoted-TTL plausibility, duplicate-IP/loop screens,
    /// return-path consistency — see [`crate::veracity`]), and spend a
    /// per-flow stability re-trace per revelation when the fault plan
    /// is deceptive. Honest scenarios can never be contradicted, so
    /// their reports stay byte-identical with this on; the adversarial
    /// sweep turns it off to measure undetected corruption.
    pub screen_revelations: bool,
    /// Keep the bootstrap IP paths on [`CampaignResult`]. Off by
    /// default (the paper's workflow discards bootstrap traces after
    /// aggregation, and at thousandfold scale they dominate memory);
    /// tests and the `A310` batch-rebuild oracle turn it on to
    /// cross-check the incremental aggregation against a from-scratch
    /// [`ItdkSnapshot::build`] over the same paths.
    pub keep_bootstrap_paths: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            hdn_threshold: 12,
            hdn_rule: HdnRule::Either,
            reveal: RevealOpts::default(),
            trace_opts: TracerouteOpts::campaign(),
            fingerprint: true,
            faults: FaultPlan::none(),
            seed: 0,
            jobs: 1,
            scheduling: Scheduling::VpBatches,
            batch_width: BATCH_WIDTH,
            walk_mode: WalkMode::Auto,
            lint_gate: cfg!(debug_assertions),
            chaos_panic_vp: None,
            screen_revelations: true,
            keep_bootstrap_paths: false,
        }
    }
}

/// Routers at or below this count keep the scalar walk under
/// [`WalkMode::Auto`]: small planes stay cache-resident, where the
/// batched walk's lane bookkeeping costs more than it amortizes.
pub const WALK_AUTO_THRESHOLD: usize = 8192;

/// Which engine walk the probing phases drive. Every mode produces
/// byte-identical campaign reports — the batched SoA walk advances the
/// same probe sequence lane by lane — so this knob only trades wall
/// clock, like [`CampaignConfig::jobs`].
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum WalkMode {
    /// Scalar while the substrate has at most [`WALK_AUTO_THRESHOLD`]
    /// routers (the dense plane stays cache-resident and the batched
    /// walk's lane bookkeeping dominates), batched beyond that.
    #[default]
    Auto,
    /// Always the scalar walk.
    Scalar,
    /// Always the batched SoA walk at [`CampaignConfig::batch_width`].
    Batched,
}

/// How the probing phases distribute work over worker threads.
///
/// Both modes produce byte-identical reports at every `jobs` value;
/// they are **not** byte-identical to each other, because they draw
/// fault randomness at different granularity (one stream per VP vs one
/// stream per trace).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Scheduling {
    /// One long-lived [`Session`] per vantage point; each worker thread
    /// owns a contiguous VP range for the whole phase. Fault RNG is one
    /// stream per VP ([`wormhole_net::worker_seed`]). Balances poorly
    /// when one VP owns the slow traces.
    #[default]
    VpBatches,
    /// Per-trace work stealing: every task goes into one shared
    /// injector queue and idle workers claim the next task with an
    /// atomic fetch-add. Each task runs in its own hermetic session
    /// whose RNG stream is derived per `(seed, vp, target)`
    /// ([`wormhole_net::trace_seed`]), so results are independent of
    /// the steal interleaving.
    Stealing,
}

/// Wall-clock phase breakdown of a campaign run. Carried on
/// [`CampaignResult`] for benchmarking but **never** rendered into
/// [`CampaignResult::report`] — wall time is the one thing about a run
/// that is not deterministic.
#[derive(Copy, Clone, Debug, Default)]
pub struct CampaignTimings {
    /// Seconds spent inside the sharded probing phases (bootstrap,
    /// probe, fingerprint pings, revelation), i.e. the part that scales
    /// with `jobs`.
    pub probe_seconds: f64,
    /// Seconds spent in the serial analysis between probing phases
    /// (snapshot aggregation, HDN extraction, candidate scan, merges).
    pub merge_seconds: f64,
    /// The snapshot-aggregation share of `merge_seconds`: incremental
    /// [`ItdkBuilder`] ingestion at every shard-merge point plus the
    /// canonicalizing finish at the bootstrap phase boundary. This is
    /// the row `bench-regression` gates — the incremental pipeline
    /// keeps it O(new traces) instead of O(rebuild).
    pub analysis_seconds: f64,
}

/// Running totals of the incremental snapshot builder at one phase
/// boundary: how many IP paths the phase fed it and the cumulative
/// node/link/address counts afterwards. Carried on
/// [`CampaignResult::snapshot_deltas`] (excluded from
/// [`CampaignResult::report`]); the `A310` lint rule audits the
/// sequence for conservation — counts never shrink, ingest totals add
/// up, and the final state matches a batch-rebuild oracle when one is
/// available.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotDelta {
    /// The campaign phase that fed the builder.
    pub phase: &'static str,
    /// IP paths ingested during this phase.
    pub ingested: u64,
    /// Cumulative node count after the phase.
    pub nodes: usize,
    /// Cumulative undirected link count after the phase.
    pub links: usize,
    /// Cumulative distinct address count after the phase.
    pub addresses: usize,
}

/// One vantage-point shard lost to a worker panic: the campaign
/// completed without it and reports the loss here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegradedShard {
    /// The vantage-point index whose batch panicked.
    pub vp: usize,
    /// The campaign phase the panic occurred in.
    pub phase: &'static str,
    /// The panic message.
    pub message: String,
}

/// How candidate pairs are gated on HDN membership.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum HdnRule {
    /// Both endpoints must be HDN nodes (the paper's §4 rule).
    Both,
    /// At least one endpoint must be an HDN node (scale adaptation).
    Either,
    /// No gating: every same-AS adjacent pair is a candidate.
    None,
}

/// A candidate Ingress–Egress pair observed at the end of a trace.
#[derive(Clone, Debug)]
pub struct CandidatePair {
    /// Suspected ingress LER address (`X`).
    pub ingress: Addr,
    /// Suspected egress LER address (`Y`).
    pub egress: Addr,
    /// The trace destination (`D`).
    pub target: Addr,
    /// The AS both endpoints map to.
    pub asn: Asn,
    /// Index of the vantage point that saw the pair.
    pub vp_index: usize,
    /// Index of the trace in [`CampaignResult::traces`].
    pub trace_index: usize,
}

/// Everything a campaign produced.
#[derive(Debug)]
pub struct CampaignResult {
    /// The bootstrap router-level snapshot (invisible view).
    pub snapshot: ItdkSnapshot,
    /// HDN node indices in `snapshot`.
    pub hdns: Vec<usize>,
    /// The measurement targets (set A ∪ B addresses).
    pub targets: Vec<Addr>,
    /// All campaign traces (bootstrap traces are not kept).
    pub traces: Vec<Trace>,
    /// The vantage point that ran each trace (index-aligned with
    /// `traces`).
    pub trace_vps: Vec<usize>,
    /// TTL signatures of every pinged/observed address.
    pub fingerprints: FingerprintTable,
    /// Raw observed time-exceeded reply TTL per address, with the
    /// vantage point that observed it (first observation wins; the
    /// paired ping is issued from the same vantage point so the RTLA
    /// gap compares like with like).
    pub te_obs: HashMap<Addr, (usize, u8)>,
    /// Raw observed echo-reply TTL per address.
    pub er_obs: HashMap<Addr, u8>,
    /// Candidate pairs, one entry per observing trace.
    pub candidates: Vec<CandidatePair>,
    /// Revelation outcome per unique `(ingress, egress)` pair.
    pub revelations: HashMap<(Addr, Addr), RevelationOutcome>,
    /// Total probe packets spent (bootstrap + campaign + revelation +
    /// fingerprinting).
    pub probes: u64,
    /// Probe packets per vantage-point shard (index-aligned with the
    /// campaign's vantage points; sums to `probes`).
    pub probes_by_vp: Vec<u64>,
    /// Aggregated engine counters over every session the campaign ran
    /// (per-VP sessions in batch mode, per-task hermetic sessions under
    /// stealing). Deterministic at any `jobs`/`batch_width` value; in
    /// particular `heap_allocs` stays `0` — campaign sessions keep path
    /// recording off, so the whole probing walk is allocation-free.
    /// Excluded from [`Self::report`] (like [`Self::timings`]) to keep
    /// existing report transcripts stable.
    pub engine_stats: EngineStats,
    /// The per-trace probe budget the campaign ran with, if any.
    pub trace_budget: Option<u32>,
    /// Vantage-point shards lost to worker panics; empty on a healthy
    /// run.
    pub degraded_shards: Vec<DegradedShard>,
    /// The scheduling mode the campaign ran with.
    pub scheduling: Scheduling,
    /// Whether the revelation-veracity screening pass ran
    /// ([`CampaignConfig::screen_revelations`]); the veracity tiers on
    /// [`Self::revelations`] are meaningful only when it did.
    pub screened: bool,
    /// Whether the fault plan included deceptive behaviors
    /// ([`wormhole_net::FaultPlan::is_deceptive`]) — carried for the
    /// `V606` adversarial-scenario audit.
    pub deceptive_faults: bool,
    /// Wall-clock phase breakdown (excluded from [`Self::report`]).
    pub timings: CampaignTimings,
    /// Per-phase running totals of the incremental snapshot builder
    /// (bootstrap, then the phase-4 probe traces). Deterministic at any
    /// `jobs`/`batch_width`/scheduling value, but excluded from
    /// [`Self::report`] to keep existing transcripts stable.
    pub snapshot_deltas: Vec<SnapshotDelta>,
    /// Order-independent fingerprint of the builder's *final* state
    /// (bootstrap + probe paths). Equal to
    /// `ItdkSnapshot::build(all paths).checksum()` — the `A310` audit
    /// compares it against that batch-rebuild oracle.
    pub snapshot_checksum: u64,
    /// The bootstrap IP paths, kept only when
    /// [`CampaignConfig::keep_bootstrap_paths`] is set; empty otherwise.
    pub bootstrap_paths: Vec<Vec<Option<Addr>>>,
    /// Cross-process shard accounting, present only when the run was
    /// distributed ([`Campaign::run_distributed`]). Excluded from
    /// [`Self::report`] — a distributed run's report must stay
    /// byte-identical to the in-process run it mirrors.
    pub dist: Option<DistSummary>,
}

impl CampaignResult {
    /// The revealed tunnels (unique pairs with at least one hop).
    pub fn tunnels(&self) -> impl Iterator<Item = &crate::reveal::RevealedTunnel> + '_ {
        self.revelations
            .values()
            .filter_map(RevelationOutcome::tunnel)
    }

    /// Unique candidate `(ingress, egress)` pairs.
    pub fn unique_pairs(&self) -> BTreeSet<(Addr, Addr)> {
        self.candidates
            .iter()
            .map(|c| (c.ingress, c.egress))
            .collect()
    }

    /// A canonical, byte-stable rendering of everything the campaign
    /// observed: trace transcripts in probing order, observation maps
    /// and revelations in address order, probe accounting per shard.
    /// Two runs of the same `(topology, config, seed)` must produce
    /// equal reports at **any** `jobs` setting — the determinism
    /// regression tests compare these byte for byte.
    pub fn report(&self) -> CampaignReport {
        let mut out = String::new();
        let w = &mut out;
        let _ = writeln!(w, "snapshot nodes={}", self.snapshot.num_nodes());
        let _ = writeln!(w, "hdns={:?}", self.hdns);
        let _ = writeln!(
            w,
            "targets=[{}]",
            self.targets
                .iter()
                .map(Addr::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        );
        for (i, t) in self.traces.iter().enumerate() {
            let _ = writeln!(
                w,
                "trace {i} vp={} dst={} flow={} reached={} probes={} truncated={}",
                self.trace_vps[i], t.dst, t.flow, t.reached, t.probes, t.truncated
            );
            for h in &t.hops {
                match h.addr {
                    Some(a) => {
                        let _ = writeln!(
                            w,
                            "  {} {} ttl={:?} kind={:?} rtt={} labels={:?} attempts={}",
                            h.ttl,
                            a,
                            h.reply_ip_ttl,
                            h.kind,
                            h.rtt_ms.map(|r| format!("{r:.6}")).unwrap_or_default(),
                            h.labels,
                            h.attempts
                        );
                    }
                    None => {
                        let _ = writeln!(
                            w,
                            "  {} * outcome={:?} attempts={}",
                            h.ttl, h.outcome, h.attempts
                        );
                    }
                }
            }
        }
        let mut te: Vec<_> = self.te_obs.iter().collect();
        te.sort_by_key(|&(a, _)| *a);
        for (a, (vp, ttl)) in te {
            let _ = writeln!(w, "te {a} vp={vp} ttl={ttl}");
        }
        let mut er: Vec<_> = self.er_obs.iter().collect();
        er.sort_by_key(|&(a, _)| *a);
        for (a, ttl) in er {
            let _ = writeln!(w, "er {a} ttl={ttl}");
        }
        let mut sigs: Vec<_> = self.fingerprints.iter().collect();
        sigs.sort_by_key(|&(a, _)| a);
        for (a, s) in sigs {
            let _ = writeln!(w, "sig {a} te={:?} er={:?}", s.te, s.er);
        }
        for c in &self.candidates {
            let _ = writeln!(
                w,
                "candidate {}->{} d={} asn={} vp={} trace={}",
                c.ingress, c.egress, c.target, c.asn.0, c.vp_index, c.trace_index
            );
        }
        let mut revs: Vec<_> = self.revelations.iter().collect();
        revs.sort_by_key(|&(pair, _)| *pair);
        for ((x, y), out) in revs {
            // The veracity marker appears only on contradicted
            // revelations. Honest scenarios can never be contradicted
            // (artifact screens require positive evidence of deception),
            // so honest reports keep their exact historical bytes.
            let vs = match out.veracity() {
                crate::reveal::Veracity::Contradicted => " veracity=contradicted",
                _ => "",
            };
            match out {
                RevelationOutcome::Complete {
                    tunnel, confidence, ..
                } if !tunnel.is_empty() => {
                    let _ = writeln!(
                        w,
                        "revealed {x}->{y} complete method={:?} hops={:?} extra_probes={} \
                         confidence={}{vs}",
                        tunnel.method(),
                        tunnel.hops(),
                        tunnel.extra_probes,
                        confidence.label()
                    );
                }
                RevelationOutcome::Complete { confidence, .. } => {
                    let _ = writeln!(
                        w,
                        "revealed {x}->{y} nothing-hidden confidence={}{vs}",
                        confidence.label()
                    );
                }
                RevelationOutcome::Partial {
                    tunnel,
                    missing,
                    confidence,
                    ..
                } => {
                    let _ = writeln!(
                        w,
                        "revealed {x}->{y} partial missing={} method={:?} hops={:?} \
                         extra_probes={} confidence={}{vs}",
                        missing.label(),
                        tunnel.method(),
                        tunnel.hops(),
                        tunnel.extra_probes,
                        confidence.label()
                    );
                }
                RevelationOutcome::Abandoned { reason } => {
                    let _ = writeln!(w, "revealed {x}->{y} abandoned reason={}", reason.label());
                }
            }
        }
        let _ = writeln!(w, "probes={} by_vp={:?}", self.probes, self.probes_by_vp);
        let _ = writeln!(w, "degraded_shards={}", self.degraded_shards.len());
        for d in &self.degraded_shards {
            let _ = writeln!(
                w,
                "degraded vp={} phase={} msg={}",
                d.vp, d.phase, d.message
            );
        }
        CampaignReport { text: out }
    }
}

/// The canonical campaign output: a deterministic rendering used to
/// verify that sharded execution merges into the exact same bytes as
/// serial execution. Compare with `==`; print with `Display`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CampaignReport {
    text: String,
}

impl CampaignReport {
    /// The canonical report text.
    pub fn text(&self) -> &str {
        &self.text
    }
}

impl std::fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Folds a phase tag and up to two identifying addresses into the seed
/// key of a stolen task, so a VP probing the same address in two
/// different phases still draws from two distinct RNG streams. Shared
/// with the distributed worker ([`crate::distributed`]), which must
/// re-derive the exact keys the in-process executor would use.
pub(crate) fn steal_key(tag: u64, a: u64, b: u64) -> u64 {
    (tag << 56) ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ b
}

/// What one revelation task produces: the candidate pair, the recursion
/// outcome, and the echo-reply pings of any newly revealed hops.
pub(crate) type RevealPayload = ((Addr, Addr), RevelationOutcome, Vec<(Addr, Option<u8>)>);

/// One revelation task: the DPR/BRPR recursion over `(x, y, d)` plus
/// the echo-reply pings of hops phase 4 did not already discover. The
/// already-pinged dedup is per task — a stolen (or remote) task cannot
/// see what its VP's other tasks revealed without depending on
/// execution order. Shared verbatim by the in-process stealing closure
/// and the distributed worker so both produce identical payloads.
#[allow(clippy::too_many_arguments)]
pub(crate) fn reveal_one(
    sess: &mut Session<'_>,
    g: usize,
    x: Addr,
    y: Addr,
    d: Addr,
    opts: &RevealOpts,
    discovered: &BTreeSet<Addr>,
    fingerprint: bool,
) -> (usize, RevealPayload) {
    let out = reveal_between(sess, x, y, d, opts);
    let mut ers: Vec<(Addr, Option<u8>)> = Vec::new();
    if fingerprint {
        let mut pinged: HashSet<Addr> = HashSet::new();
        if let Some(t) = out.tunnel() {
            for step in &t.steps {
                for h in &step.new_hops {
                    if !discovered.contains(&h.addr) && pinged.insert(h.addr) {
                        ers.push((h.addr, sess.ping(h.addr).reply_ip_ttl()));
                    }
                }
            }
        }
    }
    (g, ((x, y), out, ers))
}

/// Feeds a VP's ordered `(global_index, target)` batch through the
/// session's batched traceroute walk in `width`-sized chunks (`width <
/// 2` runs the scalar loop), returning one trace per task in task
/// order. Byte-identical to the scalar loop either way: the session
/// batch API assigns echo ids in destination order and falls back to
/// scalar itself whenever the fault plan is order-sensitive.
fn traced_batch(
    sess: &mut Session<'_>,
    batch: Vec<(usize, Addr)>,
    width: usize,
) -> Vec<(usize, Trace)> {
    if width < 2 {
        let mut out = Vec::with_capacity(batch.len());
        out.extend(batch.into_iter().map(|(g, t)| (g, sess.traceroute(t))));
        return out;
    }
    let mut out = Vec::with_capacity(batch.len());
    let mut dsts: Vec<Addr> = Vec::with_capacity(width.min(batch.len()));
    for chunk in batch.chunks(width) {
        dsts.clear();
        dsts.extend(chunk.iter().map(|&(_, t)| t));
        out.extend(
            chunk
                .iter()
                .map(|&(g, _)| g)
                .zip(sess.traceroute_batch(&dsts)),
        );
    }
    out
}

/// The ping analogue of [`traced_batch`], for the fingerprint phase.
fn pinged_batch(
    sess: &mut Session<'_>,
    batch: Vec<(usize, Addr)>,
    width: usize,
) -> Vec<(usize, Addr, PingResult)> {
    if width < 2 {
        let mut out = Vec::with_capacity(batch.len());
        out.extend(batch.into_iter().map(|(g, a)| (g, a, sess.ping(a))));
        return out;
    }
    let mut out = Vec::with_capacity(batch.len());
    let mut dsts: Vec<Addr> = Vec::with_capacity(width.min(batch.len()));
    for chunk in batch.chunks(width) {
        dsts.clear();
        dsts.extend(chunk.iter().map(|&(_, a)| a));
        out.extend(
            chunk
                .iter()
                .map(|&(g, a)| (g, a))
                .zip(sess.ping_batch(&dsts))
                .map(|((g, a), r)| (g, a, r)),
        );
    }
    out
}

/// Splits per-VP shard results into the surviving batches, recording a
/// [`DegradedShard`] (and marking the VP dead) for each panicked batch.
fn split_shards<R>(
    phase: &'static str,
    results: Vec<Result<Vec<R>, String>>,
    degraded: &mut Vec<DegradedShard>,
    dead: &mut [bool],
) -> Vec<Vec<R>> {
    results
        .into_iter()
        .enumerate()
        .filter_map(|(vp, r)| match r {
            Ok(s) => Some(s),
            Err(message) => {
                dead[vp] = true;
                degraded.push(DegradedShard { vp, phase, message });
                None
            }
        })
        .collect()
}

/// A campaign bound to a substrate and its vantage points.
pub struct Campaign<'a> {
    sub: SubstrateRef<'a>,
    vps: Vec<RouterId>,
    cfg: CampaignConfig,
}

impl<'a> Campaign<'a> {
    /// Creates a campaign.
    ///
    /// # Panics
    /// Panics without vantage points and, when
    /// [`CampaignConfig::lint_gate`] is set (the default in debug
    /// builds), when the network fails static analysis with
    /// `Error`-level diagnostics (lint before simulate).
    pub fn new(
        net: &'a Network,
        cp: &'a ControlPlane,
        vps: Vec<RouterId>,
        cfg: CampaignConfig,
    ) -> Campaign<'a> {
        Campaign::over(SubstrateRef::new(net, cp), vps, cfg)
    }

    /// Creates a campaign over a substrate handle.
    ///
    /// # Panics
    /// Same contract as [`Campaign::new`].
    pub fn over(sub: SubstrateRef<'a>, vps: Vec<RouterId>, cfg: CampaignConfig) -> Campaign<'a> {
        assert!(!vps.is_empty(), "need at least one vantage point");
        if cfg.lint_gate {
            wormhole_lint::deny_errors("Campaign", &wormhole_lint::check_plane(sub.net, sub.cp));
        }
        Campaign { sub, vps, cfg }
    }

    fn net(&self) -> &'a Network {
        self.sub.net
    }

    /// One session per vantage point, linted once via the campaign gate
    /// rather than per session. Worker `i` draws its fault RNG from the
    /// `(seed, i)` stream.
    fn sessions(&self) -> Vec<Session<'a>> {
        self.vps
            .iter()
            .enumerate()
            .map(|(i, &vp)| {
                let state =
                    ProbeState::for_worker(self.cfg.faults.clone(), self.cfg.seed, i as u64);
                let mut s = Session::over(self.sub, vp, state);
                s.set_opts(self.cfg.trace_opts.clone());
                s
            })
            .collect()
    }

    /// Worker threads to use for this run.
    fn resolved_jobs(&self) -> usize {
        match self.cfg.jobs {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    /// Ground-truth alias resolution + node-to-AS mapping (the CAIDA /
    /// Team Cymru stand-in).
    fn resolve(&self, addr: Addr) -> NodeInfo {
        match self.net().owner(addr) {
            Some(r) => NodeInfo {
                key: u64::from(r.0),
                asn: Some(self.net().router(r).asn),
            },
            None => NodeInfo {
                key: 0xFFFF_0000_0000_0000 | u64::from(addr.0),
                asn: None,
            },
        }
    }

    /// The bootstrap target list: every non-host router loopback plus
    /// the interface addresses of inter-AS borders (transit traffic in
    /// the paper's dataset enters and leaves through exactly those).
    fn bootstrap_targets(&self) -> Vec<Addr> {
        let mut out = Vec::new();
        for r in self.net().routers() {
            if r.config.is_host {
                continue;
            }
            out.push(r.loopback);
            for iface in &r.ifaces {
                if self.net().link(iface.link).inter_as {
                    out.push(iface.addr);
                }
            }
        }
        out
    }

    /// Runs the full campaign, sharded across vantage-point workers.
    ///
    /// Every phase derives its per-VP work assignment purely from the
    /// merged output of the previous phase and merges its shards back
    /// in global order, so the result is identical for every `jobs`
    /// value — see the module docs for the full argument.
    pub fn run(&self) -> CampaignResult {
        self.run_streaming(&mut NullSink)
    }

    /// [`Campaign::run`] with a streaming consumer attached: the merged
    /// phase-4 traces are forwarded to `sink` in global trace order
    /// (the same order [`CampaignResult::traces`] keeps them, so the
    /// stream is byte-identical at every `jobs`/scheduling setting),
    /// followed by one aggregate engine-stats delta for the whole run.
    /// Bootstrap traces are aggregated into the snapshot but, as in the
    /// paper's workflow, not retained or streamed. This is the single
    /// emission path behind `wormhole-cli campaign --emit jsonl` and
    /// `wormhole-serve`.
    pub fn run_streaming(&self, sink: &mut dyn TraceSink) -> CampaignResult {
        self.run_inner(sink, None)
    }

    /// [`Campaign::run_streaming`] with every stealing probing phase
    /// executed by worker *processes* instead of threads: the phase
    /// queue is partitioned by owning vantage point, each worker gets a
    /// shard-spec file and writes a canonical shard file back, and the
    /// master merges the files deterministically — see
    /// [`crate::distributed`] for the formats and the byte-identity
    /// argument. The returned result carries the cross-process
    /// accounting in [`CampaignResult::dist`]; its report is
    /// byte-identical to an in-process `jobs = 1` stealing run.
    ///
    /// Requires [`Scheduling::Stealing`]: only per-task hermetic
    /// sessions make a task independent of the process that ran it.
    pub fn run_distributed(
        &self,
        sink: &mut dyn TraceSink,
        opts: &DistributedOpts,
    ) -> Result<CampaignResult, DistError> {
        if self.cfg.scheduling != Scheduling::Stealing {
            return Err(DistError::NotStealing);
        }
        let mut dispatcher = DistDispatcher::new(
            opts,
            self.vps.len(),
            self.cfg.seed,
            self.cfg.faults.clone(),
            self.cfg.trace_opts.clone(),
        )?;
        let mut result = self.run_inner(sink, Some(&mut dispatcher));
        result.dist = Some(dispatcher.into_summary());
        Ok(result)
    }

    fn run_inner(
        &self,
        sink: &mut dyn TraceSink,
        mut dist: Option<&mut DistDispatcher<'_>>,
    ) -> CampaignResult {
        let stealing = self.cfg.scheduling == Scheduling::Stealing;
        // Engine batch width for the VP-batch probing phases (resolved
        // through the walk-mode policy), and the task-claim chunk size
        // for the stealing executor (always tied to `batch_width`: a
        // claim's size can never change results, only contention).
        let bw = match self.cfg.walk_mode {
            WalkMode::Scalar => 1,
            WalkMode::Batched => self.cfg.batch_width,
            WalkMode::Auto => {
                if self.net().num_routers() <= WALK_AUTO_THRESHOLD {
                    1
                } else {
                    self.cfg.batch_width
                }
            }
        };
        let steal_chunk = self.cfg.batch_width.max(1);
        // Long-lived per-VP sessions only exist in batch mode; stealing
        // builds a hermetic session per task instead.
        let mut sessions = if stealing {
            Vec::new()
        } else {
            self.sessions()
        };
        let n_vps = self.vps.len();
        let jobs = self.resolved_jobs();
        // Merge buffers shared by every stealing phase of this run.
        let mut merge_scratch = shard::MergeScratch::new(n_vps);
        let mut degraded: Vec<DegradedShard> = Vec::new();
        let mut dead = vec![false; n_vps];
        let mut stolen_probes = vec![0u64; n_vps];
        let mut engine_totals = EngineStats::default();
        let run_started = Instant::now();
        let mut probe_seconds = 0.0f64;
        let chaos: Option<(usize, RouterId)> = self.cfg.chaos_panic_vp.map(|i| {
            assert!(i < n_vps, "chaos_panic_vp {i} out of range (0..{n_vps})");
            (i, self.vps[i])
        });
        // The session factory for stolen tasks: the task's RNG stream
        // is a pure function of `(seed, vp, key)`, so a task behaves
        // identically no matter which worker claims it or when.
        let make_session = |vp: usize, key: u64| {
            let state = ProbeState::new(
                self.cfg.faults.clone(),
                trace_seed(self.cfg.seed, vp as u64, key),
            );
            let mut s = Session::over(self.sub, self.vps[vp], state);
            s.set_opts(self.cfg.trace_opts.clone());
            s
        };

        // Phase 1: bootstrap snapshot. Every VP traces a share of the
        // loopbacks — and every VP traces the borders-heavy transit
        // space by design of the topology. Several teams per target
        // give the ingress diversity HDN detection needs.
        let boot_targets = self.bootstrap_targets();
        let teams = 3usize.min(n_vps);
        let mut boot_assign: Vec<(usize, Addr)> = Vec::with_capacity(boot_targets.len() * teams);
        for (i, &t) in boot_targets.iter().enumerate() {
            for k in 0..teams {
                let vp = (i + k * (n_vps / teams).max(1)) % n_vps;
                boot_assign.push((vp, t));
            }
        }
        let phase_started = Instant::now();
        let shards = if stealing {
            let queue: Vec<shard::StealTask<(usize, Addr)>> = boot_assign
                .iter()
                .enumerate()
                .map(|(g, &(vp, t))| shard::StealTask {
                    vp,
                    key: steal_key(1, u64::from(t.0), 0),
                    task: (g, t),
                })
                .collect();
            let (shards, probes, es) = match dist.as_deref_mut() {
                Some(d) => d.dispatch(1, "bootstrap", &queue, &[]),
                None => shard::run_stealing(
                    n_vps,
                    queue,
                    jobs,
                    steal_chunk,
                    &mut merge_scratch,
                    &make_session,
                    &|sess, (g, t)| (g, sess.traceroute(t).addr_path()),
                ),
            };
            engine_totals.merge(&es);
            for (acc, p) in stolen_probes.iter_mut().zip(probes) {
                *acc += p;
            }
            shards
        } else {
            let mut tasks: Vec<Vec<(usize, Addr)>> = (0..n_vps)
                .map(|_| Vec::with_capacity(boot_assign.len() / n_vps + 1))
                .collect();
            for (g, &(vp, t)) in boot_assign.iter().enumerate() {
                tasks[vp].push((g, t));
            }
            shard::run_vp_batches(&mut sessions, tasks, jobs, &|sess, batch| {
                let mut out = Vec::with_capacity(batch.len());
                out.extend(
                    traced_batch(sess, batch, bw)
                        .into_iter()
                        .map(|(g, t)| (g, t.addr_path())),
                );
                out
            })
        };
        probe_seconds += phase_started.elapsed().as_secs_f64();
        let shards = split_shards("bootstrap", shards, &mut degraded, &mut dead);
        // Feed the shard merges straight into the incremental builder —
        // no materialized global path vector, no batch rebuild. Shard
        // order is deterministic at any job count, and the canonical
        // finish makes the snapshot independent of ingest order anyway.
        let analysis_started = Instant::now();
        let mut builder = ItdkBuilder::new();
        let mut bootstrap_paths: Vec<Vec<Option<Addr>>> = Vec::new();
        for shard in shards {
            for (_g, path) in shard {
                builder.ingest(&path, |a| self.resolve(a));
                if self.cfg.keep_bootstrap_paths {
                    bootstrap_paths.push(path);
                }
            }
        }
        let mut snapshot_deltas = vec![SnapshotDelta {
            phase: "bootstrap",
            ingested: builder.ingested(),
            nodes: builder.num_nodes(),
            links: builder.num_links(),
            addresses: builder.num_addresses(),
        }];
        // The canonical bootstrap snapshot drives HDN extraction and
        // the candidate scan; the builder lives on to absorb the
        // phase-4 traces in O(new trace).
        let snapshot = builder.snapshot();
        let mut analysis_seconds = analysis_started.elapsed().as_secs_f64();

        // Phase 2–3: HDNs and targets.
        let hdns = snapshot.hdns(self.cfg.hdn_threshold);
        let (set_a, set_b) = snapshot.hdn_neighborhoods(&hdns);
        let mut target_set: BTreeSet<Addr> = BTreeSet::new();
        for &node in set_a.union(&set_b) {
            target_set.extend(snapshot.addresses(node).iter().copied());
        }
        let targets: Vec<Addr> = target_set.into_iter().collect();
        let hdn_nodes: HashSet<usize> = hdns.iter().copied().collect();

        // Phase 4: probe each target from its team's vantage point.
        // Workers return ordered trace shards; the scan that feeds the
        // fingerprint table replays the merged traces in global order.
        // A degraded VP's lost targets merge as empty unreached traces.
        let phase_started = Instant::now();
        let shards = if stealing {
            let queue: Vec<shard::StealTask<(usize, Addr)>> = targets
                .iter()
                .enumerate()
                .filter(|(i, _)| !dead[i % n_vps])
                .map(|(i, &t)| shard::StealTask {
                    vp: i % n_vps,
                    key: steal_key(2, u64::from(t.0), 0),
                    task: (i, t),
                })
                .collect();
            let (shards, probes, es) = match dist.as_deref_mut() {
                Some(d) => d.dispatch(2, "probe", &queue, &[]),
                None => shard::run_stealing(
                    n_vps,
                    queue,
                    jobs,
                    steal_chunk,
                    &mut merge_scratch,
                    &make_session,
                    &|sess, (g, t)| {
                        if let Some((idx, vp)) = chaos {
                            assert!(sess.vp() != vp, "chaos: injected worker panic (vp {idx})");
                        }
                        (g, sess.traceroute(t))
                    },
                ),
            };
            engine_totals.merge(&es);
            for (acc, p) in stolen_probes.iter_mut().zip(probes) {
                *acc += p;
            }
            shards
        } else {
            let mut tasks: Vec<Vec<(usize, Addr)>> = (0..n_vps)
                .map(|_| Vec::with_capacity(targets.len() / n_vps + 1))
                .collect();
            for (i, &t) in targets.iter().enumerate() {
                if !dead[i % n_vps] {
                    tasks[i % n_vps].push((i, t));
                }
            }
            shard::run_vp_batches(&mut sessions, tasks, jobs, &|sess, batch| {
                if let Some((idx, vp)) = chaos {
                    assert!(sess.vp() != vp, "chaos: injected worker panic (vp {idx})");
                }
                traced_batch(sess, batch, bw)
            })
        };
        probe_seconds += phase_started.elapsed().as_secs_f64();
        let shards = split_shards("probe", shards, &mut degraded, &mut dead);
        let traces: Vec<(usize, Trace)> = {
            let merged = shard::merge_indexed_or(shards, targets.len(), |g| Trace {
                src: Addr::new(0, 0, 0, 0),
                dst: targets[g],
                flow: 0,
                hops: Vec::new(),
                reached: false,
                probes: 0,
                truncated: false,
            });
            merged
                .into_iter()
                .enumerate()
                .map(|(i, trace)| (i % n_vps, trace))
                .collect()
        };
        // The probe traces extend the same builder incrementally —
        // the campaign never rebuilds aggregate state it already has.
        let analysis_started = Instant::now();
        for (_vp, trace) in &traces {
            builder.ingest(&trace.addr_path(), |a| self.resolve(a));
        }
        snapshot_deltas.push(SnapshotDelta {
            phase: "probe",
            ingested: builder.ingested() - snapshot_deltas[0].ingested,
            nodes: builder.num_nodes(),
            links: builder.num_links(),
            addresses: builder.num_addresses(),
        });
        let snapshot_checksum = builder.checksum();
        analysis_seconds += analysis_started.elapsed().as_secs_f64();
        sink.on_phase("probe");
        for (vp, trace) in &traces {
            sink.on_trace(*vp, trace);
        }
        let mut fingerprints = FingerprintTable::new();
        let mut discovered: BTreeSet<Addr> = BTreeSet::new();
        let mut te_obs: HashMap<Addr, (usize, u8)> = HashMap::new();
        let mut er_obs: HashMap<Addr, u8> = HashMap::new();
        for (vp, trace) in &traces {
            for hop in &trace.hops {
                if let (Some(addr), Some(ttl)) = (hop.addr, hop.reply_ip_ttl) {
                    if hop.kind == Some(ReplyKind::TimeExceeded) {
                        fingerprints.observe_te(addr, ttl);
                        te_obs.entry(addr).or_insert((*vp, ttl));
                    }
                    discovered.insert(addr);
                }
            }
        }

        // Fingerprint pings (echo-reply initial TTLs), issued from the
        // vantage point that observed the address where possible so the
        // RTLA gap compares replies over the same return path.
        if self.cfg.fingerprint {
            let phase_started = Instant::now();
            let shards = if stealing {
                let queue: Vec<shard::StealTask<(usize, Addr)>> = discovered
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &addr)| {
                        let vp = te_obs.get(&addr).map(|&(vp, _)| vp).unwrap_or(i % n_vps);
                        (!dead[vp]).then_some(shard::StealTask {
                            vp,
                            key: steal_key(3, u64::from(addr.0), 0),
                            task: (i, addr),
                        })
                    })
                    .collect();
                let (shards, probes, es) = match dist.as_deref_mut() {
                    Some(d) => d.dispatch(3, "fingerprint", &queue, &[]),
                    None => shard::run_stealing(
                        n_vps,
                        queue,
                        jobs,
                        steal_chunk,
                        &mut merge_scratch,
                        &make_session,
                        &|sess, (g, addr)| (g, addr, sess.ping(addr)),
                    ),
                };
                engine_totals.merge(&es);
                for (acc, p) in stolen_probes.iter_mut().zip(probes) {
                    *acc += p;
                }
                shards
            } else {
                let mut tasks: Vec<Vec<(usize, Addr)>> = (0..n_vps)
                    .map(|_| Vec::with_capacity(discovered.len() / n_vps + 1))
                    .collect();
                for (i, &addr) in discovered.iter().enumerate() {
                    let vp = te_obs.get(&addr).map(|&(vp, _)| vp).unwrap_or(i % n_vps);
                    if !dead[vp] {
                        tasks[vp].push((i, addr));
                    }
                }
                shard::run_vp_batches(&mut sessions, tasks, jobs, &|sess, batch| {
                    pinged_batch(sess, batch, bw)
                })
            };
            probe_seconds += phase_started.elapsed().as_secs_f64();
            let shards = split_shards("fingerprint", shards, &mut degraded, &mut dead);
            // Shard outputs are already ordered by global index within
            // each VP, so a linear scatter restores global order — no
            // re-sort of results that were never out of order. Holes
            // left by degraded VPs simply stay unset.
            let mut slots: Vec<Option<(Addr, PingResult)>> = vec![None; discovered.len()];
            for (g, addr, result) in shards.into_iter().flatten() {
                slots[g] = Some((addr, result));
            }
            for (addr, result) in slots.into_iter().flatten() {
                if let Some(r) = result.reply {
                    fingerprints.observe_er(addr, r.reply_ip_ttl);
                    er_obs.insert(addr, r.reply_ip_ttl);
                }
            }
        }

        // Phase 5a: candidate pairs, scanned serially over the merged
        // traces (pure CPU, no probing). The paper inspects the last
        // three hops `X, Y, D`; we scan every consecutive same-AS HDN
        // pair along the trace — the same rule applied at every
        // position, which also catches the pair when the target *is*
        // the egress (a set-A target) or lies several hops past it.
        // Unique pairs are deduplicated across shards here, before any
        // revelation runs: the first observing trace (in global trace
        // order) claims the pair for its vantage point.
        let mut candidates = Vec::new();
        let mut pair_seen: HashSet<(Addr, Addr)> = HashSet::new();
        let mut reveal_jobs: Vec<(usize, Addr, Addr, Addr)> = Vec::new();
        for (trace_index, (vp, trace)) in traces.iter().enumerate() {
            let resp: Vec<(Addr, Option<usize>)> = trace
                .hops
                .iter()
                .filter_map(|h| h.addr)
                .map(|a| (a, snapshot.node_of(a)))
                .collect();
            for i in 0..resp.len().saturating_sub(1) {
                let (x, node_x) = resp[i];
                let (y, node_y) = resp[i + 1];
                let d = resp.get(i + 2).map(|&(a, _)| a).unwrap_or(trace.dst);
                if x == y || y == d {
                    continue;
                }
                let (Some(asn_x), Some(asn_y)) = (self.net().owner_asn(x), self.net().owner_asn(y))
                else {
                    continue;
                };
                if asn_x != asn_y {
                    continue;
                }
                let x_hdn = node_x.is_some_and(|n| hdn_nodes.contains(&n));
                let y_hdn = node_y.is_some_and(|n| hdn_nodes.contains(&n));
                let pass = match self.cfg.hdn_rule {
                    HdnRule::Both => x_hdn && y_hdn,
                    HdnRule::Either => x_hdn || y_hdn,
                    HdnRule::None => true,
                };
                if !pass {
                    continue;
                }
                candidates.push(CandidatePair {
                    ingress: x,
                    egress: y,
                    target: d,
                    asn: asn_x,
                    vp_index: *vp,
                    trace_index,
                });
                if pair_seen.insert((x, y)) {
                    reveal_jobs.push((*vp, x, y, d));
                }
            }
        }

        // Phase 5b: revelation, sharded like every probing phase. A
        // worker pings newly revealed addresses unless phase 4 already
        // discovered them or this VP already pinged them (the dedup is
        // per vantage point, so it cannot depend on worker scheduling).
        // Pairs owned by a dead VP merge as Abandoned(WorkerPanicked).
        let cfg = &self.cfg;
        // Deceptive fault plans earn the per-flow stability re-trace;
        // honest plans keep their exact probe counts (and report bytes).
        let reveal_opts = RevealOpts {
            paris_check: cfg.screen_revelations && cfg.faults.is_deceptive(),
            ..cfg.reveal.clone()
        };
        let reveal_opts = &reveal_opts;
        let discovered_ref = &discovered;
        let phase_started = Instant::now();
        let shards = if stealing {
            // The already-pinged dedup narrows from per-VP to per-task:
            // a stolen task cannot see what its VP's other tasks
            // revealed without depending on execution order.
            let queue: Vec<shard::StealTask<(usize, Addr, Addr, Addr)>> = reveal_jobs
                .iter()
                .enumerate()
                .filter(|&(_, &(vp, ..))| !dead[vp])
                .map(|(g, &(vp, x, y, d))| shard::StealTask {
                    vp,
                    key: steal_key(4, u64::from(x.0), u64::from(y.0)),
                    task: (g, x, y, d),
                })
                .collect();
            // Revelation pairs are few and individually heavy (a whole
            // DPR/BRPR recursion each), so claims stay per-task: a
            // batch-width chunk could hand one worker the entire phase.
            // Last dispatcher use, so the option moves instead of
            // reborrowing.
            let (shards, probes, es) = match dist {
                Some(d) => {
                    // The worker re-runs `reveal_one` and needs the
                    // phase context the closure below captures: the
                    // resolved options, the fingerprint flag, and the
                    // phase-4 discovered set.
                    let mut extra = Vec::new();
                    reveal_opts.put(&mut extra);
                    cfg.fingerprint.put(&mut extra);
                    let discovered_list: Vec<Addr> = discovered_ref.iter().copied().collect();
                    discovered_list.put(&mut extra);
                    d.dispatch(4, "revelation", &queue, &extra)
                }
                None => shard::run_stealing(
                    n_vps,
                    queue,
                    jobs,
                    1,
                    &mut merge_scratch,
                    &make_session,
                    &|sess, (g, x, y, d)| {
                        reveal_one(
                            sess,
                            g,
                            x,
                            y,
                            d,
                            reveal_opts,
                            discovered_ref,
                            cfg.fingerprint,
                        )
                    },
                ),
            };
            engine_totals.merge(&es);
            for (acc, p) in stolen_probes.iter_mut().zip(probes) {
                *acc += p;
            }
            shards
        } else {
            let mut tasks: Vec<Vec<(usize, Addr, Addr, Addr)>> = vec![Vec::new(); n_vps];
            for (g, &(vp, x, y, d)) in reveal_jobs.iter().enumerate() {
                if !dead[vp] {
                    tasks[vp].push((g, x, y, d));
                }
            }
            shard::run_vp_batches(&mut sessions, tasks, jobs, &|sess, batch| {
                let mut pinged: HashSet<Addr> = HashSet::new();
                batch
                    .into_iter()
                    .map(|(g, x, y, d)| {
                        let out = reveal_between(sess, x, y, d, reveal_opts);
                        let mut ers: Vec<(Addr, Option<u8>)> = Vec::new();
                        if cfg.fingerprint {
                            if let Some(t) = out.tunnel() {
                                for step in &t.steps {
                                    for h in &step.new_hops {
                                        if !discovered_ref.contains(&h.addr)
                                            && pinged.insert(h.addr)
                                        {
                                            ers.push((h.addr, sess.ping(h.addr).reply_ip_ttl()));
                                        }
                                    }
                                }
                            }
                        }
                        (g, ((x, y), out, ers))
                    })
                    .collect()
            })
        };
        probe_seconds += phase_started.elapsed().as_secs_f64();
        let shards = split_shards("revelation", shards, &mut degraded, &mut dead);
        let merged = shard::merge_indexed_or(shards, reveal_jobs.len(), |g| {
            let (_, x, y, _) = reveal_jobs[g];
            (
                (x, y),
                RevelationOutcome::Abandoned {
                    reason: AbandonReason::WorkerPanicked,
                },
                Vec::new(),
            )
        });
        let mut revelations: HashMap<(Addr, Addr), RevelationOutcome> = HashMap::new();
        for (pair, out, ers) in merged {
            for (addr, ttl) in ers {
                if let Some(ttl) = ttl {
                    fingerprints.observe_er(addr, ttl);
                }
            }
            revelations.insert(pair, out);
        }

        // Veracity screening: grade every revelation against the merged
        // evidence (fingerprints include the hops pinged above). Runs on
        // the merged result, so it is trivially independent of jobs,
        // scheduling and batch width.
        if self.cfg.screen_revelations {
            for ((_, y), out) in revelations.iter_mut() {
                let rtl = match (te_obs.get(y), er_obs.get(y)) {
                    (Some(&(_, te)), Some(&er)) => {
                        crate::rtla::return_tunnel_length(fingerprints.signature(*y), te, er)
                    }
                    _ => None,
                };
                let v = crate::veracity::screen_revelation(
                    out,
                    |a| {
                        let s = fingerprints.signature(a);
                        (s.te, s.er)
                    },
                    rtl,
                );
                out.set_veracity(v);
            }
        }

        let probes_by_vp: Vec<u64> = if stealing {
            stolen_probes
        } else {
            for s in &sessions {
                engine_totals.merge(s.engine_stats());
            }
            sessions.iter().map(|s| s.stats.probes).collect()
        };
        let probes = probes_by_vp.iter().sum();
        sink.on_stats(&engine_totals);
        let (trace_vps, traces) = traces.into_iter().unzip();
        let timings = CampaignTimings {
            probe_seconds,
            merge_seconds: (run_started.elapsed().as_secs_f64() - probe_seconds).max(0.0),
            analysis_seconds,
        };
        CampaignResult {
            snapshot,
            hdns,
            targets,
            traces,
            trace_vps,
            fingerprints,
            te_obs,
            er_obs,
            candidates,
            revelations,
            probes,
            probes_by_vp,
            engine_stats: engine_totals,
            trace_budget: self.cfg.trace_opts.probe_budget,
            degraded_shards: degraded,
            scheduling: self.cfg.scheduling,
            screened: self.cfg.screen_revelations,
            deceptive_faults: self.cfg.faults.is_deceptive(),
            timings,
            snapshot_deltas,
            snapshot_checksum,
            bootstrap_paths,
            // `run_distributed` attaches the accounting after the run.
            dist: None,
        }
    }
}

/// Reduces a campaign result to the neutral snapshot consumed by the
/// `wormhole-lint` result auditor (`A3xx` rules).
pub fn audit_input(result: &CampaignResult) -> wormhole_lint::CampaignAudit {
    let signatures = result
        .fingerprints
        .iter()
        .map(|(addr, sig)| (addr, sig.te, sig.er))
        .collect();
    let tunnels = result
        .tunnels()
        .map(|t| {
            // The RTLA gap at the egress, when both raw reply TTLs were
            // observed and its signature is the `<255, 64>` pair.
            let rtl = match (result.te_obs.get(&t.egress), result.er_obs.get(&t.egress)) {
                (Some(&(_, te)), Some(&er)) => crate::rtla::return_tunnel_length(
                    result.fingerprints.signature(t.egress),
                    te,
                    er,
                ),
                _ => None,
            };
            // Steps in the same forward (ingress-first) order as the
            // hop list, so the auditor can re-derive the method claim.
            let steps: Vec<usize> = t.steps.iter().rev().map(|s| s.new_hops.len()).collect();
            let method = Some(match t.method() {
                crate::reveal::RevealMethod::Dpr => wormhole_lint::MethodClaim::Dpr,
                crate::reveal::RevealMethod::Brpr => wormhole_lint::MethodClaim::Brpr,
                crate::reveal::RevealMethod::Either => wormhole_lint::MethodClaim::Either,
                crate::reveal::RevealMethod::Hybrid => wormhole_lint::MethodClaim::Hybrid,
            });
            wormhole_lint::TunnelAudit {
                ingress: t.ingress,
                egress: t.egress,
                hops: t.hops(),
                rtl,
                steps,
                method,
            }
        })
        .collect();
    let candidates = result
        .candidates
        .iter()
        .map(|c| (c.ingress, c.egress, c.trace_index))
        .collect();
    let mut revelations: Vec<_> = result
        .revelations
        .iter()
        .map(|(&(x, y), out)| {
            let (kind, hops) = match out {
                RevelationOutcome::Complete { tunnel, .. } => {
                    (wormhole_lint::RevelationKind::Complete, tunnel.len())
                }
                RevelationOutcome::Partial { tunnel, .. } => {
                    (wormhole_lint::RevelationKind::Partial, tunnel.len())
                }
                RevelationOutcome::Abandoned { .. } => {
                    (wormhole_lint::RevelationKind::Abandoned, 0)
                }
            };
            (x, y, kind, hops)
        })
        .collect();
    revelations.sort_by_key(|&(x, y, _, _)| (x, y));
    // Veracity tiers are meaningful only when the screening pass ran;
    // an unscreened campaign hands the auditor an empty list (which is
    // what the V606 adversarial-scenario rule keys on).
    let mut veracity: Vec<_> = if result.screened {
        result
            .revelations
            .iter()
            .map(|(&(x, y), out)| {
                let tier = match out.veracity() {
                    crate::reveal::Veracity::Corroborated => {
                        wormhole_lint::VeracityTier::Corroborated
                    }
                    crate::reveal::Veracity::Unverified => wormhole_lint::VeracityTier::Unverified,
                    crate::reveal::Veracity::Contradicted => {
                        wormhole_lint::VeracityTier::Contradicted
                    }
                };
                (x, y, tier)
            })
            .collect()
    } else {
        Vec::new()
    };
    veracity.sort_by_key(|&(x, y, _)| (x, y));
    let mut revelation_artifacts: Vec<_> = result
        .revelations
        .iter()
        .map(|(&(x, y), out)| {
            let (revisits, stars, mismatch) = match out {
                RevelationOutcome::Complete { tunnel, .. }
                | RevelationOutcome::Partial { tunnel, .. } => {
                    (tunnel.revisits, tunnel.stars, tunnel.retrace_mismatch)
                }
                RevelationOutcome::Abandoned { .. } => (0, 0, false),
            };
            (x, y, revisits, stars, mismatch)
        })
        .collect();
    revelation_artifacts.sort_by_key(|&(x, y, ..)| (x, y));
    wormhole_lint::CampaignAudit {
        signatures,
        tunnels,
        candidates,
        num_traces: result.traces.len(),
        probes: result.probes,
        probes_by_shard: result.probes_by_vp.clone(),
        trace_budget: result.trace_budget,
        trace_probes: result
            .traces
            .iter()
            .map(|t| (t.probes, t.truncated))
            .collect(),
        revelations,
        veracity,
        revelation_artifacts,
        deceptive_plan: result.deceptive_faults,
        degraded_shards: result
            .degraded_shards
            .iter()
            .map(|d| (d.vp, d.phase.to_string()))
            .collect(),
        stealing: result.scheduling == Scheduling::Stealing,
        snapshot_deltas: result
            .snapshot_deltas
            .iter()
            .map(|d| {
                (
                    d.phase.to_string(),
                    d.ingested,
                    d.nodes,
                    d.links,
                    d.addresses,
                )
            })
            .collect(),
        snapshot_checksum: Some(result.snapshot_checksum),
        snapshot_oracle: None,
        dist: result.dist.as_ref().map(|d| wormhole_lint::DistAudit {
            workers: d.workers,
            phases: d
                .phases
                .iter()
                .map(|p| wormhole_lint::DistPhaseAudit {
                    phase: p.phase.to_string(),
                    dispatched: p.dispatched,
                    received: p.received,
                    missing: p.missing.clone(),
                    duplicates: p.duplicates.clone(),
                    shard_probes: p.shard_probes,
                })
                .collect(),
            master_cache: d.master_cache_checksum,
            worker_cache: d.worker_cache_checksums.clone(),
        }),
    }
}

/// Batch-rebuilds the campaign's snapshot from scratch over the same IP
/// paths (bootstrap + phase-4 traces) and returns the oracle tuple the
/// `A310` audit compares the incremental builder against. `None` unless
/// the campaign ran with [`CampaignConfig::keep_bootstrap_paths`] — the
/// bootstrap paths are the part the result does not otherwise retain.
pub fn snapshot_oracle(
    net: &Network,
    result: &CampaignResult,
) -> Option<(u64, usize, usize, usize, u64)> {
    if result.bootstrap_paths.is_empty() {
        return None;
    }
    let resolve = |addr: Addr| match net.owner(addr) {
        Some(r) => NodeInfo {
            key: u64::from(r.0),
            asn: Some(net.router(r).asn),
        },
        None => NodeInfo {
            key: 0xFFFF_0000_0000_0000 | u64::from(addr.0),
            asn: None,
        },
    };
    let mut builder = ItdkBuilder::new();
    for path in &result.bootstrap_paths {
        builder.ingest(path, resolve);
    }
    for trace in &result.traces {
        builder.ingest(&trace.addr_path(), resolve);
    }
    Some((
        builder.ingested(),
        builder.num_nodes(),
        builder.num_links(),
        builder.num_addresses(),
        builder.checksum(),
    ))
}

/// Audits a campaign result against the network it ran on, returning
/// the `A3xx` diagnostics. When the campaign retained its bootstrap
/// paths ([`CampaignConfig::keep_bootstrap_paths`]), the `A310` audit
/// additionally cross-checks the incremental snapshot against a
/// batch-rebuild oracle over the same IP paths.
pub fn audit_campaign(net: &Network, result: &CampaignResult) -> Vec<wormhole_lint::Diagnostic> {
    let mut input = audit_input(result);
    input.snapshot_oracle = snapshot_oracle(net, result);
    wormhole_lint::audit(net, &input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_topo::{generate, InternetConfig};

    #[test]
    fn campaign_reveals_tunnels_in_small_internet() {
        let internet = generate(&InternetConfig::small(11));
        let cfg = CampaignConfig {
            hdn_threshold: 6,
            ..CampaignConfig::default()
        };
        let campaign = Campaign::new(&internet.net, &internet.cp, internet.vps.clone(), cfg);
        let result = campaign.run();
        assert!(result.snapshot.num_nodes() > 30);
        assert!(!result.hdns.is_empty(), "expected HDNs in invisible view");
        assert!(!result.targets.is_empty());
        assert!(!result.candidates.is_empty(), "expected candidate pairs");
        let tunnels: Vec<_> = result.tunnels().collect();
        assert!(!tunnels.is_empty(), "expected revealed tunnels");
        // Revealed hops are real routers of the same AS as the pair.
        for t in &tunnels {
            let asn = internet.net.owner_asn(t.ingress).unwrap();
            for hop in t.hops() {
                assert_eq!(internet.net.owner_asn(hop), Some(asn));
            }
        }
        assert!(result.probes > 0);
        assert_eq!(result.probes_by_vp.iter().sum::<u64>(), result.probes);
        assert_eq!(result.trace_vps.len(), result.traces.len());
    }

    #[test]
    fn fingerprints_cover_discovered_space() {
        let internet = generate(&InternetConfig::small(13));
        let cfg = CampaignConfig {
            hdn_threshold: 6,
            ..CampaignConfig::default()
        };
        let campaign = Campaign::new(&internet.net, &internet.cp, internet.vps.clone(), cfg);
        let result = campaign.run();
        assert!(!result.fingerprints.is_empty());
        // At least one complete pair signature should exist.
        let complete = result
            .fingerprints
            .iter()
            .filter(|(_, s)| s.pair().is_some())
            .count();
        assert!(complete > 0);
    }

    #[test]
    fn campaign_results_audit_clean() {
        let internet = generate(&InternetConfig::small(11));
        let cfg = CampaignConfig {
            hdn_threshold: 6,
            ..CampaignConfig::default()
        };
        let campaign = Campaign::new(&internet.net, &internet.cp, internet.vps.clone(), cfg);
        let result = campaign.run();
        let diags = audit_campaign(&internet.net, &result);
        assert!(
            !wormhole_lint::has_errors(&diags),
            "{}",
            wormhole_lint::render(&diags)
        );
    }

    #[test]
    fn parallel_jobs_match_serial_byte_for_byte() {
        let internet = generate(&InternetConfig::small(11));
        let run = |jobs: usize| {
            let cfg = CampaignConfig {
                hdn_threshold: 6,
                faults: FaultPlan {
                    loss: 0.02,
                    icmp_loss: 0.01,
                    jitter_ms: 0.5,
                    ..FaultPlan::default()
                },
                seed: 42,
                jobs,
                ..CampaignConfig::default()
            };
            Campaign::new(&internet.net, &internet.cp, internet.vps.clone(), cfg)
                .run()
                .report()
        };
        let serial = run(1);
        assert_eq!(serial, run(2), "jobs=2 diverged from serial");
        assert_eq!(serial, run(4), "jobs=4 diverged from serial");
    }

    #[test]
    fn stealing_jobs_match_serial_byte_for_byte() {
        let internet = generate(&InternetConfig::small(11));
        let run = |jobs: usize| {
            let cfg = CampaignConfig {
                hdn_threshold: 6,
                faults: FaultPlan {
                    loss: 0.02,
                    icmp_loss: 0.01,
                    jitter_ms: 0.5,
                    ..FaultPlan::default()
                },
                seed: 42,
                jobs,
                scheduling: Scheduling::Stealing,
                ..CampaignConfig::default()
            };
            Campaign::new(&internet.net, &internet.cp, internet.vps.clone(), cfg)
                .run()
                .report()
        };
        let serial = run(1);
        assert_eq!(serial, run(2), "stealing jobs=2 diverged from serial");
        assert_eq!(serial, run(4), "stealing jobs=4 diverged from serial");
    }

    #[test]
    fn stealing_campaign_still_reveals_and_audits_clean() {
        let internet = generate(&InternetConfig::small(11));
        let cfg = CampaignConfig {
            hdn_threshold: 6,
            scheduling: Scheduling::Stealing,
            ..CampaignConfig::default()
        };
        let campaign = Campaign::new(&internet.net, &internet.cp, internet.vps.clone(), cfg);
        let result = campaign.run();
        assert!(result.tunnels().count() > 0, "stealing lost the tunnels");
        assert_eq!(result.probes_by_vp.iter().sum::<u64>(), result.probes);
        assert!(result.probes_by_vp.iter().all(|&p| p > 0));
        let diags = audit_campaign(&internet.net, &result);
        assert!(
            !wormhole_lint::has_errors(&diags),
            "{}",
            wormhole_lint::render(&diags)
        );
        assert!(
            !diags.iter().any(|d| d.code == "A309"),
            "no idle shard expected: {}",
            wormhole_lint::render(&diags)
        );
    }

    #[test]
    fn chaos_panic_degrades_one_shard_without_killing_the_campaign() {
        let internet = generate(&InternetConfig::small(11));
        let run = |jobs: usize| {
            let cfg = CampaignConfig {
                hdn_threshold: 6,
                seed: 42,
                jobs,
                chaos_panic_vp: Some(1),
                ..CampaignConfig::default()
            };
            Campaign::new(&internet.net, &internet.cp, internet.vps.clone(), cfg).run()
        };
        let result = run(1);
        // The campaign completed, with exactly the poisoned shard lost.
        assert_eq!(result.degraded_shards.len(), 1);
        let d = &result.degraded_shards[0];
        assert_eq!(d.vp, 1);
        assert_eq!(d.phase, "probe");
        assert!(d.message.contains("chaos"), "{}", d.message);
        // Survivors still produced analysis-grade output.
        assert!(!result.candidates.is_empty());
        assert!(result.tunnels().count() > 0);
        // The dead VP's revelation pairs were synthesized, not dropped.
        let abandoned_by_panic = result
            .revelations
            .values()
            .filter(|o| {
                matches!(
                    o,
                    RevelationOutcome::Abandoned {
                        reason: AbandonReason::WorkerPanicked
                    }
                )
            })
            .count();
        assert_eq!(
            result.revelations.len(),
            result.unique_pairs().len(),
            "every unique pair keeps an outcome"
        );
        let _ = abandoned_by_panic; // may be 0 if vp 1 observed no pairs
                                    // The report reflects the degradation and stays byte-identical
                                    // across thread counts.
        let report = result.report();
        assert!(report.text().contains("degraded_shards=1"));
        assert!(report.text().contains("degraded vp=1 phase=probe"));
        assert_eq!(report, run(2).report(), "jobs=2 diverged under chaos");
        assert_eq!(report, run(4).report(), "jobs=4 diverged under chaos");
        // And the A403 audit flags it without erroring the whole run.
        let diags = audit_campaign(&internet.net, &result);
        assert!(
            diags.iter().any(|d| d.code == "A403"),
            "{}",
            wormhole_lint::render(&diags)
        );
        assert!(
            !wormhole_lint::has_errors(&diags),
            "{}",
            wormhole_lint::render(&diags)
        );
    }

    #[test]
    fn incremental_aggregation_matches_the_batch_rebuild_oracle() {
        let internet = generate(&InternetConfig::small(11));
        let cfg = CampaignConfig {
            hdn_threshold: 6,
            keep_bootstrap_paths: true,
            ..CampaignConfig::default()
        };
        let campaign = Campaign::new(&internet.net, &internet.cp, internet.vps.clone(), cfg);
        let result = campaign.run();

        // Delta accounting: two phases, monotone counts, totals add up.
        assert_eq!(result.snapshot_deltas.len(), 2);
        let (boot, probe) = (&result.snapshot_deltas[0], &result.snapshot_deltas[1]);
        assert_eq!(boot.phase, "bootstrap");
        assert_eq!(probe.phase, "probe");
        assert_eq!(probe.ingested, result.traces.len() as u64);
        assert!(probe.nodes >= boot.nodes);
        assert!(probe.links >= boot.links);
        assert!(probe.addresses >= boot.addresses);

        // The bootstrap snapshot matches its delta row.
        assert_eq!(result.snapshot.num_nodes(), boot.nodes);
        assert_eq!(result.snapshot.num_links(), boot.links);
        assert_eq!(result.snapshot.num_addresses(), boot.addresses);

        // Batch-rebuild oracle over bootstrap + probe paths, in a
        // shuffled order: the canonical rebuild must reproduce the
        // incremental checksum exactly.
        let net = &internet.net;
        let resolve = |addr: wormhole_net::Addr| match net.owner(addr) {
            Some(r) => NodeInfo {
                key: u64::from(r.0),
                asn: Some(net.router(r).asn),
            },
            None => NodeInfo {
                key: 0xFFFF_0000_0000_0000 | u64::from(addr.0),
                asn: None,
            },
        };
        let mut all_paths = result.bootstrap_paths.clone();
        assert_eq!(all_paths.len() as u64, boot.ingested);
        all_paths.extend(result.traces.iter().map(Trace::addr_path));
        all_paths.reverse();
        let oracle = ItdkSnapshot::build(&all_paths, resolve);
        assert_eq!(oracle.checksum(), result.snapshot_checksum);
        assert_eq!(oracle.num_nodes(), probe.nodes);
        assert_eq!(oracle.num_links(), probe.links);
        assert_eq!(oracle.num_addresses(), probe.addresses);

        // And by default the bootstrap paths are not retained.
        let lean = Campaign::new(
            &internet.net,
            &internet.cp,
            internet.vps.clone(),
            CampaignConfig {
                hdn_threshold: 6,
                ..CampaignConfig::default()
            },
        )
        .run();
        assert!(lean.bootstrap_paths.is_empty());
        assert_eq!(lean.snapshot_checksum, result.snapshot_checksum);
        assert_eq!(
            lean.report(),
            result.report(),
            "oracle flag must not change the report"
        );
    }

    #[test]
    fn campaign_streams_merged_traces_in_global_order() {
        use wormhole_probe::TraceSink;
        #[derive(Default)]
        struct Capture {
            traces: Vec<(usize, Addr)>,
            phases: Vec<String>,
            stats: Vec<u64>,
        }
        impl TraceSink for Capture {
            fn on_trace(&mut self, vp: usize, trace: &Trace) {
                self.traces.push((vp, trace.dst));
            }
            fn on_stats(&mut self, delta: &EngineStats) {
                self.stats.push(delta.probes);
            }
            fn on_phase(&mut self, phase: &str) {
                self.phases.push(phase.to_string());
            }
        }
        let internet = generate(&InternetConfig::small(11));
        let run = |jobs: usize| {
            let cfg = CampaignConfig {
                hdn_threshold: 6,
                seed: 3,
                jobs,
                ..CampaignConfig::default()
            };
            let mut sink = Capture::default();
            let result = Campaign::new(&internet.net, &internet.cp, internet.vps.clone(), cfg)
                .run_streaming(&mut sink);
            (result, sink)
        };
        let (result, sink) = run(1);
        assert_eq!(sink.phases, vec!["probe".to_string()]);
        let expected: Vec<(usize, Addr)> = result
            .trace_vps
            .iter()
            .zip(&result.traces)
            .map(|(&vp, t)| (vp, t.dst))
            .collect();
        assert_eq!(sink.traces, expected, "stream follows global trace order");
        assert_eq!(sink.stats, vec![result.engine_stats.probes]);
        // The stream is deterministic in the worker count.
        let (_, parallel) = run(4);
        assert_eq!(sink.traces, parallel.traces);
        assert_eq!(sink.stats, parallel.stats);
    }

    #[test]
    fn honest_reports_are_identical_with_screening_toggled() {
        // Honest faults can only *lose* evidence, never fabricate it,
        // so the screen never grades Contradicted and the report —
        // whose only veracity marker is the Contradicted suffix — must
        // stay byte-identical whether screening ran or not.
        let internet = generate(&InternetConfig::small(11));
        for scenario in [
            wormhole_net::FaultScenario::Clean,
            wormhole_net::FaultScenario::LossyCore,
        ] {
            let run = |screen: bool| {
                let cfg = CampaignConfig {
                    hdn_threshold: 6,
                    faults: scenario.plan(),
                    seed: 42,
                    screen_revelations: screen,
                    ..CampaignConfig::default()
                };
                Campaign::new(&internet.net, &internet.cp, internet.vps.clone(), cfg)
                    .run()
                    .report()
            };
            let screened = run(true);
            assert!(
                !screened.text().contains("veracity=contradicted"),
                "honest {scenario:?} campaign produced a Contradicted revelation"
            );
            assert_eq!(
                screened,
                run(false),
                "screening changed an honest {scenario:?} report"
            );
        }
    }

    #[test]
    fn adversarial_campaign_screens_consistently_and_flags_unscreened_runs() {
        let internet = generate(&InternetConfig::small(11));
        let run = |screen: bool| {
            let cfg = CampaignConfig {
                hdn_threshold: 6,
                faults: wormhole_net::FaultScenario::Paranoid.plan(),
                seed: 42,
                screen_revelations: screen,
                ..CampaignConfig::default()
            };
            Campaign::new(&internet.net, &internet.cp, internet.vps.clone(), cfg).run()
        };
        let result = run(true);
        assert!(result.screened && result.deceptive_faults);
        let a = audit_input(&result);
        assert_eq!(
            a.veracity.len(),
            result.revelations.len(),
            "every outcome carries a tier"
        );
        // The screen and the V6xx rules implement the same contract, so
        // a real screened campaign — even a deceived one — never trips
        // the veracity-consistency errors.
        let diags = audit_campaign(&internet.net, &result);
        for code in ["V601", "V602", "V603", "V604", "V605", "V606"] {
            assert!(
                !diags.iter().any(|d| d.code == code),
                "{code} fired on a screened campaign: {}",
                wormhole_lint::render(&diags)
            );
        }
        // Switching the screen off under a deceptive plan is exactly
        // what V606 exists to surface.
        let unscreened = run(false);
        assert!(!unscreened.screened);
        if !unscreened.revelations.is_empty() {
            let diags = audit_campaign(&internet.net, &unscreened);
            assert!(
                diags.iter().any(|d| d.code == "V606"),
                "expected V606 on an unscreened adversarial run: {}",
                wormhole_lint::render(&diags)
            );
        }
    }

    #[test]
    fn release_lint_gate_honors_config_flag() {
        let internet = generate(&InternetConfig::small(5));
        // Explicitly on: must run (and pass on a clean Internet) in
        // every build profile, including release.
        let cfg = CampaignConfig {
            lint_gate: true,
            ..CampaignConfig::default()
        };
        let _ = Campaign::new(&internet.net, &internet.cp, internet.vps.clone(), cfg);
    }

    #[test]
    #[should_panic]
    fn needs_vantage_points() {
        let internet = generate(&InternetConfig::small(5));
        let _ = Campaign::new(
            &internet.net,
            &internet.cp,
            Vec::new(),
            CampaignConfig::default(),
        );
    }
}
