//! Deterministic vantage-point sharding for the §4 campaign.
//!
//! The executor here is what makes `jobs = N` produce byte-identical
//! campaign output for every `N`:
//!
//! * work is assigned **per vantage point**, never per thread — the
//!   task list of a VP is a pure function of the merged state of the
//!   previous phase, so it does not depend on the worker count;
//! * each VP's tasks run **in their assigned order** against that VP's
//!   own [`Session`] (which owns its RNG stream and TTL bookkeeping),
//!   so a session consumes exactly the same probe sequence no matter
//!   which OS thread hosts it;
//! * workers emit **ordered result shards** (one `Vec` per VP, aligned
//!   with the VP's task list) that the caller merges back in VP order —
//!   a deterministic merge with no cross-worker communication at all.
//!
//! `jobs` only chooses how many contiguous VP ranges run concurrently;
//! it can never change what any VP does.

use wormhole_probe::Session;

/// Runs `f` once per vantage point over that VP's task batch, using up
/// to `jobs` worker threads, and returns the per-VP result batches in
/// VP order. `tasks` must be index-aligned with `sessions`.
///
/// `f` receives the VP's whole batch (not one task at a time) so phases
/// that need per-worker caches — e.g. the revelation phase's
/// already-pinged set — can keep them across the batch without any
/// shared mutable state.
pub(crate) fn run_vp_batches<'n, T, R, F>(
    sessions: &mut [Session<'n>],
    tasks: Vec<Vec<T>>,
    jobs: usize,
    f: &F,
) -> Vec<Vec<R>>
where
    T: Send,
    R: Send,
    F: Fn(&mut Session<'n>, Vec<T>) -> Vec<R> + Sync,
{
    assert_eq!(
        sessions.len(),
        tasks.len(),
        "one task batch per vantage point"
    );
    let n = sessions.len();
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 {
        return sessions
            .iter_mut()
            .zip(tasks)
            .map(|(s, ts)| f(s, ts))
            .collect();
    }
    // Contiguous VP ranges, one per worker. The partition only decides
    // concurrency; per-VP results are reassembled in VP order below.
    let chunk = n.div_ceil(jobs);
    let mut task_chunks: Vec<Vec<Vec<T>>> = Vec::new();
    let mut it = tasks.into_iter();
    loop {
        let c: Vec<Vec<T>> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        task_chunks.push(c);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = sessions
            .chunks_mut(chunk)
            .zip(task_chunks)
            .map(|(s_chunk, t_chunk)| {
                scope.spawn(move || {
                    s_chunk
                        .iter_mut()
                        .zip(t_chunk)
                        .map(|(s, ts)| f(s, ts))
                        .collect::<Vec<Vec<R>>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

/// Scatters per-VP `(global_index, value)` results back into one flat,
/// globally-ordered vector. Every index in `0..len` must be produced
/// exactly once across the shards.
pub(crate) fn merge_indexed<R>(shards: Vec<Vec<(usize, R)>>, len: usize) -> Vec<R> {
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(len).collect();
    for shard in shards {
        for (g, r) in shard {
            debug_assert!(slots[g].is_none(), "duplicate result for index {g}");
            slots[g] = Some(r);
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(g, s)| s.unwrap_or_else(|| panic!("no shard produced result {g}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_net::{FaultPlan, ProbeState, SubstrateRef};
    use wormhole_topo::{generate, InternetConfig};

    #[test]
    fn batches_merge_in_vp_order_at_any_job_count() {
        let internet = generate(&InternetConfig::small(3));
        let sub = SubstrateRef::new(&internet.net, &internet.cp);
        let run = |jobs: usize| -> Vec<Vec<u64>> {
            let mut sessions: Vec<Session> = internet
                .vps
                .iter()
                .enumerate()
                .map(|(i, &vp)| {
                    Session::over(
                        sub,
                        vp,
                        ProbeState::for_worker(FaultPlan::none(), 9, i as u64),
                    )
                })
                .collect();
            let targets: Vec<_> = internet.net.routers().iter().map(|r| r.loopback).collect();
            let tasks: Vec<Vec<_>> = (0..sessions.len())
                .map(|v| {
                    targets
                        .iter()
                        .skip(v)
                        .step_by(sessions.len())
                        .copied()
                        .collect()
                })
                .collect();
            run_vp_batches(&mut sessions, tasks, jobs, &|s, ts| {
                ts.into_iter()
                    .map(|t| {
                        s.traceroute(t);
                        s.stats.probes
                    })
                    .collect()
            })
        };
        let serial = run(1);
        for jobs in [2, 3, 8] {
            assert_eq!(serial, run(jobs), "jobs={jobs} diverged from serial");
        }
    }

    #[test]
    fn merge_indexed_restores_global_order() {
        let shards = vec![vec![(2usize, 'c'), (0, 'a')], vec![(1, 'b')]];
        assert_eq!(merge_indexed(shards, 3), vec!['a', 'b', 'c']);
    }

    #[test]
    #[should_panic(expected = "no shard produced result")]
    fn merge_indexed_rejects_holes() {
        let _ = merge_indexed(vec![vec![(0usize, 'a')]], 2);
    }
}
