//! Deterministic vantage-point sharding for the §4 campaign.
//!
//! The executor here is what makes `jobs = N` produce byte-identical
//! campaign output for every `N`:
//!
//! * work is assigned **per vantage point**, never per thread — the
//!   task list of a VP is a pure function of the merged state of the
//!   previous phase, so it does not depend on the worker count;
//! * each VP's tasks run **in their assigned order** against that VP's
//!   own [`Session`] (which owns its RNG stream and TTL bookkeeping),
//!   so a session consumes exactly the same probe sequence no matter
//!   which OS thread hosts it;
//! * workers emit **ordered result shards** (one `Vec` per VP, aligned
//!   with the VP's task list) that the caller merges back in VP order —
//!   a deterministic merge with no cross-worker communication at all.
//!
//! `jobs` only chooses how many contiguous VP ranges run concurrently;
//! it can never change what any VP does.
//!
//! Robustness: each VP's batch runs under [`std::panic::catch_unwind`],
//! so one panicking vantage-point worker degrades only its own shard —
//! the campaign keeps the other VPs' results and reports the loss
//! instead of dying. Because a VP's work is independent of every other
//! VP's, the surviving shards are byte-identical to a run where the
//! panic never happened.

use std::panic::{catch_unwind, AssertUnwindSafe};
use wormhole_probe::Session;

/// Renders a caught panic payload into a report-friendly message.
fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked (non-string payload)".to_string()
    }
}

/// Runs `f` once per vantage point over that VP's task batch, using up
/// to `jobs` worker threads, and returns the per-VP result batches in
/// VP order. `tasks` must be index-aligned with `sessions`.
///
/// `f` receives the VP's whole batch (not one task at a time) so phases
/// that need per-worker caches — e.g. the revelation phase's
/// already-pinged set — can keep them across the batch without any
/// shared mutable state.
///
/// A batch whose `f` panics yields `Err(panic message)` for that VP
/// only; every other VP's batch is unaffected.
pub(crate) fn run_vp_batches<'n, T, R, F>(
    sessions: &mut [Session<'n>],
    tasks: Vec<Vec<T>>,
    jobs: usize,
    f: &F,
) -> Vec<Result<Vec<R>, String>>
where
    T: Send,
    R: Send,
    F: Fn(&mut Session<'n>, Vec<T>) -> Vec<R> + Sync,
{
    assert_eq!(
        sessions.len(),
        tasks.len(),
        "one task batch per vantage point"
    );
    let run_one = |s: &mut Session<'n>, ts: Vec<T>| -> Result<Vec<R>, String> {
        catch_unwind(AssertUnwindSafe(|| f(s, ts))).map_err(panic_message)
    };
    let n = sessions.len();
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 {
        return sessions
            .iter_mut()
            .zip(tasks)
            .map(|(s, ts)| run_one(s, ts))
            .collect();
    }
    // Contiguous VP ranges, one per worker. The partition only decides
    // concurrency; per-VP results are reassembled in VP order below.
    let chunk = n.div_ceil(jobs);
    let mut task_chunks: Vec<Vec<Vec<T>>> = Vec::new();
    let mut it = tasks.into_iter();
    loop {
        let c: Vec<Vec<T>> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        task_chunks.push(c);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = sessions
            .chunks_mut(chunk)
            .zip(task_chunks)
            .map(|(s_chunk, t_chunk)| {
                scope.spawn(move || {
                    s_chunk
                        .iter_mut()
                        .zip(t_chunk)
                        .map(|(s, ts)| run_one(s, ts))
                        .collect::<Vec<Result<Vec<R>, String>>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

/// Scatters per-VP `(global_index, value)` results back into one flat,
/// globally-ordered vector. Every index in `0..len` must be produced
/// exactly once across the shards.
#[cfg(test)]
pub(crate) fn merge_indexed<R>(shards: Vec<Vec<(usize, R)>>, len: usize) -> Vec<R> {
    merge_indexed_or(shards, len, |g| panic!("no shard produced result {g}"))
}

/// Like [`merge_indexed`], but holes left by degraded (panicked) shards
/// are filled with `missing(global_index)` instead of panicking.
pub(crate) fn merge_indexed_or<R>(
    shards: Vec<Vec<(usize, R)>>,
    len: usize,
    missing: impl Fn(usize) -> R,
) -> Vec<R> {
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(len).collect();
    for shard in shards {
        for (g, r) in shard {
            debug_assert!(slots[g].is_none(), "duplicate result for index {g}");
            slots[g] = Some(r);
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(g, s)| s.unwrap_or_else(|| missing(g)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_net::{FaultPlan, ProbeState, SubstrateRef};
    use wormhole_topo::{generate, InternetConfig};

    #[test]
    fn batches_merge_in_vp_order_at_any_job_count() {
        let internet = generate(&InternetConfig::small(3));
        let sub = SubstrateRef::new(&internet.net, &internet.cp);
        let run = |jobs: usize| -> Vec<Vec<u64>> {
            let mut sessions: Vec<Session> = internet
                .vps
                .iter()
                .enumerate()
                .map(|(i, &vp)| {
                    Session::over(
                        sub,
                        vp,
                        ProbeState::for_worker(FaultPlan::none(), 9, i as u64),
                    )
                })
                .collect();
            let targets: Vec<_> = internet.net.routers().iter().map(|r| r.loopback).collect();
            let tasks: Vec<Vec<_>> = (0..sessions.len())
                .map(|v| {
                    targets
                        .iter()
                        .skip(v)
                        .step_by(sessions.len())
                        .copied()
                        .collect()
                })
                .collect();
            run_vp_batches(&mut sessions, tasks, jobs, &|s, ts| {
                ts.into_iter()
                    .map(|t| {
                        s.traceroute(t);
                        s.stats.probes
                    })
                    .collect()
            })
            .into_iter()
            .map(|r| r.expect("no batch panics here"))
            .collect()
        };
        let serial = run(1);
        for jobs in [2, 3, 8] {
            assert_eq!(serial, run(jobs), "jobs={jobs} diverged from serial");
        }
    }

    #[test]
    fn a_panicking_batch_degrades_only_its_own_vp() {
        let internet = generate(&InternetConfig::small(3));
        let sub = SubstrateRef::new(&internet.net, &internet.cp);
        let run = |jobs: usize| -> Vec<Result<Vec<u64>, String>> {
            let mut sessions: Vec<Session> = internet
                .vps
                .iter()
                .enumerate()
                .map(|(i, &vp)| {
                    Session::over(
                        sub,
                        vp,
                        ProbeState::for_worker(FaultPlan::none(), 9, i as u64),
                    )
                })
                .collect();
            let poison = sessions[1].vp();
            let targets: Vec<_> = internet.net.routers().iter().map(|r| r.loopback).collect();
            let tasks: Vec<Vec<_>> = (0..sessions.len())
                .map(|v| targets.iter().skip(v).step_by(3).copied().collect())
                .collect();
            run_vp_batches(&mut sessions, tasks, jobs, &|s, ts| {
                assert!(s.vp() != poison, "chaos: injected worker panic");
                ts.into_iter()
                    .map(|t| {
                        s.traceroute(t);
                        s.stats.probes
                    })
                    .collect()
            })
        };
        for jobs in [1, 2, 3] {
            let out = run(jobs);
            assert_eq!(out.len(), 3);
            assert!(out[0].is_ok(), "jobs={jobs}");
            assert!(out[2].is_ok(), "jobs={jobs}");
            let err = out[1].as_ref().unwrap_err();
            assert!(err.contains("chaos"), "jobs={jobs}: {err}");
            // Survivors are byte-identical to the serial run.
            assert_eq!(out[0], run(1)[0], "jobs={jobs}");
            assert_eq!(out[2], run(1)[2], "jobs={jobs}");
        }
    }

    #[test]
    fn merge_indexed_restores_global_order() {
        let shards = vec![vec![(2usize, 'c'), (0, 'a')], vec![(1, 'b')]];
        assert_eq!(merge_indexed(shards, 3), vec!['a', 'b', 'c']);
    }

    #[test]
    #[should_panic(expected = "no shard produced result")]
    fn merge_indexed_rejects_holes() {
        let _ = merge_indexed(vec![vec![(0usize, 'a')]], 2);
    }

    #[test]
    fn merge_indexed_or_fills_holes_with_defaults() {
        let shards = vec![vec![(0usize, 10)], vec![(2usize, 30)]];
        assert_eq!(merge_indexed_or(shards, 3, |g| -(g as i32)), [10, -1, 30]);
    }
}
