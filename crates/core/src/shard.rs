//! Deterministic vantage-point sharding for the §4 campaign.
//!
//! The executor here is what makes `jobs = N` produce byte-identical
//! campaign output for every `N`:
//!
//! * work is assigned **per vantage point**, never per thread — the
//!   task list of a VP is a pure function of the merged state of the
//!   previous phase, so it does not depend on the worker count;
//! * each VP's tasks run **in their assigned order** against that VP's
//!   own [`Session`] (which owns its RNG stream and TTL bookkeeping),
//!   so a session consumes exactly the same probe sequence no matter
//!   which OS thread hosts it;
//! * workers emit **ordered result shards** (one `Vec` per VP, aligned
//!   with the VP's task list) that the caller merges back in VP order —
//!   a deterministic merge with no cross-worker communication at all.
//!
//! `jobs` only chooses how many contiguous VP ranges run concurrently;
//! it can never change what any VP does.
//!
//! Robustness: each VP's batch runs under [`std::panic::catch_unwind`],
//! so one panicking vantage-point worker degrades only its own shard —
//! the campaign keeps the other VPs' results and reports the loss
//! instead of dying. Because a VP's work is independent of every other
//! VP's, the surviving shards are byte-identical to a run where the
//! panic never happened.
//!
//! # Work stealing ([`run_stealing`])
//!
//! VP batches balance poorly when one vantage point owns the slow
//! traces: the other workers idle while its batch drains. The stealing
//! executor instead publishes every task in one flat injector queue and
//! lets each worker claim the next *chunk* of tasks with a single
//! atomic fetch-add — no per-VP affinity at all. Determinism survives
//! because *state* moves from the worker to the task: each task runs in
//! its own hermetic [`Session`] whose fault RNG stream is derived from
//! `(campaign_seed, vp, task key)` ([`wormhole_net::trace_seed`]), so
//! the probe sequence of a task is a pure function of its identity, not
//! of which worker ran it, what ran before it on that worker, or how
//! many tasks the claim that won it covered. Results carry their queue
//! index and are regrouped per VP in task order after the join, which
//! makes the merged output byte-identical at any job count, any steal
//! interleaving, and any chunk size.
//!
//! Chunked claims amortize the queue's only shared cache line (the
//! cursor) over several tasks; the campaign ties the chunk size to the
//! engine's batch width ([`wormhole_net::BATCH_WIDTH`]) so a claim
//! matches the granularity the batched walk is tuned for.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use wormhole_net::EngineStats;
use wormhole_probe::Session;

/// Renders a caught panic payload into a report-friendly message.
fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked (non-string payload)".to_string()
    }
}

/// Runs `f` once per vantage point over that VP's task batch, using up
/// to `jobs` worker threads, and returns the per-VP result batches in
/// VP order. `tasks` must be index-aligned with `sessions`.
///
/// `f` receives the VP's whole batch (not one task at a time) so phases
/// that need per-worker caches — e.g. the revelation phase's
/// already-pinged set — can keep them across the batch without any
/// shared mutable state.
///
/// A batch whose `f` panics yields `Err(panic message)` for that VP
/// only; every other VP's batch is unaffected.
pub(crate) fn run_vp_batches<'n, T, R, F>(
    sessions: &mut [Session<'n>],
    tasks: Vec<Vec<T>>,
    jobs: usize,
    f: &F,
) -> Vec<Result<Vec<R>, String>>
where
    T: Send,
    R: Send,
    F: Fn(&mut Session<'n>, Vec<T>) -> Vec<R> + Sync,
{
    assert_eq!(
        sessions.len(),
        tasks.len(),
        "one task batch per vantage point"
    );
    let run_one = |s: &mut Session<'n>, ts: Vec<T>| -> Result<Vec<R>, String> {
        catch_unwind(AssertUnwindSafe(|| f(s, ts))).map_err(panic_message)
    };
    let n = sessions.len();
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 {
        let mut out: Vec<Result<Vec<R>, String>> = Vec::with_capacity(n);
        out.extend(sessions.iter_mut().zip(tasks).map(|(s, ts)| run_one(s, ts)));
        return out;
    }
    // Contiguous VP ranges, one per worker. The partition only decides
    // concurrency; per-VP results are reassembled in VP order below.
    let chunk = n.div_ceil(jobs);
    let mut task_chunks: Vec<Vec<Vec<T>>> = Vec::new();
    let mut it = tasks.into_iter();
    loop {
        let c: Vec<Vec<T>> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        task_chunks.push(c);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = sessions
            .chunks_mut(chunk)
            .zip(task_chunks)
            .map(|(s_chunk, t_chunk)| {
                scope.spawn(move || {
                    s_chunk
                        .iter_mut()
                        .zip(t_chunk)
                        .map(|(s, ts)| run_one(s, ts))
                        .collect::<Vec<Result<Vec<R>, String>>>()
                })
            })
            .collect();
        let mut out: Vec<Result<Vec<R>, String>> = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
        }
        out
    })
}

/// One entry in the stealing injector queue: the owning vantage point,
/// the per-trace seed key (folded into the RNG stream derivation), and
/// the task payload itself.
pub(crate) struct StealTask<T> {
    /// Index of the vantage point this task belongs to.
    pub vp: usize,
    /// Seed key; the session factory folds it with `(campaign_seed,
    /// vp)` into the task's private RNG stream.
    pub key: u64,
    /// The task payload.
    pub task: T,
}

/// One stolen task's outcome: `(result, probes sent, engine counters)`
/// or the panic message.
type TaskResult<R> = Result<(R, u64, EngineStats), String>;

/// Reusable merge buffers for the stealing regroup: the per-VP task
/// counts the shard vectors are pre-sized from. A campaign allocates
/// one of these and threads it through all of its probing phases, so
/// the regroup never re-allocates the counting pass per phase.
pub(crate) struct MergeScratch {
    counts: Vec<usize>,
}

impl MergeScratch {
    /// A scratch sized for `n_vps` vantage points.
    pub(crate) fn new(n_vps: usize) -> MergeScratch {
        MergeScratch {
            counts: vec![0; n_vps],
        }
    }
}

/// What the stealing executor hands back: per-VP regrouped results,
/// per-VP probe counts, and the engine counter total.
pub(crate) type StealOutput<R> = (Vec<Result<Vec<R>, String>>, Vec<u64>, EngineStats);

/// Runs `queue` under chunked work stealing with up to `jobs` worker
/// threads and regroups the results per vantage point, in queue order.
///
/// Unlike [`run_vp_batches`], workers have no VP affinity: each claims
/// the next unstarted *chunk* of up to `chunk` tasks from the shared
/// queue (one atomic fetch-add on a cursor over the flat task list),
/// then for each claimed task builds a hermetic [`Session`] via
/// `make_session(vp, key)` and runs `f` on that session. Because every
/// task owns its RNG stream and TTL bookkeeping, the result of a task
/// does not depend on the claim order or the chunking, and the per-VP
/// regrouping below restores a canonical order — the output is
/// identical for every `jobs` and every `chunk` value.
///
/// Panic normalization matches the batch executor's contract: a VP with
/// at least one panicked task yields `Err` (the message of its
/// lowest-index panicked task) and its other results are discarded, so
/// callers reuse the same degraded-shard handling for both executors.
///
/// The second return value is the probe count per VP, summed over that
/// VP's *completed* tasks (every task runs exactly once regardless of
/// scheduling, so the sums are deterministic too — including for VPs
/// that end up degraded). The third is the engine counter total over
/// the same completed tasks — deterministic for the same reason.
pub(crate) fn run_stealing<'n, T, R, F, S>(
    n_vps: usize,
    queue: Vec<StealTask<T>>,
    jobs: usize,
    chunk: usize,
    scratch: &mut MergeScratch,
    make_session: &S,
    f: &F,
) -> StealOutput<R>
where
    T: Copy + Sync,
    R: Send,
    F: Fn(&mut Session<'n>, T) -> R + Sync,
    S: Fn(usize, u64) -> Session<'n> + Sync,
{
    let run_task = |t: &StealTask<T>| -> TaskResult<R> {
        catch_unwind(AssertUnwindSafe(|| {
            let mut sess = make_session(t.vp, t.key);
            let r = f(&mut sess, t.task);
            let stats = sess.engine_stats().clone();
            (r, sess.stats.probes, stats)
        }))
        .map_err(panic_message)
    };
    let jobs = jobs.clamp(1, queue.len().max(1));
    let chunk = chunk.max(1);
    let mut slots: Vec<Option<TaskResult<R>>> = if jobs <= 1 {
        queue.iter().map(|t| Some(run_task(t))).collect()
    } else {
        let cursor = AtomicUsize::new(0);
        let produced: Vec<Vec<(usize, TaskResult<R>)>> = std::thread::scope(|scope| {
            let queue = &queue;
            let cursor = &cursor;
            let handles: Vec<_> = (0..jobs)
                .map(|_| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            // One cursor bump claims a whole chunk of
                            // consecutive tasks; each task still runs
                            // hermetically, so chunk size only changes
                            // contention, never results.
                            let base = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if base >= queue.len() {
                                break;
                            }
                            let end = (base + chunk).min(queue.len());
                            out.reserve(end - base);
                            for (i, t) in queue[base..end].iter().enumerate() {
                                out.push((base + i, run_task(t)));
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        });
        let mut slots: Vec<Option<TaskResult<R>>> =
            std::iter::repeat_with(|| None).take(queue.len()).collect();
        for (i, r) in produced.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
    };
    // Regroup per VP in queue order: steal order is gone, the canonical
    // order is back. Shard vectors are pre-sized from the queue's
    // per-VP task counts so the pushes below never reallocate; the
    // counts buffer itself lives in the caller's scratch, reused
    // across every phase of a campaign.
    let counts = &mut scratch.counts;
    counts.clear();
    counts.resize(n_vps, 0);
    for t in &queue {
        counts[t.vp] += 1;
    }
    let mut out: Vec<Result<Vec<R>, String>> =
        counts.iter().map(|&c| Ok(Vec::with_capacity(c))).collect();
    let mut probes = vec![0u64; n_vps];
    let mut engine_totals = EngineStats::default();
    for (t, slot) in queue.iter().zip(slots.iter_mut()) {
        match slot.take().expect("every queued task was claimed") {
            Ok((r, p, stats)) => {
                probes[t.vp] += p;
                engine_totals.merge(&stats);
                if let Ok(v) = &mut out[t.vp] {
                    v.push(r);
                }
            }
            Err(message) => {
                if out[t.vp].is_ok() {
                    out[t.vp] = Err(message);
                }
            }
        }
    }
    (out, probes, engine_totals)
}

/// Scatters per-VP `(global_index, value)` results back into one flat,
/// globally-ordered vector. Every index in `0..len` must be produced
/// exactly once across the shards.
#[cfg(test)]
pub(crate) fn merge_indexed<R>(shards: Vec<Vec<(usize, R)>>, len: usize) -> Vec<R> {
    merge_indexed_or(shards, len, |g| panic!("no shard produced result {g}"))
}

/// Like [`merge_indexed`], but holes left by degraded (panicked) shards
/// are filled with `missing(global_index)` instead of panicking.
pub(crate) fn merge_indexed_or<R>(
    shards: Vec<Vec<(usize, R)>>,
    len: usize,
    missing: impl Fn(usize) -> R,
) -> Vec<R> {
    let mut slots: Vec<Option<R>> = Vec::with_capacity(len);
    slots.extend(std::iter::repeat_with(|| None).take(len));
    for shard in shards {
        for (g, r) in shard {
            debug_assert!(slots[g].is_none(), "duplicate result for index {g}");
            slots[g] = Some(r);
        }
    }
    let mut out: Vec<R> = Vec::with_capacity(len);
    out.extend(
        slots
            .into_iter()
            .enumerate()
            .map(|(g, s)| s.unwrap_or_else(|| missing(g))),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_net::{FaultPlan, ProbeState, SubstrateRef};
    use wormhole_topo::{generate, InternetConfig};

    #[test]
    fn batches_merge_in_vp_order_at_any_job_count() {
        let internet = generate(&InternetConfig::small(3));
        let sub = SubstrateRef::new(&internet.net, &internet.cp);
        let run = |jobs: usize| -> Vec<Vec<u64>> {
            let mut sessions: Vec<Session> = internet
                .vps
                .iter()
                .enumerate()
                .map(|(i, &vp)| {
                    Session::over(
                        sub,
                        vp,
                        ProbeState::for_worker(FaultPlan::none(), 9, i as u64),
                    )
                })
                .collect();
            let targets: Vec<_> = internet.net.routers().iter().map(|r| r.loopback).collect();
            let tasks: Vec<Vec<_>> = (0..sessions.len())
                .map(|v| {
                    targets
                        .iter()
                        .skip(v)
                        .step_by(sessions.len())
                        .copied()
                        .collect()
                })
                .collect();
            run_vp_batches(&mut sessions, tasks, jobs, &|s, ts| {
                ts.into_iter()
                    .map(|t| {
                        s.traceroute(t);
                        s.stats.probes
                    })
                    .collect()
            })
            .into_iter()
            .map(|r| r.expect("no batch panics here"))
            .collect()
        };
        let serial = run(1);
        for jobs in [2, 3, 8] {
            assert_eq!(serial, run(jobs), "jobs={jobs} diverged from serial");
        }
    }

    #[test]
    fn a_panicking_batch_degrades_only_its_own_vp() {
        let internet = generate(&InternetConfig::small(3));
        let sub = SubstrateRef::new(&internet.net, &internet.cp);
        let run = |jobs: usize| -> Vec<Result<Vec<u64>, String>> {
            let mut sessions: Vec<Session> = internet
                .vps
                .iter()
                .enumerate()
                .map(|(i, &vp)| {
                    Session::over(
                        sub,
                        vp,
                        ProbeState::for_worker(FaultPlan::none(), 9, i as u64),
                    )
                })
                .collect();
            let poison = sessions[1].vp();
            let targets: Vec<_> = internet.net.routers().iter().map(|r| r.loopback).collect();
            let tasks: Vec<Vec<_>> = (0..sessions.len())
                .map(|v| targets.iter().skip(v).step_by(3).copied().collect())
                .collect();
            run_vp_batches(&mut sessions, tasks, jobs, &|s, ts| {
                assert!(s.vp() != poison, "chaos: injected worker panic");
                ts.into_iter()
                    .map(|t| {
                        s.traceroute(t);
                        s.stats.probes
                    })
                    .collect()
            })
        };
        for jobs in [1, 2, 3] {
            let out = run(jobs);
            assert_eq!(out.len(), 3);
            assert!(out[0].is_ok(), "jobs={jobs}");
            assert!(out[2].is_ok(), "jobs={jobs}");
            let err = out[1].as_ref().unwrap_err();
            assert!(err.contains("chaos"), "jobs={jobs}: {err}");
            // Survivors are byte-identical to the serial run.
            assert_eq!(out[0], run(1)[0], "jobs={jobs}");
            assert_eq!(out[2], run(1)[2], "jobs={jobs}");
        }
    }

    /// Builds the stealing queue + session factory shared by the
    /// stealing tests: every router loopback round-robined over the
    /// VPs, keyed by target address, with lossy faults so the RNG
    /// stream actually matters.
    fn steal_fixture<'n>(
        internet: &'n wormhole_topo::Internet,
    ) -> (
        Vec<StealTask<wormhole_net::Addr>>,
        impl Fn(usize, u64) -> Session<'n> + Sync,
    ) {
        let sub = SubstrateRef::new(&internet.net, &internet.cp);
        let n_vps = internet.vps.len();
        let queue: Vec<StealTask<wormhole_net::Addr>> = internet
            .net
            .routers()
            .iter()
            .enumerate()
            .map(|(i, r)| StealTask {
                vp: i % n_vps,
                key: u64::from(r.loopback.0),
                task: r.loopback,
            })
            .collect();
        let vps = internet.vps.clone();
        let make = move |vp: usize, key: u64| {
            let faults = FaultPlan {
                loss: 0.2,
                icmp_loss: 0.1,
                ..FaultPlan::default()
            };
            Session::over(
                sub,
                vps[vp],
                ProbeState::new(faults, wormhole_net::trace_seed(7, vp as u64, key)),
            )
        };
        (queue, make)
    }

    #[test]
    fn stealing_results_are_identical_at_any_job_and_chunk_count() {
        let internet = generate(&InternetConfig::small(3));
        let run = |jobs: usize, chunk: usize| -> (Vec<Result<Vec<u64>, String>>, Vec<u64>) {
            let (queue, make) = steal_fixture(&internet);
            let mut scratch = MergeScratch::new(internet.vps.len());
            let (out, probes, _) = run_stealing(
                internet.vps.len(),
                queue,
                jobs,
                chunk,
                &mut scratch,
                &make,
                &|s, t| {
                    s.traceroute(t);
                    s.stats.probes
                },
            );
            (out, probes)
        };
        let (serial, serial_probes) = run(1, 1);
        assert!(serial.iter().all(|r| r.is_ok()));
        assert!(serial_probes.iter().sum::<u64>() > 0);
        for jobs in [2, 4, 9] {
            for chunk in [1, 3, wormhole_net::BATCH_WIDTH] {
                let (out, probes) = run(jobs, chunk);
                assert_eq!(
                    serial, out,
                    "jobs={jobs} chunk={chunk} diverged from serial"
                );
                assert_eq!(
                    serial_probes, probes,
                    "jobs={jobs} chunk={chunk} probe accounting diverged"
                );
            }
        }
    }

    #[test]
    fn stealing_task_results_do_not_depend_on_claim_order() {
        // Reversing the queue must permute, not change, per-task
        // results: each task's probe sequence is a pure function of
        // `(seed, vp, key)`, never of what ran before it.
        let internet = generate(&InternetConfig::small(3));
        let run = |reverse: bool| {
            let (mut queue, make) = steal_fixture(&internet);
            if reverse {
                queue.reverse();
            }
            let keys: Vec<(usize, u64)> = queue.iter().map(|t| (t.vp, t.key)).collect();
            let mut scratch = MergeScratch::new(internet.vps.len());
            let (out, _, _) = run_stealing(
                internet.vps.len(),
                queue,
                1,
                1,
                &mut scratch,
                &make,
                &|s, t| {
                    s.traceroute(t);
                    s.stats.probes
                },
            );
            let mut flat: Vec<((usize, u64), u64)> = Vec::new();
            let mut taken = vec![0usize; out.len()];
            for &(vp, key) in &keys {
                let shard = out[vp].as_ref().expect("no panics here");
                flat.push(((vp, key), shard[taken[vp]]));
                taken[vp] += 1;
            }
            flat.sort_by_key(|&(id, _)| id);
            flat
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn stealing_normalizes_a_panicked_task_to_a_degraded_vp() {
        let internet = generate(&InternetConfig::small(3));
        for jobs in [1, 3] {
            let (queue, make) = steal_fixture(&internet);
            let poison = queue
                .iter()
                .filter(|t| t.vp == 1)
                .nth(1)
                .map(|t| t.key)
                .expect("vp 1 has tasks");
            let mut scratch = MergeScratch::new(internet.vps.len());
            let (out, probes, _) = run_stealing(
                internet.vps.len(),
                queue,
                jobs,
                4,
                &mut scratch,
                &make,
                &|s, t| {
                    assert!(u64::from(t.0) != poison, "chaos: injected task panic");
                    s.traceroute(t);
                    s.stats.probes
                },
            );
            assert!(out[0].is_ok(), "jobs={jobs}");
            assert!(out[2].is_ok(), "jobs={jobs}");
            let err = out[1].as_ref().unwrap_err();
            assert!(err.contains("chaos"), "jobs={jobs}: {err}");
            // Completed tasks of the degraded VP still count probes —
            // they did run — and the sums stay deterministic.
            assert!(probes[1] > 0, "jobs={jobs}");
        }
    }

    #[test]
    fn merge_indexed_restores_global_order() {
        let shards = vec![vec![(2usize, 'c'), (0, 'a')], vec![(1, 'b')]];
        assert_eq!(merge_indexed(shards, 3), vec!['a', 'b', 'c']);
    }

    #[test]
    #[should_panic(expected = "no shard produced result")]
    fn merge_indexed_rejects_holes() {
        let _ = merge_indexed(vec![vec![(0usize, 'a')]], 2);
    }

    #[test]
    fn merge_indexed_or_fills_holes_with_defaults() {
        let shards = vec![vec![(0usize, 10)], vec![(2usize, 30)]];
        assert_eq!(merge_indexed_or(shards, 3, |g| -(g as i32)), [10, -1, 30]);
    }
}
