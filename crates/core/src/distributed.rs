//! Multi-process campaign execution: shard specs, shard files, and the
//! deterministic file-level merge.
//!
//! The master ([`crate::Campaign::run_distributed`]) runs the same
//! serial analysis as an in-process campaign, but routes every
//! [`crate::Scheduling::Stealing`] probing phase through a
//! [`DistDispatcher`]: the phase's task queue is partitioned over `N`
//! worker *processes* by owning vantage point (`vp % workers`), each
//! worker receives one **shard-spec file** (`WHSP`), executes its
//! subset with the stock stealing executor, and writes one canonical
//! **shard file** (`WHSH`) back. The master validates and merges the
//! shard files in worker order — a pure file-level merge with no
//! shared memory at all.
//!
//! # Why the merge is byte-identical to an in-process run
//!
//! * A worker's queue is the master's queue filtered by `vp % workers`,
//!   preserving order — so every vantage point sees exactly the task
//!   sequence it would have seen in process.
//! * Each task runs in a hermetic session whose RNG stream is a pure
//!   function of `(campaign_seed, vp, task key)`
//!   ([`wormhole_net::trace_seed`]); the worker re-derives the same
//!   keys from the same phase tag, so a task's probe sequence is
//!   independent of which *process* ran it.
//! * Every payload crosses the process boundary through the
//!   [`wormhole_net::wire`] codec, which carries floats as raw IEEE
//!   bits — a decoded result is *equal* to the encoded one.
//!
//! # Failure model
//!
//! A worker that dies, writes a corrupt file, or never writes one at
//! all degrades **only its own vantage points**: the master records the
//! worker in [`PhaseShardAccount::missing`] and synthesizes `Err`
//! entries for its tasked VPs, which flow into the campaign's existing
//! degraded-shard handling ([`crate::DegradedShard`]). The merged
//! result for every surviving VP is byte-identical to a run where the
//! worker never died. The `A311`/`A312` audit rules cross-check the
//! accounting kept in [`DistSummary`].

use crate::reveal::{
    AbandonReason, Confidence, MissingPart, RevealOpts, RevealStep, RevealedHop, RevealedTunnel,
    RevelationOutcome, Veracity,
};
use crate::shard::{self, MergeScratch, StealTask};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use wormhole_net::wire::{checksum, Reader, Wire, WireError};
use wormhole_net::{
    trace_seed, Addr, ControlPlane, EngineStats, FaultPlan, Network, ProbeState, RouterId,
    SubstrateRef,
};
use wormhole_probe::{Session, TracerouteOpts};

/// Shard-spec file magic (`WHSP`): what the master hands each worker.
const SPEC_MAGIC: [u8; 4] = *b"WHSP";
/// Shard file magic (`WHSH`): what each worker hands back.
const SHARD_MAGIC: [u8; 4] = *b"WHSH";
/// On-disk format version shared by both file kinds.
const VERSION: u32 = 1;

/// The valid shard-spec layout, quoted by every worker-side decode
/// error so a malformed spec names what a well-formed one contains.
const SPEC_FIELDS: &str = "a shard spec is: magic \"WHSP\", version, phase tag \
     (1=bootstrap 2=probe 3=fingerprint 4=revelation), worker, workers, n_vps, seed, \
     substrate token, cache (path, config checksum), fault plan, traceroute opts, \
     chaos-abort flag, output path, phase payload (tasks)";

// ---------------------------------------------------------------------------
// Wire codecs for the revelation payload (the other phases ship probe-
// layer records whose codecs live in `wormhole_probe::wire`).
// ---------------------------------------------------------------------------

impl Wire for RevealOpts {
    fn put(&self, out: &mut Vec<u8>) {
        self.max_steps.put(out);
        self.paris_check.put(out);
    }

    fn take(r: &mut Reader<'_>) -> Result<RevealOpts, WireError> {
        Ok(RevealOpts {
            max_steps: Wire::take(r)?,
            paris_check: Wire::take(r)?,
        })
    }
}

impl Wire for RevealedHop {
    fn put(&self, out: &mut Vec<u8>) {
        self.addr.put(out);
        self.labeled.put(out);
        self.rtt_ms.put(out);
        self.truth.put(out);
    }

    fn take(r: &mut Reader<'_>) -> Result<RevealedHop, WireError> {
        Ok(RevealedHop {
            addr: Wire::take(r)?,
            labeled: Wire::take(r)?,
            rtt_ms: Wire::take(r)?,
            truth: Wire::take(r)?,
        })
    }
}

impl Wire for RevealStep {
    fn put(&self, out: &mut Vec<u8>) {
        self.target.put(out);
        self.new_hops.put(out);
    }

    fn take(r: &mut Reader<'_>) -> Result<RevealStep, WireError> {
        Ok(RevealStep {
            target: Wire::take(r)?,
            new_hops: Wire::take(r)?,
        })
    }
}

impl Wire for RevealedTunnel {
    fn put(&self, out: &mut Vec<u8>) {
        self.ingress.put(out);
        self.egress.put(out);
        self.target.put(out);
        self.steps.put(out);
        self.extra_probes.put(out);
        self.revisits.put(out);
        self.stars.put(out);
        self.retrace_mismatch.put(out);
    }

    fn take(r: &mut Reader<'_>) -> Result<RevealedTunnel, WireError> {
        Ok(RevealedTunnel {
            ingress: Wire::take(r)?,
            egress: Wire::take(r)?,
            target: Wire::take(r)?,
            steps: Wire::take(r)?,
            extra_probes: Wire::take(r)?,
            revisits: Wire::take(r)?,
            stars: Wire::take(r)?,
            retrace_mismatch: Wire::take(r)?,
        })
    }
}

impl Wire for AbandonReason {
    fn put(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            AbandonReason::IngressNotObserved => 0,
            AbandonReason::ProbeBudget => 1,
            AbandonReason::WorkerPanicked => 2,
        };
        tag.put(out);
    }

    fn take(r: &mut Reader<'_>) -> Result<AbandonReason, WireError> {
        Ok(match u8::take(r)? {
            0 => AbandonReason::IngressNotObserved,
            1 => AbandonReason::ProbeBudget,
            2 => AbandonReason::WorkerPanicked,
            _ => return Err(WireError::Corrupt("abandon reason tag")),
        })
    }
}

impl Wire for MissingPart {
    fn put(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            MissingPart::IngressLostMidway => 0,
            MissingPart::StepLimit => 1,
            MissingPart::ProbeBudget => 2,
        };
        tag.put(out);
    }

    fn take(r: &mut Reader<'_>) -> Result<MissingPart, WireError> {
        Ok(match u8::take(r)? {
            0 => MissingPart::IngressLostMidway,
            1 => MissingPart::StepLimit,
            2 => MissingPart::ProbeBudget,
            _ => return Err(WireError::Corrupt("missing part tag")),
        })
    }
}

impl Wire for Confidence {
    fn put(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            Confidence::Low => 0,
            Confidence::Medium => 1,
            Confidence::High => 2,
        };
        tag.put(out);
    }

    fn take(r: &mut Reader<'_>) -> Result<Confidence, WireError> {
        Ok(match u8::take(r)? {
            0 => Confidence::Low,
            1 => Confidence::Medium,
            2 => Confidence::High,
            _ => return Err(WireError::Corrupt("confidence tag")),
        })
    }
}

impl Wire for Veracity {
    fn put(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            Veracity::Corroborated => 0,
            Veracity::Unverified => 1,
            Veracity::Contradicted => 2,
        };
        tag.put(out);
    }

    fn take(r: &mut Reader<'_>) -> Result<Veracity, WireError> {
        Ok(match u8::take(r)? {
            0 => Veracity::Corroborated,
            1 => Veracity::Unverified,
            2 => Veracity::Contradicted,
            _ => return Err(WireError::Corrupt("veracity tag")),
        })
    }
}

impl Wire for RevelationOutcome {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            RevelationOutcome::Complete {
                tunnel,
                confidence,
                veracity,
            } => {
                0u8.put(out);
                tunnel.put(out);
                confidence.put(out);
                veracity.put(out);
            }
            RevelationOutcome::Partial {
                tunnel,
                missing,
                confidence,
                veracity,
            } => {
                1u8.put(out);
                tunnel.put(out);
                missing.put(out);
                confidence.put(out);
                veracity.put(out);
            }
            RevelationOutcome::Abandoned { reason } => {
                2u8.put(out);
                reason.put(out);
            }
        }
    }

    fn take(r: &mut Reader<'_>) -> Result<RevelationOutcome, WireError> {
        Ok(match u8::take(r)? {
            0 => RevelationOutcome::Complete {
                tunnel: Wire::take(r)?,
                confidence: Wire::take(r)?,
                veracity: Wire::take(r)?,
            },
            1 => RevelationOutcome::Partial {
                tunnel: Wire::take(r)?,
                missing: Wire::take(r)?,
                confidence: Wire::take(r)?,
                veracity: Wire::take(r)?,
            },
            2 => RevelationOutcome::Abandoned {
                reason: Wire::take(r)?,
            },
            _ => return Err(WireError::Corrupt("revelation outcome tag")),
        })
    }
}

// ---------------------------------------------------------------------------
// Master-side types.
// ---------------------------------------------------------------------------

/// How [`crate::Campaign::run_distributed`] spawns and merges worker
/// processes.
#[derive(Clone, Debug)]
pub struct DistributedOpts {
    /// Worker processes to partition each phase's queue across.
    pub workers: usize,
    /// The worker command line (program plus leading arguments); the
    /// dispatcher appends `campaign-worker --shard-spec <file>`.
    pub worker_cmd: Vec<String>,
    /// Opaque substrate handle the worker binary resolves back to a
    /// `(network, control plane, vantage points)` triple — e.g.
    /// `"tenfold:8"` for the CLI's scale/seed resolver. The master
    /// never ships the substrate itself; both sides regenerate it
    /// deterministically (or load it from the shared cache below).
    pub substrate_token: String,
    /// Directory for spec and shard files.
    pub work_dir: PathBuf,
    /// Substrate cache file and its config checksum, when the master
    /// loaded (or wrote) one: workers load the same file and report
    /// the checksum back for the `A312` agreement audit.
    pub cache: Option<(PathBuf, u64)>,
    /// Keep spec/shard files after the merge (for CI artifacts and
    /// debugging); default behavior removes them.
    pub keep_files: bool,
    /// Chaos hook: tell this worker index to abort (`SIGABRT`-style,
    /// no shard file) during the probe phase, exercising the
    /// missing-shard degradation path. Test/CI use only.
    pub chaos_abort_worker: Option<usize>,
}

/// Why a distributed run could not start or make progress. Worker
/// degradation is **not** an error — a lost worker degrades its own
/// shards and the campaign completes.
#[derive(Debug)]
pub enum DistError {
    /// Distributed execution requires [`crate::Scheduling::Stealing`]:
    /// only per-task hermetic sessions make a task's result independent
    /// of the process that ran it.
    NotStealing,
    /// `workers` was zero or `worker_cmd` was empty.
    NoWorkers,
    /// The work directory could not be created or written.
    Io(std::io::Error),
    /// A worker could not decode its shard-spec file; the reason quotes
    /// the valid field layout.
    Spec {
        /// The spec file the worker was given.
        path: PathBuf,
        /// What failed, plus the valid shard-spec fields.
        reason: String,
    },
    /// A worker could not resolve its substrate token or cache file.
    Substrate(String),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::NotStealing => {
                write!(f, "distributed campaigns require stealing scheduling")
            }
            DistError::NoWorkers => write!(f, "need at least one worker and a worker command"),
            DistError::Io(e) => write!(f, "distributed work dir: {e}"),
            DistError::Spec { path, reason } => {
                write!(f, "shard spec {}: {reason}", path.display())
            }
            DistError::Substrate(e) => write!(f, "worker substrate: {e}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> DistError {
        DistError::Io(e)
    }
}

/// Shard accounting for one dispatched phase: every spawned worker is
/// either received or missing, and the probes its shard file reported
/// are summed for the `A311` conservation check.
#[derive(Clone, Debug)]
pub struct PhaseShardAccount {
    /// The phase label (`bootstrap`, `probe`, `fingerprint`,
    /// `revelation`) — matching [`crate::DegradedShard::phase`].
    pub phase: &'static str,
    /// Workers actually spawned (workers whose queue slice was empty
    /// are skipped, not spawned).
    pub dispatched: usize,
    /// Shard files received, validated, and merged.
    pub received: usize,
    /// Workers whose shard never arrived (died, corrupt file, bad
    /// checksum, wrong identity); their tasked VPs were degraded.
    pub missing: Vec<usize>,
    /// Worker indices that appeared more than once among the received
    /// shards — impossible in a healthy run, audited by `A311`.
    pub duplicates: Vec<usize>,
    /// Sum of per-VP probe counts over the received shard files.
    pub shard_probes: u64,
}

/// Cross-process accounting of a whole distributed run, attached to
/// [`crate::CampaignResult::dist`] (and excluded from the report —
/// the report must stay byte-identical to an in-process run).
#[derive(Clone, Debug, Default)]
pub struct DistSummary {
    /// Worker processes the run partitioned work across.
    pub workers: usize,
    /// One entry per dispatched phase, in phase order.
    pub phases: Vec<PhaseShardAccount>,
    /// The config checksum of the substrate cache the master used, if
    /// any.
    pub master_cache_checksum: Option<u64>,
    /// Distinct `(worker, checksum)` cache observations reported back
    /// in shard files; `A312` checks they all agree with the master's.
    pub worker_cache_checksums: Vec<(usize, u64)>,
}

/// One decoded shard file.
#[derive(Debug)]
struct ShardFile<R> {
    worker: usize,
    cache_checksum: Option<u64>,
    results: Vec<Result<Vec<R>, String>>,
    probes: Vec<u64>,
    stats: EngineStats,
}

/// Routes the campaign's stealing phases to worker processes. Owned by
/// [`crate::Campaign::run_distributed`] for the duration of one run.
pub(crate) struct DistDispatcher<'o> {
    opts: &'o DistributedOpts,
    n_vps: usize,
    seed: u64,
    faults: FaultPlan,
    trace_opts: TracerouteOpts,
    summary: DistSummary,
}

impl<'o> DistDispatcher<'o> {
    /// Validates the options and prepares the work directory.
    pub(crate) fn new(
        opts: &'o DistributedOpts,
        n_vps: usize,
        seed: u64,
        faults: FaultPlan,
        trace_opts: TracerouteOpts,
    ) -> Result<DistDispatcher<'o>, DistError> {
        if opts.workers == 0 || opts.worker_cmd.is_empty() {
            return Err(DistError::NoWorkers);
        }
        std::fs::create_dir_all(&opts.work_dir)?;
        Ok(DistDispatcher {
            opts,
            n_vps,
            seed,
            faults,
            trace_opts,
            summary: DistSummary {
                workers: opts.workers,
                phases: Vec::new(),
                master_cache_checksum: opts.cache.as_ref().map(|&(_, c)| c),
                worker_cache_checksums: Vec::new(),
            },
        })
    }

    /// The run's accounting, consumed after the last phase.
    pub(crate) fn into_summary(self) -> DistSummary {
        self.summary
    }

    /// Dispatches one phase: partition `queue` by owning VP, spawn one
    /// worker process per non-empty partition, then merge the shard
    /// files back into the exact shape [`shard::run_stealing`] returns.
    /// `extra` carries phase-specific context (the revelation phase's
    /// options and discovered set), spliced into each spec verbatim.
    pub(crate) fn dispatch<T, R>(
        &mut self,
        tag: u8,
        label: &'static str,
        queue: &[StealTask<T>],
        extra: &[u8],
    ) -> shard::StealOutput<R>
    where
        T: Copy + Wire,
        R: Wire,
    {
        let workers = self.opts.workers;
        let mut buckets: Vec<Vec<(usize, T)>> = (0..workers).map(|_| Vec::new()).collect();
        for t in queue {
            buckets[t.vp % workers].push((t.vp, t.task));
        }
        let mut out: Vec<Result<Vec<R>, String>> =
            (0..self.n_vps).map(|_| Ok(Vec::new())).collect();
        let mut probes = vec![0u64; self.n_vps];
        let mut stats = EngineStats::default();
        let mut account = PhaseShardAccount {
            phase: label,
            dispatched: 0,
            received: 0,
            missing: Vec::new(),
            duplicates: Vec::new(),
            shard_probes: 0,
        };
        // Spawn every worker first, then join: the partitions run as
        // concurrent OS processes even on a single-threaded master.
        let mut children: Vec<(usize, PathBuf, PathBuf, Result<Child, String>)> = Vec::new();
        for (w, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            account.dispatched += 1;
            let spec_path = self
                .opts
                .work_dir
                .join(format!("phase{tag}-worker{w}.spec"));
            let shard_path = self
                .opts
                .work_dir
                .join(format!("phase{tag}-worker{w}.shard"));
            let chaos = tag == 2 && self.opts.chaos_abort_worker == Some(w);
            let spec = self.encode_spec(tag, w, bucket, extra, &shard_path, chaos);
            let spawn = std::fs::write(&spec_path, &spec)
                .map_err(|e| format!("write spec: {e}"))
                .and_then(|()| {
                    Command::new(&self.opts.worker_cmd[0])
                        .args(&self.opts.worker_cmd[1..])
                        .arg("campaign-worker")
                        .arg("--shard-spec")
                        .arg(&spec_path)
                        .stdin(Stdio::null())
                        .spawn()
                        .map_err(|e| format!("spawn worker: {e}"))
                });
            children.push((w, spec_path, shard_path, spawn));
        }
        let mut seen: HashSet<usize> = HashSet::new();
        for (w, spec_path, shard_path, spawn) in children {
            let shard = spawn
                .and_then(|mut child| {
                    let status = child.wait().map_err(|e| format!("wait: {e}"))?;
                    if status.success() {
                        Ok(())
                    } else {
                        Err(format!("worker exited with {status}"))
                    }
                })
                .and_then(|()| {
                    let bytes =
                        std::fs::read(&shard_path).map_err(|e| format!("read shard file: {e}"))?;
                    decode_shard::<R>(&bytes, tag, w, self.n_vps)
                });
            match shard {
                Ok(file) => {
                    if !seen.insert(file.worker) {
                        account.duplicates.push(file.worker);
                    }
                    account.received += 1;
                    account.shard_probes += file.probes.iter().sum::<u64>();
                    if let Some(c) = file.cache_checksum {
                        if !self.summary.worker_cache_checksums.contains(&(w, c)) {
                            self.summary.worker_cache_checksums.push((w, c));
                        }
                    }
                    let mut results = file.results;
                    for vp in (w..self.n_vps).step_by(workers) {
                        out[vp] = std::mem::replace(&mut results[vp], Ok(Vec::new()));
                        probes[vp] += file.probes[vp];
                    }
                    stats.merge(&file.stats);
                }
                Err(reason) => {
                    account.missing.push(w);
                    // Degrade exactly the VPs this worker had tasks
                    // for; untasked VPs keep their empty Ok shard,
                    // matching the in-process executor.
                    for &(vp, _) in &buckets[w] {
                        if out[vp].is_ok() {
                            out[vp] = Err(format!("worker {w} shard lost: {reason}"));
                        }
                    }
                }
            }
            if !self.opts.keep_files {
                let _ = std::fs::remove_file(&spec_path);
                let _ = std::fs::remove_file(&shard_path);
            }
        }
        self.summary.phases.push(account);
        (out, probes, stats)
    }

    /// Encodes one worker's shard-spec file.
    fn encode_spec<T: Wire>(
        &self,
        tag: u8,
        worker: usize,
        tasks: &[(usize, T)],
        extra: &[u8],
        output: &Path,
        chaos_abort: bool,
    ) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&SPEC_MAGIC);
        VERSION.put(&mut out);
        tag.put(&mut out);
        worker.put(&mut out);
        self.opts.workers.put(&mut out);
        self.n_vps.put(&mut out);
        self.seed.put(&mut out);
        self.opts.substrate_token.put(&mut out);
        self.opts
            .cache
            .as_ref()
            .map(|(p, c)| (p.to_string_lossy().into_owned(), *c))
            .put(&mut out);
        self.faults.put(&mut out);
        self.trace_opts.put(&mut out);
        chaos_abort.put(&mut out);
        output.to_string_lossy().into_owned().put(&mut out);
        out.extend_from_slice(extra);
        (tasks.len() as u64).put(&mut out);
        for (vp, task) in tasks {
            vp.put(&mut out);
            task.put(&mut out);
        }
        let c = checksum(&out);
        c.put(&mut out);
        out
    }
}

/// Validates and decodes one shard file; any failure is a plain-string
/// reason the dispatcher turns into a missing shard, never a panic.
fn decode_shard<R: Wire>(
    bytes: &[u8],
    tag: u8,
    worker: usize,
    n_vps: usize,
) -> Result<ShardFile<R>, String> {
    if bytes.len() < SHARD_MAGIC.len() + 12 {
        return Err("shard file truncated".to_string());
    }
    if bytes[..4] != SHARD_MAGIC {
        return Err("bad shard magic (expected WHSH)".to_string());
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let declared = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    if checksum(body) != declared {
        return Err("shard checksum mismatch".to_string());
    }
    let mut r = Reader::new(&body[4..]);
    let decode = |e: WireError| format!("shard decode: {e}");
    let version = u32::take(&mut r).map_err(decode)?;
    if version != VERSION {
        return Err(format!("shard version {version} (expected {VERSION})"));
    }
    let file_tag = u8::take(&mut r).map_err(decode)?;
    let file_worker = usize::take(&mut r).map_err(decode)?;
    let cache_checksum = <Option<u64> as Wire>::take(&mut r).map_err(decode)?;
    let results = Vec::<Result<Vec<R>, String>>::take(&mut r).map_err(decode)?;
    let probes = Vec::<u64>::take(&mut r).map_err(decode)?;
    let stats = EngineStats::take(&mut r).map_err(decode)?;
    if !r.is_empty() {
        return Err("trailing bytes after shard payload".to_string());
    }
    if file_tag != tag {
        return Err(format!("shard phase tag {file_tag} (expected {tag})"));
    }
    if file_worker != worker {
        return Err(format!(
            "shard from worker {file_worker} (expected {worker})"
        ));
    }
    if results.len() != n_vps || probes.len() != n_vps {
        return Err(format!(
            "shard carries {} result / {} probe lanes (expected {n_vps})",
            results.len(),
            probes.len()
        ));
    }
    Ok(ShardFile {
        worker: file_worker,
        cache_checksum,
        results,
        probes,
        stats,
    })
}

// ---------------------------------------------------------------------------
// Worker side.
// ---------------------------------------------------------------------------

/// The substrate a worker resolves from its spec's token: the same
/// network, control plane, and vantage-point list the master holds.
pub struct WorkerSubstrate {
    /// The network.
    pub net: Network,
    /// Its control plane (built cold or loaded from the shared cache).
    pub cp: ControlPlane,
    /// The vantage points, in the master's order.
    pub vps: Vec<RouterId>,
    /// The config checksum of the cache file the plane was loaded
    /// from, if any — reported back for the `A312` agreement audit.
    pub cache_checksum: Option<u64>,
}

/// Everything a worker needs from its spec header before the phase
/// payload.
struct SpecHeader {
    tag: u8,
    worker: usize,
    n_vps: usize,
    seed: u64,
    token: String,
    cache: Option<(String, u64)>,
    faults: FaultPlan,
    trace_opts: TracerouteOpts,
    chaos_abort: bool,
    output: PathBuf,
}

/// How a worker turns a spec's substrate token (plus the optional
/// cache file and expected config checksum) back into a substrate.
pub type SubstrateResolver = dyn Fn(&str, Option<(&Path, u64)>) -> Result<WorkerSubstrate, String>;

/// Runs one worker process end to end: decode the spec, resolve the
/// substrate through `resolve` (token, optional cache file + expected
/// checksum), execute the phase's task subset serially with the stock
/// stealing executor, and write the shard file atomically.
///
/// The caller (the CLI's `campaign-worker` subcommand) supplies
/// `resolve` so this crate stays independent of how substrates are
/// named; any `Err` it returns surfaces as [`DistError::Substrate`].
pub fn worker_main(spec_path: &Path, resolve: &SubstrateResolver) -> Result<(), DistError> {
    let bytes = std::fs::read(spec_path)?;
    let spec_err = |reason: String| DistError::Spec {
        path: spec_path.to_path_buf(),
        reason: format!("{reason}; {SPEC_FIELDS}"),
    };
    if bytes.len() < SPEC_MAGIC.len() + 12 {
        return Err(spec_err("file truncated".to_string()));
    }
    if bytes[..4] != SPEC_MAGIC {
        return Err(spec_err("bad magic (expected WHSP)".to_string()));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let declared = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    if checksum(body) != declared {
        return Err(spec_err("checksum mismatch".to_string()));
    }
    let mut r = Reader::new(&body[4..]);
    let version = u32::take(&mut r).map_err(|e| spec_err(e.to_string()))?;
    if version != VERSION {
        return Err(spec_err(format!("version {version} (expected {VERSION})")));
    }
    let header = (|| -> Result<SpecHeader, WireError> {
        Ok(SpecHeader {
            tag: Wire::take(&mut r)?,
            worker: Wire::take(&mut r)?,
            n_vps: {
                let _workers = usize::take(&mut r)?;
                Wire::take(&mut r)?
            },
            seed: Wire::take(&mut r)?,
            token: Wire::take(&mut r)?,
            cache: Wire::take(&mut r)?,
            faults: Wire::take(&mut r)?,
            trace_opts: Wire::take(&mut r)?,
            chaos_abort: Wire::take(&mut r)?,
            output: PathBuf::from(String::take(&mut r)?),
        })
    })()
    .map_err(|e| spec_err(e.to_string()))?;
    if header.chaos_abort {
        // The chaos hook dies the hard way — no shard file, no exit
        // status, exactly what a crashed worker looks like.
        std::process::abort();
    }
    let ws = resolve(
        &header.token,
        header
            .cache
            .as_ref()
            .map(|(p, c)| (Path::new(p.as_str()), *c)),
    )
    .map_err(DistError::Substrate)?;
    if ws.vps.len() != header.n_vps {
        return Err(DistError::Substrate(format!(
            "substrate has {} vantage points, spec expects {}",
            ws.vps.len(),
            header.n_vps
        )));
    }
    let shard_bytes = match header.tag {
        1 => run_phase(
            &ws,
            &header,
            &mut r,
            |&(_, t): &(usize, Addr)| crate::campaign::steal_key(1, u64::from(t.0), 0),
            |sess, (g, t)| (g, sess.traceroute(t).addr_path()),
        ),
        2 => run_phase(
            &ws,
            &header,
            &mut r,
            |&(_, t): &(usize, Addr)| crate::campaign::steal_key(2, u64::from(t.0), 0),
            |sess, (g, t)| (g, sess.traceroute(t)),
        ),
        3 => run_phase(
            &ws,
            &header,
            &mut r,
            |&(_, a): &(usize, Addr)| crate::campaign::steal_key(3, u64::from(a.0), 0),
            |sess, (g, a)| (g, a, sess.ping(a)),
        ),
        4 => {
            let ctx = (|| -> Result<(RevealOpts, bool, Vec<Addr>), WireError> {
                Ok((
                    Wire::take(&mut r)?,
                    Wire::take(&mut r)?,
                    Wire::take(&mut r)?,
                ))
            })()
            .map_err(|e| spec_err(e.to_string()))?;
            let (reveal_opts, fingerprint, discovered_list) = ctx;
            let discovered: std::collections::BTreeSet<Addr> =
                discovered_list.into_iter().collect();
            run_phase(
                &ws,
                &header,
                &mut r,
                |&(_, x, y, _): &(usize, Addr, Addr, Addr)| {
                    crate::campaign::steal_key(4, u64::from(x.0), u64::from(y.0))
                },
                |sess, (g, x, y, d)| {
                    crate::campaign::reveal_one(
                        sess,
                        g,
                        x,
                        y,
                        d,
                        &reveal_opts,
                        &discovered,
                        fingerprint,
                    )
                },
            )
        }
        t => Err(spec_err(format!("unknown phase tag {t}"))),
    }?;
    // Atomic publish: a worker killed mid-write leaves only a tmp file
    // (or a truncated one whose checksum fails), never a silently
    // partial shard.
    let tmp = header.output.with_extension("shard.tmp");
    std::fs::write(&tmp, &shard_bytes)?;
    std::fs::rename(&tmp, &header.output)?;
    Ok(())
}

/// Decodes the spec's task list, rebuilds the steal queue with the
/// phase's key derivation, runs it serially, and encodes the shard
/// file. Shared by all four phase tags.
fn run_phase<T, R, K, F>(
    ws: &WorkerSubstrate,
    header: &SpecHeader,
    r: &mut Reader<'_>,
    key_of: K,
    f: F,
) -> Result<Vec<u8>, DistError>
where
    T: Copy + Sync + Wire,
    R: Send + Wire,
    K: Fn(&T) -> u64,
    F: for<'n> Fn(&mut Session<'n>, T) -> R + Sync,
{
    let tasks = Vec::<(usize, T)>::take(r).map_err(|e| DistError::Spec {
        path: header.output.clone(),
        reason: format!("task payload: {e}; {SPEC_FIELDS}"),
    })?;
    if !r.is_empty() {
        return Err(DistError::Spec {
            path: header.output.clone(),
            reason: format!("trailing bytes after task payload; {SPEC_FIELDS}"),
        });
    }
    let sub = SubstrateRef::new(&ws.net, &ws.cp);
    let make_session = |vp: usize, key: u64| {
        let state = ProbeState::new(
            header.faults.clone(),
            trace_seed(header.seed, vp as u64, key),
        );
        let mut s = Session::over(sub, ws.vps[vp], state);
        s.set_opts(header.trace_opts.clone());
        s
    };
    let queue: Vec<StealTask<T>> = tasks
        .into_iter()
        .map(|(vp, task)| StealTask {
            vp,
            key: key_of(&task),
            task,
        })
        .collect();
    let mut scratch = MergeScratch::new(header.n_vps);
    let (results, probes, stats) =
        shard::run_stealing(header.n_vps, queue, 1, 1, &mut scratch, &make_session, &f);
    let mut out = Vec::new();
    out.extend_from_slice(&SHARD_MAGIC);
    VERSION.put(&mut out);
    header.tag.put(&mut out);
    header.worker.put(&mut out);
    ws.cache_checksum.put(&mut out);
    results.put(&mut out);
    probes.put(&mut out);
    stats.put(&mut out);
    let c = checksum(&out);
    c.put(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_net::wire::{from_bytes, to_bytes};

    /// The reveal types carry no `PartialEq`, so round-trip tests
    /// compare re-encoded bytes: decode(encode(v)) must re-encode to
    /// the same bytes, which is the property the file merge needs.
    fn byte_stable<T: Wire>(v: &T) {
        let bytes = to_bytes(v);
        let back: T = from_bytes(&bytes).expect("decodes");
        assert_eq!(to_bytes(&back), bytes, "re-encode changed the bytes");
    }

    fn sample_tunnel() -> RevealedTunnel {
        RevealedTunnel {
            ingress: Addr(10),
            egress: Addr(20),
            target: Addr(30),
            steps: vec![
                RevealStep {
                    target: Addr(21),
                    new_hops: vec![
                        RevealedHop {
                            addr: Addr(11),
                            labeled: true,
                            rtt_ms: Some(4.25),
                            truth: Some(RouterId(7)),
                        },
                        RevealedHop {
                            addr: Addr(12),
                            labeled: false,
                            rtt_ms: None,
                            truth: None,
                        },
                    ],
                },
                RevealStep {
                    target: Addr(22),
                    new_hops: Vec::new(),
                },
            ],
            extra_probes: 99,
            revisits: 2,
            stars: 1,
            retrace_mismatch: true,
        }
    }

    #[test]
    fn revelation_outcomes_are_byte_stable() {
        byte_stable(&RevelationOutcome::Complete {
            tunnel: sample_tunnel(),
            confidence: Confidence::High,
            veracity: Veracity::Corroborated,
        });
        byte_stable(&RevelationOutcome::Partial {
            tunnel: sample_tunnel(),
            missing: MissingPart::StepLimit,
            confidence: Confidence::Medium,
            veracity: Veracity::Contradicted,
        });
        byte_stable(&RevelationOutcome::Abandoned {
            reason: AbandonReason::WorkerPanicked,
        });
        byte_stable(&RevealOpts {
            max_steps: 5,
            paris_check: true,
        });
    }

    #[test]
    fn bad_revelation_tags_are_corrupt() {
        for bytes in [[9u8], [3u8]] {
            assert!(from_bytes::<Confidence>(&bytes).is_err());
            assert!(from_bytes::<Veracity>(&bytes).is_err());
            assert!(from_bytes::<MissingPart>(&bytes).is_err());
            assert!(from_bytes::<AbandonReason>(&bytes).is_err());
            assert!(from_bytes::<RevelationOutcome>(&bytes).is_err());
        }
    }

    #[test]
    fn shard_files_round_trip_and_reject_corruption() {
        let results: Vec<Result<Vec<(usize, u64)>, String>> = vec![
            Ok(vec![(0, 7), (2, 9)]),
            Err("worker panicked".to_string()),
            Ok(Vec::new()),
        ];
        let probes = vec![3u64, 1, 0];
        let stats = EngineStats::default();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SHARD_MAGIC);
        VERSION.put(&mut bytes);
        2u8.put(&mut bytes);
        1usize.put(&mut bytes);
        Some(0xABCDu64).put(&mut bytes);
        results.put(&mut bytes);
        probes.put(&mut bytes);
        stats.put(&mut bytes);
        let c = checksum(&bytes);
        c.put(&mut bytes);

        let file = decode_shard::<(usize, u64)>(&bytes, 2, 1, 3).expect("valid shard");
        assert_eq!(file.worker, 1);
        assert_eq!(file.cache_checksum, Some(0xABCD));
        assert_eq!(file.probes, probes);
        assert_eq!(file.results[0], Ok(vec![(0, 7), (2, 9)]));
        assert!(file.results[1].is_err());

        // Wrong identity, wrong phase, wrong lane count: all rejected.
        assert!(decode_shard::<(usize, u64)>(&bytes, 2, 0, 3).is_err());
        assert!(decode_shard::<(usize, u64)>(&bytes, 1, 1, 3).is_err());
        assert!(decode_shard::<(usize, u64)>(&bytes, 2, 1, 4).is_err());
        // A flipped byte fails the trailing checksum.
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x40;
        let err = decode_shard::<(usize, u64)>(&corrupt, 2, 1, 3).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
        // Truncation too.
        assert!(decode_shard::<(usize, u64)>(&bytes[..bytes.len() - 9], 2, 1, 3).is_err());
    }

    #[test]
    fn worker_rejects_a_malformed_spec_listing_the_fields() {
        let dir = std::env::temp_dir().join(format!("wormhole-spec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.spec");
        std::fs::write(&path, b"not a spec at all, far too short to parse").unwrap();
        let err = worker_main(&path, &|_, _| {
            Err("resolver must not be reached".to_string())
        })
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("WHSP"), "{msg}");
        assert!(msg.contains("substrate token"), "{msg}");
        assert!(msg.contains("phase tag"), "{msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
