//! Revelation-veracity screening: cross-checking a revealed hop set
//! against independent evidence.
//!
//! The revelation techniques of [`crate::reveal`] assume an honest
//! Internet: routers quote truthful TTLs (so the Table 1 taxonomy and
//! RTLA's `<255, 64>` pair hold) and load balancers respect the
//! per-flow invariant (so re-traces are stable and never forge loops).
//! A deceptive router breaks those assumptions without breaking the
//! recursion itself — it happily "reveals" hop sets that are artifacts.
//!
//! [`screen_revelation`] grades each outcome into a [`Veracity`] tier
//! from evidence the campaign already holds:
//!
//! * **loop/duplicate screens** — a re-trace that revisits an address,
//!   a hop list that repeats one, or a failed per-flow stability
//!   repeat ([`RevealedTunnel::retrace_mismatch`]) is positive proof
//!   of a non-Paris artifact → [`Veracity::Contradicted`];
//! * **quoted-TTL plausibility** — every honest reply stack starts at
//!   255, 128 or 64; an inferred initial of 32, or a complete pair
//!   outside the Table 1 taxonomy, is positive proof of TTL spoofing →
//!   [`Veracity::Contradicted`];
//! * **return-path consistency** — where the egress signature permits
//!   RTLA, the return tunnel length must agree with the revealed
//!   forward length within [`wormhole_lint::RTLA_GAP_TOLERANCE`];
//! * **corroboration** — a complete, fully-responsive revelation whose
//!   every participant carries a plausible echo-reply fingerprint (and
//!   whose RTLA gap, when measurable, is consistent) earns
//!   [`Veracity::Corroborated`]. Anything short of that stays
//!   [`Veracity::Unverified`].
//!
//! Honest fault scenarios can only *lose* evidence (loss, silence,
//! rate limiting), never fabricate it, so an honest campaign can never
//! produce `Contradicted` — which is what keeps honest campaign
//! reports byte-identical with screening enabled.

use crate::reveal::{Confidence, RevelationOutcome, Veracity};
use std::collections::HashSet;
use wormhole_lint::{RTLA_GAP_TOLERANCE, SIGNATURE_TAXONOMY};
use wormhole_net::Addr;

/// The initial TTLs an honest reply stack can carry (Table 1: every
/// vendor class initialises time-exceeded and echo replies at one of
/// these). [`crate::fingerprint::infer_initial_ttl`] also snaps to 32,
/// so an inferred initial of 32 only ever comes from a spoofed quote.
pub const PLAUSIBLE_REPLY_INITS: [u8; 3] = [255, 128, 64];

/// Screens one revelation outcome against the independent evidence.
///
/// `signature_of` resolves a participant address to its inferred
/// `(te, er)` initial-TTL pair (either half may be unobserved); `rtl`
/// is the RTLA return-tunnel length measured at the egress, when its
/// signature allowed the measurement.
pub fn screen_revelation<F>(out: &RevelationOutcome, signature_of: F, rtl: Option<i32>) -> Veracity
where
    F: Fn(Addr) -> (Option<u8>, Option<u8>),
{
    let (tunnel, complete) = match out {
        RevelationOutcome::Complete { tunnel, .. } => (tunnel, true),
        RevelationOutcome::Partial { tunnel, .. } => (tunnel, false),
        RevelationOutcome::Abandoned { .. } => return Veracity::Unverified,
    };
    // Positive artifact evidence contradicts whatever was claimed —
    // including an empty "nothing hidden" result, whose re-traces
    // cannot be trusted either.
    if tunnel.revisits > 0 || tunnel.retrace_mismatch {
        return Veracity::Contradicted;
    }
    let hops = tunnel.hops();
    let mut seen: HashSet<Addr> = [tunnel.ingress, tunnel.egress].into_iter().collect();
    if hops.iter().any(|&h| !seen.insert(h)) {
        return Veracity::Contradicted;
    }
    // Quoted-TTL plausibility over every participant (revealed hops
    // plus the egress the recursion hung off).
    let mut er_confirmed = 0usize;
    for &addr in hops.iter().chain(std::iter::once(&tunnel.egress)) {
        let (te, er) = signature_of(addr);
        if te.is_some_and(|t| !PLAUSIBLE_REPLY_INITS.contains(&t))
            || er.is_some_and(|e| !PLAUSIBLE_REPLY_INITS.contains(&e))
        {
            return Veracity::Contradicted;
        }
        if let (Some(te), Some(er)) = (te, er) {
            if !SIGNATURE_TAXONOMY.contains(&(te, er)) {
                return Veracity::Contradicted;
            }
        }
        if er.is_some() {
            er_confirmed += 1;
        }
    }
    if tunnel.is_empty() {
        // Nothing hidden: no artifact evidence, but nothing to
        // corroborate either.
        return Veracity::Unverified;
    }
    // Corroboration demands positive evidence on every front: the
    // recursion converged, every re-trace hop replied, every
    // participant carries a plausible echo-reply fingerprint, and the
    // return-path length agrees where RTLA could measure it.
    let rtl_consistent = match rtl {
        Some(r) => (r - tunnel.forward_tunnel_length() as i32).abs() <= RTLA_GAP_TOLERANCE,
        None => true,
    };
    if complete
        && out.confidence() == Some(Confidence::High)
        && tunnel.stars == 0
        && er_confirmed == hops.len() + 1
        && rtl_consistent
    {
        Veracity::Corroborated
    } else {
        Veracity::Unverified
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reveal::{RevealStep, RevealedHop, RevealedTunnel};

    fn addr(n: u8) -> Addr {
        Addr::new(10, 0, 0, n)
    }

    fn tunnel(hops: &[u8]) -> RevealedTunnel {
        RevealedTunnel {
            ingress: addr(1),
            egress: addr(9),
            target: addr(10),
            steps: vec![RevealStep {
                target: addr(9),
                new_hops: hops
                    .iter()
                    .map(|&n| RevealedHop {
                        addr: addr(n),
                        labeled: false,
                        rtt_ms: None,
                        truth: None,
                    })
                    .collect(),
            }],
            extra_probes: 8,
            revisits: 0,
            stars: 0,
            retrace_mismatch: false,
        }
    }

    fn juniper(_: Addr) -> (Option<u8>, Option<u8>) {
        (Some(255), Some(64))
    }

    #[test]
    fn clean_complete_revelation_is_corroborated() {
        let out = RevelationOutcome::complete(tunnel(&[2, 3, 4]));
        assert_eq!(
            screen_revelation(&out, juniper, Some(4)),
            Veracity::Corroborated
        );
        // Consistent even without an RTLA measurement.
        assert_eq!(
            screen_revelation(&out, juniper, None),
            Veracity::Corroborated
        );
    }

    #[test]
    fn revisits_and_retrace_instability_contradict() {
        let mut t = tunnel(&[2, 3]);
        t.revisits = 1;
        let out = RevelationOutcome::complete(t);
        assert_eq!(
            screen_revelation(&out, juniper, None),
            Veracity::Contradicted
        );

        let mut t = tunnel(&[2, 3]);
        t.retrace_mismatch = true;
        let out = RevelationOutcome::complete(t);
        assert_eq!(
            screen_revelation(&out, juniper, None),
            Veracity::Contradicted
        );

        // Even an empty "nothing hidden" claim is contradicted by
        // artifact-ridden re-traces.
        let mut t = tunnel(&[]);
        t.revisits = 2;
        let out = RevelationOutcome::complete(t);
        assert_eq!(
            screen_revelation(&out, juniper, None),
            Veracity::Contradicted
        );
    }

    #[test]
    fn duplicate_hops_contradict() {
        let out = RevelationOutcome::complete(tunnel(&[2, 3, 2]));
        assert_eq!(
            screen_revelation(&out, juniper, None),
            Veracity::Contradicted
        );
    }

    #[test]
    fn implausible_ttls_contradict() {
        let out = RevelationOutcome::complete(tunnel(&[2, 3]));
        // A 32-initial echo reply matches no honest vendor stack.
        let spoofed = |_| (None, Some(32u8));
        assert_eq!(
            screen_revelation(&out, spoofed, None),
            Veracity::Contradicted
        );
        // A complete pair outside the Table 1 taxonomy.
        let off_taxonomy = |_| (Some(128u8), Some(64u8));
        assert_eq!(
            screen_revelation(&out, off_taxonomy, None),
            Veracity::Contradicted
        );
    }

    #[test]
    fn missing_evidence_stays_unverified() {
        let out = RevelationOutcome::complete(tunnel(&[2, 3]));
        // One hop never got its echo-reply fingerprint.
        let partial = |a: Addr| {
            if a == addr(2) {
                (None, None)
            } else {
                (Some(255), Some(64))
            }
        };
        assert_eq!(screen_revelation(&out, partial, None), Veracity::Unverified);
        // An inconsistent RTLA gap blocks corroboration without proving
        // an artifact (asymmetric tunnels exist).
        assert_eq!(
            screen_revelation(&out, juniper, Some(9)),
            Veracity::Unverified
        );
        // Nothing hidden, nothing to corroborate.
        let none = RevelationOutcome::complete(tunnel(&[]));
        assert_eq!(
            screen_revelation(&none, juniper, None),
            Veracity::Unverified
        );
        // Abandoned attempts have no hop set to screen.
        let abandoned = RevelationOutcome::Abandoned {
            reason: crate::reveal::AbandonReason::IngressNotObserved,
        };
        assert_eq!(
            screen_revelation(&abandoned, juniper, None),
            Veracity::Unverified
        );
    }

    #[test]
    fn degraded_retraces_block_corroboration() {
        let mut t = tunnel(&[2, 3]);
        t.stars = 3;
        let out = match RevelationOutcome::complete(t) {
            RevelationOutcome::Complete {
                tunnel, veracity, ..
            } => RevelationOutcome::Complete {
                tunnel,
                confidence: Confidence::Low,
                veracity,
            },
            _ => unreachable!(),
        };
        assert_eq!(screen_revelation(&out, juniper, None), Veracity::Unverified);
    }
}
