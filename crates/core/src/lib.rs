//! `wormhole-core`: the paper's contribution — techniques for tracking
//! invisible MPLS tunnels.
//!
//! * [`fingerprint`] — TTL-based router signatures (Table 1);
//! * [`frpla`] — Forward/Return Path Length Analysis: the statistical
//!   *shift* detector and tunnel-length estimator;
//! * [`rtla`] — Return Tunnel Length Analysis: the exact `<255,64>`
//!   *gap* method;
//! * [`reveal`] — DPR and BRPR, the hop-revealing recursion of §4;
//! * [`veracity`] — evidence screens grading each revelation
//!   Corroborated/Unverified/Contradicted against deceptive routers
//!   and non-Paris load balancers;
//! * [`campaign`] — the full HDN-driven measurement campaign;
//! * [`distributed`] — multi-process campaign execution: shard specs,
//!   shard files, and the deterministic file-level merge;
//! * [`smart`] — the §8 "modified traceroute": FRPLA/RTLA as triggers,
//!   DPR/BRPR revealing hidden hops on the fly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod distributed;
pub mod fingerprint;
pub mod frpla;
pub mod reveal;
pub mod rtla;
mod shard;
pub mod smart;
pub mod veracity;

pub use campaign::{
    audit_campaign, audit_input, snapshot_oracle, Campaign, CampaignConfig, CampaignReport,
    CampaignResult, CampaignTimings, CandidatePair, DegradedShard, HdnRule, Scheduling,
    SnapshotDelta, WalkMode, WALK_AUTO_THRESHOLD,
};
pub use distributed::{
    worker_main, DistError, DistSummary, DistributedOpts, PhaseShardAccount, SubstrateResolver,
    WorkerSubstrate,
};
pub use fingerprint::{infer_initial_ttl, return_path_len, FingerprintTable, Signature};
pub use frpla::{rfa_of_hop, rfa_of_trace, FrplaAnalysis, RfaDistribution, RfaSample};
pub use reveal::{
    reveal_between, AbandonReason, Confidence, MissingPart, RevealMethod, RevealOpts, RevealStep,
    RevealedHop, RevealedTunnel, RevelationOutcome, Veracity,
};
pub use rtla::{return_tunnel_length, sample as rtla_sample, tunnel_asymmetry, RtlaSample};
pub use smart::{smart_traceroute, SmartHop, SmartOpts, SmartTrace, Trigger};
pub use veracity::{screen_revelation, PLAUSIBLE_REPLY_INITS};
