//! Router fingerprinting from initial TTLs (paper §2.3, Table 1).
//!
//! A reply's initial TTL is inferred by rounding the observed TTL up to
//! the next common initial value (32, 64, 128, 255); the pair-signature
//! `<time-exceeded, echo-reply>` then classifies the router's vendor
//! family. The `<255, 64>` signature (Juniper Junos) is what RTLA keys
//! on.

use std::collections::HashMap;
use wormhole_net::{Addr, Vendor};

/// Rounds an observed TTL up to the inferred initial TTL.
///
/// Paths longer than 32 hops against a 32-initial stack would alias to
/// 64 — the standard, accepted limitation of the technique.
pub fn infer_initial_ttl(observed: u8) -> u8 {
    for init in [32u8, 64, 128] {
        if observed <= init {
            return init;
        }
    }
    255
}

/// The inferred return-path length in router hops, counting the
/// replying router itself (the `+1` of the paper's "PE2 is located six
/// hops from the Vantage Point" convention).
pub fn return_path_len(observed: u8) -> u8 {
    infer_initial_ttl(observed) - observed + 1
}

/// A pair-signature, possibly still partial.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Signature {
    /// Inferred initial TTL of time-exceeded replies.
    pub te: Option<u8>,
    /// Inferred initial TTL of echo replies.
    pub er: Option<u8>,
}

impl Signature {
    /// The complete `<te, er>` pair, when both kinds were observed.
    pub fn pair(&self) -> Option<(u8, u8)> {
        Some((self.te?, self.er?))
    }

    /// The Table 1 vendor class for this signature, if it matches one.
    pub fn vendor_class(&self) -> Option<Vendor> {
        match self.pair()? {
            (255, 255) => Some(Vendor::CiscoIos),
            (255, 64) => Some(Vendor::JuniperJunos),
            (128, 128) => Some(Vendor::JuniperJunosE),
            (64, 64) => Some(Vendor::BrocadeLinux),
            _ => None,
        }
    }

    /// True for the `<255, 64>` signature RTLA requires.
    pub fn is_rtla_capable(&self) -> bool {
        self.pair() == Some((255, 64))
    }
}

/// Accumulates per-address TTL observations into signatures.
#[derive(Debug, Default, Clone)]
pub struct FingerprintTable {
    sigs: HashMap<Addr, Signature>,
}

impl FingerprintTable {
    /// An empty table.
    pub fn new() -> FingerprintTable {
        FingerprintTable::default()
    }

    /// Records a time-exceeded observation for `addr`.
    pub fn observe_te(&mut self, addr: Addr, observed_ttl: u8) {
        let sig = self.sigs.entry(addr).or_default();
        sig.te = Some(infer_initial_ttl(observed_ttl));
    }

    /// Records an echo-reply observation for `addr`.
    pub fn observe_er(&mut self, addr: Addr, observed_ttl: u8) {
        let sig = self.sigs.entry(addr).or_default();
        sig.er = Some(infer_initial_ttl(observed_ttl));
    }

    /// The signature collected for `addr`.
    pub fn signature(&self, addr: Addr) -> Signature {
        self.sigs.get(&addr).copied().unwrap_or_default()
    }

    /// Iterates over all `(addr, signature)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, Signature)> + '_ {
        self.sigs.iter().map(|(&a, &s)| (a, s))
    }

    /// Number of fingerprinted addresses.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// True when no address was fingerprinted.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// The distribution of complete pair-signatures over a set of
    /// addresses (Table 5's "TTL signature (%)" columns).
    pub fn signature_mix<'a, I>(&self, addrs: I) -> HashMap<(u8, u8), usize>
    where
        I: IntoIterator<Item = &'a Addr>,
    {
        let mut mix = HashMap::new();
        for addr in addrs {
            if let Some(pair) = self.signature(*addr).pair() {
                *mix.entry(pair).or_insert(0) += 1;
            }
        }
        mix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounding_to_initials() {
        assert_eq!(infer_initial_ttl(250), 255);
        assert_eq!(infer_initial_ttl(129), 255);
        assert_eq!(infer_initial_ttl(128), 128);
        assert_eq!(infer_initial_ttl(100), 128);
        assert_eq!(infer_initial_ttl(64), 64);
        assert_eq!(infer_initial_ttl(60), 64);
        assert_eq!(infer_initial_ttl(31), 32);
        assert_eq!(infer_initial_ttl(1), 32);
    }

    #[test]
    fn return_path_len_counts_replier() {
        // Observed 250 from a 255-initial stack: 5 decrements, 6 hops
        // counting the replier (the paper's Fig. 2 narrative).
        assert_eq!(return_path_len(250), 6);
        assert_eq!(return_path_len(255), 1);
    }

    #[test]
    fn table1_classification() {
        let mut t = FingerprintTable::new();
        let a = Addr::new(10, 0, 0, 1);
        t.observe_te(a, 250);
        assert_eq!(t.signature(a).pair(), None); // partial
        t.observe_er(a, 60);
        let sig = t.signature(a);
        assert_eq!(sig.pair(), Some((255, 64)));
        assert_eq!(sig.vendor_class(), Some(Vendor::JuniperJunos));
        assert!(sig.is_rtla_capable());
    }

    #[test]
    fn all_four_classes() {
        let cases = [
            (255u8, 255u8, Vendor::CiscoIos),
            (255, 64, Vendor::JuniperJunos),
            (128, 128, Vendor::JuniperJunosE),
            (64, 64, Vendor::BrocadeLinux),
        ];
        for (te, er, vendor) in cases {
            let sig = Signature {
                te: Some(te),
                er: Some(er),
            };
            assert_eq!(sig.vendor_class(), Some(vendor));
        }
        // Unknown combination.
        let sig = Signature {
            te: Some(64),
            er: Some(255),
        };
        assert_eq!(sig.vendor_class(), None);
    }

    #[test]
    fn signature_mix_counts_pairs() {
        let mut t = FingerprintTable::new();
        let a = Addr::new(10, 0, 0, 1);
        let b = Addr::new(10, 0, 0, 2);
        let c = Addr::new(10, 0, 0, 3);
        for (addr, te, er) in [(a, 250, 250), (b, 250, 60), (c, 250, 60)] {
            t.observe_te(addr, te);
            t.observe_er(addr, er);
        }
        let mix = t.signature_mix([a, b, c].iter());
        assert_eq!(mix[&(255, 255)], 1);
        assert_eq!(mix[&(255, 64)], 2);
        assert_eq!(t.len(), 3);
    }
}
