//! DPR and BRPR — revealing the hidden hops (paper §3.2, §4).
//!
//! Both techniques exploit the fact that not all packets inside an MPLS
//! network are label-switched:
//!
//! * **DPR** (Direct Path Revelation): when internal prefixes are not in
//!   LDP (Juniper's loopback-only default), a trace towards the egress
//!   LER's *incoming interface* follows the explicit IGP route and
//!   reveals the whole hidden path in one probe burst;
//! * **BRPR** (Backward Recursive Path Revelation): with LDP on all
//!   prefixes (Cisco default) and PHP, a trace towards the egress
//!   reveals the Last Hop (the LSP towards the egress's incoming `/31`
//!   ends one router early); recursing on each newly revealed address
//!   walks the LSP backwards to the ingress.
//!
//! The driver below implements the §4 recursion verbatim: re-trace the
//! egress, recurse while exactly one new hop appears, stop when nothing
//! new is revealed or the trace no longer passes through the ingress.

use wormhole_net::{Addr, RouterId};
use wormhole_probe::Session;

/// Options for the revelation recursion.
#[derive(Clone, Debug)]
pub struct RevealOpts {
    /// Maximum recursion depth (traces beyond the initial one).
    pub max_steps: usize,
    /// Spend one extra trace re-running the first re-trace and flag a
    /// path change ([`RevealedTunnel::retrace_mismatch`]). Per-flow
    /// forwarding makes the repeat byte-identical, so any difference is
    /// positive evidence of a non-Paris load balancer forking the
    /// per-probe path. Off by default — the campaign enables it only
    /// under deceptive fault plans, keeping honest probe counts (and
    /// reports) unchanged.
    pub paris_check: bool,
}

impl Default for RevealOpts {
    fn default() -> RevealOpts {
        RevealOpts {
            max_steps: 16,
            paris_check: false,
        }
    }
}

/// One newly revealed hop.
#[derive(Clone, Debug, PartialEq)]
pub struct RevealedHop {
    /// The revealed address.
    pub addr: Addr,
    /// Whether the revealing trace quoted MPLS labels at this hop (if
    /// so, the "tunnel" was explicit, not invisible — used by the
    /// cross-validation criteria of Table 3).
    pub labeled: bool,
    /// Round-trip time observed when the hop was revealed (feeds the
    /// Fig. 6 RTT decomposition).
    pub rtt_ms: Option<f64>,
    /// Simulator ground truth (validation only).
    pub truth: Option<RouterId>,
}

/// One step of the recursion.
#[derive(Clone, Debug)]
pub struct RevealStep {
    /// The address this step traced towards.
    pub target: Addr,
    /// The new hops it revealed, in forward (ingress→egress) order.
    pub new_hops: Vec<RevealedHop>,
}

/// Which §4 bucket a revelation falls into.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RevealMethod {
    /// Several hops in a single extra trace.
    Dpr,
    /// One hop per recursion step, more than one step.
    Brpr,
    /// A single revealed hop: DPR and BRPR are indistinguishable
    /// (Table 3's "BRPR or DPR" row).
    Either,
    /// A mix: single-hop steps plus a multi-hop step
    /// (Table 3's "hybrid DPR/BRPR").
    Hybrid,
}

/// A revealed invisible tunnel.
#[derive(Clone, Debug)]
pub struct RevealedTunnel {
    /// The suspected tunnel ingress (address `X` of §4).
    pub ingress: Addr,
    /// The suspected tunnel egress (address `Y`).
    pub egress: Addr,
    /// The original trace's destination (`D`).
    pub target: Addr,
    /// The recursion transcript.
    pub steps: Vec<RevealStep>,
    /// Extra probe packets spent by the revelation.
    pub extra_probes: u64,
    /// Addresses observed at more than one TTL across the re-traces.
    /// Deterministic per-flow forwarding never revisits a router, so a
    /// non-zero count is positive evidence of a forged loop/cycle
    /// artifact (non-Paris load balancing).
    pub revisits: usize,
    /// Non-responding hops (`*`) across the re-traces — the raw count
    /// behind the [`Confidence`] grade, kept for the star-burst screen.
    pub stars: usize,
    /// The [`RevealOpts::paris_check`] repeat of the first re-trace
    /// followed a different path — positive evidence that the per-flow
    /// invariant DPR/BRPR rely on does not hold here.
    pub retrace_mismatch: bool,
}

impl RevealedTunnel {
    /// The revealed hidden hops in forward order (ingress side first).
    ///
    /// BRPR discovers hops backwards (last hop first); the forward order
    /// therefore concatenates the steps most-recent-first.
    pub fn hops(&self) -> Vec<Addr> {
        let mut out = Vec::new();
        for step in self.steps.iter().rev() {
            out.extend(step.new_hops.iter().map(|h| h.addr));
        }
        out
    }

    /// Number of revealed hops.
    pub fn len(&self) -> usize {
        self.steps.iter().map(|s| s.new_hops.len()).sum()
    }

    /// True when nothing was revealed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether any revealed hop was labeled.
    pub fn any_labeled(&self) -> bool {
        self.steps
            .iter()
            .any(|s| s.new_hops.iter().any(|h| h.labeled))
    }

    /// The §4 classification.
    pub fn method(&self) -> RevealMethod {
        let revealing: Vec<&RevealStep> = self
            .steps
            .iter()
            .filter(|s| !s.new_hops.is_empty())
            .collect();
        let total = self.len();
        if total == 1 {
            return RevealMethod::Either;
        }
        let multi = revealing.iter().any(|s| s.new_hops.len() > 1);
        if revealing.len() == 1 && multi {
            RevealMethod::Dpr
        } else if multi {
            RevealMethod::Hybrid
        } else {
            RevealMethod::Brpr
        }
    }

    /// The forward tunnel length (FTL) in the paper's Fig. 5 convention:
    /// hops needed to reach the egress from the ingress, i.e. revealed
    /// LSRs + 1.
    pub fn forward_tunnel_length(&self) -> usize {
        self.len() + 1
    }
}

/// Why a revelation was abandoned with nothing revealed.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AbandonReason {
    /// The first re-trace never passed through the suspected ingress.
    IngressNotObserved,
    /// The probe budget ran out before anything could be revealed.
    ProbeBudget,
    /// The worker running this revelation panicked; the campaign merge
    /// synthesized this outcome for the degraded shard.
    WorkerPanicked,
}

impl AbandonReason {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            AbandonReason::IngressNotObserved => "ingress-not-observed",
            AbandonReason::ProbeBudget => "probe-budget",
            AbandonReason::WorkerPanicked => "worker-panicked",
        }
    }
}

/// What a partial revelation is missing.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum MissingPart {
    /// A mid-recursion re-trace stopped passing through the ingress;
    /// hops between the ingress and the deepest revealed hop are
    /// unaccounted for.
    IngressLostMidway,
    /// The recursion hit its step limit while still discovering hops.
    StepLimit,
    /// The probe budget ran out mid-recursion.
    ProbeBudget,
}

impl MissingPart {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            MissingPart::IngressLostMidway => "ingress-lost-midway",
            MissingPart::StepLimit => "step-limit",
            MissingPart::ProbeBudget => "probe-budget",
        }
    }
}

/// How trustworthy a revelation's hop set is, judged by how degraded
/// its re-traces were (stars, rate-limited hops, truncation).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Confidence {
    /// Every re-trace hop replied.
    High,
    /// A couple of degraded hops across the revelation's re-traces.
    Medium,
    /// The re-traces were heavily degraded; revealed hops may be an
    /// under-count.
    Low,
}

impl Confidence {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Confidence::High => "high",
            Confidence::Medium => "medium",
            Confidence::Low => "low",
        }
    }

    /// Grades a revelation by the number of degraded (non-replying)
    /// hops observed across its re-traces.
    fn grade(degraded_hops: usize) -> Confidence {
        match degraded_hops {
            0 => Confidence::High,
            1..=2 => Confidence::Medium,
            _ => Confidence::Low,
        }
    }
}

/// How a revelation fared against the independent-evidence screens
/// (quoted-TTL plausibility, per-flow stability, duplicate-IP/loop
/// checks) — the defense against deceptive routers and non-Paris load
/// balancers forging measurement artifacts. Orthogonal to
/// [`Confidence`]: confidence grades how *degraded* the re-traces were,
/// veracity grades whether the evidence actively corroborates or
/// contradicts the claimed hop set.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Veracity {
    /// Every screen that could run returned positive corroborating
    /// evidence (plausible fingerprints on all participants, stable
    /// re-traces, consistent return-path length where measurable).
    Corroborated,
    /// The screens could not gather enough evidence either way — also
    /// the default before the campaign's screening pass runs.
    Unverified,
    /// At least one screen found positive evidence of an artifact
    /// (forged loop, per-flow instability, implausible quoted TTL).
    Contradicted,
}

impl Veracity {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Veracity::Corroborated => "corroborated",
            Veracity::Unverified => "unverified",
            Veracity::Contradicted => "contradicted",
        }
    }
}

/// Outcome of a revelation attempt: the typed replacement for the old
/// revealed/nothing-hidden/failed trichotomy, distinguishing *how much*
/// was revealed and *why* revelation stopped.
#[derive(Clone, Debug)]
pub enum RevelationOutcome {
    /// The recursion converged on its own. An *empty* complete tunnel
    /// means the re-traces exposed nothing between ingress and egress:
    /// no invisible tunnel, or one that resists both techniques (UHP).
    Complete {
        /// The revelation transcript (possibly empty).
        tunnel: RevealedTunnel,
        /// Re-trace quality.
        confidence: Confidence,
        /// Evidence-screen verdict (set by the campaign's screening
        /// pass; [`Veracity::Unverified`] until then).
        veracity: Veracity,
    },
    /// Hops were revealed but the recursion was cut short; the hop set
    /// is a lower bound.
    Partial {
        /// What was revealed before the cut-off.
        tunnel: RevealedTunnel,
        /// Why the revelation is incomplete.
        missing: MissingPart,
        /// Re-trace quality.
        confidence: Confidence,
        /// Evidence-screen verdict (set by the campaign's screening
        /// pass; [`Veracity::Unverified`] until then).
        veracity: Veracity,
    },
    /// Nothing was revealed and the attempt could not even establish
    /// the ingress/egress bracket.
    Abandoned {
        /// Why.
        reason: AbandonReason,
    },
}

impl RevelationOutcome {
    /// A clean, fully-confident completion (test/merge constructor).
    pub fn complete(tunnel: RevealedTunnel) -> RevelationOutcome {
        RevelationOutcome::Complete {
            tunnel,
            confidence: Confidence::High,
            veracity: Veracity::Unverified,
        }
    }

    /// The evidence-screen verdict. Abandoned attempts have no hop set
    /// to screen, so they are always [`Veracity::Unverified`].
    pub fn veracity(&self) -> Veracity {
        match self {
            RevelationOutcome::Complete { veracity, .. }
            | RevelationOutcome::Partial { veracity, .. } => *veracity,
            RevelationOutcome::Abandoned { .. } => Veracity::Unverified,
        }
    }

    /// Records the evidence-screen verdict (no-op on Abandoned).
    pub fn set_veracity(&mut self, v: Veracity) {
        match self {
            RevelationOutcome::Complete { veracity, .. }
            | RevelationOutcome::Partial { veracity, .. } => *veracity = v,
            RevelationOutcome::Abandoned { .. } => {}
        }
    }

    /// The revealed tunnel, when hops were actually revealed (empty
    /// complete tunnels — "nothing hidden" — return `None`).
    pub fn tunnel(&self) -> Option<&RevealedTunnel> {
        match self {
            RevelationOutcome::Complete { tunnel, .. }
            | RevelationOutcome::Partial { tunnel, .. }
                if !tunnel.is_empty() =>
            {
                Some(tunnel)
            }
            _ => None,
        }
    }

    /// True when the attempt completed and exposed nothing hidden.
    pub fn is_nothing_hidden(&self) -> bool {
        matches!(self, RevelationOutcome::Complete { tunnel, .. } if tunnel.is_empty())
    }

    /// True when the attempt was abandoned outright.
    pub fn is_abandoned(&self) -> bool {
        matches!(self, RevelationOutcome::Abandoned { .. })
    }

    /// Re-trace quality, when the attempt produced traces at all.
    pub fn confidence(&self) -> Option<Confidence> {
        match self {
            RevelationOutcome::Complete { confidence, .. }
            | RevelationOutcome::Partial { confidence, .. } => Some(*confidence),
            RevelationOutcome::Abandoned { .. } => None,
        }
    }

    /// Short kind label for reports ("complete"/"partial"/"abandoned").
    pub fn kind_label(&self) -> &'static str {
        match self {
            RevelationOutcome::Complete { .. } => "complete",
            RevelationOutcome::Partial { .. } => "partial",
            RevelationOutcome::Abandoned { .. } => "abandoned",
        }
    }
}

/// The hops strictly between `after` and the final hop equal to `until`
/// in a trace, as (addr, labeled, truth) triples. `None` when the trace
/// does not pass through `after` or does not end at `until`.
fn segment_between(
    trace: &wormhole_probe::Trace,
    after: Addr,
    until: Addr,
) -> Option<Vec<RevealedHop>> {
    let hops: Vec<&wormhole_probe::TraceHop> =
        trace.hops.iter().filter(|h| h.addr.is_some()).collect();
    let i = hops.iter().position(|h| h.addr == Some(after))?;
    let j = hops.iter().position(|h| h.addr == Some(until))?;
    if j < i {
        return None;
    }
    Some(
        hops[i + 1..j]
            .iter()
            .filter_map(|h| {
                h.addr.map(|addr| RevealedHop {
                    addr,
                    labeled: h.is_labeled(),
                    rtt_ms: h.rtt_ms,
                    truth: h.truth,
                })
            })
            .collect(),
    )
}

/// Runs the §4 revelation between a suspected ingress `x` and egress
/// `y` first observed on a trace towards `target`.
pub fn reveal_between(
    sess: &mut Session<'_>,
    x: Addr,
    y: Addr,
    target: Addr,
    opts: &RevealOpts,
) -> RevelationOutcome {
    let probes_before = sess.stats.probes;
    let mut steps: Vec<RevealStep> = Vec::new();
    let mut known: std::collections::HashSet<Addr> = [x, y, target].into_iter().collect();
    let mut cur = y;
    let mut degraded_hops = 0usize;
    let mut revisits = 0usize;
    let mut first_path: Option<Vec<Option<Addr>>> = None;
    let mut missing: Option<MissingPart> = None;
    for step_idx in 0..=opts.max_steps {
        let trace = sess.traceroute(cur);
        degraded_hops += trace.hops.iter().filter(|h| h.addr.is_none()).count();
        revisits += trace.revisits();
        if step_idx == 0 && opts.paris_check {
            first_path = Some(trace.addr_path());
        }
        let Some(seg) = segment_between(&trace, x, cur) else {
            // The re-trace does not pass through the ingress: stop, keep
            // whatever was already revealed.
            if steps.iter().all(|s| s.new_hops.is_empty()) {
                return RevelationOutcome::Abandoned {
                    reason: if trace.truncated {
                        AbandonReason::ProbeBudget
                    } else {
                        AbandonReason::IngressNotObserved
                    },
                };
            }
            missing = Some(if trace.truncated {
                MissingPart::ProbeBudget
            } else {
                MissingPart::IngressLostMidway
            });
            break;
        };
        let new_hops: Vec<RevealedHop> = seg
            .into_iter()
            .filter(|h| !known.contains(&h.addr))
            .collect();
        for h in &new_hops {
            known.insert(h.addr);
        }
        let n = new_hops.len();
        let next = new_hops.first().map(|h| h.addr);
        steps.push(RevealStep {
            target: cur,
            new_hops,
        });
        match (n, next) {
            // Backward step: recurse towards the newly revealed hop.
            (1, Some(revealed)) => {
                cur = revealed;
                if step_idx == opts.max_steps {
                    // Still discovering when the step limit hit: the
                    // hop set is a lower bound.
                    missing = Some(MissingPart::StepLimit);
                }
            }
            // Recursion exhausted, or DPR revealed the remainder at once.
            _ => break,
        }
    }
    // The per-flow stability screen: repeat the first re-trace and
    // compare paths. Honest per-flow ECMP repeats byte-identically (the
    // Paris flow is held per destination); only a load balancer keyed
    // on per-probe fields can make the repeat diverge.
    let retrace_mismatch = match first_path {
        Some(ref path) => sess.traceroute(y).addr_path() != *path,
        None => false,
    };
    let extra_probes = sess.stats.probes - probes_before;
    let confidence = Confidence::grade(degraded_hops);
    let tunnel = RevealedTunnel {
        ingress: x,
        egress: y,
        target,
        steps,
        extra_probes,
        revisits,
        stars: degraded_hops,
        retrace_mismatch,
    };
    match missing {
        Some(m) if !tunnel.is_empty() => RevelationOutcome::Partial {
            tunnel,
            missing: m,
            confidence,
            veracity: Veracity::Unverified,
        },
        _ => RevelationOutcome::Complete {
            tunnel,
            confidence,
            veracity: Veracity::Unverified,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_probe::TracerouteOpts;
    use wormhole_topo::{gns3_fig2, Fig2Config, Scenario};

    fn setup(config: Fig2Config) -> (Scenario, Addr, Addr) {
        let s = gns3_fig2(config);
        // The invisible trace shows … PE1.left, PE2.left, CE2 — the
        // candidate ingress/egress pair.
        let x = s.left_addr("PE1");
        let y = s.left_addr("PE2");
        (s, x, y)
    }

    fn names(s: &Scenario, hops: &[Addr]) -> Vec<String> {
        hops.iter()
            .map(|&a| s.net.router(s.net.owner(a).unwrap()).name.clone())
            .collect()
    }

    #[test]
    fn brpr_on_cisco_default() {
        let (s, x, y) = setup(Fig2Config::BackwardRecursive);
        let mut sess = Session::new(&s.net, &s.cp, s.vp);
        sess.set_opts(TracerouteOpts::default());
        let out = reveal_between(&mut sess, x, y, s.target, &RevealOpts::default());
        let t = out.tunnel().expect("revealed");
        assert_eq!(names(&s, &t.hops()), ["P1", "P2", "P3"]);
        assert_eq!(t.method(), RevealMethod::Brpr);
        assert!(!t.any_labeled());
        assert_eq!(t.forward_tunnel_length(), 4);
        assert!(t.extra_probes > 0);
        assert_eq!(out.confidence(), Some(Confidence::High));
        assert_eq!(out.kind_label(), "complete");
    }

    #[test]
    fn dpr_on_juniper_style_config() {
        let (s, x, y) = setup(Fig2Config::ExplicitRoute);
        let mut sess = Session::new(&s.net, &s.cp, s.vp);
        sess.set_opts(TracerouteOpts::default());
        let out = reveal_between(&mut sess, x, y, s.target, &RevealOpts::default());
        let t = out.tunnel().expect("revealed");
        assert_eq!(names(&s, &t.hops()), ["P1", "P2", "P3"]);
        assert_eq!(t.method(), RevealMethod::Dpr);
        assert!(!t.any_labeled());
        // One extra trace only.
        assert_eq!(t.steps.len(), 1);
    }

    #[test]
    fn uhp_reveals_nothing() {
        let (s, x, _) = setup(Fig2Config::TotallyInvisible);
        // In the UHP trace PE2 does not even appear; the candidate pair
        // seen by the campaign is PE1 → CE2.
        let y = s.loopback("CE2");
        let mut sess = Session::new(&s.net, &s.cp, s.vp);
        sess.set_opts(TracerouteOpts::default());
        let out = reveal_between(&mut sess, x, y, s.target, &RevealOpts::default());
        assert!(out.is_nothing_hidden());
        assert!(out.tunnel().is_none());
    }

    #[test]
    fn explicit_tunnel_brpr_hops_unlabeled_each_step() {
        // Cross-validation setting: propagate on, LDP on all prefixes.
        // The recursion reveals each Last Hop without labels (Table 2).
        let (s, x, y) = setup(Fig2Config::Default);
        let mut sess = Session::new(&s.net, &s.cp, s.vp);
        sess.set_opts(TracerouteOpts::default());
        let out = reveal_between(&mut sess, x, y, s.target, &RevealOpts::default());
        let t = out.tunnel().expect("revealed");
        assert_eq!(names(&s, &t.hops()), ["P1", "P2", "P3"]);
        // Visible tunnel: the first re-trace shows P1, P2 labeled and P3
        // (the popped hop) unlabeled — a Dpr-shaped step with labels.
        assert!(t.any_labeled());
        assert_eq!(t.method(), RevealMethod::Dpr);
    }

    #[test]
    fn failed_when_ingress_absent() {
        let (s, _, y) = setup(Fig2Config::BackwardRecursive);
        // A bogus ingress address never on the path.
        let x = s.loopback("CE1");
        let mut sess = Session::new(&s.net, &s.cp, s.vp);
        sess.set_opts(TracerouteOpts::default());
        // CE1's loopback is not CE1.left, so the re-trace does not list
        // it: Failed.
        let out = reveal_between(&mut sess, x, y, s.target, &RevealOpts::default());
        assert!(matches!(
            out,
            RevelationOutcome::Abandoned {
                reason: AbandonReason::IngressNotObserved
            }
        ));
        assert!(out.is_abandoned());
        assert_eq!(out.confidence(), None);
    }

    #[test]
    fn step_limit_yields_partial_with_lower_bound() {
        // BRPR needs 3 backward steps for the 3-LSR tunnel; capping the
        // recursion at 1 extra trace cuts it short mid-discovery.
        let (s, x, y) = setup(Fig2Config::BackwardRecursive);
        let mut sess = Session::new(&s.net, &s.cp, s.vp);
        sess.set_opts(TracerouteOpts::default());
        let out = reveal_between(
            &mut sess,
            x,
            y,
            s.target,
            &RevealOpts {
                max_steps: 1,
                ..RevealOpts::default()
            },
        );
        match &out {
            RevelationOutcome::Partial {
                tunnel, missing, ..
            } => {
                assert_eq!(*missing, MissingPart::StepLimit);
                assert!(!tunnel.is_empty());
                assert!(
                    tunnel.len() < 3,
                    "partial must under-count the 3-LSR tunnel"
                );
            }
            other => panic!("expected Partial, got {other:?}"),
        }
        assert_eq!(out.kind_label(), "partial");
        assert!(out.tunnel().is_some());
    }

    #[test]
    fn single_hop_tunnel_is_either() {
        // Shrink the tunnel to one LSR by tracing towards P2.left in the
        // BackwardRecursive config: between PE1 and P2 only P1 hides.
        let s = gns3_fig2(Fig2Config::BackwardRecursive);
        let x = s.left_addr("PE1");
        let y = s.left_addr("P2");
        let mut sess = Session::new(&s.net, &s.cp, s.vp);
        sess.set_opts(TracerouteOpts::default());
        let out = reveal_between(&mut sess, x, y, y, &RevealOpts::default());
        let t = out.tunnel().expect("revealed");
        assert_eq!(t.len(), 1);
        assert_eq!(t.method(), RevealMethod::Either);
    }
}
