//! RTLA — Return Tunnel Length Analysis (paper §3.1, Fig. 3).
//!
//! On routers with the `<255, 64>` Juniper signature, the two reply
//! kinds interact differently with the RFC 3443 `min` rule at the exit
//! of the *return* tunnel:
//!
//! * time-exceeded (init 255): the LSE-TTL (also initialised to 255 but
//!   decremented inside the LSP) is the minimum, so the return-tunnel
//!   hops are charged to the IP-TTL;
//! * echo-reply (init 64): the IP-TTL is always the minimum, so the
//!   tunnel hops are *not* charged.
//!
//! The gap between the two observed path lengths is therefore exactly
//! the return tunnel's length `h(I, E)`:
//! `RTL = (255 − ttl_te) − (64 − ttl_er)`.

use crate::fingerprint::Signature;
use wormhole_net::Addr;

/// One RTLA observation.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RtlaSample {
    /// The measured router (egress LER of the forward path).
    pub addr: Addr,
    /// The return tunnel length (LSR hops of the return LSP). Slightly
    /// negative values occur in the wild (and under ECMP here) when the
    /// two replies take different return paths.
    pub rtl: i32,
}

/// Computes the return tunnel length from the two observed reply TTLs.
///
/// Returns `None` unless `signature` is the `<255, 64>` pair the method
/// requires.
pub fn return_tunnel_length(signature: Signature, te_observed: u8, er_observed: u8) -> Option<i32> {
    if !signature.is_rtla_capable() {
        return None;
    }
    let te_len = 255i32 - i32::from(te_observed);
    let er_len = 64i32 - i32::from(er_observed);
    Some(te_len - er_len)
}

/// Builds an [`RtlaSample`] for a router given both observations.
pub fn sample(
    addr: Addr,
    signature: Signature,
    te_observed: u8,
    er_observed: u8,
) -> Option<RtlaSample> {
    return_tunnel_length(signature, te_observed, er_observed).map(|rtl| RtlaSample { addr, rtl })
}

/// Tunnel asymmetry (Fig. 9b): return tunnel length minus the forward
/// tunnel length revealed by DPR/BRPR — near 0 when the tunnel is
/// symmetric and RTLA is accurate.
pub fn tunnel_asymmetry(rtl: i32, forward_tunnel_len: usize) -> i32 {
    rtl - forward_tunnel_len as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn juniper_sig() -> Signature {
        Signature {
            te: Some(255),
            er: Some(64),
        }
    }

    #[test]
    fn paper_fig2_gap() {
        // §3.1: te observed 250, er observed 62 ⇒ (255−250) − (64−62) =
        // 3 — the three LSRs of the return LSP.
        assert_eq!(return_tunnel_length(juniper_sig(), 250, 62), Some(3));
    }

    #[test]
    fn no_tunnel_means_zero() {
        // Same path lengths on both reply kinds.
        assert_eq!(return_tunnel_length(juniper_sig(), 249, 58), Some(0));
    }

    #[test]
    fn requires_juniper_signature() {
        let cisco = Signature {
            te: Some(255),
            er: Some(255),
        };
        assert_eq!(return_tunnel_length(cisco, 250, 250), None);
        let partial = Signature {
            te: Some(255),
            er: None,
        };
        assert_eq!(return_tunnel_length(partial, 250, 62), None);
    }

    #[test]
    fn ecmp_noise_can_go_negative() {
        // The echo reply took a longer return path than the TE.
        let rtl = return_tunnel_length(juniper_sig(), 251, 58).unwrap();
        assert_eq!(rtl, -2);
    }

    #[test]
    fn asymmetry_vs_forward_length() {
        assert_eq!(tunnel_asymmetry(3, 3), 0);
        assert_eq!(tunnel_asymmetry(5, 3), 2);
        assert_eq!(tunnel_asymmetry(2, 4), -2);
        let s = sample(Addr::new(1, 2, 3, 4), juniper_sig(), 250, 62).unwrap();
        assert_eq!(s.rtl, 3);
    }
}
