//! The paper's envisioned "modified traceroute" (§8, Table 6):
//! a traceroute that *detects* invisible tunnels on the fly — FRPLA's
//! shift and RTLA's gap as triggers — and immediately runs DPR/BRPR to
//! splice the hidden hops into the output.
//!
//! This is the conclusion's future-work artefact, built from the same
//! primitives as the campaign: for every consecutive same-AS hop pair
//! `(X, Y)` of the base trace, the egress `Y`'s reply TTLs are analysed;
//! when the shift (or gap) clears the trigger threshold, the §4
//! recursion runs and the revealed LSRs are inserted between `X` and
//! `Y`, annotated with the evidence that triggered them.

use crate::fingerprint::{infer_initial_ttl, Signature};
use crate::frpla::rfa_of_hop;
use crate::reveal::{reveal_between, Confidence, RevealOpts};
use crate::rtla::return_tunnel_length;
use wormhole_net::{Addr, Asn, ReplyKind};
use wormhole_probe::{Session, Trace, TraceHop};

/// What triggered a revelation attempt at a hop.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Trigger {
    /// FRPLA: the return path is `shift` hops longer than the forward
    /// one.
    FrplaShift(i32),
    /// RTLA: the `<255,64>` gap measured a `rtl`-hop return tunnel.
    RtlaGap(i32),
}

/// One hop of a smart trace: either observed directly or revealed.
#[derive(Clone, Debug)]
pub struct SmartHop {
    /// The hop's address.
    pub addr: Addr,
    /// The owning AS, when the mapper knows it.
    pub asn: Option<Asn>,
    /// `None` for directly observed hops; the trigger evidence for
    /// revealed ones.
    pub revealed_by: Option<Trigger>,
    /// For revealed hops, the revelation's re-trace quality; `None` for
    /// directly observed hops.
    pub confidence: Option<Confidence>,
}

/// A traceroute with invisible tunnels spliced in.
#[derive(Clone, Debug)]
pub struct SmartTrace {
    /// The destination.
    pub dst: Addr,
    /// Observed + revealed hops, in forward order.
    pub hops: Vec<SmartHop>,
    /// The underlying base trace.
    pub base: Trace,
    /// Revelation attempts that triggered but exposed nothing (UHP
    /// suspects).
    pub unrevealed_triggers: Vec<(Addr, Trigger)>,
    /// Extra probes spent beyond the base trace.
    pub extra_probes: u64,
}

impl SmartTrace {
    /// Number of hops revealed (not directly observed).
    pub fn revealed_count(&self) -> usize {
        self.hops.iter().filter(|h| h.revealed_by.is_some()).count()
    }
}

/// Options for [`smart_traceroute`].
#[derive(Clone, Debug)]
pub struct SmartOpts {
    /// Minimum FRPLA shift that triggers revelation. The paper warns
    /// (§3.4) that per-trace FRPLA confuses routing asymmetry with
    /// tunnels, so this should stay ≥ 2; RTLA, when available, overrides
    /// the decision.
    pub shift_threshold: i32,
    /// Ping egresses to compute the RTLA gap (costs one probe per hop
    /// pair, buys precision on `<255,64>` LERs).
    pub use_rtla: bool,
    /// The revelation recursion options.
    pub reveal: RevealOpts,
}

impl Default for SmartOpts {
    fn default() -> SmartOpts {
        SmartOpts {
            shift_threshold: 2,
            use_rtla: true,
            reveal: RevealOpts::default(),
        }
    }
}

fn trigger_for(sess: &mut Session<'_>, hop: &TraceHop, opts: &SmartOpts) -> Option<Trigger> {
    if hop.kind != Some(ReplyKind::TimeExceeded) {
        return None;
    }
    if hop.is_labeled() {
        // A label-quoting hop is visibly inside an explicit LSP; its
        // return TTL is inflated by the ICMP label-switched detour, not
        // by an invisible tunnel.
        return None;
    }
    let addr = hop.addr?;
    let te_observed = hop.reply_ip_ttl?;
    if opts.use_rtla {
        if let Some(p) = sess.ping(addr).reply {
            let sig = Signature {
                te: Some(infer_initial_ttl(te_observed)),
                er: Some(infer_initial_ttl(p.reply_ip_ttl)),
            };
            if let Some(rtl) = return_tunnel_length(sig, te_observed, p.reply_ip_ttl) {
                // RTLA is authoritative on <255,64> LERs: a measured
                // return tunnel triggers, a measured zero suppresses
                // even a positive FRPLA shift (routing asymmetry).
                return (rtl >= 1).then_some(Trigger::RtlaGap(rtl));
            }
        }
    }
    let rfa = rfa_of_hop(hop)?;
    (rfa.rfa >= opts.shift_threshold).then_some(Trigger::FrplaShift(rfa.rfa))
}

/// Runs the tunnel-aware traceroute.
///
/// `as_of` maps addresses to ASes (a Team-Cymru-style lookup); pairs
/// whose endpoints map to different ASes are never analysed, matching
/// the campaign's rule.
pub fn smart_traceroute<F>(
    sess: &mut Session<'_>,
    dst: Addr,
    mut as_of: F,
    opts: &SmartOpts,
) -> SmartTrace
where
    F: FnMut(Addr) -> Option<Asn>,
{
    let probes_before = sess.stats.probes;
    let base = sess.traceroute(dst);
    let responsive: Vec<(Addr, TraceHop)> = base
        .hops
        .iter()
        .filter_map(|h| h.addr.map(|a| (a, h.clone())))
        .collect();
    let mut hops: Vec<SmartHop> = Vec::with_capacity(responsive.len());
    let mut unrevealed = Vec::new();
    for (i, &(addr, ref hop)) in responsive.iter().enumerate() {
        // Analyse the pair (previous, this) when both map to one AS.
        let pair_trigger = match i.checked_sub(1).map(|j| &responsive[j]) {
            Some(&(x, ref prev)) => {
                let same_as = match (as_of(x), as_of(addr)) {
                    (Some(a), Some(b)) => a == b,
                    _ => false,
                };
                if same_as && x != addr && !prev.is_labeled() {
                    trigger_for(sess, hop, opts).map(|t| (x, t))
                } else {
                    None
                }
            }
            None => None,
        };
        if let Some((x, trigger)) = pair_trigger {
            let out = reveal_between(sess, x, addr, dst, &opts.reveal);
            match out.tunnel() {
                Some(t) => {
                    for revealed in t.hops() {
                        hops.push(SmartHop {
                            addr: revealed,
                            asn: as_of(revealed),
                            revealed_by: Some(trigger),
                            confidence: out.confidence(),
                        });
                    }
                }
                None => {
                    unrevealed.push((addr, trigger));
                }
            }
        }
        hops.push(SmartHop {
            addr,
            asn: as_of(addr),
            revealed_by: None,
            confidence: None,
        });
    }
    SmartTrace {
        dst,
        hops,
        base,
        unrevealed_triggers: unrevealed,
        extra_probes: sess.stats.probes - probes_before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_probe::TracerouteOpts;
    use wormhole_topo::{gns3_fig2, gns3_fig2_with, Fig2Config, Fig2Opts, Scenario};

    fn run(s: &Scenario, opts: &SmartOpts) -> SmartTrace {
        let mut sess = Session::new(&s.net, &s.cp, s.vp);
        sess.set_opts(TracerouteOpts::default());
        let net = &s.net;
        smart_traceroute(&mut sess, s.target, |a| net.owner_asn(a), opts)
    }

    fn names(s: &Scenario, t: &SmartTrace) -> Vec<String> {
        t.hops
            .iter()
            .map(|h| s.net.router(s.net.owner(h.addr).unwrap()).name.clone())
            .collect()
    }

    #[test]
    fn splices_invisible_cisco_tunnel_via_frpla() {
        let s = gns3_fig2(Fig2Config::BackwardRecursive);
        let t = run(&s, &SmartOpts::default());
        assert_eq!(
            names(&s, &t),
            ["CE1", "PE1", "P1", "P2", "P3", "PE2", "CE2"]
        );
        assert_eq!(t.revealed_count(), 3);
        // Cisco LERs: FRPLA triggered (no <255,64> signature).
        assert!(matches!(
            t.hops[2].revealed_by,
            Some(Trigger::FrplaShift(3))
        ));
        assert_eq!(t.hops[2].confidence, Some(Confidence::High));
        assert_eq!(t.hops[0].confidence, None);
        assert!(t.unrevealed_triggers.is_empty());
        assert!(t.extra_probes > 0);
    }

    #[test]
    fn rtla_triggers_on_juniper_and_dpr_reveals() {
        let s = gns3_fig2_with(Fig2Opts::preset_juniper_ler(Fig2Config::ExplicitRoute));
        let t = run(&s, &SmartOpts::default());
        assert_eq!(t.revealed_count(), 3);
        assert!(matches!(t.hops[2].revealed_by, Some(Trigger::RtlaGap(3))));
    }

    #[test]
    fn visible_tunnels_do_not_trigger() {
        let s = gns3_fig2(Fig2Config::Default);
        let t = run(&s, &SmartOpts::default());
        assert_eq!(t.revealed_count(), 0);
        assert!(t.unrevealed_triggers.is_empty());
        // The base trace already shows everything.
        assert_eq!(t.hops.len(), 7);
    }

    #[test]
    fn uhp_triggers_nothing_and_reveals_nothing() {
        let s = gns3_fig2(Fig2Config::TotallyInvisible);
        let t = run(&s, &SmartOpts::default());
        // PE2 is invisible: the only same-AS pair inside AS2 never forms,
        // so no trigger fires and nothing is revealed.
        assert_eq!(t.revealed_count(), 0);
    }

    #[test]
    fn rtla_suppresses_false_frpla_positives() {
        // A Juniper egress with a measured zero-length return tunnel
        // must not trigger even if FRPLA sees asymmetry: craft this by
        // running against the visible Juniper preset where RFA is 0
        // anyway, then check the suppression path type-checks by
        // lowering the threshold to 0 (everything would FRPLA-trigger).
        let s = gns3_fig2_with(Fig2Opts::preset_juniper_ler(Fig2Config::Default));
        let t = run(
            &s,
            &SmartOpts {
                shift_threshold: 0,
                ..SmartOpts::default()
            },
        );
        // RTLA measured 0 on every <255,64> egress: no revelation ran
        // from a false trigger (the visible trace has nothing to hide).
        assert_eq!(t.revealed_count(), 0);
    }
}
