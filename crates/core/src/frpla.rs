//! FRPLA — Forward/Return Path Length Analysis (paper §3.1).
//!
//! For a traceroute hop answered by router `E` at probe TTL `f`, the
//! reply's received IP-TTL gives the *return* path length
//! `r = init − observed + 1`. With an invisible tunnel on the forward
//! path, `f` undercounts the hidden LSRs while `r` — thanks to the
//! RFC 3443 `min` rule at the return tunnel's exit — counts them, so
//! the Return-vs-Forward Asymmetry `RFA = r − f` shifts positive.
//!
//! FRPLA is statistical: per-hop RFA also contains plain routing
//! asymmetry (hot-potato), which averages to ~0 over many vantage
//! points; only the per-AS distribution shift is meaningful (§3.4).

use crate::fingerprint::return_path_len;
use wormhole_net::{Addr, Asn, ReplyKind};
use wormhole_probe::{Trace, TraceHop};

/// One RFA observation.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RfaSample {
    /// The replying address (candidate egress LER).
    pub addr: Addr,
    /// Forward path length (the probe TTL).
    pub forward_len: u8,
    /// Inferred return path length.
    pub return_len: u8,
    /// `return_len - forward_len`.
    pub rfa: i32,
}

/// Computes the RFA of a single hop, when it replied.
pub fn rfa_of_hop(hop: &TraceHop) -> Option<RfaSample> {
    let addr = hop.addr?;
    let observed = hop.reply_ip_ttl?;
    let return_len = return_path_len(observed);
    Some(RfaSample {
        addr,
        forward_len: hop.ttl,
        return_len,
        rfa: i32::from(return_len) - i32::from(hop.ttl),
    })
}

/// All RFA samples of a trace, one per responsive time-exceeded hop
/// (echo replies use a different initial TTL on Juniper and are RTLA's
/// business, so they are skipped here).
pub fn rfa_of_trace(trace: &Trace) -> Vec<RfaSample> {
    trace
        .hops
        .iter()
        .filter(|h| h.kind == Some(ReplyKind::TimeExceeded))
        .filter_map(rfa_of_hop)
        .collect()
}

/// An empirical integer distribution with the summary statistics the
/// paper reads off its RFA plots.
#[derive(Clone, Debug, Default)]
pub struct RfaDistribution {
    samples: Vec<i32>,
    sorted: bool,
}

impl RfaDistribution {
    /// An empty distribution.
    pub fn new() -> RfaDistribution {
        RfaDistribution::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, rfa: i32) {
        self.samples.push(rfa);
        self.sorted = false;
    }

    /// Adds many observations.
    pub fn extend<I: IntoIterator<Item = i32>>(&mut self, it: I) {
        self.samples.extend(it);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples.
    pub fn samples(&self) -> &[i32] {
        &self.samples
    }

    fn sort(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The median (lower median for even sizes).
    pub fn median(&mut self) -> Option<i32> {
        if self.samples.is_empty() {
            return None;
        }
        self.sort();
        Some(self.samples[(self.samples.len() - 1) / 2])
    }

    /// The mean.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().map(|&x| f64::from(x)).sum::<f64>() / self.samples.len() as f64)
    }

    /// The probability density over the integer support (Fig. 7's PDF).
    pub fn pdf(&self) -> Vec<(i32, f64)> {
        if self.samples.is_empty() {
            return Vec::new();
        }
        let mut counts = std::collections::BTreeMap::new();
        for &s in &self.samples {
            *counts.entry(s).or_insert(0usize) += 1;
        }
        let n = self.samples.len() as f64;
        counts.into_iter().map(|(v, c)| (v, c as f64 / n)).collect()
    }

    /// The paper's shift test: an AS whose RFA median is at least
    /// `threshold` (default judgement uses 2) very likely hides tunnels
    /// — plain routing asymmetry centres the median near 0–1.
    pub fn shifted_by(&mut self, threshold: i32) -> bool {
        self.median().is_some_and(|m| m >= threshold)
    }

    /// The FRPLA estimate of the AS's average invisible tunnel length:
    /// the median RFA (asymmetry noise averages out).
    pub fn tunnel_length_estimate(&mut self) -> Option<i32> {
        self.median()
    }
}

/// Per-AS FRPLA aggregation.
#[derive(Clone, Debug, Default)]
pub struct FrplaAnalysis {
    per_as: std::collections::HashMap<Asn, RfaDistribution>,
    all: RfaDistribution,
}

impl FrplaAnalysis {
    /// An empty analysis.
    pub fn new() -> FrplaAnalysis {
        FrplaAnalysis::default()
    }

    /// Records a sample attributed to `asn` (unattributed samples only
    /// enter the global distribution).
    pub fn record(&mut self, asn: Option<Asn>, sample: &RfaSample) {
        self.all.push(sample.rfa);
        if let Some(asn) = asn {
            self.per_as.entry(asn).or_default().push(sample.rfa);
        }
    }

    /// The distribution for one AS.
    pub fn for_as(&mut self, asn: Asn) -> Option<&mut RfaDistribution> {
        self.per_as.get_mut(&asn)
    }

    /// The global distribution.
    pub fn global(&mut self) -> &mut RfaDistribution {
        &mut self.all
    }

    /// ASes seen, sorted.
    pub fn ases(&self) -> Vec<Asn> {
        let mut v: Vec<Asn> = self.per_as.keys().copied().collect();
        v.sort_by_key(|a| a.0);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_probe::TraceHop;

    fn hop(ttl: u8, reply_ttl: u8) -> TraceHop {
        TraceHop {
            ttl,
            addr: Some(Addr::new(10, 0, 0, 1)),
            reply_ip_ttl: Some(reply_ttl),
            rtt_ms: Some(1.0),
            labels: Vec::new(),
            kind: Some(ReplyKind::TimeExceeded),
            outcome: wormhole_probe::HopOutcome::Replied,
            attempts: 1,
            truth: None,
        }
    }

    #[test]
    fn paper_fig2_example() {
        // PE2 at forward hop 3, reply TTL 250 (255-init): return length
        // 6, RFA = 3 = the tunnel's three LSRs.
        let s = rfa_of_hop(&hop(3, 250)).unwrap();
        assert_eq!(s.return_len, 6);
        assert_eq!(s.rfa, 3);
    }

    #[test]
    fn symmetric_path_has_zero_rfa() {
        // Hop 5, reply 251 from a 255 stack: return length 5, RFA 0.
        let s = rfa_of_hop(&hop(5, 251)).unwrap();
        assert_eq!(s.rfa, 0);
    }

    #[test]
    fn stars_yield_nothing() {
        assert!(rfa_of_hop(&TraceHop::star(4)).is_none());
    }

    #[test]
    fn distribution_stats() {
        let mut d = RfaDistribution::new();
        d.extend([0, 1, 0, -1, 3, 3, 3, 4]);
        assert_eq!(d.len(), 8);
        assert_eq!(d.median(), Some(1));
        assert!((d.mean().unwrap() - 13.0 / 8.0).abs() < 1e-9);
        let pdf = d.pdf();
        let total: f64 = pdf.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(!d.shifted_by(2));
        let mut shifted = RfaDistribution::new();
        shifted.extend([2, 3, 4, 3, 2, 5]);
        assert!(shifted.shifted_by(2));
        assert_eq!(shifted.tunnel_length_estimate(), Some(3));
    }

    #[test]
    fn per_as_aggregation() {
        let mut a = FrplaAnalysis::new();
        let s = rfa_of_hop(&hop(3, 250)).unwrap();
        a.record(Some(Asn(3257)), &s);
        a.record(None, &s);
        assert_eq!(a.global().len(), 2);
        assert_eq!(a.for_as(Asn(3257)).unwrap().len(), 1);
        assert!(a.for_as(Asn(1)).is_none());
        assert_eq!(a.ases(), vec![Asn(3257)]);
    }

    #[test]
    fn echo_replies_excluded_from_trace_rfa() {
        let mut t = wormhole_probe::Trace {
            src: Addr::new(1, 1, 1, 1),
            dst: Addr::new(2, 2, 2, 2),
            flow: 0,
            hops: vec![hop(1, 255), hop(2, 254)],
            reached: true,
            probes: 3,
            truncated: false,
        };
        t.hops.push(TraceHop {
            kind: Some(ReplyKind::EchoReply),
            ..hop(3, 62)
        });
        let samples = rfa_of_trace(&t);
        assert_eq!(samples.len(), 2);
    }
}
