//! Campaign-scale benchmarks: ITDK aggregation, the full §4 pipeline on
//! the reduced Internet, and serial-vs-parallel campaign throughput on
//! the tenfold (100 transit-AS) Internet.
//!
//! The parallel section also writes `BENCH_campaign.json` at the repo
//! root: probes/sec at 1, 2 and 4 workers plus the machine's core
//! count, so a single-core CI runner's flat numbers are not mistaken
//! for an executor regression.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;
use wormhole_core::{Campaign, CampaignConfig};
use wormhole_net::{Addr, FaultScenario};
use wormhole_topo::{generate, Internet, InternetConfig, ItdkSnapshot, NodeInfo};

fn itdk_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("itdk");
    // Synthetic path set: 2,000 paths of 12 hops over a 4,096-address
    // space (deterministic xorshift).
    let mut x: u32 = 0x9E37_79B9;
    let mut step = || {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        x
    };
    let paths: Vec<Vec<Option<Addr>>> = (0..2_000)
        .map(|_| {
            (0..12)
                .map(|_| Some(Addr(0x0A00_0000 | (step() % 4096))))
                .collect()
        })
        .collect();
    group.bench_function("aggregate_2k_paths", |b| {
        b.iter(|| {
            black_box(ItdkSnapshot::build(&paths, |a| NodeInfo {
                key: u64::from(a.0),
                asn: None,
            }))
        })
    });
    group.finish();
}

fn campaign_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    let internet = generate(&InternetConfig::small(5));
    group.bench_function("full_pipeline_small_internet", |b| {
        b.iter(|| {
            let campaign = Campaign::new(
                &internet.net,
                &internet.cp,
                internet.vps.clone(),
                CampaignConfig {
                    hdn_threshold: 6,
                    ..CampaignConfig::default()
                },
            );
            black_box(campaign.run())
        })
    });
    group.finish();
}

fn tenfold_campaign(
    internet: &Internet,
    jobs: usize,
    scenario: FaultScenario,
) -> wormhole_core::CampaignResult {
    Campaign::new(
        &internet.net,
        &internet.cp,
        internet.vps.clone(),
        CampaignConfig {
            hdn_threshold: 9,
            jobs,
            faults: scenario.plan(),
            ..CampaignConfig::default()
        },
    )
    .run()
}

fn campaign_parallel_bench(c: &mut Criterion) {
    let internet = generate(&InternetConfig::tenfold(8));
    let mut group = c.benchmark_group("campaign_tenfold");
    group.sample_size(3);
    for jobs in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            b.iter(|| black_box(tenfold_campaign(&internet, jobs, FaultScenario::Clean)))
        });
    }
    group.finish();

    // Emit BENCH_campaign.json (probes/sec per worker count, plus the
    // hostile-scenario overhead row) from a dedicated timed run per
    // setting, outside the criterion harness.
    let mut entries = Vec::new();
    let runs = [
        (1usize, FaultScenario::Clean),
        (2, FaultScenario::Clean),
        (4, FaultScenario::Clean),
        (4, FaultScenario::Hostile),
    ];
    for (jobs, scenario) in runs {
        let t0 = Instant::now();
        let result = tenfold_campaign(&internet, jobs, scenario);
        let secs = t0.elapsed().as_secs_f64();
        let pps = result.probes as f64 / secs;
        let name = scenario.name();
        println!(
            "campaign_tenfold jobs={jobs} faults={name}: {pps:.0} probes/sec ({secs:.3}s wall)"
        );
        entries.push(format!(
            "    {{\"jobs\": {jobs}, \"faults\": \"{name}\", \"probes\": {}, \
             \"seconds\": {secs:.6}, \"probes_per_sec\": {pps:.1}}}",
            result.probes
        ));
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"campaign_tenfold\",\n  \"transit_ases\": 100,\n  \
         \"routers\": {},\n  \"cores\": {cores},\n  \"runs\": [\n{}\n  ]\n}}\n",
        internet.net.num_routers(),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {path}: {e}");
    }
}

criterion_group!(benches, itdk_bench, campaign_bench, campaign_parallel_bench);
criterion_main!(benches);
