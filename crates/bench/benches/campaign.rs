//! Campaign-scale benchmarks: ITDK aggregation, the full §4 pipeline on
//! the reduced Internet, and serial-vs-parallel campaign throughput on
//! the tenfold (100 transit-AS) and thousandfold (1000 transit-AS)
//! Internets.
//!
//! The parallel section also writes `BENCH_campaign.json` at the repo
//! root via [`measure`]: probes/sec per `(scale, jobs, faults,
//! scheduling)` with the build/probe/merge breakdown, plus the
//! machine's core count so a single-core CI runner's flat numbers are
//! not mistaken for an executor regression. The `bench-regression`
//! binary replays the same matrix and gates on the committed file.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wormhole_bench::measure;
use wormhole_core::{Campaign, CampaignConfig, Scheduling};
use wormhole_net::{Addr, FaultScenario};
use wormhole_topo::{generate, InternetConfig, ItdkSnapshot, NodeInfo};

fn itdk_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("itdk");
    // Synthetic path set: 2,000 paths of 12 hops over a 4,096-address
    // space (deterministic xorshift).
    let mut x: u32 = 0x9E37_79B9;
    let mut step = || {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        x
    };
    let paths: Vec<Vec<Option<Addr>>> = (0..2_000)
        .map(|_| {
            (0..12)
                .map(|_| Some(Addr(0x0A00_0000 | (step() % 4096))))
                .collect()
        })
        .collect();
    group.bench_function("aggregate_2k_paths", |b| {
        b.iter(|| {
            black_box(ItdkSnapshot::build(&paths, |a| NodeInfo {
                key: u64::from(a.0),
                asn: None,
            }))
        })
    });
    group.finish();
}

fn campaign_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    let internet = generate(&InternetConfig::small(5));
    group.bench_function("full_pipeline_small_internet", |b| {
        b.iter(|| {
            let campaign = Campaign::new(
                &internet.net,
                &internet.cp,
                internet.vps.clone(),
                CampaignConfig {
                    hdn_threshold: 6,
                    ..CampaignConfig::default()
                },
            );
            black_box(campaign.run())
        })
    });
    group.finish();
}

fn campaign_parallel_bench(c: &mut Criterion) {
    let (internet, tenfold_build) = measure::generate_timed(&InternetConfig::tenfold(8));
    let mut group = c.benchmark_group("campaign_tenfold");
    group.sample_size(3);
    for jobs in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                black_box(measure::time_campaign(
                    &internet,
                    jobs,
                    FaultScenario::Clean,
                    Scheduling::VpBatches,
                ))
            })
        });
    }
    group.finish();

    // Emit BENCH_campaign.json from dedicated timed runs outside the
    // criterion harness: the full tenfold matrix (worker sweep, both
    // executors, hostile rows) plus the thousandfold completion proof,
    // each with its build/probe/merge breakdown.
    let (thousandfold, thousandfold_build) =
        measure::generate_timed(&InternetConfig::thousandfold(8));
    let scales = vec![
        measure::measure_scale("tenfold", &internet, tenfold_build, measure::TENFOLD_MATRIX),
        measure::measure_scale(
            "thousandfold",
            &thousandfold,
            thousandfold_build,
            measure::THOUSANDFOLD_MATRIX,
        ),
    ];
    for line in measure::summary_lines(&scales) {
        println!("{line}");
    }
    // No distributed/cache rows from here: the Criterion bench has no
    // worker binary of its own, and bench-regression owns those rows.
    measure::write_baseline(
        "BENCH_campaign.json",
        &measure::campaign_json(&scales, &[], &[]),
    );
}

criterion_group!(benches, itdk_bench, campaign_bench, campaign_parallel_bench);
criterion_main!(benches);
