//! Campaign-scale benchmarks: ITDK aggregation and the full §4
//! pipeline on the reduced Internet.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wormhole_core::{Campaign, CampaignConfig};
use wormhole_net::Addr;
use wormhole_topo::{generate, InternetConfig, ItdkSnapshot, NodeInfo};

fn itdk_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("itdk");
    // Synthetic path set: 2,000 paths of 12 hops over a 4,096-address
    // space (deterministic xorshift).
    let mut x: u32 = 0x9E37_79B9;
    let mut step = || {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        x
    };
    let paths: Vec<Vec<Option<Addr>>> = (0..2_000)
        .map(|_| {
            (0..12)
                .map(|_| Some(Addr(0x0A00_0000 | (step() % 4096))))
                .collect()
        })
        .collect();
    group.bench_function("aggregate_2k_paths", |b| {
        b.iter(|| {
            black_box(ItdkSnapshot::build(&paths, |a| NodeInfo {
                key: u64::from(a.0),
                asn: None,
            }))
        })
    });
    group.finish();
}

fn campaign_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    let internet = generate(&InternetConfig::small(5));
    group.bench_function("full_pipeline_small_internet", |b| {
        b.iter(|| {
            let campaign = Campaign::new(
                &internet.net,
                &internet.cp,
                internet.vps.clone(),
                CampaignConfig {
                    hdn_threshold: 6,
                    ..CampaignConfig::default()
                },
            );
            black_box(campaign.run())
        })
    });
    group.finish();
}

criterion_group!(benches, itdk_bench, campaign_bench);
criterion_main!(benches);
