//! Engine microbenchmarks on the tenfold Internet: the batched SoA
//! walk versus the scalar recording-off walk (the two steady-state
//! campaign configurations) versus the ground-truth-recording walk,
//! plus a dedicated timed section that writes `BENCH_engine.json` at
//! the repo root — batched, scalar and thousandfold walk throughput,
//! the `heap_allocs` proof counters, and serial-vs-parallel
//! control-plane build times.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wormhole_bench::measure;
use wormhole_net::{Engine, FaultPlan, ProbeState, SubstrateRef, BATCH_WIDTH};
use wormhole_probe::{traceroute, Session, TracerouteOpts};
use wormhole_topo::{generate, InternetConfig};

fn engine_bench(c: &mut Criterion) {
    let internet = generate(&InternetConfig::tenfold(8));
    let sub = SubstrateRef::new(&internet.net, &internet.cp);
    let vp = internet.vps[0];
    // A far loopback: the last router is deep in the most recently
    // generated stub, many hops from the first vantage point.
    let far = internet
        .net
        .routers()
        .last()
        .expect("tenfold Internet has routers")
        .loopback;

    let mut group = c.benchmark_group("engine");
    group.bench_function("traceroute_recording_off", |b| {
        let mut sess = Session::over(sub, vp, ProbeState::new(FaultPlan::none(), 0));
        b.iter(|| black_box(sess.traceroute(far)))
    });
    group.bench_function("traceroute_batch_64", |b| {
        // A full SoA lane of far loopbacks — the gap against the
        // scalar walk above is the batching win itself (shared table
        // walks, gathered flag rows, no per-probe dispatch).
        let mut sess = Session::over(sub, vp, ProbeState::new(FaultPlan::none(), 0));
        let dsts: Vec<_> = internet
            .net
            .routers()
            .iter()
            .rev()
            .take(BATCH_WIDTH)
            .map(|r| r.loopback)
            .collect();
        b.iter(|| black_box(sess.traceroute_batch(&dsts)))
    });
    group.bench_function("traceroute_recording_on", |b| {
        // Same walk over a bare engine with ground-truth path recording
        // turned back on — the gap against `traceroute_recording_off`
        // is the price of the per-probe heap buffers the campaign
        // configuration avoids.
        let mut eng = Engine::over(sub, ProbeState::new(FaultPlan::none(), 0));
        eng.set_record_paths(true);
        let src = internet.net.router(vp).loopback;
        let opts = TracerouteOpts::campaign();
        b.iter(|| black_box(traceroute(&mut eng, vp, src, far, 7, 1, &opts)))
    });
    group.finish();

    let thousandfold = generate(&InternetConfig::thousandfold(8));
    let e = measure::measure_engine(&internet, &thousandfold);
    for w in &e.walks {
        println!(
            "engine {}: {:.0} probes/sec over {} probes ({} traces, {} routers), {} heap allocs",
            w.name, w.probes_per_sec, w.probes, w.traces, w.routers, w.heap_allocs
        );
        assert_eq!(
            w.heap_allocs, 0,
            "recording-off {} must stay allocation-free",
            w.name
        );
    }
    println!(
        "plane build: {:.3}s serial, {:.3}s at {} workers",
        e.plane_serial_seconds, e.plane_parallel_seconds, e.plane_jobs
    );
    measure::write_baseline("BENCH_engine.json", &measure::engine_json(&e));
}

criterion_group!(benches, engine_bench);
criterion_main!(benches);
